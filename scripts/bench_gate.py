#!/usr/bin/env python
"""CI entry point for the benchmark regression gate.

Thin wrapper over :mod:`repro.obs.regress` that works from a plain
checkout (adds ``src/`` to ``sys.path`` when the package is not
installed).  See ``python scripts/bench_gate.py --help``.
"""

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

try:
    from repro.obs import regress
except ImportError:
    sys.path.insert(0, str(ROOT / "src"))
    from repro.obs import regress

if __name__ == "__main__":
    raise SystemExit(regress.main())
