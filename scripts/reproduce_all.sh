#!/usr/bin/env bash
# Full reproduction kit: tests, benchmarks, experiment reports, examples.
#
# Usage:  bash scripts/reproduce_all.sh
#
# Outputs:
#   test_output.txt           full test run
#   bench_output.txt          full benchmark run
#   benchmarks/_reports/      paper-vs-measured reports per experiment
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== installing (editable) =="
pip install -e . --no-build-isolation 2>/dev/null || python setup.py develop

echo "== tests =="
pytest tests/ 2>&1 | tee test_output.txt

echo "== benchmarks (regenerates every figure of the paper) =="
pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

echo "== experiment reports =="
python -m repro.experiments

echo "== examples =="
for f in examples/*.py; do
    echo "--- $f"
    python "$f" > /dev/null
done

echo "ALL REPRODUCTION STEPS COMPLETED"
