#!/usr/bin/env bash
# Full reproduction kit: tests, benchmarks, experiment reports, examples.
#
# Usage:  bash scripts/reproduce_all.sh [--backend scalar|batched|auto]
#                                       [--cache-dir DIR] [--no-cache]
#
#   --backend    analysis-engine backend for every stage (exported as
#                REPRO_ANALYSIS_BACKEND; default: auto)
#   --cache-dir  persistent artifact cache root (exported as
#                REPRO_CACHE_DIR); a second run with the same dir skips
#                re-analysis
#   --no-cache   force the artifact cache off even if REPRO_CACHE_DIR is
#                set in the environment
#
# Outputs:
#   test_output.txt           full test run
#   bench_output.txt          full benchmark run
#   benchmarks/_reports/      paper-vs-measured reports per experiment
set -euo pipefail
cd "$(dirname "$0")/.."

while [[ $# -gt 0 ]]; do
    case "$1" in
        --backend)
            export REPRO_ANALYSIS_BACKEND="$2"; shift 2 ;;
        --cache-dir)
            export REPRO_CACHE_DIR="$2"; shift 2 ;;
        --no-cache)
            unset REPRO_CACHE_DIR; shift ;;
        *)
            echo "unknown option: $1" >&2; exit 2 ;;
    esac
done
echo "analysis backend: ${REPRO_ANALYSIS_BACKEND:-auto}" \
     " cache: ${REPRO_CACHE_DIR:-off}"

stage_started=$SECONDS
stage_done() {
    echo "== stage '$1' took $((SECONDS - stage_started))s =="
    stage_started=$SECONDS
}

echo "== installing (editable) =="
pip install -e . --no-build-isolation 2>/dev/null || python setup.py develop
stage_done install

echo "== tests =="
pytest tests/ 2>&1 | tee test_output.txt
stage_done tests

echo "== benchmarks (regenerates every figure of the paper) =="
pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
stage_done benchmarks

echo "== experiment reports =="
python -m repro.experiments
stage_done experiments

echo "== examples =="
for f in examples/*.py; do
    echo "--- $f"
    python "$f" > /dev/null
done
stage_done examples

if [[ -n "${REPRO_CACHE_DIR:-}" ]]; then
    echo "== artifact cache =="
    python -m repro cache stats
fi

echo "ALL REPRODUCTION STEPS COMPLETED in ${SECONDS}s"
