#!/usr/bin/env python
"""CI smoke test for the analysis-as-a-service tier.

Starts an in-process job server, pushes a mixed batch of jobs through
the thin HTTP client, and checks the three serving guarantees end to
end:

1. **CLI parity** -- every served result's ``output`` equals the direct
   CLI subcommand's stdout byte-for-byte (wall-clock timings masked);
2. **Coalescing** -- N concurrent identical analyze submissions produce
   exactly one vectorized-engine call and N identical results;
3. **Batching** -- compatible analyze specs submitted together fuse
   into a single engine invocation.

Exits non-zero on the first violation.  Run from a checkout:

    python scripts/serve_smoke.py
"""

import contextlib
import io
import pathlib
import re
import sys
import threading

ROOT = pathlib.Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(ROOT / "src"))


def _norm(text: str) -> str:
    return re.sub(r"\d+\.\d+s", "Ts", text)


def _cli(argv) -> str:
    from repro.__main__ import main

    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        rc = main(argv)
    assert rc == 0, f"CLI {argv} exited {rc}"
    return buf.getvalue()


def main() -> int:
    from repro.serve import JobSpec, ServeClient, ServerThread

    checks = []

    def check(name, ok, detail=""):
        checks.append(ok)
        print(f"  [{'ok' if ok else 'FAIL'}] {name}" +
              (f" -- {detail}" if detail and not ok else ""))

    with ServerThread() as handle:
        client = ServeClient(port=handle.port)
        print(f"serve-smoke: server on port {handle.port}")

        # 1. CLI parity across all four job kinds.
        print("mixed batch vs direct CLI runs:")
        cases = [
            (JobSpec(kind="analyze", u=2, p=2, cache=False),
             ["analyze", "--u", "2", "--p", "2", "--no-cache"]),
            (JobSpec(kind="search", u=2, p=2, max_candidates=2),
             ["search", "--u", "2", "--p", "2", "--max-candidates", "2"]),
            (JobSpec(kind="simulate", u=2, p=2),
             ["simulate", "--u", "2", "--p", "2"]),
            (JobSpec(kind="verify", cases=3, oracle_budget_s=30.0),
             ["verify", "--cases", "3", "--budget-s", "30"]),
        ]
        served = client.run_many([spec for spec, _ in cases], timeout=300)
        for (spec, argv), result in zip(cases, served):
            expected = _cli(argv)
            check(
                f"{spec.kind}: served output == CLI output",
                result.ok and _norm(result.output) == _norm(expected),
                f"status={result.status} error={result.error!r}",
            )

        # CLI client mode produces the same bytes again.
        remote = _cli(["analyze", "--u", "2", "--p", "2", "--no-cache",
                       "--server", f"127.0.0.1:{handle.port}"])
        check("analyze: --server CLI == local CLI",
              _norm(remote) == _norm(_cli(
                  ["analyze", "--u", "2", "--p", "2", "--no-cache"])))

    # 2. Coalescing (fresh server: clean counters).
    with ServerThread() as handle:
        spec = JobSpec(kind="analyze", u=3, p=3, cache=False)
        results = [None] * 8

        def worker(i):
            results[i] = ServeClient(port=handle.port).run(spec, timeout=300)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = ServeClient(port=handle.port).stats()["server"]
        payloads = [r.to_payload() for r in results]
        check("coalescing: 8 identical jobs -> 1 engine call",
              stats.get("analysis.engine_calls") == 1
              and stats.get("serve.executions") == 1,
              f"stats={stats}")
        check("coalescing: 8 byte-identical results",
              all(p == payloads[0] for p in payloads) and results[0].ok)

    # 3. Batching (fresh server again).
    with ServerThread() as handle:
        client = ServeClient(port=handle.port)
        specs = [JobSpec(kind="analyze", u=u, p=p, cache=False)
                 for u, p in ((2, 2), (2, 3), (3, 2), (3, 3))]
        batched = client.run_many(specs, timeout=300)
        stats = client.stats()["server"]
        check("batching: 4 compatible jobs -> 1 engine call",
              all(r.ok for r in batched)
              and stats.get("analysis.engine_calls") == 1
              and stats.get("serve.batches") == 1,
              f"stats={stats}")
        for spec, result in zip(specs, batched):
            from repro.serve import run_job

            solo = run_job(spec)
            check(f"batching: u={spec.u} p={spec.p} output == solo run",
                  _norm(result.output) == _norm(solo.output))

    failed = checks.count(False)
    print(f"serve-smoke: {len(checks) - failed}/{len(checks)} checks passed")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
