#!/usr/bin/env python3
"""A bit-level DCT on the paper's time-optimal array.

The paper lists the discrete cosine transform among the applications its
model (3.5) covers.  A batch DCT is a matrix multiplication ``Z = C · S``
with a *signed* coefficient matrix ``C``; this example

1. quantizes the N-point DCT-II matrix to fixed point (``f`` fractional
   bits),
2. splits it into nonnegative halves ``C = C⁺ − C⁻`` (the split preserves
   every pipelining recurrence, so the Fig. 4 design applies unchanged),
3. runs both halves on the bit-level systolic machine and recombines, and
4. compares against the floating-point DCT, which must agree to within the
   quantization error.

Run:  python examples/dct_transform.py
"""

import math
import random

from repro.machine import BitLevelMatmulMachine
from repro.machine.signed import signed_matmul
from repro.mapping import designs

N = 4          # transform size (the array is N x N word blocks)
F = 5          # fractional bits of the quantized coefficients
P = 7          # word length; |quantized C| < 2^{P}, signals are P-bit


def dct_matrix(n: int) -> list[list[float]]:
    """The orthonormal DCT-II matrix."""
    out = []
    for k in range(n):
        alpha = math.sqrt((1 if k == 0 else 2) / n)
        out.append(
            [alpha * math.cos(math.pi * (2 * i + 1) * k / (2 * n)) for i in range(n)]
        )
    return out


def main() -> None:
    c_float = dct_matrix(N)
    scale = 1 << F
    c_fixed = [[round(v * scale) for v in row] for row in c_float]
    assert all(abs(v) < (1 << P) for row in c_fixed for v in row)

    rng = random.Random(11)
    # A batch of N signal vectors (columns), small enough that the
    # accumulated fixed-point products fit in 2P-1 bits.
    signal_max = ((1 << (2 * P - 1)) // 2) // (N * scale)
    signals = [[rng.randrange(signal_max) for _ in range(N)] for _ in range(N)]

    machine = BitLevelMatmulMachine(N, P, designs.fig4_mapping(P), "II")

    def run_unsigned(x, y):
        return machine.run(x, y).product

    z_fixed = signed_matmul(
        run_unsigned, c_fixed, signals, modulus=1 << (2 * P - 1)
    )

    print(f"{N}-point batch DCT on the Fig. 4 bit-level array "
          f"(p={P}, {F} fractional bits)")
    print(f"array: {designs.fig4_processor_count(N, P)} PEs, "
          f"{designs.t_fig4(N, P)} time units per half\n")

    max_err = 0.0
    for col in range(N):
        x_col = [signals[i][col] for i in range(N)]
        exact = [
            sum(c_float[k][i] * x_col[i] for i in range(N)) for k in range(N)
        ]
        fixed = [z_fixed[k][col] / scale for k in range(N)]
        err = max(abs(a - b) for a, b in zip(exact, fixed))
        max_err = max(max_err, err)
        if col == 0:
            print("first column:")
            for k in range(N):
                print(f"  X[{k}] = {fixed[k]:10.4f}   (float DCT {exact[k]:10.4f})")

    # Quantization bound: each coefficient is off by <= 0.5/scale, summed
    # over N terms of magnitude <= signal_max.
    bound = N * 0.5 / scale * max(
        max(abs(v) for v in row) for row in signals
    )
    print(f"\nmax error vs float DCT: {max_err:.4f} "
          f"(quantization bound {bound:.4f})")
    assert max_err <= bound + 1e-9
    print("bit-level DCT within quantization error of the float transform")


if __name__ == "__main__":
    main()
