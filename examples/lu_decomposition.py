#!/usr/bin/env python3
"""Word-level LU decomposition on a systolic array (triangular domain).

The paper's motivating list includes LU decomposition. Its iteration space
is a triangular prism, not a box — this example shows the library's
machinery handling that: the exact constrained index set, feasibility of
the classical mapping, the free-schedule bound, and a *functional*
execution through the causality-checking space-time simulator using exact
rational arithmetic (every PE computes `a − l·u`, the faces compute `u` and
`l = a/u`), verified by `L·U = A` exactly.

Run:  python examples/lu_decomposition.py
"""

import random
from fractions import Fraction

from repro.ir.builders import lu_word_structure
from repro.machine.simulator import SpaceTimeSimulator, ValueStore
from repro.mapping import (
    check_feasibility,
    execution_time,
    free_schedule_time,
    processor_count,
)
from repro.mapping.designs import word_level_mapping

N = 5


def lu_on_array(a_matrix: list[list[Fraction]], n: int):
    """Execute Gentleman-Kung LU on the mapped array; returns (L, U, sim)."""
    alg = lu_word_structure(n)
    binding = {"n": n}
    mapping = word_level_mapping()

    def compute(q, store: ValueStore) -> None:
        i, j, k = q
        if k == 1:
            a_prev = a_matrix[i - 1][j - 1]
        else:
            a_prev = store.get("a", (i, j, k - 1))
        if i == k:
            # Top face: this row of the active submatrix becomes U.
            store.put("u", q, a_prev)
            if j == k and a_prev == 0:
                raise ZeroDivisionError(f"zero pivot at k={k}")
        elif j == k:
            # Left face: compute the multiplier; u(k,k) arrives pipelined
            # down the column (the [1,0,0] dependence).
            ukk = store.get("u", (i - 1, k, k))
            store.put("u", q, ukk)       # keep passing the pivot down
            store.put("l", q, a_prev / ukk)
        else:
            # Interior: the rank-1 update a - l·u.
            l_val = store.get("l", (i, j - 1, k))
            u_val = store.get("u", (i - 1, j, k))
            store.put("l", q, l_val)
            store.put("u", q, u_val)
            store.put("a", q, a_prev - l_val * u_val)

    sim = SpaceTimeSimulator(mapping, alg, binding)
    result = sim.run(compute)

    lower = [[Fraction(0)] * n for _ in range(n)]
    upper = [[Fraction(0)] * n for _ in range(n)]
    for k in range(1, n + 1):
        lower[k - 1][k - 1] = Fraction(1)
        for j in range(k, n + 1):
            upper[k - 1][j - 1] = sim.store.get("u", (k, j, k))
        for i in range(k + 1, n + 1):
            lower[i - 1][k - 1] = sim.store.get("l", (i, k, k))
    return lower, upper, result


def main() -> None:
    rng = random.Random(13)
    # Diagonally dominant => no zero pivots without pivoting.
    a = [[Fraction(rng.randrange(-5, 6)) for _ in range(N)] for _ in range(N)]
    for i in range(N):
        a[i][i] += Fraction(6 * N)

    alg = lu_word_structure(N)
    binding = {"n": N}
    mapping = word_level_mapping()
    report = check_feasibility(mapping, alg, binding)
    assert report.feasible
    print(f"LU over the triangular prism (n={N}): "
          f"{alg.index_set.size(binding)} computations "
          f"(box would be {N**3})")
    print(f"feasibility: {report.summary()}")
    t = execution_time(mapping.schedule, alg, binding)
    print(f"schedule Π=[1,1,1]: t = {t} "
          f"(free-schedule bound {free_schedule_time(alg, binding)})")
    print(f"processors: {processor_count(mapping, alg.index_set, binding)} "
          f"(= n² = {N * N})")

    lower, upper, sim = lu_on_array(a, N)
    # Verify L·U = A exactly.
    for i in range(N):
        for j in range(N):
            got = sum(lower[i][k] * upper[k][j] for k in range(N))
            assert got == a[i][j], (i, j)
    print(f"\nL·U = A verified exactly (rational arithmetic); "
          f"makespan {sim.makespan}, mean utilization "
          f"{sim.mean_utilization:.1%}")
    print("U diagonal (pivots):",
          [str(upper[k][k]) for k in range(N)])


if __name__ == "__main__":
    main()
