#!/usr/bin/env python3
"""Design-space walk: the two bit-level matmul architectures of the paper.

Compares the Fig. 4 (time-optimal, long wires + buffer) and Fig. 5
(nearest-neighbour, slower) designs side by side: feasibility, execution
time, processor count, wiring statistics, and a functional run of each --
then certifies the time-optimality of Fig. 4's schedule by exhaustive
search (Theorem 4.5).

Run:  python examples/matmul_architecture.py
"""

import random

from repro import check_feasibility, matmul_bit_level
from repro.experiments.tables import format_table
from repro.machine import BitLevelMatmulMachine, SystolicArray
from repro.mapping import designs
from repro.mapping.schedule import certify_time_optimal

U, P = 3, 3


def main() -> None:
    alg = matmul_bit_level(U, P, "II")
    binding = {"u": U, "p": P}
    rng = random.Random(7)
    X = [[rng.randrange(1 << P) for _ in range(U)] for _ in range(U)]
    Y = [[rng.randrange(1 << P) for _ in range(U)] for _ in range(U)]
    mask = (1 << (2 * P - 1)) - 1
    expected = [
        [sum(X[i][k] * Y[k][j] for k in range(U)) & mask for j in range(U)]
        for i in range(U)
    ]

    rows = []
    for name, T, prims in [
        ("Fig. 4 (T, eq. 4.2)", designs.fig4_mapping(P), designs.fig4_primitives(P)),
        ("Fig. 5 (T', eq. 4.6)", designs.fig5_mapping(P), designs.fig5_primitives()),
    ]:
        report = check_feasibility(T, alg, binding, primitives=prims)
        assert report.feasible, f"{name} infeasible: {report.summary()}"
        array = SystolicArray(T, alg, binding, report.interconnect)
        run = BitLevelMatmulMachine(U, P, T, "II").run(X, Y)
        assert run.product == expected
        rows.append(
            (
                name,
                run.sim.makespan,
                array.processor_count,
                array.longest_wire,
                array.buffer_count,
                f"{run.sim.mean_utilization:.2%}",
            )
        )

    print(format_table(
        ["design", "time", "PEs", "longest wire", "buffers", "mean util"],
        rows,
        title=f"Bit-level matmul architectures (u={U}, p={P})",
    ))

    # Theorem 4.5: no schedule with small coefficients beats Fig. 4's Π.
    optimal, best = certify_time_optimal(
        designs.fig4_mapping(P), alg, binding, coeff_bound=2
    )
    print(f"\nFig. 4 schedule Π = {designs.fig4_mapping(P).schedule}")
    print(f"Exhaustive search best: Π* = {best[0]}, t* = {best[1]}")
    print(f"Time-optimal (Theorem 4.5): {optimal}")

    print(
        "\nTrade-off: Fig. 5 gives up "
        f"{designs.t_fig5(U, P) - designs.t_fig4(U, P)} time units to avoid "
        f"length-{P} wires entirely."
    )


if __name__ == "__main__":
    main()
