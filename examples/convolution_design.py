#!/usr/bin/env python3
"""Designing a bit-level convolution array from scratch.

The paper's model (3.5) covers more than matmul; this example takes 1-D
convolution (``z(j1) = Σ_j2 w(j2) · x(j1+j2-1)``), derives its bit-level
dependence structure with Theorem 3.1, *searches* for a good space-time
mapping (instead of using a canned design), verifies feasibility, and
validates the derived structure against general dependence analysis.

Run:  python examples/convolution_design.py
"""

from repro import check_feasibility
from repro.depanalysis import analyze
from repro.expansion import bit_level_structure, verify_theorem31
from repro.ir.builders import convolution_word_structure
from repro.mapping.interconnect import mesh_primitives, with_long_wires
from repro.mapping.schedule import execution_time, find_optimal_schedule
from repro.mapping.spacetime import processor_count
from repro.mapping.transform import MappingMatrix

N_POINTS, TAPS, P = 6, 3, 3  # signal length, filter taps, word length


def main() -> None:
    # Word-level structure: h̄₁=[1,0] (weights), h̄₂=[1,-1] (samples),
    # h̄₃=[0,1] (accumulation).
    word = convolution_word_structure(N_POINTS, TAPS)
    print(f"Word-level convolution: {word}")

    # Bit-level structure via Theorem 3.1 -- a 4-D algorithm.
    alg = bit_level_structure(word, "add-shift", "II", P)
    binding = {"p": P}
    print(f"Bit-level structure:    {alg}")
    for vec in alg.dependences:
        print(f"  {vec!r}")

    # Sanity: cross-validate against general dependence analysis.
    rep = verify_theorem31(
        [1, 0], [1, -1], [0, 1], [1, 1], [N_POINTS, TAPS], P, "II"
    )
    print(f"\nTheorem 3.1 cross-validation: {rep.summary()}")
    assert rep.matches

    # Design: project out the accumulation axis j2 and block by p, as the
    # paper does for matmul.  Candidate space map keeps (j1, lattice).
    S = [[P, 0, 1, 0], [0, 0, 0, 1]]
    # Mesh links plus the diagonal [1,-1] (as in the paper's P) and a
    # length-p wire for the word-level weight hop.
    primitives = with_long_wires([[1, -1], [P, 0]], 2)
    best = find_optimal_schedule(
        alg,
        binding,
        coeff_bound=2,
        space=S,
        primitives=primitives,
    )
    assert best is not None, "no valid schedule found"
    pi, t = best
    T = MappingMatrix(S + [pi], name="T-conv")
    print(f"\nSearched mapping: {T!r}")
    print(f"Schedule length: {t} "
          f"(vs naive sequential {N_POINTS * TAPS * P * P} bit steps)")

    report = check_feasibility(T, alg, binding, primitives=primitives)
    print(f"Feasibility: {report.summary()}")
    assert report.feasible
    pes = processor_count(T, alg.index_set, binding)
    print(f"Processors: {pes}")

    # The same structure could also be obtained the slow way:
    from repro.ir.expand import expand_bit_level

    program = expand_bit_level([1, 0], [1, -1], [0, 1], [1, 1],
                               [N_POINTS, TAPS], P, "II")
    res = analyze(program, binding, method="enumerate")
    print(f"\nGeneral analysis of the expanded program found "
          f"{len(res.distinct_vectors())} distinct vectors over "
          f"{len(res.instances)} dependence instances -- Theorem 3.1 needed "
          "none of that work.")


if __name__ == "__main__":
    main()
