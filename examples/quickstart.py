#!/usr/bin/env python3
"""Quickstart: derive, design, and run a bit-level matrix multiplier.

Walks the paper's complete pipeline in ~40 lines of user code:

1. derive the bit-level dependence structure of matrix multiplication
   compositionally (Theorem 3.1, eqs. (3.12)/(3.13));
2. check the paper's time-optimal mapping T (eq. (4.2)) against all five
   feasibility conditions of Definition 4.1;
3. execute X·Y bit by bit on the mapped systolic array and confirm both the
   product and the execution-time formula t = 3(u-1) + 3(p-1) + 1.

Run:  python examples/quickstart.py
"""

import random

from repro import check_feasibility, designs, matmul_bit_level
from repro.machine import BitLevelMatmulMachine

U, P = 4, 4  # 4x4 matrices of 4-bit words


def main() -> None:
    # 1. The bit-level dependence structure, without general analysis.
    alg = matmul_bit_level(U, P, expansion="II")
    print(f"Bit-level structure: {alg}")
    for vec in alg.dependences:
        print(f"  {vec!r}")

    # 2. Feasibility of the paper's time-optimal design (Fig. 4).
    T = designs.fig4_mapping(P)
    report = check_feasibility(
        T, alg, {"u": U, "p": P}, primitives=designs.fig4_primitives(P)
    )
    print(f"\nMapping {T!r}")
    print(f"Feasibility: {report.summary()}")
    assert report.feasible

    # 3. Run the machine.
    rng = random.Random(42)
    X = [[rng.randrange(1 << P) for _ in range(U)] for _ in range(U)]
    Y = [[rng.randrange(1 << P) for _ in range(U)] for _ in range(U)]
    machine = BitLevelMatmulMachine(U, P, T, expansion="II")
    run = machine.run(X, Y)

    mask = (1 << (2 * P - 1)) - 1
    expected = [
        [sum(X[i][k] * Y[k][j] for k in range(U)) & mask for j in range(U)]
        for i in range(U)
    ]
    assert run.product == expected, "bit-level product mismatch"

    t_formula = designs.t_fig4(U, P)
    print(f"\nSimulated makespan : {run.sim.makespan} time units")
    print(f"Paper's eq. (4.5)  : 3(u-1)+3(p-1)+1 = {t_formula}")
    print(f"Processors         : {run.sim.processor_count} (= u²p² = {U*U*P*P})")
    print(f"Product correct    : True (mod 2^{2*P-1})")
    word_time = designs.word_level_time(U, P, "add-shift")
    print(f"\nWord-level baseline would need {word_time} cycles "
          f"-> speedup {word_time / run.sim.makespan:.1f}x")


if __name__ == "__main__":
    main()
