#!/usr/bin/env python3
"""Why Theorem 3.1 exists: the cost of general dependence analysis.

Derives the *same* bit-level dependence structure two ways --

* the classical way: materialize the expanded bit-level program and run
  exact Diophantine + in-index-set-verification analysis over it (cost grows
  with ``u³p²``);
* the paper's way: compose word-level structure + arithmetic structure +
  expansion (constant work) --

and prints the wall-clock comparison plus proof that the outputs agree.

Run:  python examples/analysis_cost.py
"""

import time

from repro.depanalysis import analyze
from repro.expansion import matmul_bit_level
from repro.expansion.verify import effective_edges
from repro.experiments.tables import format_table
from repro.ir.expand import expand_bit_level

MATMUL = ([0, 1, 0], [1, 0, 0], [0, 0, 1])


def main() -> None:
    rows = []
    for u, p in [(2, 2), (2, 3), (3, 2), (3, 3)]:
        h1, h2, h3 = MATMUL
        program = expand_bit_level(h1, h2, h3, [1, 1, 1], [u, u, u], p, "II")

        t0 = time.perf_counter()
        result = analyze(program, {"p": p}, method="exact")
        t_general = time.perf_counter() - t0

        t0 = time.perf_counter()
        alg = matmul_bit_level(u, p, "II")
        t_composed = time.perf_counter() - t0

        # Same answer?
        predicted = effective_edges(alg, {"u": u, "p": p})
        observed = {(i.sink, i.vector) for i in result.instances}
        assert predicted == observed, "the fast path must not change the answer"

        rows.append(
            (
                u,
                p,
                u**3 * p**2,
                f"{t_general * 1000:.1f} ms",
                f"{t_composed * 1e6:.0f} µs",
                f"{t_general / t_composed:,.0f}x",
            )
        )

    print(format_table(
        ["u", "p", "|J|", "general analysis", "Theorem 3.1", "ratio"],
        rows,
        title="Deriving the bit-level matmul dependence structure",
    ))
    print(
        "\nThe compositional derivation also works symbolically "
        "(u, p left as parameters), which no enumerative analysis can do."
    )


if __name__ == "__main__":
    main()
