#!/usr/bin/env python3
"""Streaming a long accumulation through a fixed-depth bit-level array.

A systolic chip is built once, for a fixed problem size; workloads are not.
This example takes the paper's Fig. 4 design instantiated for ``u x u``
word blocks and pushes an accumulation of length ``L > u`` through it in
``⌈L/u⌉`` passes: the partial ``z`` words stay resident between passes
(the array's stationary-``z`` property makes that free), and the result is
bit-exact.  This is the classical locally-parallel/globally-sequential
partitioning, validated end to end by the machine.

Concretely: ``Z = X·Y`` where ``X`` is ``u x L`` and ``Y`` is ``L x u``
(an inner-product accumulation of depth ``L``) on an array sized for
depth ``u``.

Run:  python examples/fixed_array_streaming.py
"""

import random

from repro.machine.partition import PartitionedModelMachine
from repro.mapping import designs

U, P, L = 3, 3, 8  # array block size, word length, accumulation depth


def main() -> None:
    rng = random.Random(21)
    x = [[rng.randrange(1 << P) for _ in range(L)] for _ in range(U)]
    y = [[rng.randrange(1 << P) for _ in range(U)] for _ in range(L)]

    # The word model: (j1, j2) index the output block, j3 runs over the
    # full accumulation depth L; the array is built for depth U.
    machine = PartitionedModelMachine(
        h1=[0, 1, 0], h2=[1, 0, 0], h3=[0, 0, 1],
        lowers=[1, 1, 1], uppers=[U, U, L],
        p=P, mapping=designs.fig4_mapping(P), width=U,
    )

    xw, yw = {}, {}
    for j1 in range(1, U + 1):
        for j2 in range(1, U + 1):
            for j3 in range(1, L + 1):
                xw[(j1, j2, j3)] = x[j1 - 1][j3 - 1]
                yw[(j1, j2, j3)] = y[j3 - 1][j2 - 1]

    run = machine.run(xw, yw)
    assert run.outputs == machine.reference(xw, yw)
    mask = (1 << (2 * P - 1)) - 1
    for j1 in range(1, U + 1):
        for j2 in range(1, U + 1):
            want = sum(x[j1 - 1][k] * y[k][j2 - 1] for k in range(L)) & mask
            assert run.outputs[(j1, j2, L)] == want

    print(f"accumulation depth L = {L} on an array built for depth {U}")
    print(f"passes: {run.pass_count} "
          f"(slabs {machine.slab_bounds()})")
    print(f"per-pass makespan: "
          f"{[r.sim.makespan for r in run.passes]}")
    print(f"total time: {run.total_makespan} time units on "
          f"{run.processor_count} PEs")
    one_shot = 2 * (U - 1) + (L - 1) + 3 * (P - 1) + 1
    print(f"(run monolithically the same array would take {one_shot} time "
          f"units; partitioning costs {run.total_makespan - one_shot} extra "
          f"units but bounds every pass -- its control program, input "
          f"window and host I/O burst -- to the depth-{U} design the chip "
          "was verified for)")
    print("\nproduct verified bit-exactly across all passes")


if __name__ == "__main__":
    main()
