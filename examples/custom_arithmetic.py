#!/usr/bin/env python3
"""Plugging a custom arithmetic algorithm into Theorem 3.1.

The paper's method is parametric in the arithmetic algorithm: "the
dependence structures of these algorithms need to be derived only once".
This example

1. uses the built-in carry-save structure in place of add-shift and shows
   how the bit-level dependence matrix changes (the carry rides the ``a``
   direction instead of the ``b`` direction);
2. registers a brand-new arithmetic structure -- a transposed add-shift
   whose carries run along ``i1`` -- and derives a bit-level matmul
   structure with it;
3. compares the word-level baseline cost under add-shift (t_b = O(p²)) vs
   carry-save (t_b = O(p)) sequential arithmetic, reproducing the O(p²) vs
   O(p) speedup dichotomy of Section 4.2.

Run:  python examples/custom_arithmetic.py
"""

from repro.arith import ArithmeticStructure, register_structure
from repro.arith.sequential import word_multiplier_cycles
from repro.expansion import bit_level_structure, matmul_bit_level
from repro.experiments.tables import format_table
from repro.ir.builders import matmul_word_structure
from repro.mapping import designs
from repro.structures.indexset import IndexSet
from repro.structures.params import S


def main() -> None:
    # 1. Carry-save instead of add-shift.
    for arith in ("add-shift", "carry-save"):
        alg = matmul_bit_level(arith=arith)
        print(f"\nBit-level matmul via {arith}:")
        for vec in alg.dependences:
            print(f"  {vec!r}")

    # 2. A custom structure: transposed add-shift.
    def transposed_addshift(p=None):
        p = S("p") if p is None else p
        return ArithmeticStructure(
            name="add-shift-transposed",
            index_set=IndexSet([1, 1], [p, p], ("i1", "i2")),
            delta_a=(0, 1),
            delta_b=(1, 0),
            delta_s=(-1, 1),
            delta_carry=(1, 0),
            delta_carry2=(2, 0),
            multiply=lambda a, b, p: a * b,  # semantics stub for structure work
        )

    register_structure("add-shift-transposed", transposed_addshift, replace=True)
    alg = bit_level_structure(
        matmul_word_structure(), "add-shift-transposed", "II"
    )
    print("\nBit-level matmul via the custom transposed add-shift:")
    for vec in alg.dependences:
        print(f"  {vec!r}")

    # 3. The arithmetic choice decides the word-level baseline cost.
    rows = []
    for p in (4, 8, 16, 32):
        t_bit = designs.t_fig4(16, p)
        rows.append(
            (
                p,
                word_multiplier_cycles("add-shift", p),
                word_multiplier_cycles("carry-save", p),
                round(designs.word_level_time(16, p, "add-shift") / t_bit, 1),
                round(designs.word_level_time(16, p, "carry-save") / t_bit, 1),
            )
        )
    print()
    print(format_table(
        ["p", "t_b add-shift (O(p²))", "t_b carry-save (O(p))",
         "bit-level speedup vs AS", "vs CS"],
        rows,
        title="Arithmetic algorithm choice vs word-level baseline (u=16)",
    ))


if __name__ == "__main__":
    main()
