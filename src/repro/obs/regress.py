"""The benchmark regression gate: guard the committed speedups in CI.

The repo's performance story lives in the committed ``BENCH_*.json``
baselines (batched analysis 16.5x over scalar, warm artifact cache 131x,
wavefront simulation 23.7x, compiled kernels ~4x over wavefront,
symbolic instantiation 500x over concrete enumeration, the solver-backed
search enumerating ~100x fewer candidates than the catalog path on
identical results).  Nothing re-checked them per PR: a change
could quietly serialize the batched engine or break memoization and every
test would stay green.  This module re-measures the smoke-scale versions
of those ratios and fails when one drops below its requirement.

Gate semantics
--------------
Each check measures a **speedup ratio** (fast implementation vs its
reference on identical work), not absolute seconds -- ratios transfer
across machines, absolute times do not.  A check passes when::

    measured >= max(smoke_floor, committed_baseline * smoke_scale * tolerance)

where ``committed_baseline`` comes from the ``BENCH_*.json`` at the repo
root (recorded at larger problem sizes, so smoke-scale ratios are lower
-- hence the tolerance), ``tolerance`` defaults to
:data:`DEFAULT_TOLERANCE`, and ``smoke_floor`` is the same hard minimum
the corresponding ``benchmarks/bench_*.py --smoke`` guard asserts.  A
missing/unreadable baseline degrades to the floor alone.

Every run appends one JSON line to
``benchmarks/_reports/bench_gate_history.jsonl`` (environment, per-check
measurements, verdict) so regressions are diagnosable from history, and
can write the full report as JSON.

``inject_slowdown_s`` adds a synthetic ``time.sleep`` to every *fast*
measurement -- the self-test proving the gate actually fails when the
optimized paths regress (CI runs it with ``--self-test``).
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time
from dataclasses import dataclass, field

from repro import obs

__all__ = ["GateCheck", "GateReport", "run_gate", "main"]

REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
HISTORY_PATH = REPO_ROOT / "benchmarks" / "_reports" / "bench_gate_history.jsonl"

#: Fraction of the committed (record-scale) baseline ratio a smoke-scale
#: re-measurement must reach.  Smoke problems are smaller, so their
#: ratios run well below record scale; 0.2 sits ~2-4x under the ratios
#: this container actually measures while still catching a real
#: serialization of any optimized path (which drops the ratio to ~1).
DEFAULT_TOLERANCE = 0.2

#: Hard minimums, mirroring the bench_*.py --smoke assertions.
FLOORS = {
    "analysis_batched": 2.0,
    "analysis_cache_warm": 2.0,
    "simulator_wavefront": 3.0,
    "compiled_kernel": 3.0,
    "search_memo_hits": 1.0,
    "symbolic_instantiate": 20.0,
    "design_search_solver": 3.0,
}

#: Where each check's committed baseline ratio lives: file -> key path.
BASELINE_KEYS = {
    "analysis_batched": ("BENCH_analysis.json",
                         ("engine", "speedup_batched_vs_scalar")),
    "analysis_cache_warm": ("BENCH_analysis.json",
                            ("engine", "speedup_warm_vs_cold_batched")),
    "simulator_wavefront": ("BENCH_simulator.json",
                            ("engine", "speedup_wavefront_vs_pointwise")),
    "compiled_kernel": ("BENCH_compiled.json",
                        ("engine", "speedup_compiled_vs_wavefront")),
    "symbolic_instantiate": ("BENCH_symbolic.json",
                             ("speedup_symbolic_vs_concrete",)),
    "design_search_solver": ("BENCH_design_search.json",
                             ("solver", "candidates_ratio")),
}

#: Smoke-to-record scale compensation per check.  The wavefront speedup
#: grows with problem size (23.7x at the recorded u=p=8, ~8x at the
#: smoke u=p=6), so its committed baseline is discounted before the
#: tolerance is applied; the analysis ratios transfer near-1:1.
SMOKE_SCALE = {
    "simulator_wavefront": 0.5,
    # the compiled/wavefront ratio is measured at the recorded u=p=8
    # scale directly, but single-digit-ms runs are noisy on shared CI
    # machines; discount before the tolerance is applied
    "compiled_kernel": 0.5,
    # the recorded 500x is vs concrete enumeration at u=p=8; the smoke
    # re-measurement runs the cheaper u=p=6 where the ratio sits ~100x
    "symbolic_instantiate": 0.2,
    # the recorded ~100x candidate reduction is at u=p=3; the smoke
    # u=p=2 instance has far fewer schedules to cut, the ratio sits ~9x
    "design_search_solver": 0.2,
}


@dataclass
class GateCheck:
    """One gate measurement and its verdict."""

    name: str
    metric: str
    measured: float
    required: float
    floor: float
    baseline: float | None
    passed: bool
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "metric": self.metric,
            "measured": round(self.measured, 3),
            "required": round(self.required, 3),
            "floor": self.floor,
            "baseline": self.baseline,
            "passed": self.passed,
            "detail": self.detail,
        }


@dataclass
class GateReport:
    """The whole gate run."""

    checks: list[GateCheck] = field(default_factory=list)
    tolerance: float = DEFAULT_TOLERANCE
    injected_slowdown_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(c.passed for c in self.checks)

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "tolerance": self.tolerance,
            "injected_slowdown_s": self.injected_slowdown_s,
            "checks": [c.as_dict() for c in self.checks],
            "environment": obs.environment_info(),
        }

    def summary(self) -> str:
        lines = []
        for c in self.checks:
            verdict = "ok  " if c.passed else "FAIL"
            base = f" (baseline {c.baseline}x)" if c.baseline else ""
            lines.append(
                f"{verdict} {c.name}: {c.metric} = {c.measured:.2f} "
                f">= {c.required:.2f} required{base}"
            )
        lines.append(
            "bench gate: PASS" if self.ok else "bench gate: FAIL"
        )
        return "\n".join(lines)


def _load_baseline(name: str) -> float | None:
    entry = BASELINE_KEYS.get(name)
    if entry is None:
        return None
    filename, keys = entry
    try:
        node = json.loads((REPO_ROOT / filename).read_text())
        for key in keys:
            node = node[key]
        return float(node)
    except (OSError, ValueError, KeyError, TypeError):
        return None


def _required(name: str, tolerance: float) -> tuple[float, float | None]:
    floor = FLOORS[name]
    baseline = _load_baseline(name)
    if baseline is None:
        return floor, None
    scale = SMOKE_SCALE.get(name, 1.0)
    return max(floor, baseline * scale * tolerance), baseline


def _best_of(fn, repeats: int, slowdown_s: float = 0.0) -> float:
    """Best-of-N wall clock of ``fn`` (+ an optional injected sleep)."""
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        if slowdown_s:
            time.sleep(slowdown_s)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best


def _fast_repeats(repeats: int) -> int:
    """Repeat count for the millisecond-scale fast paths.

    A fast-path run is 1-20ms, where a scheduler hiccup is a 10x
    multiplicative spike; a single-shot measurement (``--repeats 1``)
    then fails the gate spuriously.  Best-of-3 floors the noise at
    negligible cost, while the slow reference paths (100ms+) keep the
    caller's ``repeats`` -- their relative noise is small.
    """
    return max(repeats, 3)


# -- the checks ---------------------------------------------------------------

def _check_analysis(report: GateReport, repeats: int, slowdown: float) -> None:
    from repro.depanalysis import AnalysisConfig, analyze
    from repro.ir.expand import expand_bit_level

    u, p = 3, 2
    program = expand_bit_level(
        [0, 1, 0], [1, 0, 0], [0, 0, 1], [1, 1, 1], [u, u, u], p, "II"
    )

    def run(backend, cache=False, cache_dir=None):
        config = AnalysisConfig(backend=backend, cache=cache,
                                cache_dir=cache_dir)
        return analyze(program, {"p": p}, method="exact", config=config)

    r_scalar = r_batched = None

    def scalar():
        nonlocal r_scalar
        r_scalar = run("scalar")

    def batched():
        nonlocal r_batched
        r_batched = run("batched")

    t_scalar = _best_of(scalar, repeats)
    t_batched = _best_of(batched, _fast_repeats(repeats), slowdown)
    identical = (
        [i.key() for i in r_scalar.instances]
        == [i.key() for i in r_batched.instances]
        and r_scalar.stats == r_batched.stats
    )
    required, baseline = _required("analysis_batched", report.tolerance)
    measured = t_scalar / t_batched
    report.checks.append(GateCheck(
        name="analysis_batched",
        metric="speedup_batched_vs_scalar",
        measured=measured,
        required=required,
        floor=FLOORS["analysis_batched"],
        baseline=baseline,
        passed=measured >= required and identical,
        detail=(f"u={u} p={p}: scalar {t_scalar * 1e3:.1f}ms, batched "
                f"{t_batched * 1e3:.1f}ms, identical={identical}"),
    ))

    with tempfile.TemporaryDirectory() as cache_dir:
        t_cold = _best_of(
            lambda: run("batched", cache=True, cache_dir=cache_dir), 1
        )
        t_warm = _best_of(
            lambda: run("batched", cache=True, cache_dir=cache_dir),
            _fast_repeats(repeats), slowdown,
        )
    required, baseline = _required("analysis_cache_warm", report.tolerance)
    measured = t_cold / t_warm
    report.checks.append(GateCheck(
        name="analysis_cache_warm",
        metric="speedup_warm_vs_cold_batched",
        measured=measured,
        required=required,
        floor=FLOORS["analysis_cache_warm"],
        baseline=baseline,
        passed=measured >= required,
        detail=(f"cold {t_cold * 1e3:.1f}ms, warm {t_warm * 1e3:.1f}ms"),
    ))


def _check_simulator(report: GateReport, repeats: int, slowdown: float) -> None:
    import random

    from repro.machine.bitlevel import BitLevelMatmulMachine
    from repro.mapping import designs

    u = p = 6
    rng = random.Random(0)
    x = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
    y = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
    products = {}

    def run(backend):
        machine = BitLevelMatmulMachine(
            u, p, designs.fig4_mapping(p), "II", backend=backend
        )
        products[backend] = machine.run(x, y).product

    t_pw = _best_of(lambda: run("pointwise"), repeats)
    t_wf = _best_of(lambda: run("wavefront"), _fast_repeats(repeats), slowdown)
    identical = products["pointwise"] == products["wavefront"]
    required, baseline = _required("simulator_wavefront", report.tolerance)
    measured = t_pw / t_wf
    report.checks.append(GateCheck(
        name="simulator_wavefront",
        metric="speedup_wavefront_vs_pointwise",
        measured=measured,
        required=required,
        floor=FLOORS["simulator_wavefront"],
        baseline=baseline,
        passed=measured >= required and identical,
        detail=(f"u=p={u}: pointwise {t_pw * 1e3:.1f}ms, wavefront "
                f"{t_wf * 1e3:.1f}ms, identical={identical}"),
    ))


def _check_compiled(report: GateReport, repeats: int, slowdown: float) -> None:
    import random

    from repro.compile.runner import clear_program_memo
    from repro.machine.bitlevel import BitLevelMatmulMachine
    from repro.mapping import designs

    u = p = 8
    rng = random.Random(0)
    x = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
    y = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
    products = {}
    machines = {
        backend: BitLevelMatmulMachine(
            u, p, designs.fig4_mapping(p), "II", backend=backend
        )
        for backend in ("wavefront", "compiled")
    }

    def run(backend):
        products[backend] = machines[backend].run(x, y).product

    clear_program_memo()
    run("compiled")  # compile outside the timed region
    # Both engines run in the low milliseconds at this scale; warm up
    # and measure best-of a deeper repeat count than the slow paths.
    reps = max(_fast_repeats(repeats), 5)
    t_wf = _best_of(lambda: run("wavefront"), reps)
    t_c = _best_of(lambda: run("compiled"), reps, slowdown)
    identical = products["wavefront"] == products["compiled"]
    required, baseline = _required("compiled_kernel", report.tolerance)
    measured = t_wf / t_c
    report.checks.append(GateCheck(
        name="compiled_kernel",
        metric="speedup_compiled_vs_wavefront",
        measured=measured,
        required=required,
        floor=FLOORS["compiled_kernel"],
        baseline=baseline,
        passed=measured >= required and identical,
        detail=(f"u=p={u}: wavefront {t_wf * 1e3:.1f}ms, compiled "
                f"{t_c * 1e3:.1f}ms, identical={identical}"),
    ))


def _check_symbolic(report: GateReport, repeats: int, slowdown: float) -> None:
    from repro.depanalysis import AnalysisConfig, analyze
    from repro.ir.expand import expand_bit_level
    from repro.structures.params import S
    from repro.symbolic import analyze_symbolic, clear_memo

    u = p = 6
    concrete_program = expand_bit_level(
        [0, 1, 0], [1, 0, 0], [0, 0, 1], [1, 1, 1], [u, u, u], p, "II"
    )
    symbolic_program = expand_bit_level(
        [0, 1, 0], [1, 0, 0], [0, 0, 1], [1, 1, 1],
        [S("u")] * 3, S("p"), "II",
    )
    clear_memo()
    symbolic = analyze_symbolic(symbolic_program, cache=False)

    r_concrete = None
    summary = None

    def concrete():
        nonlocal r_concrete
        r_concrete = analyze(
            concrete_program, {"p": p}, method="enumerate",
            config=AnalysisConfig(cache=False),
        )

    def instantiate():
        nonlocal summary
        summary = symbolic.summary({"u": u, "p": p})

    t_concrete = _best_of(concrete, repeats)
    t_instantiate = _best_of(instantiate, _fast_repeats(repeats), slowdown)
    identical = (
        symbolic.closed_form
        and summary["instances"] == len(r_concrete.instances)
        and sorted(summary["distinct_vectors"])
        == sorted({i.vector for i in r_concrete.instances})
    )
    required, baseline = _required("symbolic_instantiate", report.tolerance)
    measured = t_concrete / t_instantiate
    report.checks.append(GateCheck(
        name="symbolic_instantiate",
        metric="speedup_instantiate_vs_concrete",
        measured=measured,
        required=required,
        floor=FLOORS["symbolic_instantiate"],
        baseline=baseline,
        passed=measured >= required and identical,
        detail=(f"u=p={u}: concrete {t_concrete * 1e3:.1f}ms, instantiate "
                f"{t_instantiate * 1e3:.1f}ms, identical={identical}"),
    ))


def _check_search(report: GateReport) -> None:
    from repro.expansion.theorem31 import matmul_bit_level
    from repro.mapping import designs
    from repro.mapping.engine import SearchConfig, run_search

    alg = matmul_bit_level(2, 2, "II")
    with obs.collecting() as reg:
        found = run_search(
            alg, {"u": 2, "p": 2}, designs.fig4_primitives(2),
            SearchConfig(target_space_dim=2, block_values=[2],
                         max_candidates=5, persist_cache=False),
        )
    hits = reg.counters.get("mapping.cache_hits", 0)
    required = FLOORS["search_memo_hits"]
    report.checks.append(GateCheck(
        name="search_memo_hits",
        metric="mapping.cache_hits",
        measured=float(hits),
        required=required,
        floor=required,
        baseline=None,
        passed=hits >= required and bool(found),
        detail=f"{len(found)} designs found, {hits} memo hits",
    ))


def _check_search_solver(report: GateReport) -> None:
    """Guard the solver's candidate-enumeration cut vs the catalog path.

    Deterministic counter ratio, not wall clock: the enumerated-candidate
    counts are exact for a fixed instance, so this check is immune to CI
    timer noise while still catching any unsound weakening of the solver
    (identical results are asserted alongside the ratio).
    """
    from repro.expansion.theorem31 import matmul_bit_level
    from repro.mapping import designs
    from repro.mapping.engine import SearchConfig, run_search

    alg = matmul_bit_level(2, 2, "II")
    binding = {"u": 2, "p": 2}
    prims = designs.fig4_primitives(2)

    def run(strategy):
        config = SearchConfig(target_space_dim=2, block_values=[2],
                              max_candidates=5, persist_cache=False,
                              strategy=strategy)
        with obs.collecting() as reg:
            found = run_search(alg, binding, prims, config)
        return found, reg.counters.get("mapping.candidates_enumerated", 0)

    catalog, n_catalog = run("catalog")
    solver, n_solver = run("solver")

    def sig(cands):
        return [
            (c.mapping.rows, c.time, c.processors, c.wire_length)
            for c in cands
        ]

    identical = sig(catalog) == sig(solver)
    measured = n_catalog / max(n_solver, 1)
    required, baseline = _required("design_search_solver", report.tolerance)
    report.checks.append(GateCheck(
        name="design_search_solver",
        metric="candidates_ratio_catalog_vs_solver",
        measured=measured,
        required=required,
        floor=FLOORS["design_search_solver"],
        baseline=baseline,
        passed=measured >= required and identical and bool(solver),
        detail=(f"u=p=2: catalog enumerated {n_catalog}, solver {n_solver}, "
                f"identical={identical}"),
    ))


# -- orchestration ------------------------------------------------------------

def run_gate(
    tolerance: float = DEFAULT_TOLERANCE,
    repeats: int = 3,
    inject_slowdown_s: float = 0.0,
    history_path: str | os.PathLike | None = HISTORY_PATH,
) -> GateReport:
    """Run every check and (best-effort) append the history record.

    ``history_path=None`` skips history entirely (tests use a tmp path).
    """
    report = GateReport(
        tolerance=tolerance, injected_slowdown_s=inject_slowdown_s
    )
    _check_analysis(report, repeats, inject_slowdown_s)
    _check_simulator(report, repeats, inject_slowdown_s)
    _check_compiled(report, repeats, inject_slowdown_s)
    _check_symbolic(report, repeats, inject_slowdown_s)
    _check_search(report)
    _check_search_solver(report)
    if history_path is not None:
        record = {"timestamp": time.time(), **report.as_dict()}
        try:
            path = pathlib.Path(history_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "a") as fh:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        except OSError:
            pass
    return report


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="bench_gate",
        description="re-measure the smoke benchmarks and fail on "
        "significant slowdowns vs the committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the gate at smoke scale (the only scale; kept for CI "
        "symmetry with the bench scripts)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="fraction of each committed baseline ratio required at smoke "
        f"scale (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="best-of-N timing repeats (default 3)",
    )
    parser.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the full gate report as JSON to FILE",
    )
    parser.add_argument(
        "--inject-slowdown-s", type=float, default=0.0, metavar="S",
        help="add a synthetic sleep to every fast-path measurement "
        "(gate self-test: must FAIL)",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="verify the gate fails under an injected slowdown, then exit",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="do not append to benchmarks/_reports/bench_gate_history.jsonl",
    )
    args = parser.parse_args(argv)
    history = None if args.no_history else HISTORY_PATH

    if args.self_test:
        report = run_gate(
            tolerance=args.tolerance, repeats=1,
            inject_slowdown_s=0.25, history_path=None,
        )
        if report.ok:
            print("self-test FAILED: gate passed despite a 250ms injected "
                  "slowdown")
            return 1
        print(report.summary())
        print("self-test ok: injected slowdown was detected")
        return 0

    report = run_gate(
        tolerance=args.tolerance,
        repeats=args.repeats,
        inject_slowdown_s=args.inject_slowdown_s,
        history_path=history,
    )
    print(report.summary())
    if args.report:
        try:
            pathlib.Path(args.report).write_text(
                json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"
            )
        except OSError as exc:
            print(f"bench_gate: cannot write report: {exc}")
            return 1
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
