"""The streaming event bus: structured telemetry events and pluggable sinks.

obs v1 was collect-then-export: a :class:`~repro.obs.core.Registry`
accumulated metrics and the exporters read them after the run.  The bus
adds the *streaming* half: when one or more sinks are attached to a
registry, every mutation (span open/close, counter increment, gauge set,
histogram observation, progress tick) is also emitted **in real time** as
a structured event dict.  With no sinks attached nothing is emitted, so
the v1 no-op fast path (and the disabled-by-default zero-cost path) is
untouched.

Event shapes (all JSON-ready dicts; ``ts`` is ``time.perf_counter()``,
``pid`` the emitting process):

========== ==================================================================
type       extra fields
========== ==================================================================
span_start ``id``, ``parent``, ``name``, ``attrs``
span_end   ``id``, ``name``, ``dur_s``
counter    ``name``, ``delta``, ``value`` (cumulative)
gauge      ``name``, ``value``
observe    ``name``, ``value``
progress   ``name``, ``done``, ``total``, ``rate``, ``eta_s``, ``final``
series     ``name``, ``points`` (``[[t, v], ...]`` on a caller timebase)
========== ==================================================================

Three sinks cover the expected consumers:

* :class:`JsonlSink` -- one JSON object per event, flushed per event, for
  tailing a live run;
* :class:`RingBufferSink` -- a bounded in-memory buffer, used by the
  Chrome-trace exporter to reconstruct counter tracks;
* :class:`CallbackSink` -- an arbitrary callable (optionally filtered by
  event type), the subscription point a future ``repro.serve`` front-end
  streams from, and what the CLI uses to render live progress lines.

:class:`Progress` is the live progress API: ``obs.progress(name, total)``
yields a tracker whose ``advance()`` emits rate/ETA events over the bus
(throttled to ``min_interval`` seconds) and records a final
``progress.<name>`` gauge so the completed count lands in the metrics
dict.
"""

from __future__ import annotations

import collections
import json
import time
from typing import Callable, Iterable

__all__ = [
    "CallbackSink",
    "JsonlSink",
    "Progress",
    "RingBufferSink",
]


class JsonlSink:
    """Write each event as one JSON line, flushed immediately.

    Accepts a path (opened and owned, closed by :meth:`close`) or any
    writable text file object (borrowed, left open).  Write errors
    disable the sink instead of failing the instrumented run.
    """

    def __init__(self, target) -> None:
        if hasattr(target, "write"):
            self._fh = target
            self._owned = False
        else:
            self._fh = open(target, "w")
            self._owned = True
        self._dead = False

    def emit(self, event: dict) -> None:
        if self._dead:
            return
        try:
            self._fh.write(json.dumps(event, sort_keys=True, default=str) + "\n")
            self._fh.flush()
        except (OSError, ValueError):
            self._dead = True

    def close(self) -> None:
        if self._owned and not self._dead:
            try:
                self._fh.close()
            except OSError:
                pass
            self._dead = True


class RingBufferSink:
    """Keep the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 65536) -> None:
        self.events: collections.deque = collections.deque(maxlen=capacity)

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.events)


class CallbackSink:
    """Forward events to a callable, optionally filtered by event type.

    This is the subscription mechanism for live consumers (the CLI's
    stderr progress renderer today, ``repro.serve`` streaming tomorrow):
    attach one to a registry and every matching event is pushed to the
    callback as it happens.
    """

    def __init__(
        self,
        fn: Callable[[dict], None],
        kinds: Iterable[str] | None = None,
    ) -> None:
        self._fn = fn
        self._kinds = frozenset(kinds) if kinds is not None else None

    def emit(self, event: dict) -> None:
        if self._kinds is None or event["type"] in self._kinds:
            self._fn(event)

    def close(self) -> None:
        pass


class Progress:
    """Live progress over a loop, emitting rate/ETA events over the bus.

    Created via :meth:`Registry.progress <repro.obs.core.Registry.progress>`
    (or the ambient ``obs.progress``); usable as a context manager.  Each
    :meth:`advance` may emit a ``progress`` event -- emission is throttled
    to at most one event per ``min_interval`` seconds (the first and final
    ticks always emit) so hot loops pay one clock read per tick.  On close
    the final count is recorded as a ``progress.<name>`` gauge, making
    completed totals part of the deterministic metrics dict while the
    timing-dependent event stream stays on the bus.
    """

    __slots__ = (
        "_registry", "name", "total", "done", "_t0", "_last_emit", "_interval",
        "_closed",
    )

    def __init__(
        self,
        registry,
        name: str,
        total: int | None = None,
        min_interval: float = 0.2,
    ) -> None:
        self._registry = registry
        self.name = name
        self.total = total
        self.done = 0
        self._t0 = time.perf_counter()
        self._last_emit = 0.0
        self._interval = min_interval
        self._closed = False

    def advance(self, n: int = 1) -> None:
        """Record ``n`` completed items; emit an event unless throttled."""
        self.done += n
        if not self._registry.sinks:
            return
        now = time.perf_counter()
        if self._last_emit and now - self._last_emit < self._interval:
            return
        self._last_emit = now
        self._emit(now, final=False)

    def _emit(self, now: float, final: bool) -> None:
        elapsed = now - self._t0
        rate = self.done / elapsed if elapsed > 0 else None
        eta = None
        if rate and self.total is not None and self.total > self.done:
            eta = (self.total - self.done) / rate
        self._registry._emit(
            "progress",
            self.name,
            done=self.done,
            total=self.total,
            rate=rate,
            eta_s=eta,
            final=final,
        )

    def close(self) -> None:
        """Finalize: emit the last event and set the ``progress.*`` gauge."""
        if self._closed:
            return
        self._closed = True
        if self._registry.sinks:
            self._emit(time.perf_counter(), final=True)
        self._registry.gauge(f"progress.{self.name}", self.done)

    def __enter__(self) -> "Progress":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        return None


class NullProgress:
    """Shared no-op stand-in for ``obs.progress`` when collection is off."""

    __slots__ = ()
    done = 0
    total = None

    def advance(self, n: int = 1) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullProgress":
        return self

    def __exit__(self, *exc) -> None:
        return None


NULL_PROGRESS = NullProgress()
