"""Exporters: human-readable span tree, JSON-lines trace, metrics JSON,
Chrome trace-event file.

Four views of one :class:`~repro.obs.core.Registry`:

* :func:`render_tree` -- an indented wall-time tree plus metric tables,
  meant for a human reading stderr after a run;
* :func:`trace_lines` / :func:`write_trace` -- one JSON object per span
  (id/parent-id/name/start/end/attrs) followed by a ``metrics`` footer
  record, i.e. a JSON-lines file a script can replay;
* :func:`metrics_dict` / :func:`write_metrics` -- the flat metrics dict
  (counters, gauges, histogram aggregates, per-span-name wall times);
* :func:`chrome_trace_events` / :func:`write_chrome_trace` -- the Chrome
  trace-event (Perfetto) format: spans become ``"X"`` complete events on
  per-process tracks, bus counter/gauge events become ``"C"`` counter
  tracks, and ``series`` events (e.g. the simulator's busy-PE timeline)
  become counter tracks on a synthetic track of their own.  The output is
  one JSON array, loadable in ``chrome://tracing`` or
  https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, Iterator

from repro.obs.core import Registry, Span

__all__ = [
    "render_tree",
    "metrics_dict",
    "trace_lines",
    "write_trace",
    "write_metrics",
    "chrome_trace_events",
    "write_chrome_trace",
]


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}µs"


def _render_span(span: Span, depth: int, lines: list[str]) -> None:
    attrs = ""
    if span.attrs:
        attrs = " [" + ", ".join(f"{k}={v}" for k, v in span.attrs.items()) + "]"
    lines.append(
        f"{'  ' * depth}- {span.name}  {_fmt_seconds(span.duration)}{attrs}"
    )
    for child in span.children:
        _render_span(child, depth + 1, lines)


def render_tree(registry: Registry) -> str:
    """The whole registry as an indented text report."""
    lines = ["== trace =="]
    if registry.roots:
        for root in registry.roots:
            _render_span(root, 0, lines)
    else:
        lines.append("(no spans recorded)")
    if registry.counters:
        lines.append("== counters ==")
        width = max(len(n) for n in registry.counters)
        for name in sorted(registry.counters):
            lines.append(f"{name:<{width}}  {registry.counters[name]}")
    if registry.gauges:
        lines.append("== gauges ==")
        width = max(len(n) for n in registry.gauges)
        for name in sorted(registry.gauges):
            lines.append(f"{name:<{width}}  {registry.gauges[name]:g}")
    if registry.histograms:
        lines.append("== histograms ==")
        for name in sorted(registry.histograms):
            h = registry.histograms[name]
            quantiles = " ".join(
                f"p{q}={h.percentile(q):g}" for q in (50, 90, 99)
                if h.percentile(q) is not None
            )
            lines.append(
                f"{name}  n={h.count} mean={h.mean:g} min={h.min:g} "
                f"max={h.max:g} sum={h.total:g}"
                + (f" {quantiles}" if quantiles else "")
            )
    return "\n".join(lines)


def metrics_dict(registry: Registry) -> dict:
    """Flat, JSON-serializable metrics (see :meth:`Registry.metrics`)."""
    return registry.metrics()


def trace_lines(registry: Registry) -> Iterator[str]:
    """JSON-lines trace: one ``span`` record per span, then a ``metrics``
    footer record carrying the flat metrics dict."""
    for span in registry.iter_spans():
        yield json.dumps(
            {
                "type": "span",
                "id": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "start": span.start,
                "end": span.end,
                "dur_s": span.duration,
                "attrs": span.attrs,
            },
            sort_keys=True,
        )
    yield json.dumps({"type": "metrics", **registry.metrics()}, sort_keys=True)


def write_trace(registry: Registry, path: str | pathlib.Path) -> None:
    """Write the JSON-lines trace to ``path``."""
    pathlib.Path(path).write_text("\n".join(trace_lines(registry)) + "\n")


def write_metrics(registry: Registry, path: str | pathlib.Path) -> None:
    """Write the flat metrics dict to ``path`` as one JSON document."""
    pathlib.Path(path).write_text(
        json.dumps(metrics_dict(registry), indent=2, sort_keys=True) + "\n"
    )


#: Synthetic pid hosting caller-timebase ``series`` tracks (beat-indexed
#: timelines like PE utilization, which live on their own clock).
_SERIES_PID = 0


def chrome_trace_events(
    registry: Registry,
    events: Iterable[dict] | None = None,
) -> list[dict]:
    """The registry (plus optional bus events) as Chrome trace events.

    Spans become ``"X"`` complete events grouped into per-process tracks:
    each root span carries the originating pid in its attrs when it was
    grafted from a worker delta (see
    :meth:`~repro.obs.core.Registry.merge_delta`), so a merged parallel
    run renders as one parent track plus one track per worker process.
    ``time.perf_counter`` reads ``CLOCK_MONOTONIC`` on Linux, which is
    shared across processes, so worker timestamps land correctly relative
    to the parent's; all timestamps are rebased to the earliest one and
    scaled to microseconds.

    ``events`` (typically a :class:`~repro.obs.bus.RingBufferSink`'s
    buffer) contributes ``"C"`` counter samples for every counter/gauge
    event -- cache hit/miss tracks, PE-utilization gauges -- and turns
    ``series`` events into counter tracks on a synthetic process whose
    timebase is the series' own (the simulator emits beats as
    microseconds).

    Every emitted event -- including ``"M"`` metadata and ``"C"`` counter
    events, where the format itself would not require it -- carries the
    full ``ts``/``dur``/``pid``/``tid``/``name`` key set; trace viewers
    ignore the extras and downstream tooling gets a uniform schema.
    """
    span_rows: list[tuple[int, Span]] = []

    def _collect(span: Span, inherited_pid: int) -> None:
        # Grafted worker subtrees carry their origin pid on the subtree
        # root (merge_delta stamps it); descendants inherit it.
        pid = int(span.attrs.get("pid", inherited_pid))
        span_rows.append((pid, span))
        for child in span.children:
            _collect(child, pid)

    for root in registry.roots:
        _collect(root, registry.pid)

    bus_events = [dict(e) for e in events] if events is not None else []
    starts = [span.start for _, span in span_rows]
    starts.extend(
        e["ts"] for e in bus_events
        if e.get("type") in ("counter", "gauge") and "ts" in e
    )
    t0 = min(starts, default=0.0)

    def _us(t: float) -> float:
        return round((t - t0) * 1e6, 3)

    out: list[dict] = []
    track_names: dict[int, str] = {}

    for pid, span in span_rows:
        if pid not in track_names:
            role = "parent" if pid == registry.pid else "worker"
            track_names[pid] = f"{role} (pid {pid})"
        end = span.end if span.end is not None else span.start
        args = {str(k): v for k, v in span.attrs.items()}
        out.append({
            "ph": "X",
            "cat": "span",
            "name": span.name,
            "ts": _us(span.start),
            "dur": round(max(0.0, end - span.start) * 1e6, 3),
            "pid": pid,
            "tid": 1,
            "args": args,
        })

    for event in bus_events:
        kind = event.get("type")
        if kind in ("counter", "gauge"):
            pid = int(event.get("pid", registry.pid))
            if pid not in track_names:
                role = "parent" if pid == registry.pid else "worker"
                track_names[pid] = f"{role} (pid {pid})"
            out.append({
                "ph": "C",
                "cat": kind,
                "name": event["name"],
                "ts": _us(event["ts"]),
                "dur": 0,
                "pid": pid,
                "tid": 1,
                "args": {"value": event.get("value", 0)},
            })
        elif kind == "series":
            track_names.setdefault(_SERIES_PID, "series (caller timebase)")
            name = event["name"]
            for t, value in event.get("points", ()):
                out.append({
                    "ph": "C",
                    "cat": "series",
                    "name": name,
                    "ts": float(t),
                    "dur": 0,
                    "pid": _SERIES_PID,
                    "tid": 1,
                    "args": {"value": value},
                })

    out.sort(key=lambda e: (e["pid"], e["ts"]))
    meta = [
        {
            "ph": "M",
            "cat": "__metadata",
            "name": "process_name",
            "ts": 0,
            "dur": 0,
            "pid": pid,
            "tid": 1,
            "args": {"name": label},
        }
        for pid, label in sorted(track_names.items())
    ]
    return meta + out


def write_chrome_trace(
    registry: Registry,
    path: str | pathlib.Path,
    events: Iterable[dict] | None = None,
) -> None:
    """Write the Chrome trace-event JSON array to ``path``."""
    rows = chrome_trace_events(registry, events)
    with open(path, "w") as fh:
        fh.write("[\n")
        fh.write(",\n".join(json.dumps(row, sort_keys=True) for row in rows))
        fh.write("\n]\n")
