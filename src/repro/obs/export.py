"""Exporters: human-readable span tree, JSON-lines trace, metrics JSON.

Three views of one :class:`~repro.obs.core.Registry`:

* :func:`render_tree` -- an indented wall-time tree plus metric tables,
  meant for a human reading stderr after a run;
* :func:`trace_lines` / :func:`write_trace` -- one JSON object per span
  (id/parent-id/name/start/end/attrs) followed by a ``metrics`` footer
  record, i.e. a JSON-lines file a script can replay;
* :func:`metrics_dict` / :func:`write_metrics` -- the flat metrics dict
  (counters, gauges, histogram aggregates, per-span-name wall times).
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterator

from repro.obs.core import Registry, Span

__all__ = [
    "render_tree",
    "metrics_dict",
    "trace_lines",
    "write_trace",
    "write_metrics",
]


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}µs"


def _render_span(span: Span, depth: int, lines: list[str]) -> None:
    attrs = ""
    if span.attrs:
        attrs = " [" + ", ".join(f"{k}={v}" for k, v in span.attrs.items()) + "]"
    lines.append(
        f"{'  ' * depth}- {span.name}  {_fmt_seconds(span.duration)}{attrs}"
    )
    for child in span.children:
        _render_span(child, depth + 1, lines)


def render_tree(registry: Registry) -> str:
    """The whole registry as an indented text report."""
    lines = ["== trace =="]
    if registry.roots:
        for root in registry.roots:
            _render_span(root, 0, lines)
    else:
        lines.append("(no spans recorded)")
    if registry.counters:
        lines.append("== counters ==")
        width = max(len(n) for n in registry.counters)
        for name in sorted(registry.counters):
            lines.append(f"{name:<{width}}  {registry.counters[name]}")
    if registry.gauges:
        lines.append("== gauges ==")
        width = max(len(n) for n in registry.gauges)
        for name in sorted(registry.gauges):
            lines.append(f"{name:<{width}}  {registry.gauges[name]:g}")
    if registry.histograms:
        lines.append("== histograms ==")
        for name in sorted(registry.histograms):
            h = registry.histograms[name]
            lines.append(
                f"{name}  n={h.count} mean={h.mean:g} min={h.min:g} "
                f"max={h.max:g} sum={h.total:g}"
            )
    return "\n".join(lines)


def metrics_dict(registry: Registry) -> dict:
    """Flat, JSON-serializable metrics (see :meth:`Registry.metrics`)."""
    return registry.metrics()


def trace_lines(registry: Registry) -> Iterator[str]:
    """JSON-lines trace: one ``span`` record per span, then a ``metrics``
    footer record carrying the flat metrics dict."""
    for span in registry.iter_spans():
        yield json.dumps(
            {
                "type": "span",
                "id": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "start": span.start,
                "end": span.end,
                "dur_s": span.duration,
                "attrs": span.attrs,
            },
            sort_keys=True,
        )
    yield json.dumps({"type": "metrics", **registry.metrics()}, sort_keys=True)


def write_trace(registry: Registry, path: str | pathlib.Path) -> None:
    """Write the JSON-lines trace to ``path``."""
    pathlib.Path(path).write_text("\n".join(trace_lines(registry)) + "\n")


def write_metrics(registry: Registry, path: str | pathlib.Path) -> None:
    """Write the flat metrics dict to ``path`` as one JSON document."""
    pathlib.Path(path).write_text(
        json.dumps(metrics_dict(registry), indent=2, sort_keys=True) + "\n"
    )
