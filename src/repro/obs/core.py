"""Metric primitives and the tracing registry.

A :class:`Registry` is a process-local collection point for three kinds of
metrics plus a tree of tracing spans:

* *counters* -- monotonically increasing event counts (``count``);
* *gauges* -- last-value-wins measurements (``gauge``);
* *histograms* -- streaming aggregates of observed values (``observe``),
  kept as count/sum/min/max plus a bounded deterministic sample reservoir
  for percentiles, so instrumenting a hot loop costs O(1) memory;
* *spans* -- nested wall-time intervals on the monotonic clock
  (``span``), forming a tree that mirrors the call structure.

Registries are plain objects: they can be used directly (as the E7
experiment does, to time both analyzers with one mechanism) or installed
as the process-wide active registry via :func:`repro.obs.collecting`, in
which case the library's built-in instrumentation feeds them.

Two v2 capabilities live here:

* **Streaming** -- sinks attached via :meth:`Registry.add_sink` receive a
  structured event for every mutation in real time (see
  :mod:`repro.obs.bus`).  With no sinks the emit branch is one truthiness
  check on an empty list.
* **Cross-process deltas** -- :meth:`Registry.delta` serializes a whole
  registry (counters, gauges, histogram state, span trees) to a JSON-ready
  dict and :meth:`Registry.merge_delta` folds such a delta into another
  registry, attaching the foreign span trees under the currently open span
  with process attribution.  This is how worker registries from a
  ``ProcessPoolExecutor`` merge into the parent's single coherent trace.
"""

from __future__ import annotations

import math
import os
import time
from typing import Iterator, Mapping

__all__ = ["Histogram", "Span", "Registry"]

#: Bounded per-histogram sample reservoir for percentile estimates.
RESERVOIR_CAP = 512

#: Percentiles reported by :meth:`Histogram.as_dict` (and hence every
#: metrics export).
PERCENTILES = (50, 90, 99)


class Histogram:
    """Streaming aggregate of a series of observations.

    Alongside count/sum/min/max, a bounded reservoir of raw samples backs
    the percentile estimates.  The reservoir is **deterministic**: the
    first :data:`RESERVOIR_CAP` observations are kept verbatim (exact
    percentiles), after which each new observation overwrites the slot
    ``(count - 1) % cap`` -- no RNG, so identical observation sequences
    always produce identical percentile reports.
    """

    __slots__ = ("count", "total", "min", "max", "samples", "cap")

    def __init__(self, cap: int = RESERVOIR_CAP) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.samples: list[float] = []
        self.cap = cap

    def observe(self, value: float) -> None:
        """Fold one observation into the aggregate."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self.samples) < self.cap:
            self.samples.append(value)
        else:
            self.samples[(self.count - 1) % self.cap] = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """Nearest-rank percentile over the reservoir (None when empty).

        Exact while ``count <= cap``; an estimate from the deterministic
        reservoir beyond that.
        """
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        # Classic nearest-rank: the smallest value with at least q% of
        # the samples at or below it.
        rank = max(0, min(len(ordered) - 1,
                          math.ceil(q * len(ordered) / 100) - 1))
        return ordered[rank]

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's state into this one.

        Count/sum/min/max merge exactly.  The reservoirs are combined as a
        multiset: while the union fits the cap it is kept whole (so
        percentiles stay exact and independent of how observations were
        partitioned across processes); an oversized union is sorted and
        decimated to ``cap`` evenly spaced order statistics, which is a
        pure function of the combined multiset -- merge order never
        changes the result.
        """
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        combined = self.samples + other.samples
        if len(combined) <= self.cap:
            self.samples = combined
        else:
            combined.sort()
            n = len(combined)
            self.samples = [
                combined[round(i * (n - 1) / (self.cap - 1))]
                for i in range(self.cap)
            ]

    def state_dict(self) -> dict:
        """Full serializable state (for cross-process deltas)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "samples": list(self.samples),
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "Histogram":
        hist = cls()
        hist.count = int(state["count"])
        hist.total = float(state["sum"])
        hist.min = state["min"]
        hist.max = state["max"]
        hist.samples = [float(v) for v in state.get("samples", ())][:hist.cap]
        return hist

    def as_dict(self) -> dict:
        """JSON-ready summary (count/sum/min/max/mean + percentiles)."""
        out = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }
        for q in PERCENTILES:
            out[f"p{q}"] = self.percentile(q)
        return out

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, sum={self.total:g}, "
            f"min={self.min}, max={self.max})"
        )


class Span:
    """One timed interval in the trace tree.

    ``start``/``end`` are :func:`time.perf_counter` readings; ``duration``
    is valid after the span closes (and reads as time-so-far while open).
    """

    __slots__ = ("span_id", "parent_id", "name", "attrs", "start", "end", "children")

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        attrs: Mapping | None = None,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.start = time.perf_counter()
        self.end: float | None = None
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        """Seconds elapsed (to now, if the span is still open)."""
        return (self.end if self.end is not None else time.perf_counter()) - self.start

    def close(self) -> None:
        """Stamp the end time (idempotent)."""
        if self.end is None:
            self.end = time.perf_counter()

    def walk(self) -> Iterator["Span"]:
        """Depth-first, pre-order iteration over this span and descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """The subtree as a JSON-ready nested dict (ids are omitted; they
        are registry-local and reassigned on merge)."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration * 1e3:.3f}ms)"


class _SpanContext:
    """Context manager pushing/popping one span on a registry's stack."""

    __slots__ = ("_registry", "_span")

    def __init__(self, registry: "Registry", span: Span):
        self._registry = registry
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> None:
        self._span.close()
        registry = self._registry
        stack = registry._stack
        if stack and stack[-1] is self._span:
            stack.pop()
        if registry.sinks:
            registry._emit(
                "span_end",
                self._span.name,
                id=self._span.span_id,
                dur_s=self._span.duration,
            )
        return None


class Registry:
    """Process-local metrics + trace collection point."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.roots: list[Span] = []
        self.sinks: list = []
        self.pid = os.getpid()
        self._stack: list[Span] = []
        self._next_id = 0

    # -- the event bus --------------------------------------------------------
    def add_sink(self, sink) -> None:
        """Attach a sink; every subsequent mutation streams to it."""
        self.sinks.append(sink)

    def remove_sink(self, sink) -> None:
        """Detach (and close) a previously attached sink."""
        try:
            self.sinks.remove(sink)
        except ValueError:
            return
        sink.close()

    def _emit(self, type_: str, name: str, **fields) -> None:
        event = {
            "type": type_,
            "ts": time.perf_counter(),
            "pid": self.pid,
            "name": name,
        }
        event.update(fields)
        for sink in self.sinks:
            sink.emit(event)

    def emit_series(self, name: str, points) -> None:
        """Stream a pre-computed time series (e.g. busy PEs per beat).

        ``points`` is an iterable of ``(t, value)`` pairs on a timebase
        the producer defines (the simulator uses beats).  Emitted only
        when sinks are attached; series are bus-only, never part of the
        metrics dict.
        """
        if self.sinks:
            self._emit(
                "series", name, points=[[t, v] for t, v in points]
            )

    def progress(self, name: str, total: int | None = None, **kw):
        """A live :class:`~repro.obs.bus.Progress` tracker on this registry."""
        from repro.obs.bus import Progress

        return Progress(self, name, total, **kw)

    # -- scalar metrics -------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        value = self.counters.get(name, 0) + n
        self.counters[name] = value
        if self.sinks:
            self._emit("counter", name, delta=n, value=value)

    def count_many(self, values: Mapping[str, int], prefix: str = "") -> None:
        """Fold a whole ``{name: n}`` mapping into the counters at once
        (lets hot loops keep a local dict and report on exit)."""
        emit = bool(self.sinks)
        for key, n in values.items():
            name = prefix + key
            value = self.counters.get(name, 0) + n
            self.counters[name] = value
            if emit:
                self._emit("counter", name, delta=n, value=value)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (last write wins)."""
        self.gauges[name] = value
        if self.sinks:
            self._emit("gauge", name, value=value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)
        if self.sinks:
            self._emit("observe", name, value=value)

    # -- spans ----------------------------------------------------------------
    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a nested span; use as ``with reg.span("phase") as sp:``.

        The yielded :class:`Span` exposes ``duration`` after the block, so
        span timing doubles as a timer API.
        """
        parent = self._stack[-1] if self._stack else None
        self._next_id += 1
        span = Span(
            self._next_id,
            parent.span_id if parent is not None else None,
            name,
            attrs,
        )
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        if self.sinks:
            self._emit(
                "span_start",
                name,
                id=span.span_id,
                parent=span.parent_id,
                attrs=span.attrs,
            )
        return _SpanContext(self, span)

    def current_span(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def iter_spans(self) -> Iterator[Span]:
        """All spans, depth-first from each root."""
        for root in self.roots:
            yield from root.walk()

    # -- cross-process deltas -------------------------------------------------
    def delta(self) -> dict:
        """The registry's full state as a JSON-ready dict.

        Worker processes return this over the result channel; the parent
        folds it back with :meth:`merge_delta`.
        """
        return {
            "pid": self.pid,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: h.state_dict() for name, h in self.histograms.items()
            },
            "spans": [root.to_dict() for root in self.roots],
        }

    def _graft_span(self, parent: Span | None, node: Mapping,
                    extra_attrs: Mapping | None) -> None:
        self._next_id += 1
        span = Span(
            self._next_id,
            parent.span_id if parent is not None else None,
            node["name"],
            node.get("attrs"),
        )
        if extra_attrs:
            span.attrs.update(extra_attrs)
        span.start = node["start"]
        span.end = node["end"]
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        for child in node.get("children", ()):
            self._graft_span(span, child, None)

    def merge_delta(self, delta: Mapping, attrs: Mapping | None = None) -> None:
        """Fold a :meth:`delta` from another registry into this one.

        Counters add, gauges last-write-win, histograms merge their exact
        aggregates and sample reservoirs, and span trees are grafted under
        the currently open span (or as new roots) with fresh ids.  The
        delta's ``pid`` plus any ``attrs`` are stamped onto the root of
        each grafted tree, so merged traces keep per-process attribution.
        Merging the deltas of a partitioned run in partition order yields
        the same aggregate metrics as the unpartitioned run (up to the
        reservoir decimation documented on :meth:`Histogram.merge`).
        """
        for name, n in delta.get("counters", {}).items():
            self.count(name, n)
        for name, value in delta.get("gauges", {}).items():
            self.gauge(name, value)
        for name, state in delta.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.merge(Histogram.from_state(state))
        root_attrs = dict(attrs) if attrs else {}
        if "pid" in delta:
            root_attrs.setdefault("pid", delta["pid"])
        parent = self.current_span()
        for node in delta.get("spans", ()):
            self._graft_span(parent, node, root_attrs)

    # -- aggregation ----------------------------------------------------------
    def span_stats(self) -> dict[str, dict]:
        """Wall time per span name: ``{name: {count, total_s, min_s, max_s}}``."""
        agg: dict[str, Histogram] = {}
        for span in self.iter_spans():
            hist = agg.get(span.name)
            if hist is None:
                hist = agg[span.name] = Histogram()
            hist.observe(span.duration)
        return {
            name: {
                "count": h.count,
                "total_s": h.total,
                "min_s": h.min,
                "max_s": h.max,
            }
            for name, h in agg.items()
        }

    def metrics(self) -> dict:
        """The flat, JSON-ready metrics dict (the canonical export)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: h.as_dict() for name, h in self.histograms.items()
            },
            "spans": self.span_stats(),
        }

    def __repr__(self) -> str:
        return (
            f"Registry({len(self.counters)} counters, {len(self.gauges)} "
            f"gauges, {len(self.histograms)} histograms, "
            f"{sum(1 for _ in self.iter_spans())} spans)"
        )
