"""Metric primitives and the tracing registry.

A :class:`Registry` is a process-local collection point for three kinds of
metrics plus a tree of tracing spans:

* *counters* -- monotonically increasing event counts (``count``);
* *gauges* -- last-value-wins measurements (``gauge``);
* *histograms* -- streaming aggregates of observed values (``observe``),
  kept as count/sum/min/max rather than raw samples so instrumenting a hot
  loop costs O(1) memory;
* *spans* -- nested wall-time intervals on the monotonic clock
  (``span``), forming a tree that mirrors the call structure.

Registries are plain objects: they can be used directly (as the E7
experiment does, to time both analyzers with one mechanism) or installed
as the process-wide active registry via :func:`repro.obs.collecting`, in
which case the library's built-in instrumentation feeds them.
"""

from __future__ import annotations

import time
from typing import Iterator, Mapping

__all__ = ["Histogram", "Span", "Registry"]


class Histogram:
    """Streaming aggregate of a series of observations."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Fold one observation into the aggregate."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """JSON-ready summary."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, sum={self.total:g}, "
            f"min={self.min}, max={self.max})"
        )


class Span:
    """One timed interval in the trace tree.

    ``start``/``end`` are :func:`time.perf_counter` readings; ``duration``
    is valid after the span closes (and reads as time-so-far while open).
    """

    __slots__ = ("span_id", "parent_id", "name", "attrs", "start", "end", "children")

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        attrs: Mapping | None = None,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.start = time.perf_counter()
        self.end: float | None = None
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        """Seconds elapsed (to now, if the span is still open)."""
        return (self.end if self.end is not None else time.perf_counter()) - self.start

    def close(self) -> None:
        """Stamp the end time (idempotent)."""
        if self.end is None:
            self.end = time.perf_counter()

    def walk(self) -> Iterator["Span"]:
        """Depth-first, pre-order iteration over this span and descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration * 1e3:.3f}ms)"


class _SpanContext:
    """Context manager pushing/popping one span on a registry's stack."""

    __slots__ = ("_registry", "_span")

    def __init__(self, registry: "Registry", span: Span):
        self._registry = registry
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> None:
        self._span.close()
        stack = self._registry._stack
        if stack and stack[-1] is self._span:
            stack.pop()
        return None


class Registry:
    """Process-local metrics + trace collection point."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 0

    # -- scalar metrics -------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def count_many(self, values: Mapping[str, int], prefix: str = "") -> None:
        """Fold a whole ``{name: n}`` mapping into the counters at once
        (lets hot loops keep a local dict and report on exit)."""
        for key, n in values.items():
            name = prefix + key
            self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (last write wins)."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # -- spans ----------------------------------------------------------------
    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a nested span; use as ``with reg.span("phase") as sp:``.

        The yielded :class:`Span` exposes ``duration`` after the block, so
        span timing doubles as a timer API.
        """
        parent = self._stack[-1] if self._stack else None
        self._next_id += 1
        span = Span(
            self._next_id,
            parent.span_id if parent is not None else None,
            name,
            attrs,
        )
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def current_span(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def iter_spans(self) -> Iterator[Span]:
        """All spans, depth-first from each root."""
        for root in self.roots:
            yield from root.walk()

    # -- aggregation ----------------------------------------------------------
    def span_stats(self) -> dict[str, dict]:
        """Wall time per span name: ``{name: {count, total_s, min_s, max_s}}``."""
        agg: dict[str, Histogram] = {}
        for span in self.iter_spans():
            hist = agg.get(span.name)
            if hist is None:
                hist = agg[span.name] = Histogram()
            hist.observe(span.duration)
        return {
            name: {
                "count": h.count,
                "total_s": h.total,
                "min_s": h.min,
                "max_s": h.max,
            }
            for name, h in agg.items()
        }

    def metrics(self) -> dict:
        """The flat, JSON-ready metrics dict (the canonical export)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: h.as_dict() for name, h in self.histograms.items()
            },
            "spans": self.span_stats(),
        }

    def __repr__(self) -> str:
        return (
            f"Registry({len(self.counters)} counters, {len(self.gauges)} "
            f"gauges, {len(self.histograms)} histograms, "
            f"{sum(1 for _ in self.iter_spans())} spans)"
        )
