"""Observability: tracing spans, counters, gauges, histograms, exporters.

The library's instrumentation substrate.  Two usage modes:

*Direct* -- construct a :class:`Registry` and call its methods; nothing is
global.  This is how the E7 cost experiment times both analyzers.

*Ambient* -- install a registry as the process-wide collection point with
:func:`collecting`; every instrumented layer (dependence analysis, the
design search, the space-time simulator) then feeds it through the
module-level helpers below::

    from repro import obs

    with obs.collecting() as reg:
        search_designs(alg, binding, prims)
    print(obs.render_tree(reg))          # human-readable
    obs.write_metrics(reg, "m.json")     # flat metrics dict
    obs.write_trace(reg, "trace.jsonl")  # JSON-lines span trace

**Zero cost when disabled.**  By default no registry is installed and
every helper (``count``, ``gauge``, ``observe``, ``span``, ``traced``)
reduces to a single ``is None`` check (``span`` returns a shared no-op
context manager).  Instrumented hot loops additionally batch into local
dicts and report once on exit, so the disabled path never pays per-event
costs.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.obs.bus import (
    NULL_PROGRESS,
    CallbackSink,
    JsonlSink,
    Progress,
    RingBufferSink,
)
from repro.obs.core import Histogram, Registry, Span
from repro.obs.export import (
    chrome_trace_events,
    metrics_dict,
    render_tree,
    trace_lines,
    write_chrome_trace,
    write_metrics,
    write_trace,
)

__all__ = [
    "CallbackSink",
    "Histogram",
    "JsonlSink",
    "NULL_PROGRESS",
    "Progress",
    "Registry",
    "RingBufferSink",
    "Span",
    "chrome_trace_events",
    "collecting",
    "count",
    "count_many",
    "current_span",
    "enabled",
    "environment_info",
    "gauge",
    "get_registry",
    "metrics_dict",
    "observe",
    "progress",
    "render_tree",
    "set_registry",
    "span",
    "trace_lines",
    "traced",
    "write_chrome_trace",
    "write_metrics",
    "write_trace",
]

#: The ambient registry; ``None`` means instrumentation is disabled.
_ACTIVE: Registry | None = None


class _NullSpanContext:
    """Shared no-op stand-in for ``span()`` when collection is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


def get_registry() -> Registry | None:
    """The ambient registry, or ``None`` when disabled."""
    return _ACTIVE


def set_registry(registry: Registry | None) -> Registry | None:
    """Install ``registry`` as the ambient registry; returns the previous
    one so callers can restore it (prefer :func:`collecting`)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


def enabled() -> bool:
    """True when an ambient registry is installed."""
    return _ACTIVE is not None


def environment_info() -> dict:
    """Hardware/software provenance for benchmark and metrics reports.

    Captures what a reader needs to interpret recorded timings -- CPU
    count, interpreter, platform, numpy version and the git commit --
    without failing anywhere: unavailable fields come back ``None``.
    """
    import os
    import platform

    info = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }
    try:
        import numpy

        info["numpy"] = numpy.__version__
    except ImportError:
        info["numpy"] = None
    try:
        import subprocess

        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        info["commit"] = proc.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        info["commit"] = None
    return info


@contextmanager
def collecting(registry: Registry | None = None) -> Iterator[Registry]:
    """Enable ambient collection for the ``with`` body.

    A fresh :class:`Registry` is created unless one is passed; the
    previously active registry (usually none) is restored on exit.
    """
    reg = registry if registry is not None else Registry()
    previous = set_registry(reg)
    try:
        yield reg
    finally:
        set_registry(previous)


# -- ambient helpers (no-ops when disabled) -----------------------------------
def count(name: str, n: int = 1) -> None:
    """Increment a counter on the ambient registry."""
    reg = _ACTIVE
    if reg is not None:
        reg.count(name, n)


def count_many(values, prefix: str = "") -> None:
    """Fold a ``{name: n}`` mapping into the ambient counters."""
    reg = _ACTIVE
    if reg is not None:
        reg.count_many(values, prefix)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the ambient registry."""
    reg = _ACTIVE
    if reg is not None:
        reg.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the ambient registry."""
    reg = _ACTIVE
    if reg is not None:
        reg.observe(name, value)


def span(name: str, **attrs):
    """Open an ambient span (a shared no-op when disabled)."""
    reg = _ACTIVE
    if reg is None:
        return _NULL_SPAN
    return reg.span(name, **attrs)


def current_span() -> Span | None:
    """The innermost open ambient span, if any."""
    reg = _ACTIVE
    return reg.current_span() if reg is not None else None


def progress(name: str, total: int | None = None, **kw):
    """A live progress tracker on the ambient registry.

    Returns a shared no-op when collection is disabled, so loops can call
    ``advance()`` unconditionally.
    """
    reg = _ACTIVE
    if reg is None:
        return NULL_PROGRESS
    return reg.progress(name, total, **kw)


def traced(name: str | None = None) -> Callable:
    """Decorator wrapping a function call in an ambient span.

    The span is named after the function (``module.qualname``) unless
    ``name`` is given; when collection is disabled the wrapper adds one
    ``is None`` check and tail-calls the function.
    """

    def decorate(fn: Callable) -> Callable:
        label = name or f"{fn.__module__}.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            reg = _ACTIVE
            if reg is None:
                return fn(*args, **kwargs)
            with reg.span(label):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
