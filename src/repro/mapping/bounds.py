"""Absolute lower bounds on execution time.

Theorem 4.5 certifies ``T`` of eq. (4.2) optimal among *linear* schedules.
A stronger statement is available computationally: the **free schedule** --
every computation fires as soon as its operands exist -- needs exactly
``longest dependence chain + 1`` time units, and no schedule of any kind
can beat it.  :func:`critical_path_length` computes that chain exactly by
dynamic programming over the dependence dag, and
:func:`free_schedule_times` returns the earliest firing time of every
index point (the as-soon-as-possible schedule itself).

For the bit-level matmul structure, the measured critical path matches
``3(u-1) + 3(p-1)`` -- i.e. Fig. 4's linear schedule achieves the absolute
minimum, a sharper fact than the paper states.
"""

from __future__ import annotations

from functools import lru_cache

from repro.structures.algorithm import Algorithm
from repro.structures.params import ParamBinding

__all__ = ["critical_path_length", "free_schedule_times", "free_schedule_time"]


def free_schedule_times(
    algorithm: Algorithm, binding: ParamBinding
) -> dict[tuple[int, ...], int]:
    """Earliest firing time of each point (0-based), by longest-path DP.

    A point with no in-set predecessors fires at 0; otherwise one time unit
    after the latest of its predecessors.  Raises ``ValueError`` on a
    dependence cycle (which a well-formed algorithm cannot have).
    """
    index_set = algorithm.index_set
    deps = algorithm.dependences
    inside = set(index_set.points(binding))

    times: dict[tuple[int, ...], int] = {}
    in_progress: set[tuple[int, ...]] = set()

    def earliest(point: tuple[int, ...]) -> int:
        cached = times.get(point)
        if cached is not None:
            return cached
        if point in in_progress:
            raise ValueError(f"dependence cycle through {point}")
        in_progress.add(point)
        best = 0
        for vec in deps.valid_vectors_at(point, binding):
            src = tuple(a - b for a, b in zip(point, vec.vector))
            if src in inside:
                t = earliest(src) + 1
                if t > best:
                    best = t
        in_progress.discard(point)
        times[point] = best
        return best

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, len(inside) + 100))
    try:
        for point in inside:
            earliest(point)
    finally:
        sys.setrecursionlimit(old_limit)
    return times


def critical_path_length(algorithm: Algorithm, binding: ParamBinding) -> int:
    """Length (edge count) of the longest dependence chain inside ``J``."""
    times = free_schedule_times(algorithm, binding)
    return max(times.values(), default=0)


def free_schedule_time(algorithm: Algorithm, binding: ParamBinding) -> int:
    """The absolute minimum execution time: ``critical path + 1``."""
    return critical_path_length(algorithm, binding) + 1
