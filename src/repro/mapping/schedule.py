"""Linear schedules: validity, execution time (4.5), and optimality search.

The execution time of a mapped algorithm is

.. math:: t = \\max\\{ \\Pi(\\bar q_1 - \\bar q_2) :
                       \\bar q_1, \\bar q_2 \\in J \\} + 1

(eq. (4.5)), which over a box index set is computed exactly corner-to-corner
by coefficient sign.  :func:`find_optimal_schedule` searches the bounded
integer schedule space for the Π minimizing ``t`` subject to ``Π D > 0`` and
(optionally) the interconnect deadline (4.1) for a fixed space mapping --
this is how the time-optimality claim of Theorem 4.5 is certified on
concrete instances.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.depanalysis.banerjee import affine_range
from repro.mapping.interconnect import solve_interconnect
from repro.mapping.transform import MappingMatrix
from repro.structures.algorithm import Algorithm
from repro.structures.params import ParamBinding

__all__ = [
    "schedule_is_valid",
    "execution_time",
    "find_optimal_schedule",
    "certify_time_optimal",
]


def schedule_is_valid(schedule: Sequence[int], algorithm: Algorithm) -> bool:
    """Condition 1: ``Π d̄_i > 0`` for every dependence vector."""
    for vec in algorithm.dependences:
        if sum(c * d for c, d in zip(schedule, vec.vector)) <= 0:
            return False
    return True


def execution_time(
    schedule: Sequence[int],
    algorithm: Algorithm,
    binding: ParamBinding,
) -> int:
    """Total execution time (4.5) of a linear schedule over a box index set.

    ``t = max Π(q̄₁ - q̄₂) + 1`` equals the spread of ``Π q̄`` over the box
    plus one, obtained exactly from the per-axis bounds by coefficient sign.
    Affine-constrained index sets (triangular domains) are handled exactly
    by enumeration instead.
    """
    index_set = algorithm.index_set
    if getattr(index_set, "is_constrained", False):
        times = [
            sum(c * x for c, x in zip(schedule, pt))
            for pt in index_set.points(binding)
        ]
        if not times:
            return 0
        return max(times) - min(times) + 1
    bounds = index_set.bounds(binding)
    lo, hi = affine_range(list(schedule), bounds)
    return hi - lo + 1


def find_optimal_schedule(
    algorithm: Algorithm,
    binding: ParamBinding,
    coeff_bound: int = 3,
    space: Sequence[Sequence[int]] | None = None,
    primitives: Sequence[Sequence[int]] | None = None,
) -> tuple[list[int], int] | None:
    """Exhaustively search schedules with ``|Π_i| <= coeff_bound``.

    Returns ``(Π*, t*)`` minimizing the execution time subject to
    ``Π D > 0``; when ``space`` and ``primitives`` are supplied, the
    interconnect constraint (4.1) is also enforced (``S·D = P·K`` with the
    hop count within each deadline ``Π d̄_i``).  Returns ``None`` when no
    valid schedule exists within the bound.

    The coefficient bound keeps the search finite; for the structures of the
    paper the optimal schedules have small coefficients (the paper's own Π
    has entries in ``{1, 2}``), and enlarging the bound only confirms the
    optimum (see the time-optimality benchmarks).
    """
    n = algorithm.dim
    d_cols = algorithm.dependences.columns()
    d_matrix = [[col[row] for col in d_cols] for row in range(n)]
    best: tuple[list[int], int] | None = None
    for pi in itertools.product(range(-coeff_bound, coeff_bound + 1), repeat=n):
        if not schedule_is_valid(pi, algorithm):
            continue
        t = execution_time(pi, algorithm, binding)
        if best is not None and t >= best[1]:
            continue
        if space is not None and primitives is not None:
            if solve_interconnect(space, d_matrix, pi, primitives) is None:
                continue
        best = (list(pi), t)
    return best


def certify_time_optimal(
    t_matrix: MappingMatrix,
    algorithm: Algorithm,
    binding: ParamBinding,
    coeff_bound: int = 3,
    primitives: Sequence[Sequence[int]] | None = None,
) -> tuple[bool, tuple[list[int], int] | None]:
    """Certify that ``T``'s schedule is time-optimal on a concrete instance.

    Searches all schedules within ``coeff_bound`` (respecting ``Π D > 0``
    and, if ``primitives`` is given, the interconnect deadline for ``T``'s
    space mapping) and compares the best found against ``T``'s own execution
    time.  Returns ``(is_optimal, best_found)``.
    """
    own = execution_time(t_matrix.schedule, algorithm, binding)
    best = find_optimal_schedule(
        algorithm,
        binding,
        coeff_bound=coeff_bound,
        space=t_matrix.space if primitives is not None else None,
        primitives=primitives,
    )
    if best is None:
        return False, None
    return own <= best[1], best
