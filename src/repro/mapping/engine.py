"""The design-space search engine: parallel, pruned, and memoized.

The paper presents the *results* of a space-time mapping search (eqs.
(4.2)/(4.6)); this module implements the search itself -- the joint
``(S, Π)`` synthesis of the paper's references [5, 6, 10] (Shang/Fortes,
Ganapathy/Wah) -- as a staged engine:

1. **Catalog** (:func:`space_map_catalog`): candidate space-map rows shaped
   like the paper's own designs -- per-axis projections ``e_i``, axis
   sums/differences ``e_i ± e_j``, and *blocked* combinations
   ``b·e_i + e_j`` (the paper's ``p·j₁ + i₁`` rows).
2. **Screen**: row combinations of deficient rank are dropped before any
   per-candidate work.
3. **Schedule reuse** (:func:`ranked_schedules`): the valid-schedule list
   depends only on ``(D, J, binding)``, not on ``S``, so it is enumerated
   and time-sorted *once* and shared by every space candidate (the naive
   search re-enumerated all ``(2b+1)^n`` schedules per candidate).
4. **Feasibility short-circuit**: per ``(S, Π)``, Definition 4.1 is checked
   cheapest-first (rank → coprime → ``ΠD>0`` → interconnect → conflicts)
   via :func:`~repro.mapping.feasibility.check_feasibility`, with conflict
   enumeration and interconnect column solves memoized in a run-scoped
   :class:`~repro.mapping.memo.EvalCache`.
5. **Parallel merge**: with ``workers > 1`` space candidates fan out over a
   ``ProcessPoolExecutor``; results are merged in candidate-catalog order,
   so the ranked output is *identical* for every worker count
   (``workers=1`` runs in-process with no executor at all).

All knobs live on the frozen :class:`SearchConfig`; :func:`run_search` is
the engine entry point and :func:`search_designs` the stable public API
(its pre-engine per-parameter signature survives as a deprecated shim).
"""

from __future__ import annotations

import itertools
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro import obs
from repro.mapping.feasibility import FeasibilityReport, check_feasibility
from repro.mapping.memo import EvalCache
from repro.mapping.pareto import (
    METRIC_NAMES,
    FrontierPoint,
    design_wire_length,
    pareto_frontier,
)
from repro.mapping.schedule import execution_time, schedule_is_valid
from repro.mapping.spacetime import processor_count
from repro.mapping.transform import MappingMatrix
from repro.structures.algorithm import Algorithm
from repro.structures.params import ParamBinding
from repro.util.linalg import integer_rank

__all__ = [
    "SearchConfig",
    "DesignCandidate",
    "space_map_catalog",
    "ranked_schedules",
    "run_search",
    "search_designs",
]


@dataclass(frozen=True)
class SearchConfig:
    """All parameters of a design-space search, as one immutable value.

    Parameters
    ----------
    target_space_dim:
        ``k - 1``, the array dimension to synthesize (1 = linear array).
    block_values:
        Block factors for the catalog's ``b·e_i + e_j`` rows (pass ``(p,)``
        to reach designs like the paper's Fig. 4).
    schedule_bound:
        Coefficient bound for the shared valid-schedule enumeration.
    max_candidates:
        Return at most this many designs, best first (``None`` =
        exhaustive).
    require_busy:
        Enforce condition 5 (coprime entries of ``T``) as a pre-screen
        before the full feasibility check.
    workers:
        Process fan-out for space candidates.  ``1`` (default) evaluates
        in-process; higher values use a ``ProcessPoolExecutor``.  Results
        are identical for every value -- only wall-clock changes.
    overcollect:
        Early-stop factor: the scan stops after collecting
        ``max_candidates * overcollect`` feasible designs, *before* the
        final ranking.  This bounds latency but can miss faster designs
        that appear later in catalog order; pass ``None`` (or
        ``max_candidates=None``) to scan the whole catalog.  The default
        of 4 preserves the historical trade-off.  **Ignored under
        ``frontier=``**: a Pareto frontier computed over an early-stopped
        prefix could silently drop non-dominated designs that appear
        later in catalog order, so frontier collection always scans the
        whole space (``stop_after`` is ``None``).
    strategy:
        Candidate generation strategy.  ``"catalog"`` is the PR 2
        enumerate-and-filter path; ``"solver"`` routes through the
        branch-and-prune constraint solver (:mod:`repro.mapping.solver`),
        which emits provably identical results while enumerating an
        order of magnitude fewer candidates.  ``"auto"`` (default)
        resolves to ``"solver"``.
    frontier:
        ``None`` (default) returns the single ranked list ordered by
        ``(time, processors)``.  A non-empty tuple of metric names drawn
        from :data:`~repro.mapping.pareto.METRIC_NAMES` (``"time"``,
        ``"processors"``, ``"wire_length"``) instead returns the Pareto
        frontier over those metrics, canonically ordered by
        ``(metrics, rows)``.  Implies an exhaustive scan (see
        ``overcollect``); ``max_candidates`` still truncates the
        returned list -- pass ``max_candidates=None`` for the whole
        frontier.
    persist_cache:
        Persist the run-scoped :class:`~repro.mapping.memo.EvalCache`
        across runs through the artifact store (:mod:`repro.cache`): the
        shared memo entry is loaded before the scan and the merged table
        saved after it.  ``None`` (default) enables persistence iff
        ``$REPRO_CACHE_DIR`` is set; memo keys are canonical values, so
        entries are valid across any search configuration.  Only the
        main process's table is persisted under ``workers > 1``.
    """

    target_space_dim: int = 2
    block_values: tuple[int, ...] = ()
    schedule_bound: int = 2
    max_candidates: int | None = 10
    require_busy: bool = True
    workers: int = 1
    overcollect: int | None = 4
    persist_cache: bool | None = None
    strategy: str = "auto"
    frontier: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "block_values", tuple(int(b) for b in self.block_values)
        )
        if self.frontier is not None:
            object.__setattr__(
                self, "frontier", tuple(str(m) for m in self.frontier)
            )
        if self.target_space_dim < 1:
            raise ValueError("target_space_dim must be >= 1")
        if self.schedule_bound < 0:
            raise ValueError("schedule_bound must be >= 0")
        if self.max_candidates is not None and self.max_candidates < 1:
            raise ValueError("max_candidates must be >= 1 or None")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.overcollect is not None and self.overcollect < 1:
            raise ValueError("overcollect must be >= 1 or None")
        if self.strategy not in ("auto", "catalog", "solver"):
            raise ValueError(
                "strategy must be 'auto', 'catalog' or 'solver'"
            )
        if self.frontier is not None:
            if not self.frontier:
                raise ValueError("frontier must be a non-empty tuple or None")
            unknown = [m for m in self.frontier if m not in METRIC_NAMES]
            if unknown:
                raise ValueError(
                    f"unknown frontier metrics {unknown!r}; "
                    f"choose from {METRIC_NAMES}"
                )

    @property
    def resolved_strategy(self) -> str:
        """The concrete generation strategy (``"auto"`` -> ``"solver"``)."""
        return "solver" if self.strategy == "auto" else self.strategy

    @property
    def stop_after(self) -> int | None:
        """Feasible-design count at which the scan stops early (or None).

        Always ``None`` in frontier mode: early-stopping on a *count* of
        feasible designs could drop non-dominated points found later in
        catalog order, so ``overcollect`` is a no-op under ``frontier=``.
        """
        if self.frontier is not None:
            return None
        if self.max_candidates is None or self.overcollect is None:
            return None
        return self.max_candidates * self.overcollect


@dataclass
class DesignCandidate:
    """One feasible design produced by the search.

    ``wire_length`` is the longest physical link the design needs
    (:func:`~repro.mapping.pareto.design_wire_length`) -- the third axis
    of the Pareto frontier alongside ``time`` and ``processors``.
    """

    mapping: MappingMatrix
    time: int
    processors: int
    report: FeasibilityReport
    wire_length: int = 0

    def __repr__(self) -> str:
        return (
            f"DesignCandidate(t={self.time}, PEs={self.processors}, "
            f"T={[list(r) for r in self.mapping.rows]})"
        )


# ---------------------------------------------------------------------------
# Stage 1+2: catalog and rank screen
# ---------------------------------------------------------------------------

def space_map_catalog(
    n: int, block_values: Sequence[int] = ()
) -> list[tuple[int, ...]]:
    """Candidate space-map rows for an ``n``-dimensional algorithm.

    Returns per-axis projections, pairwise sums/differences, and blocked
    rows ``b·e_i + e_j`` for each ``b`` in ``block_values`` -- the shapes
    from which the paper's own ``S`` matrices are drawn.
    """
    rows: list[tuple[int, ...]] = []

    def unit(i: int, scale: int = 1) -> list[int]:
        row = [0] * n
        row[i] = scale
        return row

    for i in range(n):
        rows.append(tuple(unit(i)))
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            row = unit(i)
            row[j] = 1
            rows.append(tuple(row))
            row = unit(i)
            row[j] = -1
            rows.append(tuple(row))
    for b in block_values:
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                row = unit(i, b)
                row[j] = 1
                rows.append(tuple(row))
    # Deduplicate while preserving order.
    seen: set[tuple[int, ...]] = set()
    out = []
    for r in rows:
        if r not in seen:
            seen.add(r)
            out.append(r)
    return out


def _space_candidates(
    n: int,
    target_space_dim: int,
    block_values: Sequence[int],
) -> Iterator[list[list[int]]]:
    catalog = space_map_catalog(n, block_values)
    for combo in itertools.combinations(catalog, target_space_dim):
        s = [list(r) for r in combo]
        if integer_rank(s) < target_space_dim:
            obs.count("mapping.pruned.space_rank")
            continue
        obs.count("mapping.space_candidates")
        yield s


# ---------------------------------------------------------------------------
# Stage 3: shared schedule enumeration
# ---------------------------------------------------------------------------

def ranked_schedules(
    algorithm: Algorithm,
    binding: ParamBinding,
    schedule_bound: int,
) -> list[tuple[int, tuple[int, ...]]]:
    """All valid schedules within the coefficient bound, fastest first.

    Returns ``(execution_time, Π)`` pairs sorted by time (ties keep
    enumeration order).  Validity (``Π D > 0``) and the time (4.5) depend
    only on ``(D, J, binding)`` -- not on the space mapping -- so the
    search computes this list once and reuses it for every space candidate.
    """
    n = algorithm.dim
    out: list[tuple[int, tuple[int, ...]]] = []
    rejected = 0
    for pi in itertools.product(
        range(-schedule_bound, schedule_bound + 1), repeat=n
    ):
        if not schedule_is_valid(pi, algorithm):
            rejected += 1
            continue
        out.append((execution_time(pi, algorithm, binding), tuple(pi)))
    out.sort(key=lambda item: item[0])
    obs.count_many(
        {
            "schedules_tried": rejected + len(out),
            "schedules_valid": len(out),
        },
        prefix="mapping.",
    )
    return out


# ---------------------------------------------------------------------------
# Stage 4: per-candidate evaluation (shared by sequential and worker paths)
# ---------------------------------------------------------------------------

@dataclass
class _EvalContext:
    """Everything needed to evaluate one space candidate."""

    algorithm: Algorithm
    binding: ParamBinding
    primitives: Sequence[Sequence[int]] | None
    schedules: list[tuple[int, tuple[int, ...]]]
    require_busy: bool
    cache: EvalCache
    strategy: str = "catalog"
    solver_ctx: object | None = None

    def solver_context(self):
        """The lazily built (and process-local) solver constraint tables."""
        if self.solver_ctx is None:
            from repro.mapping.solver import SolverContext

            self.solver_ctx = SolverContext(
                self.algorithm, self.binding, self.primitives,
                self.schedules, self.require_busy, self.cache,
            )
        return self.solver_ctx


def _evaluate_space(
    space: list[list[int]], ctx: _EvalContext
) -> tuple[list[int], FeasibilityReport] | None:
    """The fastest schedule making ``[space; Π]`` pass Definition 4.1.

    Walks the shared time-sorted schedule list and returns the first ``Π``
    whose full feasibility check (including conflict-freedom with this
    specific ``S``) passes.  The walk runs under a
    ``mapping.evaluate_space`` span -- the per-candidate trace unit that
    worker processes ship back in their registry deltas, so sequential and
    parallel runs produce the same span structure.

    Under ``strategy="solver"`` the walk is delegated to
    :func:`repro.mapping.solver.evaluate_space_solver`, which returns the
    same ``(Π, report)`` for every space while discharging the cheap
    Definition 4.1 conditions as cuts before the full check.
    """
    if ctx.strategy == "solver":
        from repro.mapping.solver import evaluate_space_solver

        return evaluate_space_solver(space, ctx.solver_context())
    with obs.span("mapping.evaluate_space"):
        for _, pi in ctx.schedules:
            mapping = MappingMatrix(space + [list(pi)])
            if ctx.require_busy and not mapping.entries_coprime():
                obs.count("mapping.pruned.coprime_precheck")
                continue
            report = check_feasibility(
                mapping, ctx.algorithm, ctx.binding, ctx.primitives,
                cache=ctx.cache,
            )
            if report.feasible:
                return list(pi), report
    return None


def _iter_sequential(
    spaces: list[list[list[int]]],
    ctx: _EvalContext,
    cap: int | None,
    progress=obs.NULL_PROGRESS,
) -> Iterator[tuple[list[list[int]], list[int], FeasibilityReport]]:
    yielded = 0
    for space in spaces:
        result = _evaluate_space(space, ctx)
        progress.advance()
        if result is None:
            continue
        yield space, result[0], result[1]
        yielded += 1
        if cap is not None and yielded >= cap:
            return


# ---------------------------------------------------------------------------
# Stage 5: process fan-out with deterministic merge
# ---------------------------------------------------------------------------

#: Per-process evaluation context, installed by the pool initializer so the
#: algorithm/schedule payload is shipped once per worker, not per chunk, and
#: the memo cache persists across the chunks a worker processes.
_WORKER_CTX: _EvalContext | None = None

#: Whether the parent had telemetry enabled when the pool was created;
#: workers only pay for per-candidate registries (and ship deltas back)
#: when someone is collecting.
_WORKER_TELEMETRY: bool = False


def _worker_init(payload: tuple) -> None:
    global _WORKER_CTX, _WORKER_TELEMETRY
    (algorithm, binding, primitives, schedules, require_busy, strategy,
     telemetry) = payload
    _WORKER_CTX = _EvalContext(
        algorithm=algorithm,
        binding=binding,
        primitives=primitives,
        schedules=schedules,
        require_busy=require_busy,
        cache=EvalCache(),
        strategy=strategy,
    )
    _WORKER_TELEMETRY = telemetry


def _eval_chunk(
    chunk: list[tuple[int, list[list[int]]]],
) -> list[tuple[int, list[int] | None, FeasibilityReport | None, dict | None]]:
    """Evaluate a chunk of (index, space) candidates in a worker process.

    With telemetry on, every candidate is evaluated under its own
    registry and returns ``(index, pi, report, delta)`` -- ``pi``/
    ``report`` are ``None`` for infeasible candidates, and ``delta`` is
    the candidate's full registry delta (counters, histograms, the
    ``mapping.evaluate_space`` span tree).  Per-candidate deltas let the
    parent merge telemetry in catalog order and stop merging exactly at
    the early-stop point, so aggregate metrics match the sequential scan
    even though workers evaluate speculatively past it.

    With telemetry off, only feasible candidates are returned (with
    ``delta=None``) and no registries are created.
    """
    ctx = _WORKER_CTX
    assert ctx is not None, "worker used before initialization"
    out: list[tuple[int, list[int] | None, FeasibilityReport | None,
                    dict | None]] = []
    for index, space in chunk:
        if _WORKER_TELEMETRY:
            with obs.collecting() as reg:
                result = _evaluate_space(space, ctx)
            pi, report = result if result is not None else (None, None)
            out.append((index, pi, report, reg.delta()))
        else:
            result = _evaluate_space(space, ctx)
            if result is not None:
                out.append((index, result[0], result[1], None))
    return out


def _structural_copy(algorithm: Algorithm) -> Algorithm:
    """The algorithm minus its computation set.

    Feasibility only consults ``(J, D)``; dropping ``E`` keeps the worker
    payload small and avoids pickling executable semantics closures.
    """
    return Algorithm(
        algorithm.index_set, algorithm.dependences, None, algorithm.name
    )


def _iter_parallel(
    spaces: list[list[list[int]]],
    ctx: _EvalContext,
    workers: int,
    cap: int | None,
    progress=obs.NULL_PROGRESS,
) -> Iterator[tuple[list[list[int]], list[int], FeasibilityReport]]:
    telemetry = obs.enabled()
    payload = (
        _structural_copy(ctx.algorithm),
        ctx.binding,
        ctx.primitives,
        ctx.schedules,
        ctx.require_busy,
        ctx.strategy,
        telemetry,
    )
    indexed = list(enumerate(spaces))
    # Small chunks keep the pool busy near the early-stop point without
    # flooding the result queue; the merge order (and hence the output) is
    # chunk order, so the chunk size never affects results.
    chunk_size = max(1, -(-len(indexed) // (workers * 8)))
    chunks = [
        indexed[i:i + chunk_size] for i in range(0, len(indexed), chunk_size)
    ]
    reg = obs.get_registry()
    yielded = 0
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_worker_init, initargs=(payload,)
    ) as pool:
        futures = [pool.submit(_eval_chunk, chunk) for chunk in chunks]
        for future in futures:
            # Futures are consumed (and per-candidate deltas merged) in
            # catalog order, and the merge stops at the candidate that
            # fills the early-stop cap -- exactly the prefix the
            # sequential scan would have evaluated -- so aggregate
            # metrics are identical for every worker count (up to the
            # worker-local cache's hit/miss split, whose sum is stable).
            for index, pi, report, delta in future.result():
                if reg is not None and delta is not None:
                    reg.merge_delta(delta)
                    progress.advance()
                if pi is None:
                    continue
                yield spaces[index], pi, report
                yielded += 1
                if cap is not None and yielded >= cap:
                    for pending in futures:
                        pending.cancel()
                    return


# ---------------------------------------------------------------------------
# Cross-run memo persistence
# ---------------------------------------------------------------------------

_MEMO_KIND = "mapping-memo"
_MEMO_KEY = "shared"


def _load_memo(store, cache: EvalCache) -> None:
    """Seed ``cache`` from the shared persisted memo entry (best-effort)."""
    from repro.cache import Unserializable, decode_obj

    payload = store.get(_MEMO_KIND, _MEMO_KEY)
    if not isinstance(payload, list):
        return
    loaded = 0
    for entry in payload:
        try:
            key, value = entry
            cache.data[decode_obj(key)] = decode_obj(value)
            loaded += 1
        except (Unserializable, TypeError, ValueError):
            continue
    obs.count("mapping.memo_loaded", loaded)


def _save_memo(store, cache: EvalCache) -> None:
    """Persist ``cache`` (already merged with the loaded entries)."""
    from repro.cache import Unserializable, encode_obj

    payload = []
    for key, value in cache.data.items():
        try:
            payload.append([encode_obj(key), encode_obj(value)])
        except Unserializable:
            continue
    store.put(_MEMO_KIND, _MEMO_KEY, payload)
    obs.count("mapping.memo_saved", len(payload))


# ---------------------------------------------------------------------------
# The engine entry point and the public API
# ---------------------------------------------------------------------------

def run_search(
    algorithm: Algorithm,
    binding: ParamBinding,
    primitives: Sequence[Sequence[int]] | None,
    config: SearchConfig | None = None,
) -> list[DesignCandidate]:
    """Enumerate feasible designs, best (fastest, then smallest) first.

    Parameters
    ----------
    algorithm:
        The algorithm ``(J, D, E)`` to map.
    binding:
        Parameter values instantiating ``J``.
    primitives:
        Interconnection primitive matrix ``P`` for the target array
        (``None`` = unconstrained interconnect; condition 2 waived).
    config:
        The :class:`SearchConfig` (defaults throughout when omitted).

    The ranked result list is deterministic and identical for every
    ``config.workers`` value.
    """
    config = config if config is not None else SearchConfig()
    strategy = config.resolved_strategy
    found: list[DesignCandidate] = []
    n = algorithm.dim
    with obs.span(
        "mapping.search_designs",
        dim=n,
        target_space_dim=config.target_space_dim,
        schedule_bound=config.schedule_bound,
        workers=config.workers,
        strategy=strategy,
    ):
        obs.gauge("mapping.workers", config.workers)
        schedules = ranked_schedules(algorithm, binding, config.schedule_bound)
        obs.gauge("mapping.schedule_pool", len(schedules))
        time_of = {pi: t for t, pi in schedules}
        ctx = _EvalContext(
            algorithm=algorithm,
            binding=binding,
            primitives=primitives,
            schedules=schedules,
            require_busy=config.require_busy,
            cache=EvalCache(),
            strategy=strategy,
        )
        store = None
        if config.persist_cache is not False:
            from repro.cache import resolve_cache

            store = resolve_cache(config.persist_cache, None)
            if store is not None:
                _load_memo(store, ctx.cache)
        if strategy == "solver":
            from repro.mapping.solver import enumerate_spaces

            spaces = enumerate_spaces(
                ctx.solver_context(), config.target_space_dim,
                config.block_values,
            )
        else:
            spaces = list(
                _space_candidates(
                    n, config.target_space_dim, config.block_values
                )
            )
        d_cols = [tuple(c) for c in algorithm.dependences.columns()]
        with obs.progress("mapping.spaces", total=len(spaces)) as progress:
            if config.workers <= 1 or len(spaces) <= 1 or not schedules:
                feasible = _iter_sequential(
                    spaces, ctx, config.stop_after, progress
                )
            else:
                feasible = _iter_parallel(
                    spaces, ctx, config.workers, config.stop_after, progress
                )
            for space, pi, report in feasible:
                mapping = MappingMatrix(
                    space + [pi], name=f"T-search-{len(found)}"
                )
                found.append(
                    DesignCandidate(
                        mapping=mapping,
                        time=time_of[tuple(pi)],
                        processors=processor_count(
                            mapping, algorithm.index_set, binding
                        ),
                        report=report,
                        wire_length=design_wire_length(
                            report.interconnect, space, d_cols
                        ),
                    )
                )
        found = _rank(found, config)
        obs.count("mapping.designs_found", len(found))
        if store is not None and ctx.cache.misses:
            _save_memo(store, ctx.cache)
    return found


def _rank(
    found: list[DesignCandidate], config: SearchConfig
) -> list[DesignCandidate]:
    """Order (and truncate) the collected designs per the config.

    Classic mode sorts by ``(time, processors)``; frontier mode keeps the
    Pareto-non-dominated designs over the configured metrics, canonically
    ordered by ``(metrics, rows)``.  Shared by :func:`run_search` and the
    sharded coordinator so both produce identical output from the same
    feasible stream.
    """
    if config.frontier is not None:
        by_point = {
            FrontierPoint(
                metrics=tuple(getattr(c, m) for m in config.frontier),
                rows=c.mapping.rows,
            ): c
            for c in found
        }
        frontier = pareto_frontier(by_point)
        obs.count("mapping.frontier_size", len(frontier))
        found = [by_point[pt] for pt in frontier]
    else:
        found.sort(key=lambda c: (c.time, c.processors))
    if config.max_candidates is not None:
        found = found[:config.max_candidates]
    return found


#: Legacy per-parameter names accepted (deprecated) by search_designs, in
#: their historical positional order.
_LEGACY_PARAMS = (
    "target_space_dim",
    "block_values",
    "schedule_bound",
    "max_candidates",
    "require_busy",
)


def search_designs(
    algorithm: Algorithm,
    binding: ParamBinding,
    primitives: Sequence[Sequence[int]] | None = None,
    config: SearchConfig | None = None,
    *legacy_args,
    **legacy_kwargs,
) -> list[DesignCandidate]:
    """Search the design space (see :func:`run_search`).

    The one supported way to parameterize the search is
    ``config=SearchConfig(...)``.  The historical per-parameter signature
    ``search_designs(alg, binding, primitives, target_space_dim=...,
    block_values=..., schedule_bound=..., max_candidates=...,
    require_busy=...)`` still works -- positionally or by keyword -- but
    emits a :class:`DeprecationWarning` and forwards to the engine.
    """
    if isinstance(config, SearchConfig):
        if legacy_args or legacy_kwargs:
            raise TypeError(
                "pass either config=SearchConfig(...) or the deprecated "
                "individual parameters, not both"
            )
        return run_search(algorithm, binding, primitives, config)
    positional = list(legacy_args)
    if config is not None:
        # A non-SearchConfig fourth positional is the legacy
        # target_space_dim.
        positional.insert(0, config)
    if not positional and not legacy_kwargs:
        return run_search(algorithm, binding, primitives, SearchConfig())
    if len(positional) > len(_LEGACY_PARAMS):
        raise TypeError(
            f"search_designs() takes at most {3 + len(_LEGACY_PARAMS)} "
            f"positional arguments"
        )
    values = dict(zip(_LEGACY_PARAMS, positional))
    for key, val in legacy_kwargs.items():
        if key not in _LEGACY_PARAMS:
            raise TypeError(
                f"search_designs() got an unexpected keyword argument {key!r}"
            )
        if key in values:
            raise TypeError(
                f"search_designs() got multiple values for argument {key!r}"
            )
        values[key] = val
    warnings.warn(
        "passing individual search parameters to search_designs() is "
        "deprecated; pass config=SearchConfig(...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_search(algorithm, binding, primitives, SearchConfig(**values))
