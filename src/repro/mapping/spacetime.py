"""Space-mapping geometry: processor counts and array extents.

The paper reports ``s = |{S q̄ : q̄ ∈ J}| = u²p²`` processors for the
design of Fig. 4 and ``(u·p)²`` for Fig. 5.  :func:`processor_count` computes
``|S(J)|`` exactly by enumeration, and :func:`space_extents` gives the
bounding box of the processor array (its physical footprint).
"""

from __future__ import annotations

from repro.mapping.transform import MappingMatrix
from repro.structures.indexset import IndexSet
from repro.structures.params import ParamBinding

__all__ = ["processor_count", "space_extents", "processor_set"]


def processor_set(
    t: MappingMatrix, index_set: IndexSet, binding: ParamBinding
) -> set[tuple[int, ...]]:
    """The exact image ``{S q̄ : q̄ ∈ J}``."""
    return {t.processor_of(point) for point in index_set.points(binding)}


def processor_count(
    t: MappingMatrix, index_set: IndexSet, binding: ParamBinding
) -> int:
    """``|S(J)|`` -- the number of processors the design uses."""
    return len(processor_set(t, index_set, binding))


def space_extents(
    t: MappingMatrix, index_set: IndexSet, binding: ParamBinding
) -> list[tuple[int, int]]:
    """Per-dimension ``(min, max)`` processor coordinates (array footprint)."""
    procs = processor_set(t, index_set, binding)
    dims = len(next(iter(procs))) if procs else 0
    return [
        (min(pr[d] for pr in procs), max(pr[d] for pr in procs))
        for d in range(dims)
    ]
