"""The five feasibility conditions of Definition 4.1, checked exactly.

1. ``Π D > 0̄`` -- the schedule respects every dependence.
2. ``S·D = P·K`` with ``Σ_j k_ji <= Π d̄_i`` -- every dependence
   displacement is realizable on the target interconnect before the datum is
   needed (condition (4.1)); slack becomes link buffers.
3. ``τ`` injective on ``J`` -- no two computations share a processor-time
   slot.
4. ``rank(T) = k`` -- the design genuinely uses ``k-1`` space dimensions.
5. The entries of ``T`` are relatively prime -- no globally idle beat.

:func:`check_feasibility` evaluates all five on a concrete instance and
returns a structured report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro import obs
from repro.mapping.conflicts import conflict_directions
from repro.mapping.interconnect import InterconnectSolution, solve_interconnect
from repro.mapping.transform import MappingMatrix
from repro.structures.algorithm import Algorithm
from repro.structures.params import ParamBinding

__all__ = ["FeasibilityReport", "check_feasibility"]


@dataclass
class FeasibilityReport:
    """Outcome of the five-condition feasibility check."""

    schedule_valid: bool  # condition 1
    interconnect: InterconnectSolution | None  # condition 2 (None = untested)
    interconnect_ok: bool
    conflict_free: bool  # condition 3
    conflicts: list = field(default_factory=list)
    rank_ok: bool = False  # condition 4
    coprime_ok: bool = False  # condition 5

    @property
    def feasible(self) -> bool:
        """All checked conditions hold."""
        return (
            self.schedule_valid
            and self.interconnect_ok
            and self.conflict_free
            and self.rank_ok
            and self.coprime_ok
        )

    def summary(self) -> str:
        """One-line pass/fail breakdown."""
        flags = [
            ("ΠD>0", self.schedule_valid),
            ("SD=PK", self.interconnect_ok),
            ("no-conflict", self.conflict_free),
            ("rank", self.rank_ok),
            ("coprime", self.coprime_ok),
        ]
        return ", ".join(f"{name}:{'ok' if ok else 'FAIL'}" for name, ok in flags)

    def failed_conditions(self) -> list[str]:
        """Names of the conditions that did not hold (metric labels)."""
        out = []
        if not self.schedule_valid:
            out.append("schedule")
        if not self.interconnect_ok:
            out.append("interconnect")
        if not self.conflict_free:
            out.append("conflict")
        if not self.rank_ok:
            out.append("rank")
        if not self.coprime_ok:
            out.append("coprime")
        return out


def check_feasibility(
    t: MappingMatrix,
    algorithm: Algorithm,
    binding: ParamBinding,
    primitives: Sequence[Sequence[int]] | None = None,
) -> FeasibilityReport:
    """Check Definition 4.1 for a mapping on a concrete algorithm instance.

    Parameters
    ----------
    t:
        The mapping matrix ``T = [S; Π]``.
    algorithm:
        The algorithm ``(J, D, E)``; validity conditions on dependence
        vectors do not weaken the check (a vector valid anywhere must be
        respected by the schedule everywhere it applies, and the paper's
        conditions are all checked against the full ``D``).
    binding:
        Parameter values instantiating ``J``.
    primitives:
        Interconnection primitive matrix ``P``; when omitted, condition 2 is
        recorded as trivially satisfied (unconstrained target).
    """
    n = algorithm.dim
    if t.n != n:
        raise ValueError(
            f"mapping width {t.n} does not match algorithm dimension {n}"
        )
    reg = obs.get_registry()
    t0 = time.perf_counter() if reg is not None else 0.0
    schedule = t.schedule
    schedule_valid = all(
        sum(c * d for c, d in zip(schedule, vec.vector)) > 0
        for vec in algorithm.dependences
    )

    interconnect: InterconnectSolution | None = None
    interconnect_ok = True
    if primitives is not None:
        d_cols = algorithm.dependences.columns()
        d_matrix = [[col[row] for col in d_cols] for row in range(n)]
        interconnect = solve_interconnect(t.space, d_matrix, schedule, primitives)
        interconnect_ok = interconnect is not None

    if getattr(algorithm.index_set, "is_constrained", False):
        from repro.mapping.conflicts import find_conflicts

        directions = find_conflicts(t, algorithm.index_set, binding, limit=5)
    else:
        directions = conflict_directions(t, algorithm.index_set, binding)

    report = FeasibilityReport(
        schedule_valid=schedule_valid,
        interconnect=interconnect,
        interconnect_ok=interconnect_ok,
        conflict_free=not directions,
        conflicts=directions,
        rank_ok=t.rank() == t.k,
        coprime_ok=t.entries_coprime(),
    )
    if reg is not None:
        reg.count("mapping.candidates_enumerated")
        reg.count("mapping.conflict_checks")
        # 0-increments materialize both keys, so every metrics export has
        # the enumerated/pruned pair even for all-feasible runs.
        reg.count("mapping.feasible", int(report.feasible))
        reg.count("mapping.pruned", int(not report.feasible))
        for cond in report.failed_conditions():
            reg.count(f"mapping.pruned.{cond}")
        reg.observe("mapping.feasibility_seconds", time.perf_counter() - t0)
    return report
