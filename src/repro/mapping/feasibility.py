"""The five feasibility conditions of Definition 4.1, checked exactly.

1. ``Π D > 0̄`` -- the schedule respects every dependence.
2. ``S·D = P·K`` with ``Σ_j k_ji <= Π d̄_i`` -- every dependence
   displacement is realizable on the target interconnect before the datum is
   needed (condition (4.1)); slack becomes link buffers.
3. ``τ`` injective on ``J`` -- no two computations share a processor-time
   slot.
4. ``rank(T) = k`` -- the design genuinely uses ``k-1`` space dimensions.
5. The entries of ``T`` are relatively prime -- no globally idle beat.

:func:`check_feasibility` evaluates the conditions on a concrete instance
*cheapest first* -- rank (4), coprimality (5), schedule (1), interconnect
(2), conflicts (3) -- and stops at the first failure, so the exponential
conflict enumeration only runs for candidates that already pass everything
else.  Conditions skipped by the short circuit are reported as ``None``
("not checked"); pass ``full_report=True`` to evaluate all five regardless
of failures (diagnostics, error messages).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro import obs
from repro.mapping.conflicts import find_conflicts
from repro.mapping.interconnect import InterconnectSolution, solve_interconnect
from repro.mapping.memo import EvalCache
from repro.mapping.transform import MappingMatrix
from repro.structures.algorithm import Algorithm
from repro.structures.params import ParamBinding

__all__ = ["FeasibilityReport", "check_feasibility"]

#: Cap on conflict witnesses recorded in a report (diagnostic payload only;
#: feasibility needs a single witness to fail a candidate).
_CONFLICT_WITNESSES = 5


@dataclass
class FeasibilityReport:
    """Outcome of the five-condition feasibility check.

    Each flag is ``True`` (holds), ``False`` (violated) or ``None`` (not
    checked -- a cheaper condition already failed and the check
    short-circuited).
    """

    schedule_valid: bool | None  # condition 1
    interconnect: InterconnectSolution | None  # condition 2 (None = untested)
    interconnect_ok: bool | None
    conflict_free: bool | None  # condition 3
    conflicts: list = field(default_factory=list)
    rank_ok: bool | None = False  # condition 4
    coprime_ok: bool | None = False  # condition 5

    @property
    def feasible(self) -> bool:
        """All five conditions checked and holding."""
        return bool(
            self.schedule_valid
            and self.interconnect_ok
            and self.conflict_free
            and self.rank_ok
            and self.coprime_ok
        )

    def summary(self) -> str:
        """One-line pass/fail/skip breakdown."""
        flags = [
            ("ΠD>0", self.schedule_valid),
            ("SD=PK", self.interconnect_ok),
            ("no-conflict", self.conflict_free),
            ("rank", self.rank_ok),
            ("coprime", self.coprime_ok),
        ]
        word = {True: "ok", False: "FAIL", None: "skipped"}
        return ", ".join(f"{name}:{word[ok]}" for name, ok in flags)

    def failed_conditions(self) -> list[str]:
        """Names of the conditions that were checked and did not hold."""
        out = []
        if self.schedule_valid is False:
            out.append("schedule")
        if self.interconnect_ok is False:
            out.append("interconnect")
        if self.conflict_free is False:
            out.append("conflict")
        if self.rank_ok is False:
            out.append("rank")
        if self.coprime_ok is False:
            out.append("coprime")
        return out


def check_feasibility(
    t: MappingMatrix,
    algorithm: Algorithm,
    binding: ParamBinding,
    primitives: Sequence[Sequence[int]] | None = None,
    *,
    full_report: bool = False,
    cache: EvalCache | None = None,
) -> FeasibilityReport:
    """Check Definition 4.1 for a mapping on a concrete algorithm instance.

    Parameters
    ----------
    t:
        The mapping matrix ``T = [S; Π]``.
    algorithm:
        The algorithm ``(J, D, E)``; validity conditions on dependence
        vectors do not weaken the check (a vector valid anywhere must be
        respected by the schedule everywhere it applies, and the paper's
        conditions are all checked against the full ``D``).
    binding:
        Parameter values instantiating ``J``.
    primitives:
        Interconnection primitive matrix ``P``; when omitted, condition 2 is
        recorded as trivially satisfied (unconstrained target).
    full_report:
        Evaluate all five conditions even after a failure.  The default
        stops at the first violated condition (cheapest-first order: rank,
        coprime, schedule, interconnect, conflicts) and reports the
        unchecked ones as ``None``.
    cache:
        Optional :class:`~repro.mapping.memo.EvalCache` memoizing the
        conflict enumeration and per-column interconnect solves across
        calls (the design-space search engine passes one per run).
    """
    n = algorithm.dim
    if t.n != n:
        raise ValueError(
            f"mapping width {t.n} does not match algorithm dimension {n}"
        )
    reg = obs.get_registry()
    t0 = time.perf_counter() if reg is not None else 0.0

    schedule_valid: bool | None = None
    interconnect: InterconnectSolution | None = None
    interconnect_ok: bool | None = None
    conflict_free: bool | None = None
    conflicts: list = []

    # Condition 4: rank (a handful of row reductions on a k x n matrix).
    rank_ok = t.rank() == t.k
    proceed = full_report or rank_ok

    # Condition 5: coprimality (one gcd sweep over the entries).
    coprime_ok: bool | None = None
    if proceed:
        coprime_ok = t.entries_coprime()
        proceed = full_report or coprime_ok

    # Condition 1: Π D > 0 (m dot products).
    if proceed:
        schedule = t.schedule
        schedule_valid = all(
            sum(c * d for c, d in zip(schedule, vec.vector)) > 0
            for vec in algorithm.dependences
        )
        proceed = full_report or schedule_valid

    # Condition 2: S·D = P·K under the arrival deadline (bounded DFS per
    # dependence column; memoized per (P, S d̄_i, Π d̄_i) when cached).
    if proceed:
        if primitives is not None:
            d_cols = algorithm.dependences.columns()
            d_matrix = [[col[row] for col in d_cols] for row in range(n)]
            interconnect = solve_interconnect(
                t.space, d_matrix, t.schedule, primitives, cache=cache
            )
            interconnect_ok = interconnect is not None
        else:
            interconnect_ok = True
        proceed = full_report or interconnect_ok

    # Condition 3: conflict-freedom (the exponential check, last).
    if proceed:
        conflicts = find_conflicts(
            t, algorithm.index_set, binding,
            limit=_CONFLICT_WITNESSES, cache=cache,
        )
        conflict_free = not conflicts
        if reg is not None:
            reg.count("mapping.conflict_checks")

    report = FeasibilityReport(
        schedule_valid=schedule_valid,
        interconnect=interconnect,
        interconnect_ok=interconnect_ok,
        conflict_free=conflict_free,
        conflicts=conflicts,
        rank_ok=rank_ok,
        coprime_ok=coprime_ok,
    )
    if reg is not None:
        reg.count("mapping.candidates_enumerated")
        # 0-increments materialize both keys, so every metrics export has
        # the enumerated/pruned pair even for all-feasible runs.
        reg.count("mapping.feasible", int(report.feasible))
        reg.count("mapping.pruned", int(not report.feasible))
        for cond in report.failed_conditions():
            reg.count(f"mapping.pruned.{cond}")
        reg.observe("mapping.feasibility_seconds", time.perf_counter() - t0)
    return report
