"""Work-queue sharding of the design-space search over the artifact cache.

Scaling the search past one process (and, later, one machine) needs three
things the in-process engine does not provide: a *durable* unit of work
that any worker can pick up, a *claim* protocol so two workers do not
fight over a unit, and a *merge* that is independent of who computed
what.  This module supplies all three on top of the existing shared-mode
:class:`~repro.cache.store.ArtifactCache` and
:class:`~repro.cache.lock.FileLock` -- no new infrastructure, just files
in a directory any number of processes (or NFS-mounted machines) share:

* **Blocks.**  The space-candidate list -- enumerated deterministically
  by the solver (or catalog) exactly as :func:`run_search` would -- is
  split into contiguous index blocks whose size depends only on the
  candidate count, never on the worker count.
* **Claims.**  A JSON ledger under ``<shard_dir>/claims.lock`` maps block
  ids to claimants; a worker takes the lock, claims the first unclaimed
  block, and releases.  Claims are advisory: losing the lock (timeout)
  only risks duplicated work, never wrong output, because block results
  are deterministic and idempotent.
* **Results.**  Each finished block is published as one artifact-cache
  entry keyed by :func:`~repro.cache.keys.shard_run_key` + block id:
  the feasible designs in scan order, the block's partial Pareto
  frontier, its obs counter delta, and its :class:`EvalCache` delta.
  Every block is evaluated from a *fresh* cache, so its payload is a
  pure function of the block -- the property that makes merged metrics
  byte-identical for any worker count and claim interleaving.
* **Merge.**  The coordinator folds block payloads *in block-index
  order*: designs concatenate back into scan order (then rank or
  frontier-merge exactly as :func:`run_search` does), counters sum,
  partial frontiers fold through the associative
  :func:`~repro.mapping.pareto.merge_frontiers`, and the union of memo
  deltas is published as the shared ``mapping-memo`` entry for future
  engine runs against the same cache directory.  Blocks missing after
  the pool drains (a crashed worker) are evaluated inline by the
  coordinator, so the merge always completes.

The result payload (:meth:`ShardedSearchResult.payload_json`) is
byte-identical across worker counts 1/2/4 -- pinned by tests and a CI
diff -- and its design list matches :func:`run_search` for the same
:class:`SearchConfig`.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro import obs
from repro.mapping.engine import (
    SearchConfig,
    _EvalContext,
    _evaluate_space,
    _save_memo,
    _space_candidates,
    _structural_copy,
    ranked_schedules,
)
from repro.mapping.memo import EvalCache
from repro.mapping.pareto import (
    FrontierPoint,
    design_wire_length,
    merge_frontiers,
)
from repro.mapping.spacetime import processor_count
from repro.mapping.transform import MappingMatrix
from repro.structures.algorithm import Algorithm
from repro.structures.params import ParamBinding

__all__ = ["ShardedSearchResult", "run_sharded_search"]

#: Artifact-cache kind under which ledgers and block results live.
_KIND = "search-shard"


@dataclass
class ShardedSearchResult:
    """The deterministic merge of one sharded search.

    ``designs`` lists every feasible design kept after ranking (or the
    whole frontier in frontier mode) as JSON-native records with keys
    ``rows``, ``pi``, ``time``, ``processors``, ``wire_length``;
    ``frontier`` is the merged Pareto frontier (``None`` outside frontier
    mode); ``metrics`` sums the per-block obs counters in block order.
    ``workers`` is informational and deliberately excluded from
    :meth:`payload` -- everything in the payload is identical for any
    worker count.
    """

    designs: list[dict]
    frontier: list[dict] | None
    metrics: dict[str, int]
    blocks: int
    run_key: str
    workers: int

    def payload(self) -> dict:
        return {
            "run_key": self.run_key,
            "blocks": self.blocks,
            "designs": self.designs,
            "frontier": self.frontier,
            "metrics": self.metrics,
        }

    def payload_json(self) -> str:
        """Canonical bytes for the cross-worker-count identity contract."""
        return json.dumps(
            self.payload(), sort_keys=True, separators=(",", ":")
        )


# ---------------------------------------------------------------------------
# Deterministic plan (shared verbatim by coordinator and workers)
# ---------------------------------------------------------------------------

def _plan(
    algorithm: Algorithm,
    binding: ParamBinding,
    primitives: Sequence[Sequence[int]] | None,
    config: SearchConfig,
    block_size: int | None,
):
    """(schedules, time_of, spaces, blocks): the run's immutable geometry.

    Pure function of the search inputs -- workers rebuild it bit-for-bit
    from the shipped payload, so block ``i`` means the same candidate
    slice in every process.  The block size never depends on the worker
    count (that would break cross-count byte-identity of block payloads).
    """
    schedules = ranked_schedules(algorithm, binding, config.schedule_bound)
    time_of = {pi: t for t, pi in schedules}
    if config.resolved_strategy == "solver":
        from repro.mapping.solver import SolverContext, enumerate_spaces

        sctx = SolverContext(
            algorithm, binding, primitives, schedules,
            config.require_busy, EvalCache(),
        )
        spaces = enumerate_spaces(
            sctx, config.target_space_dim, config.block_values
        )
    else:
        spaces = list(
            _space_candidates(
                algorithm.dim, config.target_space_dim, config.block_values
            )
        )
    if block_size is None:
        block_size = max(1, -(-len(spaces) // 16))
    blocks = [
        (start, min(start + block_size, len(spaces)))
        for start in range(0, max(len(spaces), 1), block_size)
    ]
    return schedules, time_of, spaces, blocks


def _run_key(algorithm, binding, primitives, config, blocks) -> str:
    from repro.cache.keys import shard_run_key

    from dataclasses import asdict

    cfg = asdict(config)
    cfg["block_values"] = list(cfg["block_values"])
    cfg["frontier"] = (
        None if cfg["frontier"] is None else list(cfg["frontier"])
    )
    cfg.pop("workers", None)  # any worker count cooperates on one run
    cfg.pop("persist_cache", None)
    return shard_run_key(
        algorithm.name,
        [list(c) for c in algorithm.dependences.columns()],
        algorithm.index_set.bounds(binding),
        primitives,
        cfg,
        len(blocks),
    )


# ---------------------------------------------------------------------------
# Claim protocol
# ---------------------------------------------------------------------------

def _ledger_key(run_key: str) -> str:
    return f"{run_key}-ledger"


def _block_key(run_key: str, block_id: int) -> str:
    return f"{run_key}-block-{block_id}"


def _claim_block(store, lock, run_key: str, n_blocks: int,
                 worker: str) -> int | None:
    """Claim the first unclaimed block id, or ``None`` when all are taken.

    Runs under the shared claims lock; on lock timeout the claim proceeds
    unlocked (best-effort, same policy as the cache store) -- the worst
    case is two workers computing the same deterministic block payload.
    """
    with lock:
        ledger = store.get(_KIND, _ledger_key(run_key))
        if not isinstance(ledger, dict) or "claimed" not in ledger:
            ledger = {"claimed": {}}
        for block_id in range(n_blocks):
            if str(block_id) in ledger["claimed"]:
                continue
            if store.get(_KIND, _block_key(run_key, block_id)) is not None:
                continue  # published by an earlier run of the same search
            ledger["claimed"][str(block_id)] = worker
            store.put(_KIND, _ledger_key(run_key), ledger)
            obs.count("mapping.shard.claims")
            return block_id
    return None


# ---------------------------------------------------------------------------
# Block evaluation (pure function of the block)
# ---------------------------------------------------------------------------

def _eval_block(
    spaces: list[list[list[int]]],
    algorithm: Algorithm,
    binding: ParamBinding,
    primitives: Sequence[Sequence[int]] | None,
    config: SearchConfig,
    schedules,
    time_of,
    d_cols,
) -> dict:
    """Evaluate one block from a fresh cache; JSON-native payload.

    The fresh :class:`EvalCache` (rather than one shared per worker) is
    what makes the payload independent of which worker evaluated the
    block and what it evaluated before -- the determinism anchor for the
    whole protocol.
    """
    ctx = _EvalContext(
        algorithm=algorithm,
        binding=binding,
        primitives=primitives,
        schedules=schedules,
        require_busy=config.require_busy,
        cache=EvalCache(),
        strategy=config.resolved_strategy,
    )
    designs: list[dict] = []
    with obs.collecting() as reg:
        for space in spaces:
            result = _evaluate_space(space, ctx)
            if result is None:
                continue
            pi, report = result
            mapping = MappingMatrix(space + [pi])
            designs.append(
                {
                    "rows": [list(r) for r in mapping.rows],
                    "pi": list(pi),
                    "time": time_of[tuple(pi)],
                    "processors": processor_count(
                        mapping, algorithm.index_set, binding
                    ),
                    "wire_length": design_wire_length(
                        report.interconnect, space, d_cols
                    ),
                }
            )
    frontier = None
    if config.frontier is not None:
        frontier = [
            pt.to_dict()
            for pt in merge_frontiers(
                _frontier_points(designs, config.frontier)
            )
        ]
    memo = _encode_memo(ctx.cache)
    return {
        "designs": designs,
        "frontier": frontier,
        "metrics": {
            name: int(value)
            for name, value in sorted(reg.delta()["counters"].items())
        },
        "memo": memo,
    }


def _frontier_points(designs: list[dict], metrics: tuple[str, ...]):
    return [
        FrontierPoint(
            metrics=tuple(int(d[m]) for m in metrics),
            rows=tuple(tuple(int(x) for x in row) for row in d["rows"]),
        )
        for d in designs
    ]


def _encode_memo(cache: EvalCache) -> list:
    from repro.cache import Unserializable, encode_obj

    out = []
    for key, value in cache.data.items():
        try:
            out.append([encode_obj(key), encode_obj(value)])
        except Unserializable:
            continue
    return out


# ---------------------------------------------------------------------------
# Worker loop (module-level for pickling)
# ---------------------------------------------------------------------------

def _worker_main(args: tuple) -> int:
    (shard_dir, worker_id, algorithm, binding, primitives, config,
     block_size) = args
    from repro.cache import ArtifactCache, FileLock

    schedules, time_of, spaces, blocks = _plan(
        algorithm, binding, primitives, config, block_size
    )
    run_key = _run_key(algorithm, binding, primitives, config, blocks)
    d_cols = [tuple(c) for c in algorithm.dependences.columns()]
    store = ArtifactCache(shard_dir, shared=True)
    lock = FileLock(Path(shard_dir) / "claims.lock")
    done = 0
    while True:
        block_id = _claim_block(
            store, lock, run_key, len(blocks), f"worker-{worker_id}"
        )
        if block_id is None:
            break
        start, end = blocks[block_id]
        payload = _eval_block(
            spaces[start:end], algorithm, binding, primitives, config,
            schedules, time_of, d_cols,
        )
        store.put(_KIND, _block_key(run_key, block_id), payload)
        done += 1
    return done


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------

def run_sharded_search(
    algorithm: Algorithm,
    binding: ParamBinding,
    primitives: Sequence[Sequence[int]] | None,
    config: SearchConfig | None = None,
    *,
    workers: int = 1,
    shard_dir: str | None = None,
    block_size: int | None = None,
) -> ShardedSearchResult:
    """Shard a design-space search over a shared cache directory.

    ``workers`` processes claim and evaluate candidate blocks out of
    ``shard_dir`` (a fresh temporary directory when ``None``; pass the
    same existing directory to several invocations -- or machines sharing
    a filesystem -- to cooperate on one run).  The merged result is
    byte-identical (:meth:`ShardedSearchResult.payload_json`) for every
    ``workers`` value, and its design list equals
    :func:`~repro.mapping.engine.run_search` under the same config.

    ``workers=1`` runs the same claim/publish/merge protocol in-process;
    the worker count only changes wall-clock, never output.
    """
    from repro.cache import ArtifactCache

    config = config if config is not None else SearchConfig()
    if workers < 1:
        raise ValueError("workers must be >= 1")
    ephemeral = shard_dir is None
    if ephemeral:
        shard_dir = tempfile.mkdtemp(prefix="repro-shard-")
    try:
        with obs.span(
            "mapping.shard.search", workers=workers,
            strategy=config.resolved_strategy,
        ):
            schedules, time_of, spaces, blocks = _plan(
                algorithm, binding, primitives, config, block_size
            )
            run_key = _run_key(
                algorithm, binding, primitives, config, blocks
            )
            d_cols = [tuple(c) for c in algorithm.dependences.columns()]
            obs.gauge("mapping.shard.workers", workers)
            obs.count("mapping.shard.blocks", len(blocks))
            payload = (
                _structural_copy(algorithm), binding, primitives, config,
                block_size,
            )
            if workers <= 1 or len(blocks) <= 1:
                _worker_main((shard_dir, 0) + payload)
            else:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    list(
                        pool.map(
                            _worker_main,
                            [
                                (shard_dir, i) + payload
                                for i in range(workers)
                            ],
                        )
                    )
            store = ArtifactCache(shard_dir, shared=True)
            merged = _merge(
                store, run_key, blocks, config, time_of, algorithm,
                binding, primitives, schedules, d_cols, workers,
            )
        return merged
    finally:
        if ephemeral:
            shutil.rmtree(shard_dir, ignore_errors=True)


def _merge(
    store, run_key, blocks, config, time_of, algorithm, binding,
    primitives, schedules, d_cols, workers,
) -> ShardedSearchResult:
    """Fold block payloads in block-index order (see module docstring)."""
    designs: list[dict] = []
    metrics: dict[str, int] = {}
    partial_frontiers: list[list[FrontierPoint]] = []
    memo = EvalCache()
    from repro.cache import Unserializable, decode_obj

    for block_id, (start, end) in enumerate(blocks):
        payload = store.get(_KIND, _block_key(run_key, block_id))
        if payload is None:
            # A worker died mid-block; finish its work inline.
            obs.count("mapping.shard.recovered_blocks")
            spaces = _plan_spaces_slice(
                algorithm, binding, primitives, config, start, end
            )
            payload = _eval_block(
                spaces, algorithm, binding, primitives, config,
                schedules, time_of, d_cols,
            )
            store.put(_KIND, _block_key(run_key, block_id), payload)
        designs.extend(payload["designs"])
        for name, value in payload["metrics"].items():
            metrics[name] = metrics.get(name, 0) + int(value)
        if payload.get("frontier") is not None:
            partial_frontiers.append(
                [
                    FrontierPoint(
                        metrics=tuple(int(x) for x in pt["metrics"]),
                        rows=tuple(
                            tuple(int(x) for x in row)
                            for row in pt["rows"]
                        ),
                    )
                    for pt in payload["frontier"]
                ]
            )
        for entry in payload.get("memo", ()):
            try:
                key, value = entry
                memo.data.setdefault(decode_obj(key), decode_obj(value))
            except (Unserializable, TypeError, ValueError):
                continue
    if config.stop_after is not None:
        designs = designs[:config.stop_after]
    frontier = None
    if config.frontier is not None:
        merged_frontier = merge_frontiers(*partial_frontiers)
        frontier = [pt.to_dict() for pt in merged_frontier]
        by_rows = {tuple(map(tuple, d["rows"])): d for d in designs}
        designs = [by_rows[pt.rows] for pt in merged_frontier]
    else:
        designs.sort(key=lambda d: (d["time"], d["processors"]))
    if config.max_candidates is not None:
        designs = designs[:config.max_candidates]
        if frontier is not None:
            frontier = frontier[:config.max_candidates]
    if memo.data:
        memo.misses = len(memo.data)  # mark dirty for _save_memo parity
        _save_memo(store, memo)
    obs.count("mapping.shard.designs", len(designs))
    return ShardedSearchResult(
        designs=designs,
        frontier=frontier,
        metrics={name: metrics[name] for name in sorted(metrics)},
        blocks=len(blocks),
        run_key=run_key,
        workers=workers,
    )


def _plan_spaces_slice(
    algorithm, binding, primitives, config, start, end
) -> list[list[list[int]]]:
    _, _, spaces, _ = _plan(algorithm, binding, primitives, config, None)
    return spaces[start:end]
