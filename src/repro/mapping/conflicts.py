"""Computational-conflict detection (condition 3 of Definition 4.1).

Two distinct index points ``j̄₁ ≠ j̄₂`` with ``T j̄₁ = T j̄₂`` would execute
on the same processor at the same time.  The check here is exact and comes
in two flavors:

* a *lattice* check: enumerate the integer nullspace of ``T`` inside the
  difference box of the index set -- any nonzero point is a conflict
  direction (this is binding-parametric only through the box);
* a *certificate* producer: return concrete colliding pairs for diagnostics.
"""

from __future__ import annotations

from repro.depanalysis.diophantine import UnboundedLatticeError, bounded_lattice_points
from repro.mapping.transform import MappingMatrix
from repro.structures.indexset import IndexSet
from repro.structures.params import ParamBinding
from repro.util.linalg import integer_nullspace

__all__ = ["is_conflict_free", "find_conflicts", "conflict_directions"]


def conflict_directions(
    t: MappingMatrix, index_set: IndexSet, binding: ParamBinding
) -> list[tuple[int, ...]]:
    """Nonzero integer vectors ``δ̄`` with ``T δ̄ = 0`` fitting in the
    difference box of the index set (each is a family of conflicts)."""
    nullspace = integer_nullspace([list(r) for r in t.rows])
    if not nullspace:
        return []
    bounds = index_set.bounds(binding)
    diff_box = [(lo - hi, hi - lo) for lo, hi in bounds]
    out = []
    try:
        for vec in bounded_lattice_points([0] * t.n, nullspace, diff_box):
            if any(vec):
                out.append(tuple(vec))
    except UnboundedLatticeError:
        # A nullspace direction unconstrained by the box: infinitely many
        # conflicts; report the raw basis vector.
        return [tuple(v) for v in nullspace]
    return out


def is_conflict_free(
    t: MappingMatrix, index_set: IndexSet, binding: ParamBinding
) -> bool:
    """True when ``τ`` is injective on the instantiated index set.

    For affine-constrained index sets the lattice test over the bounding
    box would be conservative (a conflict direction may fit the box but
    not the actual domain), so exact hashing is used instead.
    """
    if getattr(index_set, "is_constrained", False):
        return not find_conflicts(t, index_set, binding, limit=1)
    return not conflict_directions(t, index_set, binding)


def find_conflicts(
    t: MappingMatrix,
    index_set: IndexSet,
    binding: ParamBinding,
    limit: int = 10,
) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Concrete colliding index-point pairs (up to ``limit``), by hashing
    ``T j̄`` over the enumerated index set.  Useful for error messages."""
    seen: dict[tuple, tuple[int, ...]] = {}
    out: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
    for point in index_set.points(binding):
        image = (t.processor_of(point), t.time_of(point))
        if image in seen:
            out.append((seen[image], point))
            if len(out) >= limit:
                break
        else:
            seen[image] = point
    return out
