"""Computational-conflict detection (condition 3 of Definition 4.1).

Two distinct index points ``j̄₁ ≠ j̄₂`` with ``T j̄₁ = T j̄₂`` would execute
on the same processor at the same time.  The check here is exact and comes
in two flavors:

* a *lattice* check: enumerate the integer nullspace of ``T`` inside the
  difference box of the index set -- any nonzero point is a conflict
  direction (this is binding-parametric only through the box); exact for
  box index sets;
* a *certificate* producer: return concrete colliding pairs by hashing
  ``T j̄`` over the enumerated index set; exact for any index set,
  exponential in the instance size.

:func:`find_conflicts` is the single entry point: it dispatches to the
lattice check for plain box index sets and to exact pair enumeration for
affine-constrained ones (where a lattice direction may fit the bounding box
but not the actual domain).  The old lattice-only name
:func:`conflict_directions` survives as a deprecated shim.
"""

from __future__ import annotations

import warnings

from repro.depanalysis.diophantine import UnboundedLatticeError, bounded_lattice_points
from repro.mapping.memo import EvalCache
from repro.mapping.transform import MappingMatrix
from repro.structures.indexset import IndexSet
from repro.structures.params import ParamBinding
from repro.util.linalg import integer_nullspace

__all__ = [
    "is_conflict_free",
    "find_conflicts",
    "enumerate_conflict_pairs",
    "conflict_directions",
]


def find_conflicts(
    t: MappingMatrix,
    index_set: IndexSet,
    binding: ParamBinding,
    limit: int | None = None,
    *,
    cache: EvalCache | None = None,
) -> list[tuple]:
    """Conflict witnesses for ``T`` on the instantiated index set.

    Dispatches internally on the index-set shape:

    * plain boxes use the lattice check and return conflict *directions*
      ``δ̄`` (nonzero integer vectors with ``T δ̄ = 0`` fitting the
      difference box; each is a whole family of conflicts);
    * affine-constrained sets (``is_constrained``) use exact enumeration
      and return concrete colliding *pairs* ``(j̄₁, j̄₂)``.

    An empty list means ``τ`` is injective on ``J``.  ``limit`` bounds the
    number of witnesses returned (``None`` = all); ``cache``, when given,
    memoizes the enumeration on a canonicalized key -- the nullspace basis
    and difference box for the lattice check, the instantiated domain for
    the pair check -- so equivalent queries across candidate mappings are
    answered once.
    """
    if getattr(index_set, "is_constrained", False):
        if cache is None:
            return enumerate_conflict_pairs(t, index_set, binding, limit=limit)
        key = (
            "pairs",
            t.rows,
            tuple(index_set.bounds(binding)),
            getattr(index_set, "constraints", ()),
            limit,
        )
        return cache.get_or_compute(
            key,
            lambda: enumerate_conflict_pairs(t, index_set, binding, limit=limit),
        )
    return _lattice_directions(t, index_set, binding, limit, cache)


def _lattice_directions(
    t: MappingMatrix,
    index_set: IndexSet,
    binding: ParamBinding,
    limit: int | None,
    cache: EvalCache | None,
) -> list[tuple[int, ...]]:
    """The lattice flavor: nullspace directions inside the difference box."""
    nullspace = integer_nullspace([list(r) for r in t.rows])
    if not nullspace:
        return []
    bounds = index_set.bounds(binding)
    diff_box = tuple((lo - hi, hi - lo) for lo, hi in bounds)

    def compute() -> list[tuple]:
        try:
            return _enumerate_directions(nullspace, diff_box, t.n, limit)
        except UnboundedLatticeError:
            # Defensive: the difference box is bounded and the nullspace
            # basis is linearly independent, so the coefficient polytope is
            # bounded and enumeration should always succeed.  Should the
            # bounding machinery still give up, fall back to exact pair
            # enumeration rather than guessing (returning unverified basis
            # vectors here once caused false conflict reports on clean
            # mappings).
            return enumerate_conflict_pairs(t, index_set, binding, limit=limit)

    if cache is None:
        return compute()
    key = (
        "lattice",
        tuple(tuple(int(x) for x in vec) for vec in nullspace),
        diff_box,
        limit,
    )
    return cache.get_or_compute(key, compute)


def _enumerate_directions(
    nullspace: list[list[int]],
    diff_box: tuple[tuple[int, int], ...],
    n: int,
    limit: int | None,
) -> list[tuple[int, ...]]:
    out: list[tuple[int, ...]] = []
    for vec in bounded_lattice_points([0] * n, nullspace, list(diff_box)):
        if any(vec):
            out.append(tuple(vec))
            if limit is not None and len(out) >= limit:
                break
    return out


def is_conflict_free(
    t: MappingMatrix, index_set: IndexSet, binding: ParamBinding
) -> bool:
    """True when ``τ`` is injective on the instantiated index set."""
    return not find_conflicts(t, index_set, binding, limit=1)


def enumerate_conflict_pairs(
    t: MappingMatrix,
    index_set: IndexSet,
    binding: ParamBinding,
    limit: int | None = 10,
) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Concrete colliding index-point pairs (up to ``limit``), by hashing
    ``T j̄`` over the enumerated index set.  Useful for error messages and
    exact on any index-set shape, at enumeration cost."""
    seen: dict[tuple, tuple[int, ...]] = {}
    out: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
    for point in index_set.points(binding):
        image = (t.processor_of(point), t.time_of(point))
        if image in seen:
            out.append((seen[image], point))
            if limit is not None and len(out) >= limit:
                break
        else:
            seen[image] = point
    return out


def conflict_directions(
    t: MappingMatrix, index_set: IndexSet, binding: ParamBinding
) -> list[tuple[int, ...]]:
    """Deprecated: use :func:`find_conflicts`, which runs the same lattice
    check for box index sets (and dispatches to exact pair enumeration for
    constrained ones)."""
    warnings.warn(
        "conflict_directions() is deprecated; call find_conflicts(), which "
        "dispatches between the lattice check and exact pair enumeration",
        DeprecationWarning,
        stacklevel=2,
    )
    return _lattice_directions(t, index_set, binding, None, None)
