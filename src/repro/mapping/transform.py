"""The linear algorithm transformation ``τ(j̄) = T j̄``.

Definition 4.1: a ``k x n`` integer matrix ``T = [S; Π]`` maps an
``n``-dimensional algorithm onto a ``(k-1)``-dimensional processor array --
the computation indexed by ``j̄`` executes at *time* ``Π j̄`` (last row) on
*processor* ``S j̄`` (first ``k-1`` rows).
"""

from __future__ import annotations

from typing import Sequence

from repro.structures.params import ParamBinding
from repro.util.intmath import gcd_list
from repro.util.linalg import integer_rank, mat_vec

try:  # pragma: no cover - both paths exercised by the test suite
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["MappingMatrix"]


class MappingMatrix:
    """``T = [S; Π]`` with the space map ``S`` and linear schedule ``Π``."""

    __slots__ = ("rows", "name", "_np_schedule", "_np_space")

    def __init__(self, rows: Sequence[Sequence[int]], name: str = "T"):
        self.rows: tuple[tuple[int, ...], ...] = tuple(
            tuple(int(x) for x in row) for row in rows
        )
        if len(self.rows) < 1:
            raise ValueError("mapping matrix needs at least the schedule row")
        width = len(self.rows[0])
        if any(len(r) != width for r in self.rows):
            raise ValueError("ragged mapping matrix")
        self.name = name
        self._np_schedule = None  # lazy numpy views, built on first batch call
        self._np_space = None

    # -- structure -----------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of rows (the algorithm maps to a ``(k-1)``-D array)."""
        return len(self.rows)

    @property
    def n(self) -> int:
        """Number of columns (the algorithm dimension)."""
        return len(self.rows[0])

    @property
    def space(self) -> list[list[int]]:
        """The space mapping matrix ``S`` (first ``k-1`` rows)."""
        return [list(r) for r in self.rows[:-1]]

    @property
    def schedule(self) -> list[int]:
        """The linear schedule vector ``Π`` (last row)."""
        return list(self.rows[-1])

    # -- application -----------------------------------------------------------
    def time_of(self, point: Sequence[int]) -> int:
        """Execution time ``Π j̄`` of the computation at ``point``."""
        return sum(c * x for c, x in zip(self.rows[-1], point))

    def processor_of(self, point: Sequence[int]) -> tuple[int, ...]:
        """Processor coordinates ``S j̄`` of the computation at ``point``."""
        return tuple(sum(c * x for c, x in zip(row, point)) for row in self.rows[:-1])

    def apply(self, point: Sequence[int]) -> tuple[tuple[int, ...], int]:
        """``(processor, time)`` of a computation."""
        return self.processor_of(point), self.time_of(point)

    # -- batch application ------------------------------------------------------
    def times_of(self, points):
        """``Π j̄`` for a whole block of points in one shot.

        ``points`` is an ``(N, n)`` array-like (sequence of points or a
        NumPy array).  Returns an ``int64`` ndarray of length ``N`` when
        NumPy is available, else a plain ``list[int]`` -- either way a
        sequence whose ``k``-th entry equals ``time_of(points[k])``.
        """
        if _np is not None:
            if self._np_schedule is None:
                self._np_schedule = _np.asarray(self.rows[-1], dtype=_np.int64)
            block = _np.asarray(points, dtype=_np.int64)
            if block.size == 0:  # empty index sets batch to empty results
                return _np.zeros(0, dtype=_np.int64)
            if block.ndim == 1:  # a single point: keep shape conventions tight
                block = block.reshape(1, -1)
            return block @ self._np_schedule
        return [self.time_of(pt) for pt in points]

    def processors_of(self, points):
        """``S j̄`` for a whole block of points in one shot.

        Returns an ``(N, k-1)`` ``int64`` ndarray when NumPy is available,
        else a ``list[tuple[int, ...]]``; row ``k`` equals
        ``processor_of(points[k])``.
        """
        if _np is not None:
            if self._np_space is None:
                self._np_space = _np.asarray(
                    [list(r) for r in self.rows[:-1]], dtype=_np.int64
                ).reshape(len(self.rows) - 1, self.n)
            block = _np.asarray(points, dtype=_np.int64)
            if block.size == 0:
                return _np.zeros((0, len(self.rows) - 1), dtype=_np.int64)
            if block.ndim == 1:
                block = block.reshape(1, -1)
            return block @ self._np_space.T
        return [self.processor_of(pt) for pt in points]

    def map_vector(self, vector: Sequence[int]) -> list[int]:
        """``T d̄``: the space-time displacement of a dependence vector."""
        return mat_vec([list(r) for r in self.rows], list(vector))

    # -- simple structural predicates -----------------------------------------
    def rank(self) -> int:
        """Rank of ``T`` over the rationals (condition 4 needs ``rank = k``)."""
        return integer_rank([list(r) for r in self.rows])

    def entries_coprime(self) -> bool:
        """Condition 5: the gcd of all entries of ``T`` is 1."""
        return gcd_list(x for row in self.rows for x in row) == 1

    def instantiate(self, binding: ParamBinding) -> "MappingMatrix":
        """Identity hook for symmetry with parametric structures.

        Mapping matrices in this library are concrete; designs parametric in
        ``p`` are produced by factory functions in
        :mod:`repro.mapping.designs` which take the parameters directly.
        """
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MappingMatrix):
            return NotImplemented
        return self.rows == other.rows

    def __hash__(self) -> int:
        return hash(self.rows)

    def __repr__(self) -> str:
        body = "; ".join(" ".join(f"{x:3d}" for x in row) for row in self.rows)
        return f"MappingMatrix {self.name} [{body}]"
