"""Constraint-driven candidate generation: Definition 4.1 as integer cuts.

The catalog engine (:mod:`repro.mapping.engine`) *enumerates* ``(S, Π)``
pairs and filters them through :func:`check_feasibility`, so its cost
scales with catalog size.  This module inverts that: Definition 4.1's
conditions become an integer constraint system whose cheap consequences
are evaluated *during* enumeration, as branch-and-prune cuts that discard
whole subtrees of the space-row search before any feasibility call.

Constraint derivation (see docs/SEARCH.md for the full write-up):

* **Condition 2** (``S·D = P·K`` with ``Σ_j k_ji <= Π d̄_i``) says each
  displacement ``S d̄_i`` is a *nonnegative* integer combination of at
  most ``Π d̄_i`` primitive columns.  Three relaxations are cheap and
  sound, and each binds a single space row ``s`` at array axis ``r``:

  - *divisibility*: axis ``r`` of ``P k̄`` lies in the subgroup
    ``g_r·Z`` with ``g_r = gcd_j P[r][j]``, so ``g_r | s·d̄_i``;
  - *hop budget*: ``|s·d̄_i| <= M_r · Σ_j k_ji`` with
    ``M_r = max_j |P[r][j]|``, so ``ceil(|s·d̄_i| / M_r)`` hops are
    needed but only ``Π d̄_i`` are available;
  - *lattice membership*: the full vector ``S d̄_i`` must be an integer
    (sign-free) combination of ``P``'s columns -- decided exactly by the
    Smith-normal-form solver :func:`~repro.util.linalg.solve_integer_system`.

  The first two depend only on ``(row, axis, schedule)``, so they are
  precomputed once per catalog row as a bitmask over the shared schedule
  list; a partial row prefix whose accumulated mask is empty prunes its
  entire subtree.  The lattice test depends only on ``S`` (not ``Π``)
  and prunes every schedule of a space at once.

* **Condition 3** (``τ`` injective) fails whenever a nonzero integer
  nullspace vector of ``T`` fits the index-difference box -- in
  particular when a *basis* vector of the nullspace lattice
  (:func:`~repro.util.linalg.integer_nullspace`, again Smith form) does.
  That one-sided screen certifies most conflicts without the bounded
  lattice-point enumeration (box index sets only; constrained sets skip
  the screen).

* **Condition 4** (``rank T = k``) is monotone under row extension, so
  rank-deficient prefixes are cut at the branch point.

Every cut is *sound*: it only removes candidates that
:func:`check_feasibility` would reject, and enumeration follows the exact
catalog order of the engine, so the feasible-design stream -- and hence
the ranked or Pareto output, even under an early-stop cap -- is identical
to the catalog path's.  Survivors still pass through the full
``check_feasibility`` gate (the only place ``mapping.candidates_enumerated``
counts), which is what the differential oracle and the equivalence suite
pin.  Per-cut prune counts are published as ``mapping.solver.pruned.*``.
"""

from __future__ import annotations

from math import gcd
from typing import Sequence

from repro import obs
from repro.mapping.engine import space_map_catalog
from repro.mapping.feasibility import FeasibilityReport, check_feasibility
from repro.mapping.interconnect import solve_interconnect
from repro.mapping.memo import EvalCache
from repro.mapping.transform import MappingMatrix
from repro.structures.algorithm import Algorithm
from repro.structures.params import ParamBinding
from repro.util.linalg import (
    integer_nullspace,
    integer_rank,
    solve_integer_system,
)

__all__ = ["SolverContext", "enumerate_spaces", "evaluate_space_solver"]


def _hop_budget(deadline: int) -> int:
    """Hop budget available under a schedule deadline ``Π d̄_i``.

    Condition 2 allows at most ``deadline`` primitive hops per dependence
    column; slack becomes link buffers.  Kept as a named seam so the
    verify mutation check can tighten it by one and prove the differential
    oracle notices an unsound cut.
    """
    return deadline


def _final_gate(
    mapping: MappingMatrix,
    algorithm: Algorithm,
    binding: ParamBinding,
    primitives: Sequence[Sequence[int]] | None,
    cache: EvalCache | None,
) -> FeasibilityReport:
    """The full Definition 4.1 check every surviving candidate must pass.

    A named seam like :func:`_hop_budget`: the verify mutation check swaps
    it for a gate that drops the conflict condition and demands that the
    differential oracle produce a counterexample.
    """
    return check_feasibility(
        mapping, algorithm, binding, primitives, cache=cache
    )


class SolverContext:
    """Precomputed constraint tables for one (algorithm, primitives) search.

    Construction is deterministic, so worker processes rebuild identical
    contexts from the same payload; the per-row admissibility bitmasks and
    per-displacement lattice answers are shared across every space
    candidate of the run.
    """

    def __init__(
        self,
        algorithm: Algorithm,
        binding: ParamBinding,
        primitives: Sequence[Sequence[int]] | None,
        schedules: list[tuple[int, tuple[int, ...]]],
        require_busy: bool,
        cache: EvalCache,
    ) -> None:
        self.algorithm = algorithm
        self.binding = binding
        self.primitives = primitives
        self.schedules = schedules
        self.require_busy = require_busy
        self.cache = cache
        self.n = algorithm.dim
        self.d_cols = [tuple(c) for c in algorithm.dependences.columns()]
        self.d_matrix = [
            [col[row] for col in self.d_cols] for row in range(self.n)
        ]
        #: Per-schedule deadlines ``Π d̄_i``, aligned with ``schedules``.
        self.deadlines = [
            tuple(
                sum(pi[r] * col[r] for r in range(self.n))
                for col in self.d_cols
            )
            for _, pi in schedules
        ]
        self.all_mask = (1 << len(schedules)) - 1
        if primitives is not None:
            self.p_rows = [tuple(int(x) for x in row) for row in primitives]
            #: Per array axis: gcd and max |entry| of the primitive row.
            self.row_gcd = [
                _vector_gcd(row) for row in self.p_rows
            ]
            self.row_max = [
                max((abs(x) for x in row), default=0) for row in self.p_rows
            ]
            self.p_key = tuple(self.p_rows)
        else:
            self.p_rows = None
            self.row_gcd = []
            self.row_max = []
            self.p_key = None
        #: Conflict screen: a nullspace basis vector of ``T`` inside the
        #: index-difference box is a certain conflict -- valid only for
        #: plain box index sets (constrained sets use pair enumeration).
        if getattr(algorithm.index_set, "is_constrained", False):
            self.diff_box = None
        else:
            bounds = algorithm.index_set.bounds(binding)
            self.diff_box = tuple((lo - hi, hi - lo) for lo, hi in bounds)
        self._disp_memo: dict[tuple[int, ...], tuple[int, ...]] = {}
        self._mask_memo: dict[tuple[tuple[int, ...], int], int] = {}

    # -- per-row tables -------------------------------------------------------

    def displacements(self, row: tuple[int, ...]) -> tuple[int, ...]:
        """``(s·d̄_1, ..., s·d̄_m)`` for one candidate space row."""
        out = self._disp_memo.get(row)
        if out is None:
            out = tuple(
                sum(row[r] * col[r] for r in range(self.n))
                for col in self.d_cols
            )
            self._disp_memo[row] = out
        return out

    def row_mask(self, row: tuple[int, ...], axis: int) -> int:
        """Bitmask of schedules admitting ``row`` at array axis ``axis``.

        Bit ``i`` is set iff, for every dependence column, the
        divisibility and hop-budget relaxations of condition 2 hold for
        this (row, axis) under schedule ``i``.  All-ones when the target
        interconnect is unconstrained.
        """
        if self.p_rows is None:
            return self.all_mask
        key = (row, axis)
        mask = self._mask_memo.get(key)
        if mask is not None:
            return mask
        disps = self.displacements(row)
        g = self.row_gcd[axis]
        m_r = self.row_max[axis]
        # Schedule-independent subgroup test first: a violation kills the
        # row at this axis for every schedule.
        feasible_cols = True
        min_hops = []
        for disp in disps:
            if disp == 0:
                min_hops.append(0)
                continue
            if g == 0 or disp % g != 0 or m_r == 0:
                feasible_cols = False
                break
            min_hops.append(-(-abs(disp) // m_r))
        if not feasible_cols:
            mask = 0
        else:
            mask = 0
            for idx, deadlines in enumerate(self.deadlines):
                budget_ok = all(
                    lb <= _hop_budget(deadline)
                    for lb, deadline in zip(min_hops, deadlines)
                )
                if budget_ok:
                    mask |= 1 << idx
        self._mask_memo[key] = mask
        return mask

    # -- per-space cuts -------------------------------------------------------

    def lattice_feasible(self, space: Sequence[Sequence[int]]) -> bool:
        """Exact (sign-free) condition-2 relaxation for a full space map.

        ``S d̄_i = P k̄`` needs an *integer* solution before it can have a
        nonnegative one; decided by the Smith-form solver and memoized on
        the displacement vector in the run's :class:`EvalCache` (the same
        store the interconnect and conflict solves share), so equivalent
        queries persist across runs and shards.
        """
        if self.p_rows is None:
            return True
        for col in self.d_cols:
            target = tuple(
                sum(row[r] * col[r] for r in range(self.n)) for row in space
            )
            if any(target):
                key = ("plattice", self.p_key, target)
                solvable = self.cache.get_or_compute(
                    key,
                    lambda: solve_integer_system(
                        [list(r) for r in self.p_rows], list(target)
                    )
                    is not None,
                )
                if not solvable:
                    return False
        return True

    def conflict_screened(self, rows: list[list[int]]) -> bool:
        """True when a nullspace basis vector certifies a conflict."""
        if self.diff_box is None:
            return False
        for vec in integer_nullspace(rows):
            if any(vec) and all(
                lo <= x <= hi
                for x, (lo, hi) in zip(vec, self.diff_box)
            ):
                return True
        return False


def _vector_gcd(row: Sequence[int]) -> int:
    g = 0
    for x in row:
        g = gcd(g, abs(x))
    return g


def enumerate_spaces(
    ctx: SolverContext,
    target_space_dim: int,
    block_values: Sequence[int],
) -> list[list[list[int]]]:
    """Space candidates surviving the branch-and-prune row search.

    Walks catalog-row combinations in the exact order of
    ``itertools.combinations`` over :func:`space_map_catalog` -- the
    engine's enumeration order -- but cuts subtrees as soon as a row
    prefix is provably infeasible:

    * ``mapping.solver.pruned.rank_subtree`` -- the prefix is linearly
      dependent, so no extension reaches rank ``k-1`` (condition 4);
    * ``mapping.solver.pruned.row_budget`` -- no schedule survives the
      accumulated divisibility/hop-budget masks (condition 2);
    * ``mapping.solver.pruned.lattice`` -- some displacement ``S d̄_i``
      is outside the integer column lattice of ``P`` (condition 2).

    Each cut at depth ``d`` discards all ``C(remaining, k-1-d)``
    completions at once, which is where the enumeration savings come
    from.  The survivor list is a subset of the engine's rank-screened
    candidates containing every feasible design, in identical order.
    """
    catalog = space_map_catalog(ctx.n, block_values)
    total = len(catalog)
    survivors: list[list[list[int]]] = []
    pruned = {"rank_subtree": 0, "row_budget": 0, "lattice": 0}

    def extend(
        start: int, chosen: list[tuple[int, ...]], mask: int
    ) -> None:
        depth = len(chosen)
        if depth == target_space_dim:
            space = [list(r) for r in chosen]
            if not ctx.lattice_feasible(space):
                pruned["lattice"] += 1
                return
            survivors.append(space)
            return
        for idx in range(start, total - (target_space_dim - depth - 1)):
            row = catalog[idx]
            new_mask = mask & ctx.row_mask(row, depth)
            if new_mask == 0:
                pruned["row_budget"] += 1
                continue
            if integer_rank([list(r) for r in chosen] + [list(row)]) <= depth:
                pruned["rank_subtree"] += 1
                continue
            extend(idx + 1, chosen + [row], new_mask)

    extend(0, [], ctx.all_mask)
    obs.count_many(pruned, prefix="mapping.solver.pruned.")
    obs.count("mapping.solver.space_candidates", len(survivors))
    # The strategy-independent funnel counter: space candidates handed to
    # the downstream schedule/feasibility stages.
    obs.count("mapping.space_candidates", len(survivors))
    return survivors


def evaluate_space_solver(
    space: list[list[int]], ctx: SolverContext
) -> tuple[list[int], FeasibilityReport] | None:
    """The fastest schedule making ``[space; Π]`` pass Definition 4.1.

    Drop-in replacement for the engine's catalog evaluator: walks the
    shared time-sorted schedule list under the same
    ``mapping.evaluate_space`` span and returns the first feasible ``Π``,
    but discharges the cheap conditions as cuts before the final
    :func:`check_feasibility` gate:

    * ``mapping.solver.pruned.deadline`` -- schedule excluded by the
      precomputed row masks (condition 2 relaxations);
    * ``mapping.pruned.coprime_precheck`` -- same pre-screen and counter
      as the catalog path (condition 5);
    * ``mapping.solver.pruned.rank`` -- ``Π`` linearly dependent on the
      space rows (condition 4);
    * ``mapping.solver.pruned.interconnect`` -- the exact per-column
      ``P k̄ = S d̄_i`` solve fails (condition 2; memoized on the same
      ``("icol", ...)`` keys the final gate uses, so survivors re-check
      for free);
    * ``mapping.solver.pruned.conflict_screen`` -- a nullspace basis
      vector inside the difference box certifies a conflict (condition 3).

    Because every cut is sound, the returned ``(Π, report)`` is identical
    to the catalog evaluator's for every space.
    """
    with obs.span("mapping.evaluate_space"):
        mask = ctx.all_mask
        for axis, row in enumerate(space):
            mask &= ctx.row_mask(tuple(row), axis)
        result: tuple[list[int], FeasibilityReport] | None = None
        skipped = 0
        for idx, (_, pi) in enumerate(ctx.schedules):
            if not (mask >> idx) & 1:
                # Tallied locally, published once below -- a per-schedule
                # obs call would dominate the walk's cost.
                skipped += 1
                continue
            rows = space + [list(pi)]
            mapping = MappingMatrix(rows)
            if ctx.require_busy and not mapping.entries_coprime():
                obs.count("mapping.pruned.coprime_precheck")
                continue
            if integer_rank(rows) < len(rows):
                obs.count("mapping.solver.pruned.rank")
                continue
            if ctx.primitives is not None:
                interconnect = solve_interconnect(
                    space, ctx.d_matrix, list(pi), ctx.primitives,
                    cache=ctx.cache,
                )
                if interconnect is None:
                    obs.count("mapping.solver.pruned.interconnect")
                    continue
            if ctx.conflict_screened(rows):
                obs.count("mapping.solver.pruned.conflict_screen")
                continue
            report = _final_gate(
                mapping, ctx.algorithm, ctx.binding, ctx.primitives,
                ctx.cache,
            )
            if report.feasible:
                result = (list(pi), report)
                break
        if skipped:
            obs.count("mapping.solver.pruned.deadline", skipped)
        return result
