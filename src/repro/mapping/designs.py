"""The paper's concrete architecture designs (Section 4.2).

* :func:`fig4_mapping` -- the time-optimal bit-level design ``T`` of eq.
  (4.2), with its long-wire primitive matrix ``P`` and the literal ``K`` of
  eq. (4.3); execution time ``t = 3(u-1) + 3(p-1) + 1`` (eq. (4.5)) on
  ``u²p²`` processors.
* :func:`fig5_mapping` -- the nearest-neighbour design ``T'`` of eq. (4.6)
  with ``P'`` of eq. (4.7); ``(u·p)²`` processors, no long wires.

  **Reproduction note (eq. (4.8)).**  The paper evaluates
  ``t' = Π'([u,u,u,p,p]ᵀ - [1,1,1,1,1]ᵀ) + 1`` and prints the result as
  ``(2p-1)(u-1) + 3(p-1) + 1``; the product with the printed
  ``Π' = [p, p, 1, 2, 1]`` is actually ``(2p+1)(u-1) + 3(p-1) + 1``.  The
  simulator confirms the latter; both have the same leading behaviour
  ``Θ(p·u)``, so every qualitative claim stands.  Both formulas are exposed
  (:func:`t_fig5`, :func:`t_fig5_printed`).

* :func:`word_level_mapping` / :func:`word_level_time` -- the best
  word-level systolic matmul baseline [4]: ``t = (3(u-1)+1) · t_b`` where
  ``t_b`` is the sequential multiply-add time of the chosen arithmetic
  algorithm (``O(p²)`` add-shift, ``O(p)`` carry-save).
* :func:`speedup` -- the headline comparison: ``O(p²)`` over an add-shift
  word-level array, ``O(p)`` over a carry-save one.
"""

from __future__ import annotations

from repro.arith.sequential import word_multiplier_cycles
from repro.mapping.interconnect import mesh_primitives, with_long_wires
from repro.mapping.transform import MappingMatrix

__all__ = [
    "fig4_mapping",
    "fig4_primitives",
    "fig4_k_paper",
    "t_fig4",
    "fig4_processor_count",
    "fig5_mapping",
    "fig5_primitives",
    "t_fig5",
    "t_fig5_printed",
    "fig5_processor_count",
    "word_level_mapping",
    "word_level_time",
    "speedup",
]


# ---------------------------------------------------------------------------
# Fig. 4: the time-optimal design T of eq. (4.2)
# ---------------------------------------------------------------------------

def fig4_mapping(p: int) -> MappingMatrix:
    """Eq. (4.2): ``T = [[p,0,0,1,0], [0,p,0,0,1], [1,1,1,2,1]]``.

    Word-index blocks of size ``p x p`` tile the ``up x up`` array; ``x``
    and ``y`` hop between blocks on long wires of length ``p`` while bits
    move to nearest neighbours inside a block -- two different speeds.
    """
    return MappingMatrix(
        [[p, 0, 0, 1, 0], [0, p, 0, 0, 1], [1, 1, 1, 2, 1]], name="T-fig4"
    )


def fig4_primitives(p: int) -> list[list[int]]:
    """Eq. (4.3) ``P``: long wires ``[p,0]ᵀ``, ``[0,p]ᵀ``, a stationary
    (null) primitive, and the mesh links ``[1,0]ᵀ``, ``[0,1]ᵀ``,
    ``[1,-1]ᵀ``."""
    return [
        [p, 0, 0, 1, 0, 1],
        [0, p, 0, 0, 1, -1],
    ]


def fig4_k_paper() -> list[list[int]]:
    """The literal ``K`` of eq. (4.3) (columns ordered ``d̄₁ ... d̄₇``)."""
    return [
        [1, 0, 0, 0, 0, 0, 0],
        [0, 1, 0, 0, 0, 0, 0],
        [0, 0, 1, 0, 0, 0, 0],
        [0, 0, 0, 1, 0, 0, 0],
        [0, 0, 0, 0, 1, 0, 2],
        [0, 0, 0, 0, 0, 1, 0],
    ]


def t_fig4(u: int, p: int) -> int:
    """Eq. (4.5): ``t = 3(u-1) + 3(p-1) + 1``."""
    return 3 * (u - 1) + 3 * (p - 1) + 1


def fig4_processor_count(u: int, p: int) -> int:
    """``s = u²p²`` (Section 4.2)."""
    return u * u * p * p


# ---------------------------------------------------------------------------
# Fig. 5: the nearest-neighbour design T' of eq. (4.6)
# ---------------------------------------------------------------------------

def fig5_mapping(p: int) -> MappingMatrix:
    """Eq. (4.6): ``T' = [[p,0,0,1,0], [0,p,0,0,1], [p,p,1,2,1]]``.

    Same space mapping as Fig. 4 but ``x`` and ``y`` words crawl between
    blocks at nearest-neighbour speed (schedule coefficients ``p``), so no
    long wires are needed.
    """
    return MappingMatrix(
        [[p, 0, 0, 1, 0], [0, p, 0, 0, 1], [p, p, 1, 2, 1]], name="T'-fig5"
    )


def fig5_primitives() -> list[list[int]]:
    """Eq. (4.7) ``P'``: mesh links ``[1,0]ᵀ``, ``[0,1]ᵀ``, ``[1,-1]ᵀ`` and
    the stationary (null) primitive -- unit-length wires only."""
    return [
        [1, 0, 1, 0],
        [0, 1, -1, 0],
    ]


def t_fig5(u: int, p: int) -> int:
    """Execution time of ``T'`` evaluated exactly:
    ``t' = (2p+1)(u-1) + 3(p-1) + 1`` (see the module reproduction note)."""
    return (2 * p + 1) * (u - 1) + 3 * (p - 1) + 1


def t_fig5_printed(u: int, p: int) -> int:
    """Eq. (4.8) *as printed* in the paper: ``(2p-1)(u-1) + 3(p-1) + 1``."""
    return (2 * p - 1) * (u - 1) + 3 * (p - 1) + 1


def fig5_processor_count(u: int, p: int) -> int:
    """``s = (u·p)²`` (Section 4.2)."""
    return (u * p) ** 2


# ---------------------------------------------------------------------------
# Word-level baseline [4]
# ---------------------------------------------------------------------------

def word_level_mapping() -> MappingMatrix:
    """The best word-level systolic matmul design [4]:
    ``T_w = [[1,0,0], [0,1,0], [1,1,1]]`` on a ``u x u`` mesh, one
    multiply-accumulate (cost ``t_b``) per beat."""
    return MappingMatrix([[1, 0, 0], [0, 1, 0], [1, 1, 1]], name="T-word")


def word_level_time(u: int, p: int, arithmetic: str = "add-shift") -> int:
    """``t = (3(u-1)+1) · t_b`` with ``t_b`` from the sequential multiplier
    of the named arithmetic algorithm (Section 4.2)."""
    return (3 * (u - 1) + 1) * word_multiplier_cycles(arithmetic, p)


def speedup(u: int, p: int, arithmetic: str = "add-shift") -> float:
    """Speedup of the time-optimal bit-level design over the word-level
    baseline: ``O(p²)`` for add-shift, ``O(p)`` for carry-save (u > p)."""
    return word_level_time(u, p, arithmetic) / t_fig4(u, p)
