"""Steady-state throughput: the pipelining period of a design.

A systolic array rarely runs one problem; successive instances are issued
every ``β`` time units (the *block pipelining period*).  Instance ``k``
executes point ``q̄`` at time ``Πq̄ + kβ`` on PE ``Sq̄``; two instances
collide exactly when some PE has two firing times differing by a positive
multiple of ``β``.  The minimal safe ``β`` is therefore computable exactly
from the per-PE firing-time sets, and the steady-state utilization is
``computations / (β · PEs)``.

For the word-level matmul array the result is the classical ``β = u``; for
the paper's Fig. 4 bit-level design the period comes out far below the
makespan, quantifying a throughput advantage the paper leaves implicit.
"""

from __future__ import annotations

from collections import defaultdict

from repro.mapping.transform import MappingMatrix
from repro.structures.algorithm import Algorithm
from repro.structures.params import ParamBinding

__all__ = ["firing_time_sets", "pipelining_period", "steady_state_utilization"]


def firing_time_sets(
    mapping: MappingMatrix,
    algorithm: Algorithm,
    binding: ParamBinding,
) -> dict[tuple[int, ...], set[int]]:
    """Per-PE sets of firing times under the mapping."""
    out: dict[tuple[int, ...], set[int]] = defaultdict(set)
    for point in algorithm.index_set.points(binding):
        out[mapping.processor_of(point)].add(mapping.time_of(point))
    return dict(out)


def pipelining_period(
    mapping: MappingMatrix,
    algorithm: Algorithm,
    binding: ParamBinding,
) -> int:
    """The minimal safe instance-issue interval ``β``.

    ``β`` is safe iff no PE has two firing times whose difference is a
    positive multiple of ``β``.  The search runs upward from 1; the
    makespan is always safe, so termination is guaranteed.
    """
    diffs: set[int] = set()
    max_diff = 0
    for times in firing_time_sets(mapping, algorithm, binding).values():
        ordered = sorted(times)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1:]:
                diffs.add(b - a)
                max_diff = max(max_diff, b - a)
    if not diffs:
        return 1  # every PE fires at most once: full pipelining
    beta = 1
    while True:
        if not any(d % beta == 0 for d in diffs):
            return beta
        beta += 1
        if beta > max_diff:
            return max_diff + 1


def steady_state_utilization(
    mapping: MappingMatrix,
    algorithm: Algorithm,
    binding: ParamBinding,
) -> float:
    """Fraction of PE-cycles doing work once the pipeline is full."""
    sets = firing_time_sets(mapping, algorithm, binding)
    if not sets:
        return 0.0
    computations = sum(len(s) for s in sets.values())
    beta = pipelining_period(mapping, algorithm, binding)
    return computations / (beta * len(sets))
