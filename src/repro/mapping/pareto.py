"""Pareto-frontier ranking over design metrics.

The search historically returned a single ranked list keyed on
``(time, processors)`` -- a total order that hides every trade-off the
paper itself discusses (Fig. 4 vs Fig. 5 trade wire length against
buffers).  This module replaces the single optimum with the set of
*non-dominated* designs over the three architecture metrics:

* ``time`` -- the makespan of the design's schedule (eq. (4.5));
* ``processors`` -- the PE count of the projected array;
* ``wire_length`` -- the longest physical link the design needs
  (:func:`design_wire_length`).

All metrics are exact integers, dominance is the standard product order
(no worse everywhere, strictly better somewhere), and every function here
is deterministic: frontiers are returned sorted by ``(metrics, rows)``, so
two runs -- or two shards merged in any grouping -- produce byte-identical
output.  :func:`merge_frontiers` is associative and commutative up to that
canonical ordering, which is what lets the sharded search merge partial
frontiers per block and still match the single-process scan exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "METRIC_NAMES",
    "FrontierPoint",
    "design_wire_length",
    "dominates",
    "frontier_payload",
    "merge_frontiers",
    "pareto_frontier",
]

#: The metric axes a frontier may rank over, in canonical order.
METRIC_NAMES = ("time", "processors", "wire_length")


def design_wire_length(
    interconnect,
    space: Sequence[Sequence[int]],
    d_cols: Sequence[Sequence[int]],
) -> int:
    """The longest physical link of a design, as an exact integer.

    With an :class:`~repro.mapping.interconnect.InterconnectSolution`, the
    wire length is the largest L1 (Manhattan) length among the primitive
    columns the design actually uses (``k_ji > 0`` for some dependence
    ``i``); unused primitives cost nothing.  Without primitives (the
    unconstrained target), every dependence needs a direct link for its
    displacement ``S d̄_i``, so the metric is the largest L1 length of
    those displacements.  Either way the value is 0 for dependence-free
    algorithms and deterministic for a given design.
    """
    if interconnect is not None:
        longest = 0
        p_matrix = interconnect.p_matrix
        k_matrix = interconnect.k_matrix
        rows = len(p_matrix)
        for j, k_row in enumerate(k_matrix):
            if any(k > 0 for k in k_row):
                length = sum(abs(p_matrix[i][j]) for i in range(rows))
                longest = max(longest, length)
        return longest
    longest = 0
    for col in d_cols:
        length = sum(
            abs(sum(row[i] * col[i] for i in range(len(col))))
            for row in space
        )
        longest = max(longest, length)
    return longest


@dataclass(frozen=True)
class FrontierPoint:
    """One design on (or competing for) a Pareto frontier.

    ``metrics`` holds the selected metric values in the order the frontier
    was configured with; ``rows`` is the canonical ``T`` (tuple of row
    tuples), which doubles as the deterministic tie-break -- two points
    with equal metrics are both non-dominated and are ordered by ``rows``.
    """

    metrics: tuple[int, ...]
    rows: tuple[tuple[int, ...], ...]

    @property
    def sort_key(self) -> tuple:
        return (self.metrics, self.rows)

    def to_dict(self) -> dict:
        return {
            "metrics": list(self.metrics),
            "rows": [list(r) for r in self.rows],
        }


def dominates(a: Sequence[int], b: Sequence[int]) -> bool:
    """Product-order dominance: ``a`` no worse everywhere, better somewhere.

    Irreflexive and antisymmetric (equal vectors dominate neither way),
    and transitive -- the properties the frontier computation relies on,
    pinned by tests on random metric triples.
    """
    if len(a) != len(b):
        raise ValueError("metric vectors must have equal length")
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def pareto_frontier(points: Iterable[FrontierPoint]) -> list[FrontierPoint]:
    """The non-dominated subset, deduplicated and canonically ordered.

    A point is kept iff no other point dominates its metric vector.
    Points with identical metrics but different ``rows`` are all kept
    (they are genuinely incomparable designs); exact duplicates collapse.
    The result is sorted by ``(metrics, rows)`` -- the deterministic
    tie-break that makes frontiers byte-comparable across runs and shard
    partitions.
    """
    unique = sorted(set(points), key=lambda pt: pt.sort_key)
    out = []
    for pt in unique:
        if not any(
            dominates(other.metrics, pt.metrics)
            for other in unique
            if other is not pt
        ):
            out.append(pt)
    return out


def merge_frontiers(
    *parts: Iterable[FrontierPoint],
) -> list[FrontierPoint]:
    """Frontier of the union of partial frontiers.

    Associative: ``merge(merge(a, b), c) == merge(a, merge(b, c)) ==
    merge(a, b, c)`` for any partition of a point set, because a point
    dominated within one part can never join the global frontier.  This is
    the shard-merge operation -- each worker publishes the frontier of its
    blocks and the coordinator folds them in block order, yielding the
    same list as one frontier over all designs.
    """
    pool: list[FrontierPoint] = []
    for part in parts:
        pool.extend(part)
    return pareto_frontier(pool)


def frontier_payload(points: Sequence[FrontierPoint]) -> str:
    """Canonical JSON for a frontier (sorted keys, compact separators).

    The byte-identity contract for sharded searches is stated over this
    string: equal frontiers serialize to equal bytes.
    """
    return json.dumps(
        [pt.to_dict() for pt in points],
        sort_keys=True,
        separators=(",", ":"),
    )
