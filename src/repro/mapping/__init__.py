"""Linear space-time mapping of algorithms onto processor arrays.

Implements the design method of Definition 4.1 (Shang/Fortes [5,6], Li/Wah
[4], Ganapathy/Wah [10]) that the paper applies to its bit-level structures:

* :mod:`repro.mapping.transform` -- the mapping matrix ``T = [S; Π]``;
* :mod:`repro.mapping.interconnect` -- interconnection-primitive matrices
  ``P`` and the ``S·D = P·K`` factorization under the arrival constraint
  (4.1), including buffer accounting;
* :mod:`repro.mapping.feasibility` -- the five feasibility conditions;
* :mod:`repro.mapping.conflicts` -- exact computational-conflict detection;
* :mod:`repro.mapping.schedule` -- execution time (4.5), optimal linear
  schedule search, and time-optimality certification;
* :mod:`repro.mapping.spacetime` -- processor counts and array geometry;
* :mod:`repro.mapping.engine` -- the design-space search engine (shared
  schedule enumeration, short-circuit feasibility with memoization, and
  process fan-out) behind the frozen :class:`SearchConfig`;
* :mod:`repro.mapping.solver` -- Definition 4.1 as an integer constraint
  system: the branch-and-prune candidate generator whose sound cuts make
  the search enumerate orders of magnitude fewer candidates;
* :mod:`repro.mapping.pareto` -- Pareto-frontier ranking over
  (makespan, PE count, wire length) with deterministic merge;
* :mod:`repro.mapping.shard` -- the work-queue sharding layer over the
  shared artifact cache (block claims, partial frontiers, deterministic
  merge);
* :mod:`repro.mapping.designs` -- the paper's concrete designs: ``T`` of
  (4.2) with ``P, K`` of (4.3) (Fig. 4), ``T'`` of (4.6) with ``P', K'`` of
  (4.7) (Fig. 5), and the word-level baseline of Section 4.2.
"""

from repro.mapping.transform import MappingMatrix
from repro.mapping.interconnect import (
    InterconnectSolution,
    mesh_primitives,
    solve_interconnect,
)
from repro.mapping.feasibility import FeasibilityReport, check_feasibility
from repro.mapping.conflicts import (
    enumerate_conflict_pairs,
    find_conflicts,
    is_conflict_free,
)
from repro.mapping.memo import EvalCache
from repro.mapping.engine import (
    DesignCandidate,
    SearchConfig,
    ranked_schedules,
    run_search,
    search_designs,
    space_map_catalog,
)
from repro.mapping.pareto import (
    METRIC_NAMES,
    FrontierPoint,
    design_wire_length,
    dominates,
    merge_frontiers,
    pareto_frontier,
)
from repro.mapping.shard import ShardedSearchResult, run_sharded_search
from repro.mapping.schedule import (
    execution_time,
    find_optimal_schedule,
    schedule_is_valid,
)
from repro.mapping.spacetime import processor_count, space_extents
from repro.mapping.throughput import (
    pipelining_period,
    steady_state_utilization,
)
from repro.mapping.bounds import (
    critical_path_length,
    free_schedule_time,
    free_schedule_times,
)
from repro.mapping import designs

__all__ = [
    "MappingMatrix",
    "InterconnectSolution",
    "mesh_primitives",
    "solve_interconnect",
    "FeasibilityReport",
    "check_feasibility",
    "enumerate_conflict_pairs",
    "find_conflicts",
    "is_conflict_free",
    "EvalCache",
    "SearchConfig",
    "DesignCandidate",
    "ranked_schedules",
    "run_search",
    "search_designs",
    "space_map_catalog",
    "execution_time",
    "find_optimal_schedule",
    "schedule_is_valid",
    "processor_count",
    "space_extents",
    "critical_path_length",
    "free_schedule_time",
    "free_schedule_times",
    "pipelining_period",
    "steady_state_utilization",
    "designs",
]
