"""Design-space search: mapping algorithms onto (lower-dimensional) arrays.

The search itself now lives in :mod:`repro.mapping.engine` -- a staged
engine (catalog → rank screen → shared schedule enumeration → short-circuit
feasibility with memoization → parallel merge) behind the frozen
:class:`~repro.mapping.engine.SearchConfig`.  This module remains as the
historical import location; everything below is a re-export.

The space-map generator proposes rows from a catalog shaped like the
paper's own designs: per-axis projections ``e_i``, axis sums/differences
``e_i ± e_j``, and *blocked* combinations ``b·e_i + e_j`` (the paper's
``p·j₁ + i₁`` rows, which tile the array into ``p x p`` word blocks).
Candidates are screened for rank and coprimality; for each surviving
``S``, the optimal schedule under the interconnect deadline is found by
walking the shared time-sorted schedule list, and candidates are ranked by
execution time, then processor count.
"""

from __future__ import annotations

from repro.mapping.engine import (
    DesignCandidate,
    SearchConfig,
    ranked_schedules,
    run_search,
    search_designs,
    space_map_catalog,
)

__all__ = [
    "DesignCandidate",
    "SearchConfig",
    "ranked_schedules",
    "run_search",
    "search_designs",
    "space_map_catalog",
]
