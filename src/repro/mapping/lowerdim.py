"""Design-space search: mapping algorithms onto (lower-dimensional) arrays.

The paper applies a design method from its references [5, 6, 10]
(Shang/Fortes, Ganapathy/Wah): given an algorithm ``(J, D, E)``, find a
mapping ``T = [S; Π]`` onto a ``(k-1)``-dimensional array satisfying
Definition 4.1 and minimizing total execution time.  The paper presents the
*results* of that search (eqs. (4.2)/(4.6)); this module implements the
search itself, so new designs -- including designs onto arrays of lower
dimension than the canonical ones -- can be synthesized for any structure
Theorem 3.1 produces.

The space-map generator proposes rows from a catalog shaped like the
paper's own designs: per-axis projections ``e_i``, axis sums/differences
``e_i ± e_j``, and *blocked* combinations ``b·e_i + e_j`` (the paper's
``p·j₁ + i₁`` rows, which tile the array into ``p x p`` word blocks).
Candidates are screened for rank, conflict-freedom and coprimality; for
each surviving ``S``, the optimal schedule under the interconnect deadline
is found by bounded exhaustive search, and candidates are ranked by
execution time, then processor count.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro import obs
from repro.mapping.feasibility import FeasibilityReport, check_feasibility
from repro.mapping.schedule import execution_time
from repro.mapping.spacetime import processor_count
from repro.mapping.transform import MappingMatrix
from repro.structures.algorithm import Algorithm
from repro.structures.params import ParamBinding
from repro.util.intmath import gcd_list
from repro.util.linalg import integer_rank

__all__ = ["DesignCandidate", "space_map_catalog", "search_designs"]


@dataclass
class DesignCandidate:
    """One feasible design produced by the search."""

    mapping: MappingMatrix
    time: int
    processors: int
    report: FeasibilityReport

    def __repr__(self) -> str:
        return (
            f"DesignCandidate(t={self.time}, PEs={self.processors}, "
            f"T={[list(r) for r in self.mapping.rows]})"
        )


def space_map_catalog(
    n: int, block_values: Sequence[int] = ()
) -> list[tuple[int, ...]]:
    """Candidate space-map rows for an ``n``-dimensional algorithm.

    Returns per-axis projections, pairwise sums/differences, and blocked
    rows ``b·e_i + e_j`` for each ``b`` in ``block_values`` -- the shapes
    from which the paper's own ``S`` matrices are drawn.
    """
    rows: list[tuple[int, ...]] = []

    def unit(i: int, scale: int = 1) -> list[int]:
        row = [0] * n
        row[i] = scale
        return row

    for i in range(n):
        rows.append(tuple(unit(i)))
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            row = unit(i)
            row[j] = 1
            rows.append(tuple(row))
            row = unit(i)
            row[j] = -1
            rows.append(tuple(row))
    for b in block_values:
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                row = unit(i, b)
                row[j] = 1
                rows.append(tuple(row))
    # Deduplicate while preserving order.
    seen: set[tuple[int, ...]] = set()
    out = []
    for r in rows:
        if r not in seen:
            seen.add(r)
            out.append(r)
    return out


def _space_candidates(
    n: int,
    target_space_dim: int,
    block_values: Sequence[int],
) -> Iterator[list[list[int]]]:
    catalog = space_map_catalog(n, block_values)
    for combo in itertools.combinations(catalog, target_space_dim):
        s = [list(r) for r in combo]
        if integer_rank(s) < target_space_dim:
            obs.count("mapping.pruned.space_rank")
            continue
        obs.count("mapping.space_candidates")
        yield s


def search_designs(
    algorithm: Algorithm,
    binding: ParamBinding,
    primitives: Sequence[Sequence[int]] | None,
    target_space_dim: int = 2,
    block_values: Sequence[int] = (),
    schedule_bound: int = 2,
    max_candidates: int | None = 10,
    require_busy: bool = True,
) -> list[DesignCandidate]:
    """Enumerate feasible designs, best (fastest, then smallest) first.

    Parameters
    ----------
    algorithm:
        The algorithm ``(J, D, E)`` to map.
    binding:
        Parameter values instantiating ``J``.
    primitives:
        Interconnection primitive matrix ``P`` for the target array
        (``None`` = unconstrained interconnect; condition 2 waived).
    target_space_dim:
        ``k - 1``, the array dimension to synthesize (1 = linear array).
    block_values:
        Block factors for the catalog's ``b·e_i + e_j`` rows (pass ``[p]``
        to reach designs like the paper's Fig. 4).
    schedule_bound:
        Coefficient bound for the optimal-schedule search per candidate.
    max_candidates:
        Stop after this many feasible designs (``None`` = exhaustive).
    require_busy:
        Enforce condition 5 (coprime entries of ``T``).
    """
    found: list[DesignCandidate] = []
    n = algorithm.dim
    with obs.span(
        "mapping.search_designs",
        dim=n,
        target_space_dim=target_space_dim,
        schedule_bound=schedule_bound,
    ):
        for s in _space_candidates(n, target_space_dim, block_values):
            candidate = _best_feasible_schedule(
                algorithm, binding, s, primitives, schedule_bound, require_busy
            )
            if candidate is None:
                continue
            pi, report = candidate
            mapping = MappingMatrix(s + [pi], name=f"T-search-{len(found)}")
            found.append(
                DesignCandidate(
                    mapping=mapping,
                    time=execution_time(pi, algorithm, binding),
                    processors=processor_count(
                        mapping, algorithm.index_set, binding
                    ),
                    report=report,
                )
            )
            if max_candidates is not None and len(found) >= max_candidates * 4:
                break
        found.sort(key=lambda c: (c.time, c.processors))
        if max_candidates is not None:
            found = found[:max_candidates]
        obs.count("mapping.designs_found", len(found))
    return found


def _best_feasible_schedule(
    algorithm: Algorithm,
    binding: ParamBinding,
    space: list[list[int]],
    primitives: Sequence[Sequence[int]] | None,
    schedule_bound: int,
    require_busy: bool,
) -> tuple[list[int], FeasibilityReport] | None:
    """The fastest schedule making ``[space; Π]`` pass Definition 4.1.

    Enumerates schedules within the coefficient bound, cheapest execution
    time first, and returns the first one whose full feasibility check
    (including conflict-freedom with this specific ``S``) passes.
    """
    from repro.mapping.schedule import schedule_is_valid

    n = algorithm.dim
    candidates = []
    schedules_rejected = 0
    for pi in itertools.product(
        range(-schedule_bound, schedule_bound + 1), repeat=n
    ):
        if not schedule_is_valid(pi, algorithm):
            schedules_rejected += 1
            continue
        candidates.append((execution_time(pi, algorithm, binding), list(pi)))
    candidates.sort(key=lambda item: item[0])
    obs.count_many(
        {
            "schedules_tried": schedules_rejected + len(candidates),
            "schedules_valid": len(candidates),
        },
        prefix="mapping.",
    )
    for _, pi in candidates:
        mapping = MappingMatrix(space + [pi])
        if require_busy and not mapping.entries_coprime():
            obs.count("mapping.pruned.coprime_precheck")
            continue
        report = check_feasibility(mapping, algorithm, binding, primitives)
        if report.feasible:
            return pi, report
    return None
