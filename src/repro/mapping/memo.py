"""Memoization support for the design-space search engine.

The per-candidate work of the search -- conflict enumeration and
interconnect factorization -- is pure in its inputs, and the inputs repeat
heavily across candidates: many mappings ``T = [S; Π]`` share a nullspace
lattice, and the interconnect subproblems ``P k̄ = S d̄_i`` under a deadline
``Π d̄_i`` recur for every schedule sharing a space row.  :class:`EvalCache`
is a plain dictionary over *canonicalized* keys with hit/miss accounting
surfaced through :mod:`repro.obs` (``mapping.cache_hits`` /
``mapping.cache_misses``).

A cache is scoped to one search run (one per worker process under
``workers > 1``); entries are never invalidated.  Cached callables must be
deterministic and their results treated as immutable.
"""

from __future__ import annotations

from typing import Callable, Hashable, TypeVar

from repro import obs

__all__ = ["EvalCache"]

V = TypeVar("V")


class EvalCache:
    """A run-scoped memo table with obs-visible hit/miss counters."""

    __slots__ = ("data", "hits", "misses")

    def __init__(self) -> None:
        self.data: dict[Hashable, object] = {}
        self.hits = 0
        self.misses = 0

    def get_or_compute(self, key: Hashable, compute: Callable[[], V]) -> V:
        """Return the cached value for ``key``, computing it on first use."""
        data = self.data
        if key in data:
            self.hits += 1
            obs.count("mapping.cache_hits")
            return data[key]  # type: ignore[return-value]
        self.misses += 1
        obs.count("mapping.cache_misses")
        value = compute()
        data[key] = value
        return value

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return (
            f"EvalCache({len(self.data)} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )
