"""Interconnection primitives and the ``S·D = P·K`` factorization.

Condition 2 of Definition 4.1: the space mapping must be implementable on a
target machine whose processor links are the columns of the interconnection
primitive matrix ``P``.  For each dependence vector ``d̄_i``, the datum must
travel from processor ``S(j̄-d̄_i)`` to ``S j̄`` -- a displacement of
``S d̄_i`` -- using a nonnegative integer combination ``k̄_i`` of primitives
(``P k̄_i = S d̄_i``) whose total hop count satisfies the arrival deadline
(4.1):

.. math:: \\sum_j k_{ji} \\le \\Pi \\bar d_i .

Strict inequality means the datum arrives early and sits in
``Π d̄_i - Σ_j k_ji`` buffer stages on the link (the paper's Fig. 4 has one
such buffer on the ``[1,0]ᵀ`` primitive because ``Π d̄₄ = 2`` but the
displacement needs a single hop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.util.linalg import mat_mul, mat_vec

__all__ = [
    "mesh_primitives",
    "with_long_wires",
    "solve_interconnect",
    "InterconnectSolution",
]


def mesh_primitives(dim: int = 2) -> list[list[int]]:
    """The nearest-neighbour (NEWS) primitive matrix for a ``dim``-D mesh.

    Columns are ``±e_i``; for ``dim = 2`` this is the paper's
    ``P = [[0,0,1,-1],[1,-1,0,0]]``.
    """
    cols: list[list[int]] = []
    for axis in range(dim):
        for sign in (1, -1):
            col = [0] * dim
            col[axis] = sign
            cols.append(col)
    # Transpose to matrix form (rows = dims, cols = primitives).
    return [[col[r] for col in cols] for r in range(dim)]


def with_long_wires(extra_columns: Sequence[Sequence[int]], dim: int = 2) -> list[list[int]]:
    """A mesh primitive matrix augmented with long-wire columns.

    ``extra_columns`` are displacement vectors (e.g. ``[p, 0]``) appended as
    additional primitives, as in the paper's ``P`` of eq. (4.3).
    """
    base = mesh_primitives(dim)
    out = [list(row) for row in base]
    for col in extra_columns:
        if len(col) != dim:
            raise ValueError("long-wire column dimension mismatch")
        for r in range(dim):
            out[r].append(int(col[r]))
    return out


@dataclass
class InterconnectSolution:
    """A feasible ``K`` with hop/buffer accounting, one column per ``d̄_i``."""

    p_matrix: list[list[int]]
    k_matrix: list[list[int]]  # r x m
    hops: list[int]  # total primitive uses per dependence column
    deadlines: list[int]  # Π d̄_i per column
    buffers: list[int]  # deadline - hops (>= 0)

    def verify(self, s_matrix: Sequence[Sequence[int]], d_matrix: Sequence[Sequence[int]]) -> bool:
        """Re-check ``S·D == P·K`` and the deadline inequality exactly."""
        left = mat_mul(list(s_matrix), list(d_matrix))
        right = mat_mul(self.p_matrix, self.k_matrix)
        if left != right:
            return False
        return all(h <= t for h, t in zip(self.hops, self.deadlines))


def _column_combinations(
    p_matrix: Sequence[Sequence[int]],
    target: Sequence[int],
    budget: int,
) -> list[int] | None:
    """Find nonnegative ``k̄`` with ``P k̄ = target`` and ``Σ k̄ <= budget``.

    Depth-first search over primitive multiplicities, preferring solutions
    with the fewest hops (the search explores counts in increasing order and
    returns the first complete assignment found at the smallest total).
    """
    rows = len(p_matrix)
    r = len(p_matrix[0]) if rows else 0
    cols = [[p_matrix[i][j] for i in range(rows)] for j in range(r)]

    best: list[int] | None = None

    def dfs(j: int, remaining: list[int], used: int, counts: list[int]) -> None:
        nonlocal best
        if best is not None and used >= sum(best):
            return
        if j == r:
            if all(x == 0 for x in remaining):
                if best is None or used < sum(best):
                    best = list(counts)
            return
        col = cols[j]
        # Upper bound on this primitive's multiplicity from the budget.
        for c in range(0, budget - used + 1):
            new_remaining = [remaining[i] - c * col[i] for i in range(rows)]
            counts.append(c)
            dfs(j + 1, new_remaining, used + c, counts)
            counts.pop()

    dfs(0, list(target), 0, [])
    return best


def solve_interconnect(
    s_matrix: Sequence[Sequence[int]],
    d_matrix: Sequence[Sequence[int]],
    schedule: Sequence[int],
    p_matrix: Sequence[Sequence[int]],
    *,
    cache=None,
) -> InterconnectSolution | None:
    """Solve ``S·D = P·K`` column by column under the deadline (4.1).

    Returns ``None`` when some dependence displacement cannot be realized
    with the given primitives within its schedule slack.

    ``cache`` (an :class:`repro.mapping.memo.EvalCache`) memoizes the
    per-column subproblem ``P k̄ = S d̄_i`` with ``Σ k̄ <= Π d̄_i`` on the
    canonical key ``(P, S d̄_i, Π d̄_i)`` -- across the candidate mappings of
    a design-space search the same displacement/deadline pairs recur for
    every schedule sharing a space row, so most columns are answered
    without re-running the depth-first search.
    """
    m = len(d_matrix[0]) if d_matrix else 0
    n = len(d_matrix)
    r = len(p_matrix[0]) if p_matrix else 0
    p_key = (
        tuple(tuple(int(x) for x in row) for row in p_matrix)
        if cache is not None
        else None
    )
    k_cols: list[list[int]] = []
    hops: list[int] = []
    deadlines: list[int] = []
    for i in range(m):
        d_col = [d_matrix[row][i] for row in range(n)]
        target = mat_vec(list(s_matrix), d_col)
        deadline = sum(schedule[row] * d_col[row] for row in range(n))
        if cache is None:
            k_col = _column_combinations(p_matrix, target, deadline)
        else:
            key = ("icol", p_key, tuple(target), deadline)
            k_col = cache.get_or_compute(
                key,
                lambda: _column_combinations(p_matrix, target, deadline),
            )
        if k_col is None:
            return None
        k_cols.append(k_col)
        hops.append(sum(k_col))
        deadlines.append(deadline)
    k_matrix = [[k_cols[i][j] for i in range(m)] for j in range(r)]
    return InterconnectSolution(
        p_matrix=[list(row) for row in p_matrix],
        k_matrix=k_matrix,
        hops=hops,
        deadlines=deadlines,
        buffers=[t - h for h, t in zip(hops, deadlines)],
    )
