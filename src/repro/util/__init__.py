"""Integer and lattice mathematics substrate.

This package provides the exact-integer linear algebra needed by the
dependence-analysis and space-time-mapping layers:

* :mod:`repro.util.intmath` -- extended gcd, gcd of vectors, single linear
  Diophantine equations, and modular helpers.
* :mod:`repro.util.linalg` -- exact operations on integer matrices: rank over
  the rationals, Hermite and Smith normal forms, unimodular factor tracking,
  integer nullspaces and particular solutions of ``A x = b`` over ``Z``.

All routines operate on plain Python ints (arbitrary precision) wrapped in
NumPy object/int64 arrays or nested lists; none of them ever rounds through
floating point, so results are exact for arbitrarily large entries.
"""

from repro.util.intmath import (
    egcd,
    gcd_list,
    lcm,
    lcm_list,
    solve_linear_diophantine_eq,
)
from repro.util.linalg import (
    hermite_normal_form,
    identity_matrix,
    integer_nullspace,
    integer_rank,
    is_unimodular,
    mat_mul,
    mat_vec,
    smith_normal_form,
    solve_integer_system,
)

__all__ = [
    "egcd",
    "gcd_list",
    "lcm",
    "lcm_list",
    "solve_linear_diophantine_eq",
    "hermite_normal_form",
    "identity_matrix",
    "integer_nullspace",
    "integer_rank",
    "is_unimodular",
    "mat_mul",
    "mat_vec",
    "smith_normal_form",
    "solve_integer_system",
]
