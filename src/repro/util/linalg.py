"""Exact linear algebra over the integers.

The dependence analyzer reduces "does iteration ``j̄`` depend on iteration
``j̄'``" to integer solvability of linear systems built from affine array
subscripts; the mapping layer needs ranks, unimodularity checks, and
``S·D = P·K`` factorizations.  Both are served by the routines here, which
work on nested lists of Python ints so that no precision is ever lost.

The central algorithms are the Hermite and Smith normal forms computed by
integer row/column reduction with explicit unimodular transform tracking:

* ``hermite_normal_form(A) -> (H, U)`` with ``U @ A == H``, ``U`` unimodular
  and ``H`` in row-style HNF.
* ``smith_normal_form(A) -> (D, U, V)`` with ``U @ A @ V == D`` diagonal,
  ``d_i | d_{i+1}``, and ``U``, ``V`` unimodular.

``solve_integer_system(A, b)`` then yields the full integer solution lattice
of ``A x = b`` (particular solution + basis of the integer nullspace), which
is exactly what Banerjee-style exact dependence testing consumes.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

__all__ = [
    "identity_matrix",
    "mat_mul",
    "mat_vec",
    "transpose",
    "integer_rank",
    "is_unimodular",
    "determinant",
    "hermite_normal_form",
    "smith_normal_form",
    "integer_nullspace",
    "solve_integer_system",
]

Matrix = list[list[int]]
Vector = list[int]


def identity_matrix(n: int) -> Matrix:
    """Return the ``n x n`` identity matrix as nested lists of ints."""
    return [[1 if i == j else 0 for j in range(n)] for i in range(n)]


def _copy(a: Sequence[Sequence[int]]) -> Matrix:
    return [list(map(int, row)) for row in a]


def _dims(a: Sequence[Sequence[int]]) -> tuple[int, int]:
    m = len(a)
    n = len(a[0]) if m else 0
    for row in a:
        if len(row) != n:
            raise ValueError("ragged matrix")
    return m, n


def mat_mul(a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]) -> Matrix:
    """Exact integer matrix product ``a @ b``."""
    ma, na = _dims(a)
    mb, nb = _dims(b)
    if na != mb:
        raise ValueError(f"dimension mismatch: {ma}x{na} @ {mb}x{nb}")
    out = [[0] * nb for _ in range(ma)]
    for i in range(ma):
        ai = a[i]
        for k in range(na):
            aik = ai[k]
            if aik == 0:
                continue
            bk = b[k]
            row = out[i]
            for j in range(nb):
                row[j] += aik * bk[j]
    return out


def mat_vec(a: Sequence[Sequence[int]], v: Sequence[int]) -> Vector:
    """Exact integer matrix-vector product ``a @ v``."""
    ma, na = _dims(a)
    if na != len(v):
        raise ValueError(f"dimension mismatch: {ma}x{na} @ vector[{len(v)}]")
    return [sum(a[i][j] * v[j] for j in range(na)) for i in range(ma)]


def transpose(a: Sequence[Sequence[int]]) -> Matrix:
    """Matrix transpose (nested-list representation)."""
    m, n = _dims(a)
    return [[a[i][j] for i in range(m)] for j in range(n)]


def integer_rank(a: Sequence[Sequence[int]]) -> int:
    """Rank of an integer matrix, computed exactly over the rationals."""
    m, n = _dims(a)
    if m == 0 or n == 0:
        return 0
    work = [[Fraction(x) for x in row] for row in a]
    rank = 0
    row = 0
    for col in range(n):
        pivot = None
        for r in range(row, m):
            if work[r][col] != 0:
                pivot = r
                break
        if pivot is None:
            continue
        work[row], work[pivot] = work[pivot], work[row]
        pv = work[row][col]
        for r in range(row + 1, m):
            if work[r][col] != 0:
                f = work[r][col] / pv
                work[r] = [work[r][j] - f * work[row][j] for j in range(n)]
        row += 1
        rank += 1
        if row == m:
            break
    return rank


def determinant(a: Sequence[Sequence[int]]) -> int:
    """Exact determinant of a square integer matrix (Bareiss algorithm)."""
    m, n = _dims(a)
    if m != n:
        raise ValueError("determinant requires a square matrix")
    if n == 0:
        return 1
    work = _copy(a)
    sign = 1
    prev = 1
    for k in range(n - 1):
        if work[k][k] == 0:
            swap = next((r for r in range(k + 1, n) if work[r][k] != 0), None)
            if swap is None:
                return 0
            work[k], work[swap] = work[swap], work[k]
            sign = -sign
        for i in range(k + 1, n):
            for j in range(k + 1, n):
                work[i][j] = (work[i][j] * work[k][k] - work[i][k] * work[k][j]) // prev
            work[i][k] = 0
        prev = work[k][k]
    return sign * work[n - 1][n - 1]


def is_unimodular(a: Sequence[Sequence[int]]) -> bool:
    """True when ``a`` is square with determinant ``+1`` or ``-1``."""
    m, n = _dims(a)
    if m != n:
        return False
    return determinant(a) in (1, -1)


def hermite_normal_form(a: Sequence[Sequence[int]]) -> tuple[Matrix, Matrix]:
    """Row-style Hermite normal form.

    Returns ``(H, U)`` with ``U`` unimodular (``m x m``), ``U @ a == H``,
    ``H`` upper-echelon with positive pivots and entries above each pivot
    reduced modulo the pivot.
    """
    m, n = _dims(a)
    h = _copy(a)
    u = identity_matrix(m)
    row = 0
    for col in range(n):
        if row >= m:
            break
        # Euclidean elimination below (row, col).
        while True:
            nz = [r for r in range(row, m) if h[r][col] != 0]
            if not nz:
                break
            # Bring the smallest-magnitude nonzero to the pivot position.
            piv = min(nz, key=lambda r: abs(h[r][col]))
            if piv != row:
                h[row], h[piv] = h[piv], h[row]
                u[row], u[piv] = u[piv], u[row]
            done = True
            for r in range(row + 1, m):
                if h[r][col] != 0:
                    q = h[r][col] // h[row][col]
                    if q:
                        h[r] = [h[r][j] - q * h[row][j] for j in range(n)]
                        u[r] = [u[r][j] - q * u[row][j] for j in range(m)]
                    if h[r][col] != 0:
                        done = False
            if done:
                break
        if h[row][col] == 0:
            continue
        if h[row][col] < 0:
            h[row] = [-x for x in h[row]]
            u[row] = [-x for x in u[row]]
        # Reduce entries above the pivot.
        for r in range(row):
            q = h[r][col] // h[row][col]
            if q:
                h[r] = [h[r][j] - q * h[row][j] for j in range(n)]
                u[r] = [u[r][j] - q * u[row][j] for j in range(m)]
        row += 1
    return h, u


def smith_normal_form(
    a: Sequence[Sequence[int]],
) -> tuple[Matrix, Matrix, Matrix]:
    """Smith normal form with transform tracking.

    Returns ``(D, U, V)`` such that ``U @ a @ V == D`` where ``U`` (``m x m``)
    and ``V`` (``n x n``) are unimodular and ``D`` is diagonal with
    ``D[i][i] >= 0`` and ``D[i][i]`` dividing ``D[i+1][i+1]``.
    """
    m, n = _dims(a)
    d = _copy(a)
    u = identity_matrix(m)
    v = identity_matrix(n)

    def row_op(i: int, j: int, q: int) -> None:
        """row_i -= q * row_j (applied to d and u)."""
        d[i] = [d[i][c] - q * d[j][c] for c in range(n)]
        u[i] = [u[i][c] - q * u[j][c] for c in range(m)]

    def col_op(i: int, j: int, q: int) -> None:
        """col_i -= q * col_j (applied to d and v)."""
        for r in range(m):
            d[r][i] -= q * d[r][j]
        for r in range(n):
            v[r][i] -= q * v[r][j]

    def row_swap(i: int, j: int) -> None:
        d[i], d[j] = d[j], d[i]
        u[i], u[j] = u[j], u[i]

    def col_swap(i: int, j: int) -> None:
        for r in range(m):
            d[r][i], d[r][j] = d[r][j], d[r][i]
        for r in range(n):
            v[r][i], v[r][j] = v[r][j], v[r][i]

    t = 0
    while t < min(m, n):
        # Find a nonzero pivot in the trailing submatrix.
        pivot = None
        best = None
        for i in range(t, m):
            for j in range(t, n):
                if d[i][j] != 0 and (best is None or abs(d[i][j]) < best):
                    best = abs(d[i][j])
                    pivot = (i, j)
        if pivot is None:
            break
        pi, pj = pivot
        row_swap(t, pi)
        col_swap(t, pj)
        # Clear row and column t.
        while True:
            again = False
            for i in range(t + 1, m):
                if d[i][t] != 0:
                    q = d[i][t] // d[t][t]
                    row_op(i, t, q)
                    if d[i][t] != 0:
                        row_swap(t, i)
                        again = True
            for j in range(t + 1, n):
                if d[t][j] != 0:
                    q = d[t][j] // d[t][t]
                    col_op(j, t, q)
                    if d[t][j] != 0:
                        col_swap(t, j)
                        again = True
            if not again:
                break
        # Enforce divisibility d[t][t] | d[i][j] for the trailing block.
        fixed = True
        for i in range(t + 1, m):
            for j in range(t + 1, n):
                if d[i][j] % d[t][t] != 0:
                    # Add row i to row t and restart elimination at t.
                    d[t] = [d[t][c] + d[i][c] for c in range(n)]
                    u[t] = [u[t][c] + u[i][c] for c in range(m)]
                    fixed = False
                    break
            if not fixed:
                break
        if not fixed:
            continue
        if d[t][t] < 0:
            d[t] = [-x for x in d[t]]
            u[t] = [-x for x in u[t]]
        t += 1
    return d, u, v


def integer_nullspace(a: Sequence[Sequence[int]]) -> list[Vector]:
    """Basis of the integer nullspace ``{x in Z^n : a @ x == 0}``.

    The basis generates the full lattice of integer solutions (not just a
    rational basis scaled to integrality), courtesy of the Smith normal form.
    """
    m, n = _dims(a)
    if n == 0:
        return []
    d, _u, v = smith_normal_form(a)
    r = sum(1 for i in range(min(m, n)) if d[i][i] != 0)
    # Columns r..n-1 of V span the nullspace lattice.
    return [[v[row][col] for row in range(n)] for col in range(r, n)]


def solve_integer_system(
    a: Sequence[Sequence[int]], b: Sequence[int]
) -> tuple[Vector, list[Vector]] | None:
    """Solve ``a @ x == b`` over the integers.

    Returns ``None`` when no integer solution exists, otherwise
    ``(particular, basis)`` where the general solution is
    ``particular + sum_k t_k basis[k]`` over integer ``t_k``.
    """
    m, n = _dims(a)
    if len(b) != m:
        raise ValueError("rhs length mismatch")
    if n == 0:
        return ([], []) if all(x == 0 for x in b) else None
    d, u, v = smith_normal_form(a)
    c = mat_vec(u, list(b))
    y = [0] * n
    for i in range(min(m, n)):
        di = d[i][i]
        if di == 0:
            if c[i] != 0:
                return None
        else:
            if c[i] % di != 0:
                return None
            y[i] = c[i] // di
    for i in range(min(m, n), m):
        if c[i] != 0:
            return None
    particular = mat_vec(v, y)
    r = sum(1 for i in range(min(m, n)) if d[i][i] != 0)
    basis = [[v[row][col] for row in range(n)] for col in range(r, n)]
    return particular, basis
