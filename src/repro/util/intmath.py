"""Elementary exact integer arithmetic used throughout the library.

These helpers back the Diophantine machinery in
:mod:`repro.depanalysis.diophantine` and the feasibility checks in
:mod:`repro.mapping`.  Everything here works on plain Python integers and is
exact for arbitrary magnitudes.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = [
    "egcd",
    "gcd_list",
    "lcm",
    "lcm_list",
    "sign",
    "ceil_div",
    "floor_div",
    "solve_linear_diophantine_eq",
]


def sign(x: int) -> int:
    """Return the sign of ``x`` as ``-1``, ``0`` or ``1``."""
    if x > 0:
        return 1
    if x < 0:
        return -1
    return 0


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclidean algorithm.

    Returns ``(g, x, y)`` with ``g = gcd(a, b) >= 0`` and ``a*x + b*y == g``.

    >>> egcd(12, 30)
    (6, -2, 1)
    """
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    if old_r < 0:
        old_r, old_s, old_t = -old_r, -old_s, -old_t
    return old_r, old_s, old_t


def gcd_list(values: Iterable[int]) -> int:
    """Greatest common divisor of an iterable of integers (``0`` if empty).

    ``gcd_list([0, 0])`` is ``0`` by convention, matching :func:`math.gcd`.
    """
    g = 0
    for v in values:
        g = math.gcd(g, v)
    return g


def lcm(a: int, b: int) -> int:
    """Least common multiple of two integers (``0`` if either is ``0``)."""
    if a == 0 or b == 0:
        return 0
    return abs(a * b) // math.gcd(a, b)


def lcm_list(values: Iterable[int]) -> int:
    """Least common multiple of an iterable of integers (``1`` if empty)."""
    out = 1
    for v in values:
        out = lcm(out, v)
        if out == 0:
            return 0
    return out


def floor_div(a: int, b: int) -> int:
    """Floor division ``floor(a / b)`` for nonzero integer ``b``.

    Python's ``//`` already floors for either sign of ``b``; this wrapper
    exists for symmetry with :func:`ceil_div` and to document the intent.
    """
    return a // b


def ceil_div(a: int, b: int) -> int:
    """Ceiling division ``ceil(a / b)`` for nonzero integer ``b``."""
    return -((-a) // b)


def solve_linear_diophantine_eq(
    coeffs: Sequence[int], rhs: int
) -> tuple[list[int], list[list[int]]] | None:
    """Solve ``sum_i coeffs[i] * x_i == rhs`` over the integers.

    Returns ``None`` when no integer solution exists (``gcd(coeffs)`` does not
    divide ``rhs``).  Otherwise returns ``(particular, basis)`` where
    ``particular`` is one integer solution and ``basis`` is a list of
    ``len(coeffs) - rank`` integer vectors spanning the solution lattice of the
    homogeneous equation, i.e. the general solution is
    ``particular + sum_k t_k * basis[k]`` for integer ``t_k``.

    The classic GCD dependence test (:mod:`repro.depanalysis.gcdtest`) is
    exactly the *existence* half of this routine.
    """
    n = len(coeffs)
    if n == 0:
        return ([], []) if rhs == 0 else None
    g = gcd_list(coeffs)
    if g == 0:
        if rhs != 0:
            return None
        # 0 == 0: every integer point solves it.
        basis = [[1 if j == i else 0 for j in range(n)] for i in range(n)]
        return [0] * n, basis

    if rhs % g != 0:
        return None

    # Build the solution incrementally: maintain a particular solution of
    # c_1 x_1 + ... + c_k x_k = g_k where g_k = gcd(c_1..c_k), together with a
    # lattice basis of the homogeneous solutions, by folding one variable at a
    # time through the extended Euclidean algorithm.
    particular = [0] * n
    basis: list[list[int]] = []
    g_cur = coeffs[0]
    # expr holds, for each processed variable, its coefficient in terms of the
    # "combined" variable representing g_cur; start with x_0 alone.
    combo = [0] * n
    combo[0] = 1
    if g_cur == 0:
        # x_0 is free.
        free = [0] * n
        free[0] = 1
        basis.append(free)
    for k in range(1, n):
        c = coeffs[k]
        if c == 0:
            free = [0] * n
            free[k] = 1
            basis.append(free)
            continue
        if g_cur == 0:
            g_cur = c
            combo = [0] * n
            combo[k] = 1
            continue
        g_new, s, t = egcd(g_cur, c)
        # New combined variable y with g_new = s*g_cur + t*c; the homogeneous
        # direction is (c/g_new) * combo - (g_cur/g_new) * e_k.
        hom = [(c // g_new) * combo[j] for j in range(n)]
        hom[k] -= g_cur // g_new
        basis.append(hom)
        combo = [s * combo[j] for j in range(n)]
        combo[k] += t
        g_cur = g_new
    scale = rhs // g_cur
    particular = [scale * combo[j] for j in range(n)]
    return particular, basis
