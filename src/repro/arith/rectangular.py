"""Mixed word lengths: the rectangular add-shift lattice.

The paper fixes one word length ``p`` for both operands and closes with
"more general models are under investigation".  One natural generalization
costs nothing in the framework: operands of *different* widths.  A
``pa``-bit multiplicand times a ``pb``-bit multiplier is a ``pb x pa``
add-shift lattice -- same dependence vectors, rectangular index set -- and
Theorem 3.1 composes it unchanged (the construction only reads the lattice
bounds symbolically).

This module provides the rectangular structure (``J_as = [1,pb] x [1,pa]``)
and a bit-exact evaluator with the same boundary carry completion as the
square case; the product has ``pa + pb`` bits, the top one being the final
carry.
"""

from __future__ import annotations

from repro.arith.bitops import from_bits, full_adder, to_bits
from repro.arith.structure import ArithmeticStructure
from repro.structures.indexset import IndexSet
from repro.structures.params import LinExpr, S, as_linexpr

__all__ = ["RectangularAddShift", "rectangular_addshift_structure"]


class RectangularAddShift:
    """Bit-exact ``pa x pb`` add-shift multiplier.

    ``a`` has ``pa`` bits (indexed by ``i2``), ``b`` has ``pb`` bits
    (indexed by ``i1``); the lattice point ``(i1, i2)`` holds weight
    ``2^{i1+i2-2}``.
    """

    def __init__(self, pa: int, pb: int):
        if pa < 1 or pb < 1:
            raise ValueError("word lengths must be positive")
        self.pa = int(pa)
        self.pb = int(pb)

    def trace(self, a: int, b: int) -> dict:
        """Evaluate the lattice; same routing discipline as the square case."""
        pa, pb = self.pa, self.pb
        a_bits = to_bits(a, pa)
        b_bits = to_bits(b, pb)
        s: dict[tuple[int, int], int] = {}
        c: dict[tuple[int, int], int] = {}
        rerouted: dict[tuple[int, int], int] = {}
        for i1 in range(1, pb + 1):
            for i2 in range(1, pa + 1):
                pp = a_bits[i2 - 1] & b_bits[i1 - 1]
                carry_in = c.get((i1, i2 - 1), 0)
                if i2 == pa:
                    third = rerouted.get((i1, i2), 0)
                else:
                    third = s.get((i1 - 1, i2 + 1), 0)
                sb, cb = full_adder(pp, carry_in, third)
                s[(i1, i2)] = sb
                if i2 == pa and i1 < pb:
                    rerouted[(i1 + 1, pa)] = cb
                else:
                    c[(i1, i2)] = cb
        return {"s": s, "c": c, "rerouted": rerouted,
                "carry_out": c.get((pb, pa), 0)}

    def result_bits(self, a: int, b: int) -> list[int]:
        """The ``pa + pb`` product bits, little-endian.

        Output map: position ``w <= pb`` at ``s(w, 1)``; positions
        ``pb < w <= pa + pb - 1`` at ``s(pb, w - pb + 1)``; the top bit is
        the final carry ``c(pb, pa)``.
        """
        pa, pb = self.pa, self.pb
        t = self.trace(a, b)
        bits = [t["s"][(w, 1)] for w in range(1, pb + 1)]
        bits += [t["s"][(pb, k)] for k in range(2, pa + 1)]
        bits.append(t["carry_out"])
        return bits

    def multiply(self, a: int, b: int) -> int:
        """The exact product ``a * b``."""
        return from_bits(self.result_bits(a, b))

    @property
    def steps(self) -> int:
        """Full-adder evaluations (``pa · pb``)."""
        return self.pa * self.pb


def _multiply(a: int, b: int, p: int) -> int:
    # Registry-compatible square fallback (pa = pb = p).
    return RectangularAddShift(p, p).multiply(a, b)


def rectangular_addshift_structure(
    pa: LinExpr | int | None = None,
    pb: LinExpr | int | None = None,
) -> ArithmeticStructure:
    """``(J_as, D_as)`` of the rectangular lattice.

    ``J_as = { (i1, i2) : 1 <= i1 <= pb, 1 <= i2 <= pa }``; the dependence
    vectors are exactly the square add-shift ones -- only the index-set
    bounds differ, which is all Theorem 3.1 consults.
    """
    pa = S("pa") if pa is None else as_linexpr(pa)
    pb = S("pb") if pb is None else as_linexpr(pb)
    return ArithmeticStructure(
        name="add-shift-rectangular",
        index_set=IndexSet([1, 1], [pb, pa], ("i1", "i2")),
        delta_a=(1, 0),
        delta_b=(0, 1),
        delta_s=(1, -1),
        delta_carry=(0, 1),
        delta_carry2=(0, 2),
        multiply=_multiply,
    )
