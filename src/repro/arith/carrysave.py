"""The carry-save array multiplier.

Section 4.2 of the paper notes that "faster arithmetic algorithms such as
carry-save multiplication with complexity ``t_b = O(p)`` can be used" in the
word-level baseline, reducing the bit-level speedup from ``O(p²)`` to
``O(p)``.  This module provides that algorithm: a ``p x p`` lattice of
3-to-2 compressors in which carries are *saved* -- forwarded one row south to
``(i1+1, i2)`` (weight-consistent, direction ``[1,0]ᵀ``) -- instead of
rippling within the row, followed by a final carry-propagate pass over the
redundant last row.

Lattice roles (cell ``(i1,i2)``, weight ``2^{i1+i2-2}``):

* partial product ``a_{i2} ∧ b_{i1}``;
* partial sum in from ``(i1-1, i2+1)`` (``δ̄₃ = [1,-1]ᵀ``);
* saved carry in from ``(i1-1, i2)`` (``δ̄_c = [1,0]ᵀ``, shared with the
  ``a``-pipelining direction).

The low product bits leave at the eastern column (``s(i1,1)``); the last row
retains a redundant (sum, carry) pair resolved by the final adder.
"""

from __future__ import annotations

from repro.arith.bitops import full_adder, to_bits
from repro.arith.structure import ArithmeticStructure
from repro.structures.indexset import IndexSet
from repro.structures.params import LinExpr, S, as_linexpr

__all__ = ["CarrySaveMultiplier", "carrysave_structure"]


class CarrySaveMultiplier:
    """Bit-exact evaluator of the carry-save array for word length ``p``."""

    def __init__(self, p: int):
        if p < 1:
            raise ValueError("word length p must be positive")
        self.p = int(p)

    def trace(self, a: int, b: int) -> dict:
        """Evaluate the array; returns the ``s``/``c`` grids and final rows."""
        p = self.p
        a_bits = to_bits(a, p)
        b_bits = to_bits(b, p)
        s: dict[tuple[int, int], int] = {}
        c: dict[tuple[int, int], int] = {}
        for i1 in range(1, p + 1):
            for i2 in range(1, p + 1):
                pp = a_bits[i2 - 1] & b_bits[i1 - 1]
                s_in = s.get((i1 - 1, i2 + 1), 0)
                c_in = c.get((i1 - 1, i2), 0)
                sb, cb = full_adder(pp, s_in, c_in)
                s[(i1, i2)] = sb
                c[(i1, i2)] = cb
        return {"s": s, "c": c}

    def multiply(self, a: int, b: int) -> int:
        """The exact product: eastern-column bits plus the resolved last row."""
        p = self.p
        t = self.trace(a, b)
        s, c = t["s"], t["c"]
        # Low bits: s(i1, 1) has weight 2^{i1-1}.
        value = sum(s[(i1, 1)] << (i1 - 1) for i1 in range(1, p + 1))
        # Redundant last row: s(p, i2) weight 2^{p+i2-2} (i2 >= 2),
        # c(p, i2) weight 2^{p+i2-1} -- resolved by the final adder.
        value += sum(s[(p, i2)] << (p + i2 - 2) for i2 in range(2, p + 1))
        value += sum(c[(p, i2)] << (p + i2 - 1) for i2 in range(1, p + 1))
        return value

    @property
    def steps(self) -> int:
        """3-to-2 compressor evaluations (``p²``) before the final adder."""
        return self.p * self.p


def _multiply(a: int, b: int, p: int) -> int:
    return CarrySaveMultiplier(p).multiply(a, b)


def carrysave_structure(p: LinExpr | int | None = None) -> ArithmeticStructure:
    """The carry-save structure: ``δ̄₁=[1,0]ᵀ (a, c)``, ``δ̄₂=[0,1]ᵀ (b)``,
    ``δ̄₃=[1,-1]ᵀ (s)``, second carry direction ``[2,0]ᵀ``."""
    p = S("p") if p is None else as_linexpr(p)
    return ArithmeticStructure(
        name="carry-save",
        index_set=IndexSet([1, 1], [p, p], ("i1", "i2")),
        delta_a=(1, 0),
        delta_b=(0, 1),
        delta_s=(1, -1),
        delta_carry=(1, 0),
        delta_carry2=(2, 0),
        multiply=_multiply,
    )
