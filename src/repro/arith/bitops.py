"""Boolean bit operations: the full adder of eq. (3.2) and bit codecs.

The paper's computations at every bit-level index point are built from the
two Boolean functions

.. math::

    g(x_1, x_2, x_3) &= (x_1 \\wedge x_2) \\vee (x_2 \\wedge x_3)
                        \\vee (x_3 \\wedge x_1)  \\qquad \\text{(carry)} \\\\
    f(x_1, x_2, x_3) &= x_1 \\oplus x_2 \\oplus x_3 \\qquad \\text{(sum)}

i.e. a full adder.  Points that must sum more than three bits (Expansion II's
``i1 = p`` hyperplane, Expansion I's final word iteration) generalize to a
small *compressor*: :func:`compress` decomposes an input count ``v <= 7``
into a sum bit, a carry and a second carry ``c'``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = [
    "carry_bit",
    "sum_bit",
    "full_adder",
    "compress",
    "to_bits",
    "from_bits",
]


def carry_bit(x1: int, x2: int, x3: int) -> int:
    """The majority function ``g`` of eq. (3.2): the full-adder carry."""
    return (x1 & x2) | (x2 & x3) | (x3 & x1)


def sum_bit(x1: int, x2: int, x3: int) -> int:
    """The parity function ``f`` of eq. (3.2): the full-adder sum."""
    return x1 ^ x2 ^ x3


def full_adder(x1: int, x2: int, x3: int) -> tuple[int, int]:
    """Return ``(sum, carry)`` of three bits."""
    return sum_bit(x1, x2, x3), carry_bit(x1, x2, x3)


def compress(bits: Iterable[int]) -> tuple[int, int, int]:
    """Compress up to seven input bits into ``(sum, carry, carry2)``.

    ``sum`` has the weight of the inputs, ``carry`` one position higher,
    ``carry2`` two positions higher (the paper's second carry ``c'``).
    Raises ``ValueError`` when more than seven bits are supplied -- the
    expansions never need more, and silently dropping value would corrupt
    functional verification.
    """
    v = 0
    for b in bits:
        if b not in (0, 1):
            raise ValueError(f"non-bit input {b!r}")
        v += b
    if v > 7:
        raise ValueError(f"compressor overflow: {v} input ones > 7")
    return v & 1, (v >> 1) & 1, (v >> 2) & 1


def to_bits(value: int, width: int) -> list[int]:
    """Little-endian bit decomposition: ``to_bits(v, w)[k]`` is bit ``k``.

    ``value`` must be representable in ``width`` bits (nonnegative).
    """
    if value < 0:
        raise ValueError("to_bits expects a nonnegative integer")
    if value >> width:
        raise ValueError(f"{value} does not fit in {width} bits")
    return [(value >> k) & 1 for k in range(width)]


def from_bits(bits: Sequence[int]) -> int:
    """Inverse of :func:`to_bits` (little-endian)."""
    out = 0
    for k, b in enumerate(bits):
        if b not in (0, 1):
            raise ValueError(f"non-bit input {b!r}")
        out |= b << k
    return out
