"""Non-restoring division: the third arithmetic in the paper's list.

Section 3 motivates the once-per-arithmetic derivation with "multiplication,
addition and division"; the conference paper works out multiplication and
defers the rest.  This module supplies division: the classical
*non-restoring* algorithm realized as ``p`` rows of controlled add/subtract
(CAS) cells -- the bit-level structure of a Guild-style array divider --
with a bit-exact evaluator and its dependence structure.

**Why division is row-systolic, not cell-systolic.**  Within one CAS row,
two signals travel in *opposite* directions: the carry of the ±B operation
ripples from the least significant cell upward (``[0, +1]``), while the
row's control bit ``T`` (the sign of the previous partial remainder, which
decides add vs subtract) must reach every cell from the sign end
(``[0, -1]``).  A linear schedule would need ``Π·[0,1] > 0`` and
``Π·[0,-1] > 0`` simultaneously -- impossible.  This is the structural
reason bit-level systolic *dividers* require carry-save/SRT reformulations
or row-level granularity, and why the paper's worked examples are
multipliers.  We therefore expose the honest **row-level** dependence
structure (a 1-D systolic chain: each row consumes the previous row's
partial remainder, control bit and divisor), with each row costing a
``p+2``-cell ripple -- giving the word-level division time
``t_b = O(p²)`` that a word-level PE would pay.
"""

from __future__ import annotations

from repro.arith.bitops import full_adder
from repro.structures.algorithm import Algorithm, ComputationSet
from repro.structures.conditions import TRUE
from repro.structures.dependence import DependenceMatrix, DependenceVector
from repro.structures.indexset import IndexSet
from repro.structures.params import LinExpr, S, as_linexpr

__all__ = ["NonRestoringDivider", "division_row_structure"]


class NonRestoringDivider:
    """Bit-exact non-restoring divider for ``p``-bit operands.

    Computes ``(q, r)`` with ``a = q·b + r`` and ``0 <= r < b`` for
    ``0 <= a < 2^p`` and ``1 <= b < 2^p``, via ``p`` CAS rows over a
    ``p+2``-bit two's-complement remainder window plus one correction row.
    """

    def __init__(self, p: int):
        if p < 1:
            raise ValueError("word length p must be positive")
        self.p = int(p)
        self.width = self.p + 2  # remainder window incl. sign headroom

    def _cas_row(self, r_word: int, b: int, subtract: int) -> int:
        """One controlled add/subtract: ``R ± B`` over the window.

        ``subtract = 1`` adds the two's complement of ``B`` (XOR + carry-in),
        exactly as a CAS cell row does in hardware.
        """
        w = self.width
        carry = subtract
        out = 0
        for k in range(w):
            bk = (b >> k) & 1 if k < self.p else 0
            xk = (r_word >> k) & 1
            yk = bk ^ subtract
            s, carry = full_adder(xk, yk, carry)
            out |= s << k
        return out

    def trace(self, a: int, b: int) -> dict:
        """Run the array; returns per-row remainders, controls and quotient
        bits (MSB first)."""
        p, w = self.p, self.width
        if not (0 <= a < (1 << p)):
            raise ValueError(f"dividend {a} outside the {p}-bit range")
        if not (1 <= b < (1 << p)):
            raise ValueError(f"divisor {b} must be in [1, 2^p)")
        mask = (1 << w) - 1
        remainder = 0
        control = 1  # the first row subtracts
        rows = []
        quotient = 0
        for r in reversed(range(p)):
            remainder = ((remainder << 1) | ((a >> r) & 1)) & mask
            remainder = self._cas_row(remainder, b, control)
            sign = (remainder >> (w - 1)) & 1
            q_bit = 1 - sign
            quotient |= q_bit << r
            rows.append(
                {"row": p - r, "remainder": remainder, "control": control,
                 "q_bit": q_bit}
            )
            control = q_bit  # nonnegative remainder → keep subtracting
        corrected = False
        if (remainder >> (w - 1)) & 1:
            remainder = (remainder + b) & mask  # final restoring correction
            corrected = True
        return {
            "rows": rows,
            "quotient": quotient,
            "remainder": remainder,
            "corrected": corrected,
        }

    def divide(self, a: int, b: int) -> tuple[int, int]:
        """Exact Euclidean division: ``(a // b, a % b)``."""
        t = self.trace(a, b)
        return t["quotient"], t["remainder"]

    @property
    def steps(self) -> int:
        """CAS-cell evaluations: ``p`` rows of ``p+2`` cells plus the
        correction row -- ``O(p²)``, the division ``t_b``."""
        return self.p * self.width + self.width

    @property
    def cycles(self) -> int:
        """Worst-case sequential cycle count (one cell per cycle)."""
        return self.steps


def division_row_structure(p: LinExpr | int | None = None) -> Algorithm:
    """The row-level dependence structure of the non-restoring array.

    A 1-D chain ``J = {1..p}``: row ``i`` consumes the previous row's
    partial remainder ``R``, control bit ``T`` and the pipelined divisor
    ``b`` -- one uniform dependence vector ``[1]`` carrying all three.
    (The *cell*-level array is not linearly schedulable; see the module
    docstring.)
    """
    p = S("p") if p is None else as_linexpr(p)
    dep = DependenceMatrix([DependenceVector([1], ("R", "T", "b"), TRUE)])
    comp = ComputationSet(
        {
            "S_row": "R(i) = CAS(R(i-1) shifted, b, T(i-1)); "
                     "T(i) = sign(R(i)); q_i = ¬T(i)",
        }
    )
    return Algorithm(IndexSet([1], [p], ("i",)), dep, comp, "nonrestoring-divider")
