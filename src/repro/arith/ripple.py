"""The ripple-carry adder: the word-wise addition substrate.

The paper's technical report [7] contains "the dependence structure of an
algorithm for adding two integers"; the conference version omits it for
space.  The canonical such algorithm is the ripple-carry adder: a 1-D chain
of full adders in which the carry is the only cross-iteration dependence
(``δ̄ = [1]``).  It is included both as an executable primitive (used by the
sequential word multipliers) and as a dependence structure.
"""

from __future__ import annotations

from repro.arith.bitops import from_bits, full_adder, to_bits
from repro.structures.algorithm import Algorithm, ComputationSet
from repro.structures.conditions import TRUE
from repro.structures.dependence import DependenceMatrix, DependenceVector
from repro.structures.indexset import IndexSet
from repro.structures.params import LinExpr, S, as_linexpr

try:  # pragma: no cover - both paths exercised by the test suite
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["RippleCarryAdder", "ripple_structure"]


class RippleCarryAdder:
    """Bit-exact ``width``-bit ripple-carry adder with step accounting."""

    def __init__(self, width: int):
        if width < 1:
            raise ValueError("adder width must be positive")
        self.width = int(width)

    def add(self, a: int, b: int, carry_in: int = 0) -> tuple[int, int]:
        """Return ``(sum mod 2^width, carry_out)``."""
        a_bits = to_bits(a, self.width)
        b_bits = to_bits(b, self.width)
        out = []
        carry = carry_in
        for k in range(self.width):
            sb, carry = full_adder(a_bits[k], b_bits[k], carry)
            out.append(sb)
        return from_bits(out), carry

    def add_block(self, a, b, carry_in: int = 0):
        """:meth:`add` over whole operand blocks.

        Returns ``(sums, carry_outs)`` as int64 ndarrays when NumPy is
        available and the width fits a machine word, else as lists.  Used
        by the wavefront slot kernels to add a time slot's operands at
        once.
        """
        if _np is None or self.width > 62:
            pairs = [self.add(int(x), int(y), carry_in) for x, y in zip(a, b)]
            return [s for s, _ in pairs], [c for _, c in pairs]
        a = _np.asarray(a, dtype=_np.int64)
        b = _np.asarray(b, dtype=_np.int64)
        total = a + b + int(carry_in)
        return total & ((1 << self.width) - 1), total >> self.width

    @property
    def steps(self) -> int:
        """Full-adder evaluations on the carry chain (``width``)."""
        return self.width


def ripple_structure(p: LinExpr | int | None = None) -> Algorithm:
    """The 1-D dependence structure of ripple-carry addition.

    Index set ``{i : 1 <= i <= p}``; one uniform dependence vector ``[1]``
    caused by the carry.
    """
    p = S("p") if p is None else as_linexpr(p)
    dep = DependenceMatrix([DependenceVector([1], ("c",), TRUE)])
    comp = ComputationSet(
        {
            "S_s": "s(i) = f(a(i), b(i), c(i-1))",
            "S_c": "c(i) = g(a(i), b(i), c(i-1))",
        }
    )
    return Algorithm(IndexSet([1], [p], ("i",)), dep, comp, "ripple-carry-adder")
