"""Registry of arithmetic structures, keyed by name.

The paper observes that "many word-level algorithms involve a limited number
of word-level arithmetic algorithms, [so] the dependence structures of these
algorithms need to be derived only once".  The registry is that once-derived
catalog: Theorem 3.1 callers look structures up by name, and users can
register their own (any 2-D multiplier fitting the
:class:`~repro.arith.structure.ArithmeticStructure` roles).
"""

from __future__ import annotations

from typing import Callable

from repro.arith.addshift import addshift_structure
from repro.arith.baughwooley import baughwooley_structure
from repro.arith.carrysave import carrysave_structure
from repro.arith.structure import ArithmeticStructure
from repro.structures.params import LinExpr

__all__ = ["register_structure", "get_structure", "list_structures"]

_REGISTRY: dict[str, Callable[[LinExpr | int | None], ArithmeticStructure]] = {
    "add-shift": addshift_structure,
    "baugh-wooley": baughwooley_structure,
    "carry-save": carrysave_structure,
}


def register_structure(
    name: str,
    factory: Callable[[LinExpr | int | None], ArithmeticStructure],
    replace: bool = False,
) -> None:
    """Register a structure factory ``factory(p) -> ArithmeticStructure``."""
    if name in _REGISTRY and not replace:
        raise ValueError(f"arithmetic structure {name!r} already registered")
    _REGISTRY[name] = factory


def get_structure(
    name: str, p: LinExpr | int | None = None
) -> ArithmeticStructure:
    """Instantiate the named structure at word length ``p`` (symbolic if
    omitted)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown arithmetic structure {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return factory(p)


def list_structures() -> list[str]:
    """Names of all registered structures."""
    return sorted(_REGISTRY)
