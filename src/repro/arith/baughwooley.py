"""The Baugh-Wooley two's-complement multiplier.

The paper's multipliers handle nonnegative integers; real signal-processing
workloads (the convolution/DCT/DFT applications the paper's model targets)
need signed words.  The classical bit-level answer is the Baugh-Wooley
scheme: a ``p x p`` lattice *identical in shape* to the add-shift array --
hence with the same dependence structure, so Theorem 3.1 applies verbatim --
in which the partial products involving exactly one sign bit are inverted
and two correction bits are injected:

.. math::

    a \\cdot b \\equiv \\sum_{i,j<p-1} a_i b_j 2^{i+j}
        + \\sum_{j<p-1} \\overline{a_{p-1} b_j}\\, 2^{p-1+j}
        + \\sum_{i<p-1} \\overline{a_i b_{p-1}}\\, 2^{p-1+i}
        + a_{p-1} b_{p-1} 2^{2p-2} + 2^p + 2^{2p-1} \\pmod{2^{2p}}

for ``p``-bit two's-complement operands, the result read as a signed
``2p``-bit word.  The evaluator below computes exactly that with a
column-compression bit heap (the hardware's compressor tree), bit-exactly
for every operand pair.
"""

from __future__ import annotations

from repro.arith.structure import ArithmeticStructure
from repro.structures.indexset import IndexSet
from repro.structures.params import LinExpr, S, as_linexpr

try:  # pragma: no cover - both paths exercised by the test suite
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["BaughWooleyMultiplier", "baughwooley_structure"]


class BaughWooleyMultiplier:
    """Bit-exact signed multiplier for ``p``-bit two's-complement words."""

    def __init__(self, p: int):
        if p < 2:
            raise ValueError("Baugh-Wooley needs p >= 2 (a sign bit plus data)")
        self.p = int(p)

    def _operand_bits(self, value: int, name: str) -> list[int]:
        p = self.p
        lo, hi = -(1 << (p - 1)), (1 << (p - 1)) - 1
        if not lo <= value <= hi:
            raise ValueError(f"{name}={value} outside the {p}-bit signed range")
        return [(value >> k) & 1 for k in range(p)]  # two's complement bits

    def partial_product_bits(self, a: int, b: int) -> dict[int, list[int]]:
        """The Baugh-Wooley bit heap: position (0-based) -> list of bits."""
        p = self.p
        a_bits = self._operand_bits(a, "a")
        b_bits = self._operand_bits(b, "b")
        heap: dict[int, list[int]] = {}

        def drop(pos: int, bit: int) -> None:
            heap.setdefault(pos, []).append(bit)

        for i in range(p - 1):
            for j in range(p - 1):
                drop(i + j, a_bits[i] & b_bits[j])
        for j in range(p - 1):
            drop(p - 1 + j, 1 - (a_bits[p - 1] & b_bits[j]))
        for i in range(p - 1):
            drop(p - 1 + i, 1 - (a_bits[i] & b_bits[p - 1]))
        drop(2 * p - 2, a_bits[p - 1] & b_bits[p - 1])
        drop(p, 1)  # correction constants
        drop(2 * p - 1, 1)
        return heap

    def multiply(self, a: int, b: int) -> int:
        """The exact signed product ``a * b``."""
        p = self.p
        heap = self.partial_product_bits(a, b)
        # Column compression, exactly as a compressor tree would.
        total = 0
        for pos, bits in heap.items():
            total += sum(bits) << pos
        total &= (1 << (2 * p)) - 1
        # Interpret as a signed 2p-bit word.
        if total >> (2 * p - 1):
            total -= 1 << (2 * p)
        return total

    def multiply_block(self, a, b):
        """:meth:`multiply` over whole operand blocks: the Baugh-Wooley
        heap evaluated with array arithmetic (inverted sign-row/column
        partial products and the two correction constants included), so a
        scheme bug would corrupt the batched results exactly as it would
        the scalar ones."""
        p = self.p
        if _np is None or 2 * p > 62:
            return [self.multiply(int(x), int(y)) for x, y in zip(a, b)]
        a = _np.asarray(a, dtype=_np.int64)
        b = _np.asarray(b, dtype=_np.int64)
        lo, hi = -(1 << (p - 1)), (1 << (p - 1)) - 1
        for value, name in ((a, "a"), (b, "b")):
            bad = (value < lo) | (value > hi)
            if bad.any():
                k = int(_np.argmax(bad))
                raise ValueError(
                    f"{name}={int(value[k])} outside the {p}-bit signed range"
                )
        shifts = _np.arange(p, dtype=_np.int64)
        a_bits = (a[:, None] >> shifts) & 1  # arithmetic shift: 2's complement
        b_bits = (b[:, None] >> shifts) & 1
        core_w = (
            1 << (shifts[: p - 1, None] + shifts[None, : p - 1])
        ).astype(_np.int64)
        total = (
            (a_bits[:, : p - 1, None] & b_bits[:, None, : p - 1]) * core_w
        ).sum(axis=(1, 2))
        sign_w = (1 << (p - 1 + shifts[: p - 1])).astype(_np.int64)
        total += ((1 - (a_bits[:, p - 1 :] & b_bits[:, : p - 1])) * sign_w).sum(axis=1)
        total += ((1 - (a_bits[:, : p - 1] & b_bits[:, p - 1 :])) * sign_w).sum(axis=1)
        total += (a_bits[:, p - 1] & b_bits[:, p - 1]) << (2 * p - 2)
        total += (1 << p) + (1 << (2 * p - 1))  # correction constants
        total &= (1 << (2 * p)) - 1
        return _np.where(
            (total >> (2 * p - 1)) != 0, total - (1 << (2 * p)), total
        )

    @property
    def steps(self) -> int:
        """Lattice size (``p²`` partial products plus two corrections)."""
        return self.p * self.p + 2


def _multiply(a: int, b: int, p: int) -> int:
    return BaughWooleyMultiplier(p).multiply(a, b)


def baughwooley_structure(p: LinExpr | int | None = None) -> ArithmeticStructure:
    """Dependence structure of the Baugh-Wooley lattice.

    Geometrically identical to add-shift (same ``p x p`` lattice, same
    carry/sum movement); only the cell Boolean functions differ, which the
    dependence-level machinery never sees.
    """
    p = S("p") if p is None else as_linexpr(p)
    return ArithmeticStructure(
        name="baugh-wooley",
        index_set=IndexSet([1, 1], [p, p], ("i1", "i2")),
        delta_a=(1, 0),
        delta_b=(0, 1),
        delta_s=(1, -1),
        delta_carry=(0, 1),
        delta_carry2=(0, 2),
        multiply=_multiply,
    )
