"""Sequential word-level multipliers with cycle accounting.

The speedup comparison of Section 4.2 measures the best word-level systolic
array, whose per-PE cost ``t_b`` is "the time for multiplying two integers
and adding two integers" using a *sequential* arithmetic algorithm inside
each word-level processor:

* **add-shift** -- ``p`` conditional shifted additions, each a ``2p``-bit
  ripple-carry add: ``t_b = O(p²)``;
* **carry-save** -- ``p`` carry-save compression steps (constant time each)
  plus one final ``2p``-bit carry-propagate add: ``t_b = O(p)``.

Both classes compute exact products *and* report a deterministic worst-case
cycle count (data-independent, as a hardware datapath would be clocked), so
the word-level baseline can be both simulated and costed.
"""

from __future__ import annotations

from repro.arith.ripple import RippleCarryAdder

try:  # pragma: no cover - both paths exercised by the test suite
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["SequentialAddShift", "SequentialCarrySave", "word_multiplier_cycles"]


def _check_block_operands(a, b, p: int):
    """Vectorized range check shared by the block multipliers."""
    a = _np.asarray(a, dtype=_np.int64)
    b = _np.asarray(b, dtype=_np.int64)
    hi = 1 << p
    if ((a < 0) | (a >= hi) | (b < 0) | (b >= hi)).any():
        raise ValueError("operands exceed the word length")
    return a, b


class SequentialAddShift:
    """Shift-and-add multiplier: ``p`` iterations of a ``2p``-bit ripple add."""

    def __init__(self, p: int):
        if p < 1:
            raise ValueError("word length p must be positive")
        self.p = int(p)
        self._adder = RippleCarryAdder(2 * p)

    def multiply(self, a: int, b: int) -> int:
        """Exact product via shift-and-add (checked against ``a*b``)."""
        p = self.p
        if not (0 <= a < (1 << p) and 0 <= b < (1 << p)):
            raise ValueError("operands exceed the word length")
        acc = 0
        for i in range(p):
            if (b >> i) & 1:
                acc, carry = self._adder.add(acc, (a << i) & ((1 << (2 * p)) - 1))
                if carry:
                    raise AssertionError("2p-bit accumulator overflow")
        return acc

    def multiply_block(self, a, b):
        """:meth:`multiply` over whole operand blocks (one shifted-add
        sweep per bit position, each addition done block-wide) -- the
        wavefront slot kernels' batched multiply.  Falls back to the
        scalar loop without NumPy or when ``2p`` exceeds a machine word."""
        p = self.p
        if _np is None or 2 * p > 62:
            return [self.multiply(int(x), int(y)) for x, y in zip(a, b)]
        a, b = _check_block_operands(a, b, p)
        mask = (1 << (2 * p)) - 1
        acc = _np.zeros_like(a)
        for i in range(p):
            acc = acc + _np.where((b >> i) & 1 == 1, (a << i) & mask, 0)
            if (acc > mask).any():
                raise AssertionError("2p-bit accumulator overflow")
        return acc

    @property
    def cycles(self) -> int:
        """Worst-case cycle count: ``p`` ripple additions of ``2p`` bits
        plus one shift cycle per iteration -- ``p * (2p + 1) = O(p²)``."""
        return self.p * (2 * self.p + 1)


class SequentialCarrySave:
    """Carry-save multiplier: ``p`` constant-time compressions + final CPA."""

    def __init__(self, p: int):
        if p < 1:
            raise ValueError("word length p must be positive")
        self.p = int(p)
        self._adder = RippleCarryAdder(2 * p)

    def multiply(self, a: int, b: int) -> int:
        """Exact product via redundant (sum, carry) accumulation."""
        p = self.p
        if not (0 <= a < (1 << p) and 0 <= b < (1 << p)):
            raise ValueError("operands exceed the word length")
        mask = (1 << (2 * p)) - 1
        s = 0  # redundant sum word
        c = 0  # redundant carry word (already weighted)
        for i in range(p):
            pp = (a << i) & mask if (b >> i) & 1 else 0
            new_s = s ^ c ^ pp
            new_c = (((s & c) | (c & pp) | (pp & s)) << 1) & mask
            s, c = new_s, new_c
        out, carry = self._adder.add(s, c)
        if carry:
            raise AssertionError("2p-bit accumulator overflow")
        return out

    def multiply_block(self, a, b):
        """:meth:`multiply` over whole operand blocks: the redundant
        ``(sum, carry)`` compression runs block-wide per bit position and
        the final carry-propagate add is one vector add."""
        p = self.p
        if _np is None or 2 * p > 62:
            return [self.multiply(int(x), int(y)) for x, y in zip(a, b)]
        a, b = _check_block_operands(a, b, p)
        mask = (1 << (2 * p)) - 1
        s = _np.zeros_like(a)
        c = _np.zeros_like(a)
        for i in range(p):
            pp = _np.where((b >> i) & 1 == 1, (a << i) & mask, 0)
            new_s = s ^ c ^ pp
            new_c = (((s & c) | (c & pp) | (pp & s)) << 1) & mask
            s, c = new_s, new_c
        out = s + c
        if (out > mask).any():
            raise AssertionError("2p-bit accumulator overflow")
        return out

    @property
    def cycles(self) -> int:
        """Worst-case cycle count: ``p`` one-cycle compressions plus a
        ``2p``-bit carry-propagate add -- ``p + 2p = 3p = O(p)``."""
        return 3 * self.p


def word_multiplier_cycles(kind: str, p: int) -> int:
    """``t_b`` for the named sequential arithmetic algorithm.

    ``kind`` is ``"add-shift"`` or ``"carry-save"``.
    """
    if kind == "add-shift":
        return SequentialAddShift(p).cycles
    if kind == "carry-save":
        return SequentialCarrySave(p).cycles
    raise ValueError(f"unknown word multiplier kind {kind!r}")
