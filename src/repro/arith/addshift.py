"""The add-shift multiplier: program (3.3), structure (3.4), and a bit-exact
lattice evaluator.

The multiplier is a ``p x p`` lattice of full adders (Fig. 1b/1c): point
``(i1, i2)`` handles the partial product ``a_{i2} ∧ b_{i1}`` of binary weight
``2^{i1+i2-2}``, receives the carry from ``(i1, i2-1)`` (``δ̄₂``) and the
partial sum from ``(i1-1, i2+1)`` (``δ̄₃``), and emits a carry east-to-west
and a partial sum to the south.  The final bits are

.. math:: s_i = s(i, 1) \\ (1 \\le i \\le p), \\qquad
          s_i = s(p, i-p+1) \\ (p < i \\le 2p-1).

**Boundary carry completion.**  The paper's dependence structure (3.4) and
output map are stated for the lattice interior; at the western column
``i2 = p`` the row carry ``c(i1, p)`` (weight ``2^{i1+p-1}``) leaves the
lattice.  Value conservation requires it to re-enter one row south at
``(i1+1, p)`` -- a hop along the *existing* ``δ̄₁ = [1,0]ᵀ`` link direction,
as in a classical Braun array multiplier, where the always-zero partial-sum
input ``s(i1, p+1) = 0`` frees the third full-adder port.  Without this
completion the stated output equations do not reproduce ``a x b`` (e.g.
``7 x 7`` at ``p = 3`` loses the weight-16 carry); with it the evaluator is
bit-exact, the top bit ``s_{2p}`` being the final carry ``c(p, p)``.  The
dependence matrix is unchanged because ``[1, 0]ᵀ`` is already a column of
``D_as``.
"""

from __future__ import annotations

from repro.arith.bitops import from_bits, full_adder, to_bits
from repro.arith.structure import ArithmeticStructure
from repro.structures.indexset import IndexSet
from repro.structures.params import LinExpr, S, as_linexpr

__all__ = ["AddShiftMultiplier", "addshift_structure"]


class AddShiftMultiplier:
    """Bit-exact evaluator of the add-shift lattice for a word length ``p``."""

    def __init__(self, p: int):
        if p < 1:
            raise ValueError("word length p must be positive")
        self.p = int(p)

    def trace(self, a: int, b: int) -> dict:
        """Evaluate the lattice, returning the full execution trace.

        Returns a dict with keys ``s`` and ``c`` (dicts mapping lattice
        points ``(i1, i2)`` to bits), ``rerouted`` (the boundary carries
        re-injected along ``δ̄₁``), and ``carry_out`` (the final carry
        ``c(p, p)``, i.e. bit ``s_{2p}``).
        """
        p = self.p
        a_bits = to_bits(a, p)
        b_bits = to_bits(b, p)
        s: dict[tuple[int, int], int] = {}
        c: dict[tuple[int, int], int] = {}
        rerouted: dict[tuple[int, int], int] = {}
        for i1 in range(1, p + 1):
            for i2 in range(1, p + 1):
                pp = a_bits[i2 - 1] & b_bits[i1 - 1]
                carry_in = c.get((i1, i2 - 1), 0)
                if i2 == p:
                    # The third port is the re-routed boundary carry; the
                    # paper's initial value s(i1-1, p+1) = 0 frees it.
                    third = rerouted.get((i1, i2), 0)
                else:
                    third = s.get((i1 - 1, i2 + 1), 0)
                sb, cb = full_adder(pp, carry_in, third)
                s[(i1, i2)] = sb
                if i2 == p and i1 < p:
                    rerouted[(i1 + 1, p)] = cb
                else:
                    c[(i1, i2)] = cb
        return {
            "s": s,
            "c": c,
            "rerouted": rerouted,
            "carry_out": c.get((p, p), 0),
        }

    def result_bits(self, a: int, b: int) -> list[int]:
        """The ``2p`` product bits (little-endian), per the paper's output map
        plus the final carry as bit ``s_{2p}``."""
        p = self.p
        t = self.trace(a, b)
        bits = [t["s"][(i, 1)] for i in range(1, p + 1)]
        bits += [t["s"][(p, k)] for k in range(2, p + 1)]
        bits.append(t["carry_out"])
        return bits

    def multiply(self, a: int, b: int) -> int:
        """The exact product ``a * b`` computed by the lattice."""
        return from_bits(self.result_bits(a, b))

    @property
    def steps(self) -> int:
        """Number of full-adder evaluations (``p²``)."""
        return self.p * self.p


def _multiply(a: int, b: int, p: int) -> int:
    return AddShiftMultiplier(p).multiply(a, b)


def addshift_structure(p: LinExpr | int | None = None) -> ArithmeticStructure:
    """The add-shift structure (3.4): ``J_as = [1,p]²``,
    ``δ̄₁=[1,0]ᵀ (a)``, ``δ̄₂=[0,1]ᵀ (b, c)``, ``δ̄₃=[1,-1]ᵀ (s)``,
    second carry direction ``δ̄₄=[0,2]ᵀ``."""
    p = S("p") if p is None else as_linexpr(p)
    return ArithmeticStructure(
        name="add-shift",
        index_set=IndexSet([1, 1], [p, p], ("i1", "i2")),
        delta_a=(1, 0),
        delta_b=(0, 1),
        delta_s=(1, -1),
        delta_carry=(0, 1),
        delta_carry2=(0, 2),
        multiply=_multiply,
    )
