"""Arithmetic algorithms and their bit-level dependence structures.

The paper's method composes a word-level dependence structure with the
dependence structure of the *arithmetic algorithm* implementing the
word-wise multiply-accumulate.  This package provides those algorithms:

* :mod:`repro.arith.bitops` -- the Boolean full-adder functions ``g``/``f``
  of eq. (3.2) and bit (de)composition helpers;
* :mod:`repro.arith.structure` -- :class:`ArithmeticStructure`, the role-
  annotated ``(J_as, D_as)`` record consumed by Theorem 3.1;
* :mod:`repro.arith.addshift` -- the add-shift multiplier: structure (3.4)
  plus a bit-exact lattice evaluator for programs (3.1)/(3.3);
* :mod:`repro.arith.carrysave` -- the carry-save array multiplier (the
  faster alternative named in Section 4.2);
* :mod:`repro.arith.ripple` -- the ripple-carry adder (the word-wise
  addition substrate);
* :mod:`repro.arith.sequential` -- *sequential* word multipliers with cycle
  counts (``t_b = O(p²)`` add-shift, ``t_b = O(p)`` carry-save), used by the
  word-level baseline architecture of the speedup comparison;
* :mod:`repro.arith.registry` -- name-keyed registry of arithmetic
  structures.
"""

from repro.arith.bitops import (
    carry_bit,
    from_bits,
    full_adder,
    sum_bit,
    to_bits,
)
from repro.arith.structure import ArithmeticStructure
from repro.arith.addshift import AddShiftMultiplier, addshift_structure
from repro.arith.baughwooley import BaughWooleyMultiplier, baughwooley_structure
from repro.arith.carrysave import CarrySaveMultiplier, carrysave_structure
from repro.arith.division import NonRestoringDivider, division_row_structure
from repro.arith.ripple import RippleCarryAdder, ripple_structure
from repro.arith.sequential import (
    SequentialAddShift,
    SequentialCarrySave,
)
from repro.arith.registry import get_structure, list_structures, register_structure

__all__ = [
    "carry_bit",
    "from_bits",
    "full_adder",
    "sum_bit",
    "to_bits",
    "ArithmeticStructure",
    "AddShiftMultiplier",
    "addshift_structure",
    "BaughWooleyMultiplier",
    "baughwooley_structure",
    "CarrySaveMultiplier",
    "carrysave_structure",
    "NonRestoringDivider",
    "division_row_structure",
    "RippleCarryAdder",
    "ripple_structure",
    "SequentialAddShift",
    "SequentialCarrySave",
    "get_structure",
    "list_structures",
    "register_structure",
]
