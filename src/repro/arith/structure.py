"""Role-annotated arithmetic dependence structures.

Theorem 3.1 composes the word-level dependence matrix with the dependence
matrix of *an* arithmetic algorithm.  What the composition needs to know
about the arithmetic algorithm is captured here: its 2-D index set ``J_as``
and the dependence vectors playing each functional role --

``delta_a``
    pipelining of the multiplicand bits (add-shift: ``δ̄₁ = [1,0]ᵀ``);
``delta_b``
    pipelining of the multiplier bits (``δ̄₂ = [0,1]ᵀ``);
``delta_carry``
    carry propagation (add-shift: shares ``δ̄₂``; carry-save: shares
    ``δ̄₁``);
``delta_s``
    partial-sum movement (``δ̄₃ = [1,-1]ᵀ``);
``delta_carry2``
    the second carry direction ``δ̄₄`` needed where more than three bits
    are summed (add-shift: ``[0,2]ᵀ``).

The record also carries an executable ``multiply(a, b, p)`` so that
downstream simulation can be generic in the arithmetic algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.structures.dependence import DependenceMatrix, DependenceVector
from repro.structures.indexset import IndexSet

__all__ = ["ArithmeticStructure"]


@dataclass(frozen=True)
class ArithmeticStructure:
    """The ``(J_as, D_as)`` record of a 2-D bit-level multiplier."""

    name: str
    index_set: IndexSet
    delta_a: tuple[int, int]
    delta_b: tuple[int, int]
    delta_s: tuple[int, int]
    delta_carry: tuple[int, int]
    delta_carry2: tuple[int, int]
    #: executable semantics: ``multiply(a, b, p) -> product``
    multiply: Callable[[int, int, int], int] = field(compare=False)

    def dependence_matrix(self) -> DependenceMatrix:
        """The distilled ``D_as`` with merged columns and cause labels.

        Vectors playing several roles (e.g. add-shift's ``δ̄₂`` carrying
        both ``b`` and the carry) are merged into one column, exactly as the
        paper writes ``D_as`` in eq. (3.4).  ``δ̄₄`` (the second carry) is
        *not* part of ``D_as``; it only appears after expansion.
        """
        roles: dict[tuple[int, int], list[str]] = {}
        for vec, cause in (
            (self.delta_a, "a"),
            (self.delta_b, "b"),
            (self.delta_carry, "c"),
            (self.delta_s, "s"),
        ):
            roles.setdefault(tuple(vec), []).append(cause)
        return DependenceMatrix(
            DependenceVector(vec, causes) for vec, causes in roles.items()
        )

    def distinct_vectors(self) -> list[tuple[int, int]]:
        """Sorted distinct dependence vectors of ``D_as``."""
        return sorted(
            {tuple(self.delta_a), tuple(self.delta_b),
             tuple(self.delta_carry), tuple(self.delta_s)}
        )
