"""The unified job schema: one frozen request/response contract.

Every way of asking this library for work -- the CLI subcommands, the
async HTTP front-end (:mod:`repro.serve.server`), the thin client, and
direct library calls through :func:`repro.serve.dispatch.run_job` --
speaks :class:`JobSpec` in and :class:`JobResult` out.  A ``JobSpec``
wraps the existing per-subsystem configuration surfaces
(:class:`~repro.depanalysis.engine.AnalysisConfig`,
:class:`~repro.mapping.engine.SearchConfig`, the simulator/analysis
``backend=`` knobs, :class:`~repro.verify.runner.VerifyConfig`) into a
single flat, frozen, hashable value with an **exact JSON round-trip**:
``JobSpec.from_payload(spec.to_payload()) == spec`` field for field, so
the content address :func:`job_key` is stable across the wire.

Job kinds and the fields they read:

================  =======================================================
analyze           ``u p expansion method use_screens analysis_backend
                  cache cache_dir``
analyze_symbolic  ``u p expansion cache cache_dir`` (the parametric
                  analysis is solved once with ``u``/``p`` free, then
                  instantiated at the spec's concrete sizes in O(1))
search            ``u p expansion target_space_dim block schedule_bound
                  max_candidates workers overcollect exhaustive
                  primitives strategy frontier shard_workers shard_dir``
simulate          ``u p expansion design seed sim_backend gantt``
verify            ``seed cases oracle_budget_s oracles``
================  =======================================================

``budget_s`` applies to every kind: it is the *server-side* wall-clock
budget for the whole job (a job still running when it expires gets a
structured ``status="timeout"`` :class:`JobResult`).  ``oracle_budget_s``
is the verify subsystem's own per-oracle budget and travels inside the
job.  :class:`JobLimits` is the admission-control half: a server rejects
(structured ``status="error"``, never a crash) jobs whose estimated
iteration-space size or case count exceeds its configured ceilings.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Mapping

from repro.cache.keys import fingerprint

__all__ = [
    "JOB_KINDS",
    "JOB_SCHEMA_VERSION",
    "JobLimits",
    "JobResult",
    "JobSpec",
    "check_limits",
    "estimate_points",
    "job_key",
]

JOB_SCHEMA_VERSION = 1
JOB_KINDS = ("analyze", "analyze_symbolic", "search", "simulate", "verify")

_STATUSES = ("ok", "error", "timeout")


@dataclass(frozen=True)
class JobSpec:
    """One frozen, content-addressable request."""

    kind: str
    # -- shared problem shape (analyze / search / simulate) ------------------
    u: int = 3
    p: int = 3
    expansion: str = "II"
    # -- analyze -------------------------------------------------------------
    method: str = "exact"
    use_screens: bool = True
    analysis_backend: str | None = None
    cache: bool | None = None
    cache_dir: str | None = None
    # -- search --------------------------------------------------------------
    target_space_dim: int = 2
    block: tuple[int, ...] | None = None
    schedule_bound: int = 2
    max_candidates: int | None = 5
    workers: int = 1
    overcollect: int | None = 4
    exhaustive: bool = False
    primitives: str = "fig4"
    strategy: str = "auto"
    frontier: tuple[str, ...] | None = None
    shard_workers: int | None = None
    shard_dir: str | None = None
    # -- simulate ------------------------------------------------------------
    design: str = "fig4"
    seed: int = 0
    sim_backend: str | None = None
    gantt: bool = False
    # -- verify --------------------------------------------------------------
    cases: int | None = None
    oracle_budget_s: float | None = None
    oracles: tuple[str, ...] | None = None
    # -- budgets (all kinds) ---------------------------------------------------
    budget_s: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r}; choose from {JOB_KINDS}"
            )
        if self.u < 1 or self.p < 1:
            raise ValueError("u and p must be >= 1")
        if self.expansion not in ("I", "II"):
            raise ValueError(f"unknown expansion {self.expansion!r}")
        if self.method not in ("exact", "enumerate"):
            raise ValueError(f"unknown analysis method {self.method!r}")
        if self.design not in ("fig4", "fig5"):
            raise ValueError(f"unknown design {self.design!r}")
        if self.primitives not in ("fig4", "fig5", "mesh", "none"):
            raise ValueError(f"unknown primitive set {self.primitives!r}")
        if self.strategy not in ("auto", "catalog", "solver"):
            raise ValueError(f"unknown search strategy {self.strategy!r}")
        if self.shard_workers is not None and self.shard_workers < 1:
            raise ValueError("shard_workers must be >= 1 or None")
        if self.cases is not None and self.cases < 1:
            raise ValueError("cases must be >= 1 or None")
        if self.budget_s is not None and self.budget_s <= 0:
            raise ValueError("budget_s must be > 0 or None")
        if self.block is not None:
            object.__setattr__(
                self, "block", tuple(int(b) for b in self.block)
            )
        if self.oracles is not None:
            object.__setattr__(
                self, "oracles", tuple(str(o) for o in self.oracles)
            )
        if self.frontier is not None:
            frontier = tuple(str(m) for m in self.frontier)
            bad = sorted(
                set(frontier) - {"time", "processors", "wire_length"}
            )
            if not frontier or bad:
                raise ValueError(
                    "frontier must be a non-empty subset of "
                    "('time', 'processors', 'wire_length')"
                )
            object.__setattr__(self, "frontier", frontier)
        if self.shard_dir is not None:
            object.__setattr__(self, "shard_dir", str(self.shard_dir))
        if self.cache_dir is not None:
            object.__setattr__(self, "cache_dir", str(self.cache_dir))

    # -- exact JSON round-trip -----------------------------------------------
    def to_payload(self) -> dict:
        """JSON-ready dict carrying every field, in declaration order."""
        payload: dict = {"schema": JOB_SCHEMA_VERSION}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            payload[f.name] = value
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping) -> "JobSpec":
        """Inverse of :meth:`to_payload`; rejects unknown keys/schemas."""
        if not isinstance(payload, Mapping):
            raise ValueError("job payload must be a JSON object")
        data = dict(payload)
        schema = data.pop("schema", JOB_SCHEMA_VERSION)
        if schema != JOB_SCHEMA_VERSION:
            raise ValueError(f"unsupported job schema version {schema!r}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown job fields: {', '.join(unknown)}")
        if "kind" not in data:
            raise ValueError("job payload is missing 'kind'")
        return cls(**data)


def job_key(spec: JobSpec) -> str:
    """Content address of a job: SHA-256 of the canonical spec payload.

    Two submissions with equal keys are the *same pure computation* --
    every result-affecting knob is a spec field -- which is exactly the
    license the server's request coalescing needs.
    """
    return fingerprint({"job": spec.to_payload()})


@dataclass(frozen=True)
class JobResult:
    """One finished (or refused) job, transport-ready.

    ``output`` is the exact text the equivalent CLI subcommand prints to
    stdout (the CLI *is* this dispatch plus ``sys.stdout.write``), so
    byte-comparing server results against direct CLI runs is meaningful.
    ``data`` carries the kind-specific structured result, ``metrics``
    the flat obs metrics dict when the executor instrumented the run.
    """

    kind: str
    status: str
    exit_code: int
    output: str = ""
    data: Mapping | None = None
    error: str | None = None
    metrics: Mapping | None = None
    elapsed_s: float = 0.0

    def __post_init__(self) -> None:
        if self.status not in _STATUSES:
            raise ValueError(f"unknown job status {self.status!r}")

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_payload(self) -> dict:
        return {
            "schema": JOB_SCHEMA_VERSION,
            "kind": self.kind,
            "status": self.status,
            "exit_code": self.exit_code,
            "output": self.output,
            "data": None if self.data is None else dict(self.data),
            "error": self.error,
            "metrics": None if self.metrics is None else dict(self.metrics),
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "JobResult":
        if not isinstance(payload, Mapping):
            raise ValueError("result payload must be a JSON object")
        data = dict(payload)
        schema = data.pop("schema", JOB_SCHEMA_VERSION)
        if schema != JOB_SCHEMA_VERSION:
            raise ValueError(f"unsupported result schema version {schema!r}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown result fields: {', '.join(unknown)}")
        return cls(**data)


# ---------------------------------------------------------------------------
# Admission control: per-job resource budgets
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class JobLimits:
    """Resource ceilings a server enforces before running a job.

    ``max_points`` bounds the estimated bit-level iteration-space size
    (:func:`estimate_points`), ``max_cases`` the verify case count, and
    ``max_budget_s`` caps (and, when a job asks for nothing, defaults)
    the server-side wall-clock budget.  ``None`` disables a ceiling.
    """

    max_points: int | None = 4_000_000
    max_cases: int | None = 1_000
    max_budget_s: float | None = None

    def effective_budget(self, spec: JobSpec) -> float | None:
        """The wall-clock budget the server applies to ``spec``."""
        if spec.budget_s is None:
            return self.max_budget_s
        if self.max_budget_s is None:
            return spec.budget_s
        return min(spec.budget_s, self.max_budget_s)


def estimate_points(spec: JobSpec) -> int:
    """Rough bit-level iteration-space size of a job's problem instance.

    The expanded matmul nest is 5-dimensional -- three word-level axes of
    extent ``u`` and two bit-level axes of extent ``O(p)`` -- so
    ``u^3 * (2p)^2`` tracks the work of analyze/simulate/search within a
    small constant; verify scales with its case count instead, and a
    symbolic analysis never enumerates the iteration space at all (its
    cost is size-independent), so both are exempt from the points ceiling.
    """
    if spec.kind in ("verify", "analyze_symbolic"):
        return 0
    return spec.u ** 3 * (2 * spec.p) ** 2


def check_limits(spec: JobSpec, limits: JobLimits | None) -> str | None:
    """A structured refusal reason, or ``None`` when the job is admissible."""
    if limits is None:
        return None
    if spec.kind == "verify":
        if limits.max_cases is not None:
            cases = 50 if spec.cases is None else spec.cases
            if cases > limits.max_cases:
                return (
                    f"budget: {cases} verify cases exceed the server limit "
                    f"of {limits.max_cases}"
                )
        return None
    if limits.max_points is not None:
        points = estimate_points(spec)
        if points > limits.max_points:
            return (
                f"budget: estimated {points} iteration points exceed the "
                f"server limit of {limits.max_points}"
            )
    return None
