"""Analysis-as-a-service: the asyncio HTTP front-end.

A single-process async server over the shared job dispatch
(:mod:`repro.serve.dispatch`).  The event loop owns admission, queueing,
coalescing, batching, and streaming; the jobs themselves run on worker
threads (the engines are CPU-bound sync code), one execution at a time,
so the per-job obs registry install is race-free.  Scale-out is by
process: any number of servers and CLI runs may share one
``$REPRO_CACHE_DIR`` thanks to the store's shared mode
(:mod:`repro.cache.store`).

Endpoints (all JSON; ``Connection: close`` per request):

=====================================  ====================================
``GET  /v1/health``                    liveness + version
``GET  /v1/stats``                     server counters, aggregated engine
                                       counters, queue depths
``POST /v1/jobs``                      body = ``JobSpec`` payload; returns
                                       ``{"job_id", "key", "coalesced"}``
``POST /v1/batch``                     body = ``{"specs": [...]}``;
                                       compatible analyze jobs are grouped
                                       into one vectorized-engine call
``GET  /v1/jobs/<id>[?wait=S]``        status envelope; ``wait`` long-polls
                                       up to ``S`` seconds for completion
``GET  /v1/jobs/<id>/events``          chunked NDJSON stream of the job's
                                       obs bus events (history + live),
                                       closed by a ``job_done`` record
=====================================  ====================================

**Coalescing.**  Submissions are content-addressed by
:func:`~repro.serve.jobs.job_key`.  A spec equal to one that is queued or
running attaches to that execution (new job id, same result object); a
spec equal to one of the last ``result_cache_size`` completed jobs is
answered from the retained result.  N identical concurrent analyze
requests therefore produce exactly one engine invocation
(``analysis.engine_calls``) and N byte-identical results.

**Batching.**  Distinct analyze specs with equal engine knobs
(method/screens/backend/cache policy/budget) that are queued together --
explicitly via ``/v1/batch``, or opportunistically when the worker
drains its queue -- execute as one
:func:`repro.depanalysis.engine.run_analysis_batch` call sharing a
single Diophantine memo and cache store.

**Budgets.**  :class:`~repro.serve.jobs.JobLimits` refuses oversized
jobs up front (structured ``status="error"``); a running job that
exceeds its wall-clock budget gets a structured ``status="timeout"``
result, its worker thread is orphaned (recorded, never joined), and
subsequent jobs run uninstrumented until the orphan drains so its late
obs writes cannot pollute another job's registry.
"""

from __future__ import annotations

import asyncio
import collections
import itertools
import json
import threading
import urllib.parse

from repro import obs
from repro.serve import dispatch
from repro.serve.jobs import JobLimits, JobResult, JobSpec, job_key

__all__ = ["JobServer", "ServerConfig", "ServerThread"]

_MAX_BODY = 1 << 20  # 1 MiB request cap

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error",
}


class ServerConfig:
    """Front-end knobs (host/port, admission limits, batch/retention caps)."""

    __slots__ = (
        "host", "port", "limits", "max_batch", "result_cache_size",
    )

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        limits: JobLimits | None = JobLimits(),
        max_batch: int = 16,
        result_cache_size: int = 256,
    ):
        self.host = host
        self.port = port
        self.limits = limits
        self.max_batch = max_batch
        self.result_cache_size = result_cache_size


class _Execution:
    """One scheduled computation; possibly shared by many job ids."""

    __slots__ = ("spec", "key", "status", "result", "done", "events",
                 "subscribers")

    def __init__(self, spec: JobSpec, key: str):
        self.spec = spec
        self.key = key
        self.status = "queued"  # queued | running | done
        self.result: JobResult | None = None
        self.done = asyncio.Event()
        self.events: list[dict] = []
        self.subscribers: list[asyncio.Queue] = []


def _batch_compat_key(spec: JobSpec):
    """Specs with equal keys may share one engine batch call."""
    return (
        spec.kind, spec.method, spec.use_screens, spec.analysis_backend,
        spec.cache, spec.cache_dir, spec.budget_s,
    )


class JobServer:
    """The asyncio job server; create, ``await start()``, serve."""

    def __init__(self, config: ServerConfig | None = None):
        self.config = config if config is not None else ServerConfig()
        self.host = self.config.host
        self.port = self.config.port
        self.counters: collections.Counter = collections.Counter()
        self._jobs: dict[str, _Execution] = {}
        self._inflight: dict[str, _Execution] = {}
        self._results: collections.OrderedDict[str, _Execution] = (
            collections.OrderedDict()
        )
        self._queue: asyncio.Queue | None = None
        self._orphans: list[threading.Event] = []
        self._ids = itertools.count(1)
        self._server: asyncio.base_events.Server | None = None
        self._worker: asyncio.Task | None = None

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> "JobServer":
        self._queue = asyncio.Queue()
        self._worker = asyncio.get_running_loop().create_task(
            self._worker_loop()
        )
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._worker is not None:
            self._queue.put_nowait(None)
            try:
                await asyncio.wait_for(self._worker, timeout=5)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self._worker.cancel()

    # -- submission / coalescing ---------------------------------------------
    def _new_job_id(self, execution: _Execution) -> str:
        job_id = f"j{next(self._ids):06d}"
        self._jobs[job_id] = execution
        return job_id

    def _submit(self, spec: JobSpec) -> tuple[str, _Execution, bool]:
        """Coalesce-or-enqueue one spec (returns ``coalesced`` flag)."""
        key = job_key(spec)
        self.counters["serve.jobs_submitted"] += 1
        execution = self._inflight.get(key) or self._results.get(key)
        if execution is not None:
            self.counters["serve.jobs_coalesced"] += 1
            return self._new_job_id(execution), execution, True
        execution = _Execution(spec, key)
        self._inflight[key] = execution
        return self._new_job_id(execution), execution, False

    def _enqueue(self, group: list[_Execution]) -> None:
        self._queue.put_nowait(group)

    def submit(self, spec: JobSpec) -> tuple[str, _Execution, bool]:
        job_id, execution, coalesced = self._submit(spec)
        if not coalesced:
            self._enqueue([execution])
        return job_id, execution, coalesced

    def submit_batch(self, specs) -> list[tuple[str, _Execution, bool]]:
        """Submit several specs, pre-grouping compatible analyze jobs."""
        out = []
        groups: dict = {}
        order: list[list[_Execution]] = []
        for spec in specs:
            job_id, execution, coalesced = self._submit(spec)
            out.append((job_id, execution, coalesced))
            if coalesced:
                continue
            if spec.kind == "analyze":
                bucket = groups.get(_batch_compat_key(spec))
                if bucket is not None and len(bucket) < self.config.max_batch:
                    bucket.append(execution)
                    continue
                bucket = [execution]
                groups[_batch_compat_key(spec)] = bucket
                order.append(bucket)
            else:
                order.append([execution])
        for group in order:
            self._enqueue(group)
        return out

    # -- the worker ----------------------------------------------------------
    async def _worker_loop(self) -> None:
        while True:
            group = await self._queue.get()
            if group is None:
                return
            group = self._merge_compatible(group)
            try:
                await self._run_group(group)
            except Exception as exc:  # defensive: never kill the worker
                for execution in group:
                    if execution.status != "done":
                        self._finish(
                            execution,
                            JobResult(
                                kind=execution.spec.kind, status="error",
                                exit_code=3, error=repr(exc),
                            ),
                        )

    def _merge_compatible(self, group: list[_Execution]) -> list[_Execution]:
        """Opportunistic batching: fold queued compatible analyze jobs in."""
        if group[0].spec.kind != "analyze":
            return group
        compat = _batch_compat_key(group[0].spec)
        holdback = []
        while len(group) < self.config.max_batch:
            try:
                other = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if other is None:
                holdback.append(other)
                break
            if (
                len(other) == 1
                and other[0].spec.kind == "analyze"
                and _batch_compat_key(other[0].spec) == compat
            ):
                group = group + other
            else:
                holdback.append(other)
        for item in holdback:
            self._queue.put_nowait(item)
        return group

    async def _run_group(self, group: list[_Execution]) -> None:
        loop = asyncio.get_running_loop()
        for execution in group:
            execution.status = "running"
        self._orphans = [f for f in self._orphans if not f.is_set()]
        registry = None
        if not self._orphans:
            registry = obs.Registry()
            registry.add_sink(
                obs.CallbackSink(
                    lambda event: loop.call_soon_threadsafe(
                        self._fanout, group, event
                    )
                )
            )
        specs = [execution.spec for execution in group]
        limits = self.config.limits
        budget = None if limits is None else limits.effective_budget(specs[0])
        done_flag = threading.Event()

        def work():
            try:
                if len(specs) > 1:
                    return dispatch.run_analyze_batch(
                        specs, registry=registry, limits=limits
                    )
                return [
                    dispatch.run_job(specs[0], registry=registry,
                                     limits=limits)
                ]
            finally:
                done_flag.set()

        future = loop.run_in_executor(None, work)
        try:
            results = await asyncio.wait_for(
                asyncio.shield(future), timeout=budget
            )
        except asyncio.TimeoutError:
            # The thread is orphaned, never joined; its eventual result is
            # discarded and jobs run uninstrumented until it drains.
            self._orphans.append(done_flag)
            future.add_done_callback(lambda f: f.exception())
            self.counters["serve.jobs_timed_out"] += len(group)
            results = [
                JobResult(
                    kind=spec.kind, status="timeout", exit_code=4,
                    error=(
                        f"budget: job exceeded its wall-clock budget of "
                        f"{budget}s"
                    ),
                )
                for spec in specs
            ]
        self.counters["serve.executions"] += 1
        if len(group) > 1:
            self.counters["serve.batches"] += 1
            self.counters["serve.batched_jobs"] += len(group)
        shared_metrics = results[0].metrics if results else None
        if shared_metrics:
            for name, value in shared_metrics.get("counters", {}).items():
                if name.startswith(("analysis.", "cache.", "depanalysis.")):
                    self.counters[name] += value
        for execution, result in zip(group, results):
            self._finish(execution, result)

    def _finish(self, execution: _Execution, result: JobResult) -> None:
        execution.result = result
        execution.status = "done"
        self._inflight.pop(execution.key, None)
        self._results[execution.key] = execution
        while len(self._results) > self.config.result_cache_size:
            self._results.popitem(last=False)
        execution.done.set()
        self._fanout(
            [execution],
            {"type": "job_done", "status": result.status,
             "exit_code": result.exit_code},
        )

    def _fanout(self, group: list[_Execution], event: dict) -> None:
        for execution in group:
            execution.events.append(event)
            for queue in execution.subscribers:
                queue.put_nowait(event)

    # -- HTTP ----------------------------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        try:
            request = await reader.readline()
            if not request:
                return
            try:
                method, target, _version = request.decode("ascii").split()
            except ValueError:
                self._respond(writer, 400, {"error": "malformed request line"})
                return
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", 0) or 0)
            if length > _MAX_BODY:
                self._respond(writer, 413, {"error": "request body too large"})
                return
            body = await reader.readexactly(length) if length else b""
            await self._route(method, target, body, writer)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        except Exception as exc:  # defensive: one request, one error reply
            try:
                self._respond(writer, 500, {"error": repr(exc)})
            except Exception:
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _route(self, method, target, body, writer) -> None:
        parsed = urllib.parse.urlsplit(target)
        path = parsed.path.rstrip("/") or "/"
        query = urllib.parse.parse_qs(parsed.query)
        if path == "/v1/health":
            if method != "GET":
                self._respond(writer, 405, {"error": "GET only"})
                return
            from repro import __version__

            self._respond(writer, 200, {"ok": True, "version": __version__})
            return
        if path == "/v1/stats":
            if method != "GET":
                self._respond(writer, 405, {"error": "GET only"})
                return
            self._respond(writer, 200, self._stats())
            return
        if path == "/v1/jobs" and method == "POST":
            self._handle_submit(body, writer)
            return
        if path == "/v1/batch" and method == "POST":
            self._handle_submit_batch(body, writer)
            return
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if method != "GET":
                self._respond(writer, 405, {"error": "GET only"})
                return
            if rest.endswith("/events"):
                job_id = rest[: -len("/events")]
                execution = self._jobs.get(job_id)
                if execution is None:
                    self._respond(writer, 404, {"error": f"no job {job_id}"})
                    return
                await self._stream_events(job_id, execution, writer)
                return
            execution = self._jobs.get(rest)
            if execution is None:
                self._respond(writer, 404, {"error": f"no job {rest}"})
                return
            wait_s = None
            if "wait" in query:
                try:
                    wait_s = min(60.0, max(0.0, float(query["wait"][0])))
                except ValueError:
                    wait_s = None
            if wait_s and execution.status != "done":
                try:
                    await asyncio.wait_for(
                        execution.done.wait(), timeout=wait_s
                    )
                except asyncio.TimeoutError:
                    pass
            self._respond(writer, 200, self._envelope(rest, execution))
            return
        self._respond(writer, 404, {"error": f"no route {method} {path}"})

    def _parse_spec(self, payload) -> JobSpec:
        return JobSpec.from_payload(payload)

    def _handle_submit(self, body, writer) -> None:
        try:
            spec = self._parse_spec(json.loads(body.decode("utf-8")))
        except (ValueError, TypeError, UnicodeDecodeError) as exc:
            self._respond(writer, 400, {"error": str(exc)})
            return
        job_id, execution, coalesced = self.submit(spec)
        self._respond(writer, 202, {
            "job_id": job_id,
            "key": execution.key,
            "coalesced": coalesced,
            "status": execution.status,
        })

    def _handle_submit_batch(self, body, writer) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
            specs = [self._parse_spec(p) for p in payload["specs"]]
        except (ValueError, TypeError, KeyError, UnicodeDecodeError) as exc:
            self._respond(writer, 400, {"error": str(exc)})
            return
        submitted = self.submit_batch(specs)
        self._respond(writer, 202, {
            "jobs": [
                {"job_id": job_id, "key": execution.key,
                 "coalesced": coalesced, "status": execution.status}
                for job_id, execution, coalesced in submitted
            ]
        })

    def _envelope(self, job_id: str, execution: _Execution) -> dict:
        envelope = {
            "job_id": job_id,
            "key": execution.key,
            "status": execution.status,
            "kind": execution.spec.kind,
        }
        if execution.result is not None:
            envelope["result"] = execution.result.to_payload()
        return envelope

    def _stats(self) -> dict:
        return {
            "server": dict(sorted(self.counters.items())),
            "inflight": len(self._inflight),
            "queued": self._queue.qsize() if self._queue is not None else 0,
            "jobs": len(self._jobs),
            "results_retained": len(self._results),
            "orphaned_workers": len(
                [f for f in self._orphans if not f.is_set()]
            ),
        }

    def _respond(self, writer, code: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (
            f"HTTP/1.1 {code} {_REASONS.get(code, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("ascii") + body)

    async def _stream_events(self, job_id, execution, writer) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("ascii"))

        def chunk(obj: dict) -> None:
            data = json.dumps(obj, sort_keys=True, default=str).encode()
            writer.write(
                f"{len(data) + 1:x}\r\n".encode() + data + b"\n\r\n"
            )

        queue: asyncio.Queue = asyncio.Queue()
        live = execution.status != "done"
        if live:
            execution.subscribers.append(queue)
        # Snapshot before any await: events arriving later land in `queue`.
        history = list(execution.events)
        try:
            for event in history:
                chunk(event)
            await writer.drain()
            if live:
                while True:
                    event = await queue.get()
                    chunk(event)
                    await writer.drain()
                    if event.get("type") == "job_done":
                        break
            writer.write(b"0\r\n\r\n")
        finally:
            if live:
                try:
                    execution.subscribers.remove(queue)
                except ValueError:
                    pass


class ServerThread:
    """Run a :class:`JobServer` on a background event-loop thread.

    The embedding used by the test suite, the CI smoke script, and any
    synchronous program that wants an in-process server::

        with ServerThread() as server:
            client = ServeClient(port=server.port)
            ...

    """

    def __init__(self, config: ServerConfig | None = None):
        self.server = JobServer(config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("serve: server thread failed to start")
        if self._error is not None:
            raise RuntimeError(f"serve: startup failed: {self._error!r}")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    def stop(self) -> None:
        if self._loop is None or self._error is not None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop
        )
        try:
            future.result(timeout=10)
        except Exception:
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
        return None
