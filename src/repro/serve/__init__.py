"""Analysis-as-a-service: async job front-end over a unified JobSpec API.

One schema, four front doors.  Every analyze / search / simulate /
verify request -- whether it arrives from the CLI, the asyncio HTTP
server, the thin client, or a direct library call -- is a frozen
:class:`~repro.serve.jobs.JobSpec` dispatched through
:func:`~repro.serve.dispatch.run_job`, and every answer is a
:class:`~repro.serve.jobs.JobResult` whose ``output`` is byte-identical
to the equivalent CLI run.

Layers (each importable on its own):

- :mod:`repro.serve.jobs` -- the frozen JobSpec/JobResult schema,
  content-addressed :func:`~repro.serve.jobs.job_key`, and
  :class:`~repro.serve.jobs.JobLimits` admission control;
- :mod:`repro.serve.dispatch` -- synchronous executors
  (:func:`~repro.serve.dispatch.run_job`,
  :func:`~repro.serve.dispatch.run_analyze_batch`) shared by the CLI
  and the server;
- :mod:`repro.serve.server` -- the stdlib-asyncio HTTP server with
  request coalescing, analyze batching, obs event streaming, and
  wall-clock budgets;
- :mod:`repro.serve.client` -- the stdlib ``http.client`` thin client.

See ``docs/SERVE.md`` for the protocol walkthrough.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.dispatch import run_analyze_batch, run_job
from repro.serve.jobs import (
    JOB_KINDS,
    JOB_SCHEMA_VERSION,
    JobLimits,
    JobResult,
    JobSpec,
    check_limits,
    estimate_points,
    job_key,
)
from repro.serve.server import JobServer, ServerConfig, ServerThread

__all__ = [
    "JOB_KINDS",
    "JOB_SCHEMA_VERSION",
    "JobLimits",
    "JobResult",
    "JobServer",
    "JobSpec",
    "ServeClient",
    "ServeError",
    "ServerConfig",
    "ServerThread",
    "check_limits",
    "estimate_points",
    "job_key",
    "run_analyze_batch",
    "run_job",
]
