"""Thin synchronous client for the repro job server.

Stdlib-only (``http.client``), one connection per call, no retry magic:
the client is deliberately dumb so that everything interesting --
coalescing, batching, budgets, streaming -- lives server-side and is
shared by every front-end.  The CLI's ``--server`` mode and the CI
smoke test are both just this class.

Typical use::

    from repro.serve import JobSpec, ServeClient

    client = ServeClient(port=8741)
    result = client.run(JobSpec(kind="analyze", u=3, p=3))
    print(result.output, end="")
"""

from __future__ import annotations

import http.client
import json
from typing import Iterable, Iterator

from repro.serve.jobs import JobResult, JobSpec

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A non-2xx reply from the job server."""

    def __init__(self, status: int, message: str):
        super().__init__(f"server returned {status}: {message}")
        self.status = status


class ServeClient:
    """Talk JobSpec/JobResult to a :class:`~repro.serve.server.JobServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8741,
        timeout: float = 60.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------------
    def _request(self, method: str, path: str, payload=None) -> dict:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError:
                decoded = {"error": raw.decode("utf-8", "replace")}
            if response.status >= 400:
                raise ServeError(
                    response.status, str(decoded.get("error", decoded))
                )
            return decoded
        finally:
            conn.close()

    # -- endpoints -----------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/v1/health")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def submit(self, spec: JobSpec) -> dict:
        """Enqueue one job; returns ``{"job_id", "key", "coalesced", ...}``."""
        return self._request("POST", "/v1/jobs", spec.to_payload())

    def submit_batch(self, specs: Iterable[JobSpec]) -> list[dict]:
        """Enqueue several jobs at once (lets the server batch them)."""
        reply = self._request(
            "POST", "/v1/batch",
            {"specs": [spec.to_payload() for spec in specs]},
        )
        return reply["jobs"]

    def status(self, job_id: str, wait: float | None = None) -> dict:
        path = f"/v1/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait:g}"
        return self._request("GET", path)

    def wait(self, job_id: str, timeout: float | None = None) -> JobResult:
        """Block until ``job_id`` finishes; long-polls in 30 s slices."""
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            slice_s = 30.0
            if deadline is not None:
                slice_s = min(slice_s, max(0.0, deadline - time.monotonic()))
            envelope = self.status(job_id, wait=slice_s)
            if envelope.get("status") == "done":
                return JobResult.from_payload(envelope["result"])
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {envelope.get('status')!r} after "
                    f"{timeout}s"
                )

    # -- conveniences --------------------------------------------------------
    def run(self, spec: JobSpec, timeout: float | None = None) -> JobResult:
        """Submit one job and wait for its result."""
        return self.wait(self.submit(spec)["job_id"], timeout=timeout)

    def run_many(
        self, specs: Iterable[JobSpec], timeout: float | None = None
    ) -> list[JobResult]:
        """Submit a batch and collect every result, in submission order."""
        submitted = self.submit_batch(specs)
        return [
            self.wait(item["job_id"], timeout=timeout) for item in submitted
        ]

    def iter_events(self, job_id: str) -> Iterator[dict]:
        """Stream a job's obs events (NDJSON) until its ``job_done`` record."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read().decode("utf-8", "replace")
                try:
                    message = json.loads(raw).get("error", raw)
                except ValueError:
                    message = raw
                raise ServeError(response.status, str(message))
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line.decode("utf-8"))
                yield event
                if event.get("type") == "job_done":
                    return
        finally:
            conn.close()
