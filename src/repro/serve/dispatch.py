"""The one job dispatcher every front-end shares.

:func:`run_job` executes a :class:`~repro.serve.jobs.JobSpec`
synchronously and returns a :class:`~repro.serve.jobs.JobResult` whose
``output`` is byte-identical to what the matching CLI subcommand prints:
the CLI subcommands *are* ``run_job`` plus ``sys.stdout.write``, and the
HTTP server is ``run_job`` on a worker thread -- one dispatch, three
front-ends.

Two execution-context subtleties:

* **Verbosity follows the caller's ambient obs state, not the job
  registry.**  The simulate handler's extra per-PE block is part of the
  *CLI contract* ("printed when the user passed an obs flag"), so
  whether it appears is decided by ``obs.enabled()`` at entry -- before
  any job-scoped registry is installed.  A server-side run therefore
  produces exactly the unflagged CLI's bytes even though the server
  instruments every job.
* **Registry install is compare-and-swap restored.**  A job registry is
  installed process-globally for the duration of the run (that is how
  the existing instrumentation reaches it) and restored only if still
  current, so a budget-orphaned worker thread finishing late can never
  clobber a newer job's registry.
"""

from __future__ import annotations

import contextlib
import io
import random
import time
import traceback

from repro import obs
from repro.serve.jobs import JobLimits, JobResult, JobSpec, check_limits

__all__ = ["run_analyze_batch", "run_job"]


@contextlib.contextmanager
def _installed(registry):
    """Install ``registry`` ambiently; restore with compare-and-swap."""
    if registry is None:
        yield
        return
    previous = obs.set_registry(registry)
    try:
        yield
    finally:
        if obs.get_registry() is registry:
            obs.set_registry(previous)


def _refusal(spec: JobSpec, reason: str) -> JobResult:
    return JobResult(
        kind=spec.kind, status="error", exit_code=2, error=reason
    )


def run_job(
    spec: JobSpec,
    registry=None,
    limits: JobLimits | None = None,
) -> JobResult:
    """Execute one job; never raises for job-level failures.

    ``registry`` (a fresh :class:`repro.obs.Registry`, typically with a
    streaming sink attached) is installed for the duration of the run
    and its flat metrics dict lands in ``JobResult.metrics``.  ``limits``
    applies admission control first (structured ``status="error"``).
    """
    reason = check_limits(spec, limits)
    if reason is not None:
        return _refusal(spec, reason)
    verbose = obs.enabled()  # the *caller's* obs state, see module docstring
    handler = _HANDLERS[spec.kind]
    out = io.StringIO()
    t0 = time.perf_counter()
    with _installed(registry):
        try:
            exit_code, data = handler(spec, out, verbose)
            status = "ok"
            error = None
        except Exception:
            exit_code, data = 3, None
            status = "error"
            error = traceback.format_exc()
    elapsed = time.perf_counter() - t0
    metrics = None if registry is None else registry.metrics()
    return JobResult(
        kind=spec.kind,
        status=status,
        exit_code=exit_code,
        output=out.getvalue(),
        data=data,
        error=error,
        metrics=metrics,
        elapsed_s=elapsed,
    )


def run_analyze_batch(
    specs,
    registry=None,
    limits: JobLimits | None = None,
) -> list[JobResult]:
    """Execute compatible analyze jobs as one vectorized-engine call.

    All specs must be ``kind="analyze"`` with equal engine knobs
    (method/screens/backend/cache policy) -- the server's batch grouping
    guarantees this.  The whole group goes through one
    :func:`repro.depanalysis.engine.run_analysis_batch` call (one cache
    store, one shared Diophantine memo, one ``analysis.engine_calls``
    increment), and each spec still gets its own byte-exact CLI output.
    """
    specs = list(specs)
    if not specs:
        return []
    refused: dict[int, JobResult] = {}
    admitted: list[tuple[int, JobSpec]] = []
    for i, spec in enumerate(specs):
        if spec.kind != "analyze":
            raise ValueError("run_analyze_batch accepts only analyze jobs")
        reason = check_limits(spec, limits)
        if reason is not None:
            refused[i] = _refusal(spec, reason)
        else:
            admitted.append((i, spec))
    results: list[JobResult | None] = [None] * len(specs)
    for i, refusal in refused.items():
        results[i] = refusal

    if admitted:
        from repro.depanalysis.engine import AnalysisConfig, run_analysis_batch
        from repro.ir.expand import expand_bit_level

        t0 = time.perf_counter()
        with _installed(registry):
            try:
                head = admitted[0][1]
                config = AnalysisConfig(
                    backend=head.analysis_backend,
                    cache=head.cache,
                    cache_dir=head.cache_dir,
                )
                requests = []
                for _i, spec in admitted:
                    u = spec.u
                    program = expand_bit_level(
                        [0, 1, 0], [1, 0, 0], [0, 0, 1], [1, 1, 1],
                        [u, u, u], spec.p, spec.expansion,
                    )
                    requests.append(
                        (program, {"p": spec.p}, spec.method,
                         spec.use_screens)
                    )
                timings: list[float] = []
                analyses = run_analysis_batch(
                    requests, config=config, timings=timings
                )
                failure = None
            except Exception:
                analyses = None
                failure = traceback.format_exc()
        elapsed = time.perf_counter() - t0
        metrics = None if registry is None else registry.metrics()
        for pos, (i, spec) in enumerate(admitted):
            if analyses is None:
                results[i] = JobResult(
                    kind="analyze", status="error", exit_code=3,
                    error=failure, metrics=metrics, elapsed_s=elapsed,
                )
                continue
            out = io.StringIO()
            _render_analysis(spec, analyses[pos], timings[pos], out)
            results[i] = JobResult(
                kind="analyze",
                status="ok",
                exit_code=0,
                output=out.getvalue(),
                data=_analysis_data(analyses[pos]),
                metrics=metrics,
                elapsed_s=elapsed,
            )
    return results


# ---------------------------------------------------------------------------
# Kind handlers (exact ports of the CLI subcommand bodies)
# ---------------------------------------------------------------------------

def _analysis_data(result) -> dict:
    return {
        "instances": len(result.instances),
        "distinct_vectors": [list(v) for v in result.distinct_vectors()],
        "stats": dict(result.stats),
    }


def _render_analysis(spec: JobSpec, result, elapsed: float, out) -> None:
    from repro.depanalysis.engine import resolve_backend

    print(f"bit-level matmul u={spec.u} p={spec.p} "
          f"expansion={spec.expansion}: "
          f"method={spec.method} "
          f"backend={resolve_backend(spec.analysis_backend)} "
          f"screens={spec.use_screens}", file=out)
    print(f"{len(result.instances)} dependence instances, "
          f"{len(result.distinct_vectors())} distinct vectors "
          f"({elapsed:.3f}s)", file=out)
    for vec in result.distinct_vectors():
        print(f"  d = {list(vec)}", file=out)
    for key, value in result.stats.items():
        print(f"  {key}: {value}", file=out)


def _handle_analyze(spec: JobSpec, out, verbose: bool):
    from repro.depanalysis.engine import AnalysisConfig, run_analysis_batch
    from repro.ir.expand import expand_bit_level

    u, p = spec.u, spec.p
    program = expand_bit_level(
        [0, 1, 0], [1, 0, 0], [0, 0, 1], [1, 1, 1], [u, u, u], p,
        spec.expansion,
    )
    config = AnalysisConfig(
        backend=spec.analysis_backend,
        cache=spec.cache,
        cache_dir=spec.cache_dir,
    )
    timings: list[float] = []
    result, = run_analysis_batch(
        [(program, {"p": p}, spec.method, spec.use_screens)],
        config=config, timings=timings,
    )
    _render_analysis(spec, result, timings[0], out)
    return 0, _analysis_data(result)


def _handle_analyze_symbolic(spec: JobSpec, out, verbose: bool):
    from repro.ir.expand import expand_bit_level
    from repro.structures.params import S
    from repro.symbolic import analyze_symbolic

    program = expand_bit_level(
        [0, 1, 0], [1, 0, 0], [0, 0, 1], [1, 1, 1],
        [S("u"), S("u"), S("u")], S("p"), spec.expansion,
    )
    t0 = time.perf_counter()
    result = analyze_symbolic(
        program, cache=spec.cache, cache_dir=spec.cache_dir
    )
    solve_s = time.perf_counter() - t0
    binding = {"u": spec.u, "p": spec.p}
    t0 = time.perf_counter()
    summary = result.summary(binding)
    instantiate_s = time.perf_counter() - t0
    form = "closed form" if result.closed_form else "general"
    print(f"bit-level matmul expansion={spec.expansion}: "
          f"symbolic analysis, {len(result.families)} families "
          f"({form}, solved in {solve_s:.3f}s)", file=out)
    print(f"instantiated at u={spec.u} p={spec.p}: "
          f"{summary['instances']} dependence instances, "
          f"{len(summary['distinct_vectors'])} distinct vectors "
          f"({instantiate_s * 1e3:.2f}ms)", file=out)
    for vec in summary["distinct_vectors"]:
        print(f"  d = {list(vec)}", file=out)
    for kind, count in summary["by_kind"].items():
        print(f"  {kind}: {count}", file=out)
    for key, value in result.stats.items():
        print(f"  {key}: {value}", file=out)
    data = {
        "instances": summary["instances"],
        "distinct_vectors": [list(v) for v in summary["distinct_vectors"]],
        "by_kind": dict(summary["by_kind"]),
        "families": summary["families"],
        "closed_form": summary["closed_form"],
        "stats": dict(result.stats),
        "solve_s": solve_s,
        "instantiate_s": instantiate_s,
    }
    return 0, data


def _handle_search(spec: JobSpec, out, verbose: bool):
    from repro.expansion.theorem31 import matmul_bit_level
    from repro.experiments.tables import format_table
    from repro.mapping import designs
    from repro.mapping.engine import SearchConfig, run_search
    from repro.mapping.interconnect import mesh_primitives

    alg = matmul_bit_level(spec.u, spec.p, expansion=spec.expansion)
    binding = {"u": spec.u, "p": spec.p}
    primitives = {
        "fig4": lambda: designs.fig4_primitives(spec.p),
        "fig5": lambda: designs.fig5_primitives(),
        "mesh": lambda: mesh_primitives(spec.target_space_dim),
        "none": lambda: None,
    }[spec.primitives]()
    config = SearchConfig(
        target_space_dim=spec.target_space_dim,
        block_values=spec.block if spec.block is not None else [spec.p],
        schedule_bound=spec.schedule_bound,
        max_candidates=None if spec.exhaustive else spec.max_candidates,
        workers=spec.workers,
        overcollect=None if spec.exhaustive else spec.overcollect,
        strategy=spec.strategy,
        frontier=spec.frontier,
    )
    sharded = None
    if spec.shard_workers is not None:
        from repro.mapping.shard import run_sharded_search

        sharded = run_sharded_search(
            alg, binding, primitives, config,
            workers=spec.shard_workers, shard_dir=spec.shard_dir,
        )
        records = sharded.designs
        scope = f"shard_workers={sharded.workers}, blocks={sharded.blocks}"
    else:
        found = run_search(alg, binding, primitives, config)
        records = [
            {
                "rows": [list(r) for r in c.mapping.rows],
                "time": c.time,
                "processors": c.processors,
                "wire_length": c.wire_length,
            }
            for c in found
        ]
        scope = f"workers={config.workers}"
    if not records:
        print("no feasible design within the search bounds", file=out)
        return 1, {"candidates": []}
    if spec.frontier is not None:
        headers = ["rank", "time", "PEs", "wire", "T = [S; Π]"]
        rows = [
            (i + 1, d["time"], d["processors"], d["wire_length"],
             "; ".join(str(list(r)) for r in d["rows"]))
            for i, d in enumerate(records)
        ]
        title = (f"Pareto frontier ({', '.join(spec.frontier)}): "
                 f"bit-level matmul (u={spec.u}, p={spec.p}, "
                 f"primitives={spec.primitives}, {scope})")
    else:
        headers = ["rank", "time", "PEs", "T = [S; Π]"]
        rows = [
            (i + 1, d["time"], d["processors"],
             "; ".join(str(list(r)) for r in d["rows"]))
            for i, d in enumerate(records)
        ]
        title = (f"design-space search: bit-level matmul "
                 f"(u={spec.u}, p={spec.p}, primitives={spec.primitives}, "
                 f"{scope})")
    print(format_table(headers, rows, title=title), file=out)
    data: dict = {
        "candidates": [
            {
                "rank": i + 1,
                "time": d["time"],
                "processors": d["processors"],
                "wire_length": d["wire_length"],
                "rows": [list(r) for r in d["rows"]],
            }
            for i, d in enumerate(records)
        ]
    }
    if spec.frontier is not None:
        data["frontier"] = (
            sharded.frontier
            if sharded is not None
            else [
                {
                    "metrics": [d[m] for m in spec.frontier],
                    "rows": [list(r) for r in d["rows"]],
                }
                for d in records
            ]
        )
    if sharded is not None:
        data["shard"] = {
            "run_key": sharded.run_key,
            "blocks": sharded.blocks,
            "metrics": sharded.metrics,
        }
    return 0, data


def _handle_simulate(spec: JobSpec, out, verbose: bool):
    from repro.machine import BitLevelMatmulMachine, resolve_backend
    from repro.mapping import designs
    from repro.render import render_gantt

    u, p = spec.u, spec.p
    rng = random.Random(spec.seed)
    x = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
    y = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
    t = (designs.fig5_mapping(p) if spec.design == "fig5"
         else designs.fig4_mapping(p))
    machine = BitLevelMatmulMachine(
        u, p, t, spec.expansion, backend=spec.sim_backend
    )
    run = machine.run(x, y)
    mask = (1 << (2 * p - 1)) - 1
    want = [
        [sum(x[i][k] * y[k][j] for k in range(u)) & mask for j in range(u)]
        for i in range(u)
    ]
    print(f"design={spec.design} u={u} p={p} expansion={spec.expansion} "
          f"backend={resolve_backend(spec.sim_backend)}", file=out)
    print(f"makespan: {run.sim.makespan}  PEs: {run.sim.processor_count}  "
          f"utilization: {run.sim.mean_utilization:.1%}", file=out)
    if verbose:
        # Condition 5 of Definition 4.1, measured from the simulator's
        # per-PE busy counters rather than asserted from coprimality.
        print(f"condition 5 (some PE busy at every beat): "
              f"{run.sim.always_busy}", file=out)
        print("per-PE utilization:", file=out)
        util = run.sim.pe_utilization()
        for pos in sorted(run.sim.pe_busy):
            busy = run.sim.pe_busy[pos]
            print(f"  PE{pos}: {busy}/{run.sim.makespan} beats "
                  f"({util[pos]:.1%})", file=out)
        print(f"ValueStore: {run.sim.store_reads} reads, "
              f"{run.sim.store_writes} writes", file=out)
    correct = run.product == want
    print(f"product correct (mod 2^{2*p-1}): {correct}", file=out)
    if spec.gantt:
        from repro.machine.simulator import SpaceTimeSimulator

        sim = SpaceTimeSimulator(
            t, machine.algorithm, machine.binding, backend=spec.sim_backend
        )
        sim.run(lambda q, s: None)
        print(render_gantt(sim.pes), file=out)
    data = {
        "makespan": run.sim.makespan,
        "processors": run.sim.processor_count,
        "utilization": run.sim.mean_utilization,
        "correct": correct,
        "backend": resolve_backend(spec.sim_backend),
        "product": [list(row) for row in run.product],
    }
    return (0 if correct else 1), data


def _handle_verify(spec: JobSpec, out, verbose: bool):
    from repro.verify import VerifyConfig, run_verification

    defaults = VerifyConfig()
    config = VerifyConfig(
        seed=spec.seed,
        cases=spec.cases if spec.cases is not None else defaults.cases,
        budget_s=spec.oracle_budget_s,
        oracles=spec.oracles if spec.oracles else defaults.oracles,
    )
    report = run_verification(config)
    print(report.summary(), file=out)
    return (0 if report.ok else 1), report.to_dict()


_HANDLERS = {
    "analyze": _handle_analyze,
    "analyze_symbolic": _handle_analyze_symbolic,
    "search": _handle_search,
    "simulate": _handle_simulate,
    "verify": _handle_verify,
}
