"""Integer solution lattices and their bounded enumeration.

The exact dependence test solves the subscript system ``A z = b`` (``z``
stacking the source and sink iteration vectors) over the integers, producing
a particular solution plus a lattice basis, and must then *verify* which
lattice points fall inside the iteration-space box.  This module supplies
that verification: :func:`bounded_lattice_points` enumerates all lattice
points of ``particular + B t̄`` lying inside a coordinate box, by interval
constraint propagation (bound tightening) followed by branch-and-prune
enumeration of the ``t̄`` space.

The enumeration is intentionally the honest, classical algorithm: its cost
grows exponentially with the number of free lattice directions -- which for
the programs of the paper equals the loop-nest dimension -- because that is
exactly the cost the paper's Theorem 3.1 avoids.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator, Sequence

from repro.util.intmath import ceil_div, floor_div
from repro.util.linalg import hermite_normal_form, integer_rank

__all__ = [
    "bounded_lattice_points",
    "lattice_intervals",
    "reduce_basis",
    "UnboundedLatticeError",
]

_INF = None  # sentinel for an unbounded interval end


class UnboundedLatticeError(ValueError):
    """Raised when the lattice is not confined by the box constraints."""


def reduce_basis(basis: Sequence[Sequence[int]]) -> list[list[int]]:
    """An independent generating set of the lattice spanned by ``basis``.

    A rank-deficient generator set (zero vectors, or linearly dependent
    generators) makes the map ``t̄ -> x`` non-injective: enumerating the
    ``t̄`` box would visit solutions repeatedly -- and the unbounded ``t̄``
    fibers over each ``x`` used to surface as a spurious
    :class:`UnboundedLatticeError`.  The nonzero rows of the row-style
    Hermite normal form generate exactly the same lattice with full row
    rank, so enumeration over them is finite and visits each solution
    exactly once.

    Already-independent bases are returned entry-for-entry unchanged, so
    the ``t̄`` parameterization (and everything downstream of
    :func:`lattice_intervals`, e.g. the batched engine's candidate grids)
    is bit-identical for the non-degenerate inputs the Smith-normal-form
    solver produces.
    """
    rows = [list(r) for r in basis]
    nonzero = [r for r in rows if any(r)]
    if len(nonzero) == len(rows) and (
        not rows or integer_rank(rows) == len(rows)
    ):
        return rows
    if not nonzero:
        return []
    h, _u = hermite_normal_form(nonzero)
    return [row for row in h if any(row)]


def _tighten(
    intervals: list[list],
    rows: list[tuple[list[int], int, int]],
) -> bool:
    """Tighten ``t`` intervals against ``lo <= sum c_k t_k <= hi`` rows.

    Returns ``False`` when a contradiction (empty interval) is detected.
    ``intervals`` entries are mutable pairs ``[lo, hi]`` with ``None`` for
    unbounded ends.
    """
    changed = True
    guard = 0
    while changed:
        changed = False
        guard += 1
        if guard > 10_000:  # defensive: should converge long before this
            break
        for coeffs, lo, hi in rows:
            for k, c in enumerate(coeffs):
                if c == 0:
                    continue
                rest_lo = 0
                rest_hi = 0
                unbounded = False
                for k2, c2 in enumerate(coeffs):
                    if k2 == k or c2 == 0:
                        continue
                    l2, h2 = intervals[k2]
                    if l2 is _INF or h2 is _INF:
                        unbounded = True
                        break
                    a, b = c2 * l2, c2 * h2
                    rest_lo += min(a, b)
                    rest_hi += max(a, b)
                if unbounded:
                    continue
                # lo - rest_hi <= c * t_k <= hi - rest_lo
                if c > 0:
                    new_lo = ceil_div(lo - rest_hi, c)
                    new_hi = floor_div(hi - rest_lo, c)
                else:
                    new_lo = ceil_div(hi - rest_lo, c)
                    new_hi = floor_div(lo - rest_hi, c)
                cur = intervals[k]
                if cur[0] is _INF or new_lo > cur[0]:
                    cur[0] = new_lo
                    changed = True
                if cur[1] is _INF or new_hi < cur[1]:
                    cur[1] = new_hi
                    changed = True
                if cur[0] is not _INF and cur[1] is not _INF and cur[0] > cur[1]:
                    return False
    return True


def _algebraic_bounds(
    rows: list[tuple[list[int], int, int]], m: int
) -> list[list[int]] | None:
    """Explicit ``t̄`` bounds from an invertible row submatrix.

    :func:`_tighten` is one-variable-at-a-time propagation: it can only
    tighten ``t_k`` in a row whose *other* variables already have finite
    intervals, so it stalls completely when every row couples two or more
    still-unbounded variables.  But whenever the coefficient rows span
    ``Q^m`` -- always the case when the lattice basis is linearly
    independent and every touched coordinate is box-bounded -- the polytope
    ``{t̄ : lo_i <= c̄_i·t̄ <= hi_i}`` *is* bounded, and explicit bounds
    follow from inverting any ``m`` independent rows ``M``: each
    ``t_k = Σ_j (M⁻¹)_{kj} y_j`` with ``y_j`` confined to its row interval.

    Returns per-variable integer intervals ``[lo, hi]``, or ``None`` when
    the rows do not span ``Q^m`` (the genuinely unbounded case).
    """
    # Select m linearly independent rows by Gaussian elimination over Q.
    work: list[list[Fraction]] = []
    chosen: list[int] = []
    pivots: list[int] = []
    for idx, (coeffs, _, _) in enumerate(rows):
        vec = [Fraction(c) for c in coeffs]
        for row, piv in zip(work, pivots):
            if vec[piv]:
                factor = vec[piv] / row[piv]
                vec = [a - factor * b for a, b in zip(vec, row)]
        piv = next((k for k, v in enumerate(vec) if v), None)
        if piv is None:
            continue
        work.append(vec)
        pivots.append(piv)
        chosen.append(idx)
        if len(chosen) == m:
            break
    if len(chosen) < m:
        return None

    # Invert M (rows `chosen`) by Gauss-Jordan over Q.
    mat = [
        [Fraction(c) for c in rows[idx][0]] + [
            Fraction(int(j == pos)) for j in range(m)
        ]
        for pos, idx in enumerate(chosen)
    ]
    for col in range(m):
        pivot = next(r for r in range(col, m) if mat[r][col])
        mat[col], mat[pivot] = mat[pivot], mat[col]
        inv = 1 / mat[col][col]
        mat[col] = [x * inv for x in mat[col]]
        for r in range(m):
            if r != col and mat[r][col]:
                factor = mat[r][col]
                mat[r] = [a - factor * b for a, b in zip(mat[r], mat[col])]
    inverse = [row[m:] for row in mat]

    out: list[list[int]] = []
    for k in range(m):
        lo_sum = Fraction(0)
        hi_sum = Fraction(0)
        for j, idx in enumerate(chosen):
            _, lo_j, hi_j = rows[idx]
            a, b = inverse[k][j] * lo_j, inverse[k][j] * hi_j
            lo_sum += min(a, b)
            hi_sum += max(a, b)
        out.append(
            [
                ceil_div(lo_sum.numerator, lo_sum.denominator),
                floor_div(hi_sum.numerator, hi_sum.denominator),
            ]
        )
    return out


def _prepare(
    particular: Sequence[int],
    basis: Sequence[Sequence[int]],
    bounds: Sequence[tuple[int, int]],
) -> tuple[list, list] | None:
    """Constraint rows + tightened per-direction intervals for ``t̄``.

    Returns ``(rows, intervals)`` with every interval finite, or ``None``
    when the system is infeasible (a fixed coordinate violates the box or
    propagation finds a contradiction).  Raises
    :class:`UnboundedLatticeError` when the lattice is genuinely unbounded.
    Requires ``len(basis) > 0``.
    """
    n = len(particular)
    m = len(basis)

    # Row form: lo_i - p_i <= sum_k basis[k][i] * t_k <= hi_i - p_i.
    rows = []
    for i in range(n):
        coeffs = [int(basis[k][i]) for k in range(m)]
        if all(c == 0 for c in coeffs):
            lo, hi = bounds[i]
            if not (lo <= particular[i] <= hi):
                return None  # the fixed coordinate violates the box
            continue
        rows.append(
            (coeffs, bounds[i][0] - particular[i], bounds[i][1] - particular[i])
        )

    intervals: list[list] = [[_INF, _INF] for _ in range(m)]
    if not _tighten(intervals, rows):
        return None
    if any(lo is _INF or hi is _INF for lo, hi in intervals):
        # Propagation stalled (it needs all-but-one variable of some row
        # already bounded); fall back to algebraic bounds from an
        # invertible row submatrix, then intersect and re-tighten.
        algebraic = _algebraic_bounds(rows, m)
        if algebraic is None:
            k = next(
                k for k, (lo, hi) in enumerate(intervals)
                if lo is _INF or hi is _INF
            )
            raise UnboundedLatticeError(
                f"lattice direction t_{k} is not bounded by the box constraints"
            )
        for iv, (alo, ahi) in zip(intervals, algebraic):
            if iv[0] is _INF or alo > iv[0]:
                iv[0] = alo
            if iv[1] is _INF or ahi < iv[1]:
                iv[1] = ahi
            if iv[0] > iv[1]:
                return None
        if not _tighten(intervals, rows):
            return None
    return rows, intervals


def lattice_intervals(
    particular: Sequence[int],
    basis: Sequence[Sequence[int]],
    bounds: Sequence[tuple[int, int]],
) -> list[tuple[int, int]] | None:
    """Sound finite intervals confining every feasible ``t̄`` direction.

    Every solution of ``particular + B t̄ ∈ box`` has
    ``intervals[k][0] <= t_k <= intervals[k][1]`` (the converse need not
    hold -- the box of intervals over-approximates the feasible polytope).
    Returns ``None`` when there are provably no solutions; raises
    :class:`UnboundedLatticeError` when a direction cannot be bounded.
    This is the entry point the batched analysis engine uses to enumerate
    candidate blocks as a dense grid instead of by branch-and-prune.

    Rank-deficient generator sets are first reduced via
    :func:`reduce_basis`; the returned intervals then correspond to the
    *reduced* basis directions.
    """
    n = len(particular)
    if len(bounds) != n:
        raise ValueError("bounds length must match solution dimension")
    basis = reduce_basis(basis)
    if not basis:
        return []
    prep = _prepare(particular, basis, bounds)
    if prep is None:
        return None
    _rows, intervals = prep
    return [(iv[0], iv[1]) for iv in intervals]


def bounded_lattice_points(
    particular: Sequence[int],
    basis: Sequence[Sequence[int]],
    bounds: Sequence[tuple[int, int]],
) -> Iterator[list[int]]:
    """Enumerate ``x = particular + sum_k t_k basis[k]`` with
    ``bounds[i][0] <= x_i <= bounds[i][1]`` for all ``i``.

    Yields each solution vector ``x`` exactly once -- including for
    rank-deficient generator sets, which are reduced to an independent
    basis of the same lattice first (:func:`reduce_basis`).  Raises
    :class:`UnboundedLatticeError` when constraint propagation cannot bound
    every lattice coordinate of an independent basis (which a finite box
    never produces; the error survives as a defensive invariant).
    """
    n = len(particular)
    if len(bounds) != n:
        raise ValueError("bounds length must match solution dimension")
    basis = reduce_basis(basis)
    m = len(basis)
    if m == 0:
        x = list(particular)
        if all(lo <= xi <= hi for xi, (lo, hi) in zip(x, bounds)):
            yield x
        return

    prep = _prepare(particular, basis, bounds)
    if prep is None:
        return
    rows, intervals = prep

    def recurse(assign: list[int | None], intervals: list[list]) -> Iterator[list[int]]:
        # Pick the unassigned variable with the narrowest range.
        free = [k for k in range(m) if assign[k] is None]
        if not free:
            x = list(particular)
            for k in range(m):
                tk = assign[k]
                for i in range(n):
                    x[i] += tk * basis[k][i]
            if all(lo <= xi <= hi for xi, (lo, hi) in zip(x, bounds)):
                yield x
            return
        k = min(free, key=lambda k_: intervals[k_][1] - intervals[k_][0])
        lo_k, hi_k = intervals[k]
        for val in range(lo_k, hi_k + 1):
            new_assign = list(assign)
            new_assign[k] = val
            # Substitute t_k = val into the rows and re-tighten the rest.
            new_rows = []
            feasible = True
            for coeffs, lo, hi in rows:
                ck = coeffs[k]
                new_coeffs = list(coeffs)
                new_coeffs[k] = 0
                new_lo = lo - ck * val
                new_hi = hi - ck * val
                # Also substitute already-assigned variables for tightness.
                for k2 in range(m):
                    if k2 != k and new_assign[k2] is not None and new_coeffs[k2]:
                        new_lo -= new_coeffs[k2] * new_assign[k2]
                        new_hi -= new_coeffs[k2] * new_assign[k2]
                        new_coeffs[k2] = 0
                if all(c == 0 for c in new_coeffs):
                    if not (new_lo <= 0 <= new_hi):
                        feasible = False
                        break
                    continue
                new_rows.append((new_coeffs, new_lo, new_hi))
            if not feasible:
                continue
            new_intervals = [list(iv) for iv in intervals]
            new_intervals[k] = [val, val]
            if not _tighten(new_intervals, new_rows):
                continue
            yield from recurse(new_assign, new_intervals)

    yield from recurse([None] * m, intervals)
