"""General dependence analysis for nested-loop programs.

This package implements the classical machinery the paper uses as its
baseline ("general dependence analysis methods ... generally involve finding
all integer solutions of a set of linear Diophantine equations, followed by a
verification to see if the integer solutions are inside the index set"):

* :mod:`repro.depanalysis.gcdtest` -- the GCD screening test;
* :mod:`repro.depanalysis.banerjee` -- Banerjee's inequality (real-valued
  bounds) screening test;
* :mod:`repro.depanalysis.diophantine` -- integer solution lattices of
  subscript systems plus bounded lattice enumeration;
* :mod:`repro.depanalysis.exact` -- the exact analyzer: Diophantine solve,
  then in-index-set verification (exponential in the loop depth, as the
  paper notes);
* :mod:`repro.depanalysis.analyzer` -- the public entry point
  :func:`~repro.depanalysis.analyzer.analyze`, including a fast
  hash-join oracle (``method="enumerate"``) used to cross-check the exact
  analyzer and to validate Theorem 3.1 on concrete instances;
* :mod:`repro.depanalysis.engine` -- the vectorized engine: batched
  GCD/Banerjee screening, block candidate enumeration, the batched
  hash-join, backend resolution (``REPRO_ANALYSIS_BACKEND``), and the
  persistent artifact cache (see :mod:`repro.cache` and
  ``docs/ANALYSIS.md``).  Both backends are bit-identical to the scalar
  reference.
"""

from repro.depanalysis.pairs import AnalysisResult, DependenceInstance, PointSet
from repro.depanalysis.gcdtest import gcd_test
from repro.depanalysis.banerjee import banerjee_test
from repro.depanalysis.analyzer import analyze
from repro.depanalysis.engine import (
    AnalysisConfig,
    BACKENDS,
    default_backend,
    resolve_backend,
    run_analysis,
)

__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "BACKENDS",
    "DependenceInstance",
    "PointSet",
    "analyze",
    "banerjee_test",
    "default_backend",
    "gcd_test",
    "resolve_backend",
    "run_analysis",
]
