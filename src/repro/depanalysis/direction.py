"""Direction vectors: the classical (<, =, >) dependence summaries.

Banerjee-era compilers summarize each dependence as a *direction vector*
over the loop nest: per loop, whether the source iteration is earlier
(``<``), equal (``=``) or later (``>``) than the sink.  Distance vectors
(the ``d̄`` this library works with) refine direction vectors; the reverse
mapping is provided here for interoperability with that vocabulary, plus
loop-parallelism queries that follow directly from it (a loop carries no
dependence iff every direction vector has ``=`` in its position or is
forced sequential by an outer ``<``).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.depanalysis.pairs import AnalysisResult

__all__ = [
    "direction_of",
    "direction_vectors",
    "carried_loops",
    "parallel_loops",
]

_SYMBOL = {1: "<", 0: "=", -1: ">"}


def direction_of(distance: Sequence[int]) -> str:
    """Direction vector of a distance vector, as a string like ``"(<,=,>)"``.

    Convention: the distance is ``sink - source``, so a positive component
    means the source is *earlier* in that loop (``<``).
    """
    symbols = [
        _SYMBOL[1 if d > 0 else -1 if d < 0 else 0] for d in distance
    ]
    return "(" + ",".join(symbols) + ")"


def direction_vectors(result: AnalysisResult) -> dict[str, int]:
    """Multiset of direction vectors over all dependence instances."""
    return dict(Counter(direction_of(inst.vector) for inst in result.instances))


def carried_loops(distances: Iterable[Sequence[int]]) -> set[int]:
    """Loops (0-based positions) that carry at least one dependence.

    A dependence is *carried* by the outermost loop at which its distance
    is nonzero; inner positions of that vector constrain nothing.
    """
    carried: set[int] = set()
    for d in distances:
        for k, x in enumerate(d):
            if x != 0:
                carried.add(k)
                break
    return carried


def parallel_loops(distances: Iterable[Sequence[int]], depth: int) -> set[int]:
    """Loops that can run fully parallel (carry no dependence)."""
    return set(range(depth)) - carried_loops(distances)
