"""Flow/anti/output dependence analysis for multi-write programs.

Section 2 of the paper *assumes* single assignment so that "there is no
output dependence", and converts accumulation programs (Example 2.1) to
make it true.  This module analyzes the programs *before* that conversion:
walking the sequential execution order, it reports all three classical
dependence kinds --

* **flow** (read-after-write): a read sees the most recent writer;
* **anti** (write-after-read): a write overwrites an element read since the
  previous write;
* **output** (write-after-write): consecutive writers of one element.

Running it on the accumulation matmul of Example 2.1 shows exactly the
output and anti dependences the single-assignment conversion (program
(2.2)) eliminates -- making the paper's assumption checkable instead of
axiomatic.
"""

from __future__ import annotations

from repro.depanalysis.pairs import AnalysisResult, DependenceInstance
from repro.ir.program import LoopNest
from repro.structures.params import ParamBinding

__all__ = ["analyze_multiwrite"]


def analyze_multiwrite(
    program: LoopNest,
    binding: ParamBinding,
    kinds: tuple[str, ...] = ("flow", "anti", "output"),
) -> AnalysisResult:
    """Sequential-order dependence analysis without the single-assignment
    premise.

    Iterations execute in lexicographic order; within an iteration,
    statements execute in program order with reads preceding their write.
    Instances carry ``kind`` in ``{"flow", "anti", "output"}``; the paper's
    convention (sink point + vector ``sink - source``) is kept for all
    three.
    """
    wanted = set(kinds)
    unknown = wanted - {"flow", "anti", "output"}
    if unknown:
        raise ValueError(f"unknown dependence kinds: {sorted(unknown)}")

    last_writer: dict[tuple[str, tuple[int, ...]], tuple[int, ...]] = {}
    #: readers of each element since its last write
    readers_since: dict[tuple[str, tuple[int, ...]], set[tuple[int, ...]]] = {}
    instances: set[DependenceInstance] = set()
    stats = {"points_visited": 0, "reads": 0, "writes": 0}

    def vec(sink: tuple[int, ...], src: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(a - b for a, b in zip(sink, src))

    for point in program.index_set.points(binding):
        stats["points_visited"] += 1
        for stmt in program.statements:
            if not stmt.active_at(point, binding):
                continue
            env = program.point_env(point)
            # Reads first (they see the state before this statement's write).
            for acc in stmt.reads:
                stats["reads"] += 1
                elem = acc.element(env, binding)
                src = last_writer.get(elem)
                if src is not None and src != point and "flow" in wanted:
                    instances.add(
                        DependenceInstance(point, vec(point, src), acc.array, "flow")
                    )
                readers_since.setdefault(elem, set()).add(point)
            # Then the write.
            stats["writes"] += 1
            elem = stmt.write.element(env, binding)
            prev = last_writer.get(elem)
            if prev is not None and prev != point and "output" in wanted:
                instances.add(
                    DependenceInstance(
                        point, vec(point, prev), stmt.write.array, "output"
                    )
                )
            if "anti" in wanted:
                for reader in readers_since.get(elem, ()):
                    if reader != point:
                        instances.add(
                            DependenceInstance(
                                point, vec(point, reader), stmt.write.array, "anti"
                            )
                        )
            last_writer[elem] = point
            readers_since[elem] = set()
    stats["instances"] = len(instances)
    return AnalysisResult(sorted(instances, key=lambda i: i.key()), stats)
