"""Symbolic summarization of extensional validity domains.

The general analyzer reports where each dependence vector occurs as a
finite *point set*; the paper writes validity domains *symbolically*
(``i₁ = 1``, ``i₂ ≠ 1``, ``i₁ = p or i₂ = 1``, ...).  This module closes
the representational gap: :func:`summarize_validity` searches a small,
paper-shaped hypothesis space of conditions -- conjunctions/disjunctions of
per-axis (in)equalities against the interesting values of each axis (its
bounds, bound±1, and small constants) -- for one whose extension over the
index set matches the observed point set exactly.

With it, the whole paper pipeline can be run in reverse: expand a program,
analyze it, and *recover* dependence matrices in the same symbolic form
Theorem 3.1 produces, making the two directly comparable column by column.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.depanalysis.pairs import AnalysisResult
from repro.structures.conditions import And, Condition, Eq, Ne, Or, TRUE
from repro.structures.dependence import DependenceMatrix, DependenceVector
from repro.structures.indexset import IndexSet
from repro.structures.params import LinExpr, ParamBinding

__all__ = ["summarize_validity", "summarize_result", "candidate_atoms"]


def candidate_atoms(
    index_set: IndexSet, binding: ParamBinding
) -> list[Condition]:
    """Paper-shaped atomic conditions for each axis.

    For axis ``k`` with symbolic bounds ``[lo, hi]``, the atoms are
    ``Eq``/``Ne`` against: the bounds themselves (so conditions print as
    ``i₁ = p`` rather than ``i₁ = 3``), and the small constants ``lo`` /
    ``lo+1`` (the paper's ``i₂ ≠ 1, 2``).  Atoms that are tautological or
    unsatisfiable on the instantiated set are dropped.
    """
    atoms: list[Condition] = []
    bounds = index_set.bounds(binding)
    for axis in range(index_set.dim):
        lo_expr, hi_expr = index_set.lowers[axis], index_set.uppers[axis]
        lo, hi = bounds[axis]
        if lo == hi:
            continue  # the axis is degenerate; nothing to distinguish
        values: list[LinExpr] = [lo_expr, hi_expr]
        values.append(lo_expr + 1)
        seen: set[int] = set()
        for value in values:
            concrete = value.evaluate(binding)
            if concrete in seen or not (lo <= concrete <= hi):
                continue
            seen.add(concrete)
            atoms.append(Eq(axis, value))
            atoms.append(Ne(axis, value))
    return atoms


def _extension(
    cond: Condition,
    points: Iterable[tuple[int, ...]],
    binding: ParamBinding,
) -> frozenset[tuple[int, ...]]:
    return frozenset(pt for pt in points if cond.holds(pt, binding))


def summarize_validity(
    observed: Iterable[Sequence[int]],
    index_set: IndexSet,
    binding: ParamBinding,
    max_terms: int = 3,
) -> Condition | None:
    """Find a symbolic condition whose extension equals ``observed``.

    The hypothesis space, searched smallest-first:

    1. ``TRUE`` (the vector is uniform);
    2. single atoms;
    3. conjunctions of up to ``max_terms`` atoms;
    4. disjunctions of up to ``max_terms`` atoms or conjunction pairs
       (covers the paper's ``i₁ = p or i₂ = 1`` and
       ``i₁ ≠ 1 or i₂ ∉ {1,2}`` shapes, including one level of
       and-inside-or).

    Returns ``None`` when nothing in the space matches exactly -- the
    caller should then keep the extensional representation.
    """
    target = frozenset(tuple(int(x) for x in pt) for pt in observed)
    universe = list(index_set.points(binding))
    if target == frozenset(universe):
        return TRUE

    atoms = candidate_atoms(index_set, binding)
    # Pre-filter: keep atoms consistent with the target (their extension is
    # a superset of the target, a necessary condition for conjuncts).
    ext: dict[Condition, frozenset] = {
        a: _extension(a, universe, binding) for a in atoms
    }

    # 2. single atoms
    for a in atoms:
        if ext[a] == target:
            return a

    supersets = [a for a in atoms if ext[a] >= target]
    # 3. conjunctions
    for r in range(2, max_terms + 1):
        for combo in itertools.combinations(supersets, r):
            inter = frozenset(universe)
            for a in combo:
                inter &= ext[a]
                if not inter >= target:
                    break
            else:
                if inter == target:
                    return And(*combo)

    # 4. disjunctions of atoms and of small conjunctions.
    subsets = [a for a in atoms if ext[a] <= target and ext[a]]
    # Also allow conjunction pairs as disjuncts (for q̄₁-style conditions).
    conj_pairs = []
    for a, b in itertools.combinations(atoms, 2):
        inter = ext[a] & ext[b]
        if inter and inter <= target and inter not in (ext[a], ext[b]):
            conj_pairs.append((And(a, b), inter))
    disjunct_pool: list[tuple[Condition, frozenset]] = [
        (a, ext[a]) for a in subsets
    ] + conj_pairs
    for r in range(2, max_terms + 1):
        for combo in itertools.combinations(disjunct_pool, r):
            union: frozenset = frozenset()
            for _, e in combo:
                union |= e
            if union == target:
                return Or(*(c for c, _ in combo))
    return None


def summarize_result(
    result: AnalysisResult,
    index_set: IndexSet,
    binding: ParamBinding,
    max_terms: int = 3,
) -> DependenceMatrix:
    """Lift an :class:`AnalysisResult` to a symbolic dependence matrix.

    Each distinct vector's sink set is summarized; vectors whose domain
    resists summarization keep their extensional :class:`PointSet`
    condition.  Note that the analyzer only sees *effective* edges (source
    inside ``J``), so recovered conditions are the intersection of the
    paper's validity with source membership -- e.g. a uniform ``d̄₃``
    appears as ``j ≠ l`` (first iteration reads a boundary value).
    """
    base = result.to_dependence_matrix()
    out = []
    for vec in base:
        sinks = result.sinks_of(vec.vector)
        cond = summarize_validity(sinks, index_set, binding, max_terms)
        out.append(vec.with_validity(cond) if cond is not None else vec)
    return DependenceMatrix(out)
