"""Banerjee's inequality test.

The second classical screening test [Banerjee 1988]: a subscript equation
``sum_i a_i j'_i - sum_i b_i j_i = rhs`` with every variable confined to its
loop bounds can only have a (real-valued, hence a fortiori integer) solution
when ``rhs`` lies between the minimum and maximum of the left-hand side over
the bounding box.  Like the GCD test it is conservative -- it never misses a
real dependence but may report false positives -- and it is complementary to
the GCD test (GCD checks divisibility, Banerjee checks magnitude).
"""

from __future__ import annotations

from repro.ir.program import ArrayAccess
from repro.structures.indexset import IndexSet
from repro.structures.params import ParamBinding

__all__ = ["banerjee_test", "affine_range"]


def affine_range(
    coeffs: list[int], bounds: list[tuple[int, int]]
) -> tuple[int, int]:
    """Exact (min, max) of ``sum_i coeffs[i] * x_i`` over a box.

    Each ``x_i`` independently ranges over ``bounds[i]``, so the extrema are
    attained componentwise at the box corners selected by coefficient sign.
    """
    lo = hi = 0
    for c, (l, u) in zip(coeffs, bounds):
        if c >= 0:
            lo += c * l
            hi += c * u
        else:
            lo += c * u
            hi += c * l
    return lo, hi


def banerjee_test(
    write: ArrayAccess,
    read: ArrayAccess,
    index_order: tuple[str, ...],
    index_set: IndexSet,
    binding: ParamBinding,
) -> bool:
    """Return True when a dependence is *possible* by Banerjee's bounds.

    For each subscript position the affine form over the ``2n`` unknowns
    ``(j̄', j̄)`` (both constrained to the loop bounds) must be able to reach
    zero; if the interval of reachable values excludes zero for any position,
    the accesses are independent.
    """
    if write.array != read.array:
        return False
    bounds = index_set.bounds(binding)
    box = bounds + bounds  # unknowns are (source j̄', sink j̄)
    for w_e, r_e in zip(write.subscripts, read.subscripts):
        coeffs = w_e.coeff_vector(index_order) + [
            -c for c in r_e.coeff_vector(index_order)
        ]
        const = w_e.offset.evaluate(binding) - r_e.offset.evaluate(binding)
        lo, hi = affine_range(coeffs, box)
        if not (lo + const <= 0 <= hi + const):
            return False
    return True
