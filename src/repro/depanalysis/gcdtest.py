"""The GCD dependence test.

The oldest of the screening tests: a dependence between a write access
``W(j̄')`` and a read access ``R(j̄)`` of the same array requires integer
solvability of ``W_k(j̄') - R_k(j̄) = 0`` for every subscript position ``k``.
Each such equation is linear Diophantine; it has integer solutions iff the
gcd of the coefficients divides the constant term.  If any equation fails the
divisibility check, the accesses can never touch the same element and the
pair is independent -- no index-set verification needed.

The test is *conservative*: passing it does not prove dependence (solutions
may fall outside the iteration space); that refinement is the job of
:mod:`repro.depanalysis.exact`.
"""

from __future__ import annotations

from repro.ir.program import ArrayAccess
from repro.structures.params import ParamBinding
from repro.util.intmath import gcd_list

__all__ = ["gcd_test"]


def gcd_test(
    write: ArrayAccess,
    read: ArrayAccess,
    index_order: tuple[str, ...],
    binding: ParamBinding,
) -> bool:
    """Return True when a dependence between ``write`` and ``read`` is
    *possible* according to the GCD criterion.

    The unknowns are the ``2n`` values ``(j̄', j̄)`` (source iteration, sink
    iteration); the equations equate subscripts position by position.
    Symbolic offsets are evaluated under ``binding``.
    """
    if write.array != read.array:
        return False
    if write.rank != read.rank:
        raise ValueError(
            f"rank mismatch on array {write.array}: {write.rank} vs {read.rank}"
        )
    for w_e, r_e in zip(write.subscripts, read.subscripts):
        coeffs = w_e.coeff_vector(index_order) + [
            -c for c in r_e.coeff_vector(index_order)
        ]
        rhs = r_e.offset.evaluate(binding) - w_e.offset.evaluate(binding)
        g = gcd_list(coeffs)
        if g == 0:
            if rhs != 0:
                return False
        elif rhs % g != 0:
            return False
    return True
