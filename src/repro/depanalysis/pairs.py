"""Dependence instances and analysis results.

A :class:`DependenceInstance` is one concrete dependence pair
``(j̄, d̄ = j̄ - j̄')``: iteration ``j̄`` (the *sink*) uses a value produced by
iteration ``j̄' = j̄ - d̄`` (the *source*), through variable ``variable``.

An :class:`AnalysisResult` aggregates all instances found for a program on a
concrete parameter binding, and distills them into the paper's dependence-
matrix view: distinct dependence vectors, each with an extensional validity
domain (:class:`PointSet`).  Extensional domains are exactly what is needed
to cross-validate Theorem 3.1's *symbolic* validity conditions.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.structures.conditions import Condition
from repro.structures.dependence import DependenceMatrix, DependenceVector
from repro.structures.params import ParamBinding

__all__ = ["DependenceInstance", "PointSet", "AnalysisResult"]


class PointSet(Condition):
    """An extensional validity condition: a finite set of concrete points.

    ``offset`` re-axes the set the way ``Eq.shift_axes`` re-axes an
    intensional condition: a set recorded over axes ``0..w-1`` shifted by
    ``k`` holds at a point of a wider space iff the slice
    ``point[k : k + w]`` is a member.  This is what lets extensional
    validity domains survive :meth:`DependenceVector.prefixed` when a
    word-level matrix is embedded into a product index set.
    """

    __slots__ = ("points", "offset", "_width")

    def __init__(self, points: Iterable[Sequence[int]], offset: int = 0):
        self.points = frozenset(tuple(int(x) for x in pt) for pt in points)
        if offset < 0:
            raise ValueError(f"negative axis offset {offset}")
        self.offset = int(offset)
        widths = {len(pt) for pt in self.points}
        if len(widths) > 1:
            raise ValueError(f"mixed point widths {sorted(widths)}")
        self._width = widths.pop() if widths else 0

    def holds(self, point: Sequence[int], binding: ParamBinding) -> bool:
        if not self.points:
            return False
        probe = tuple(point)
        if self.offset:
            probe = probe[self.offset:self.offset + self._width]
        return probe in self.points

    def shift_axes(self, offset: int) -> Condition:
        return PointSet(self.points, offset=self.offset + offset)

    def params(self) -> frozenset[str]:
        return frozenset()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PointSet)
            and self.points == other.points
            and self.offset == other.offset
        )

    def __hash__(self) -> int:
        return hash((self.points, self.offset))

    def __repr__(self) -> str:
        suffix = f", offset={self.offset}" if self.offset else ""
        if len(self.points) <= 4:
            return f"PointSet({sorted(self.points)}{suffix})"
        return f"PointSet(<{len(self.points)} points>{suffix})"


class DependenceInstance:
    """One dependence pair ``(sink, vector)`` through ``variable``."""

    __slots__ = ("sink", "vector", "variable", "kind")

    def __init__(
        self,
        sink: Sequence[int],
        vector: Sequence[int],
        variable: str,
        kind: str = "flow",
    ):
        self.sink = tuple(int(x) for x in sink)
        self.vector = tuple(int(x) for x in vector)
        self.variable = variable
        self.kind = kind

    @property
    def source(self) -> tuple[int, ...]:
        """The iteration that produced the value (``sink - vector``)."""
        return tuple(s - d for s, d in zip(self.sink, self.vector))

    def key(self) -> tuple:
        return (self.sink, self.vector, self.variable, self.kind)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DependenceInstance) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return (
            f"{self.kind}({self.variable}): {list(self.source)} -> {list(self.sink)}"
            f" d̄={list(self.vector)}"
        )


class AnalysisResult:
    """All dependences of a program instance, with matrix distillation."""

    __slots__ = ("instances", "stats")

    def __init__(
        self,
        instances: Iterable[DependenceInstance],
        stats: dict | None = None,
    ):
        self.instances: tuple[DependenceInstance, ...] = tuple(instances)
        #: analyzer bookkeeping: systems solved, candidates enumerated, etc.
        self.stats: dict = stats or {}

    def distinct_vectors(self) -> list[tuple[int, ...]]:
        """Sorted distinct dependence vectors found."""
        return sorted({inst.vector for inst in self.instances})

    def vectors_by_variable(self) -> dict[str, set[tuple[int, ...]]]:
        """Distinct vectors grouped by the variable that causes them."""
        out: dict[str, set[tuple[int, ...]]] = defaultdict(set)
        for inst in self.instances:
            out[inst.variable].add(inst.vector)
        return dict(out)

    def edge_set(self) -> set[tuple[tuple[int, ...], tuple[int, ...]]]:
        """The set of (source, sink) pairs, ignoring variables."""
        return {(inst.source, inst.sink) for inst in self.instances}

    def sinks_of(self, vector: Sequence[int]) -> set[tuple[int, ...]]:
        """All sink points at which a given dependence vector occurs."""
        v = tuple(int(x) for x in vector)
        return {inst.sink for inst in self.instances if inst.vector == v}

    def to_dependence_matrix(self) -> DependenceMatrix:
        """Distill into the paper's dependence-matrix form.

        One column per distinct dependence vector; causes are the union of the
        variables observed for that vector; the validity condition is the
        extensional :class:`PointSet` of sink points.
        """
        sinks: dict[tuple[int, ...], set[tuple[int, ...]]] = defaultdict(set)
        causes: dict[tuple[int, ...], set[str]] = defaultdict(set)
        for inst in self.instances:
            sinks[inst.vector].add(inst.sink)
            causes[inst.vector].add(inst.variable)
        vectors = [
            DependenceVector(vec, sorted(causes[vec]), PointSet(sinks[vec]))
            for vec in sorted(sinks)
        ]
        return DependenceMatrix(vectors)

    def __len__(self) -> int:
        return len(self.instances)

    def __repr__(self) -> str:
        return (
            f"AnalysisResult({len(self.instances)} instances, "
            f"{len(self.distinct_vectors())} distinct vectors)"
        )
