"""The exact (Diophantine + verification) dependence analyzer.

This is the faithful implementation of the "general dependence analysis
methods" the paper describes: for every write/read access pair on the same
array, set up the linear Diophantine system equating subscripts, find all
integer solutions (particular solution + lattice basis via Smith normal
form), and *verify* which solutions lie inside the iteration space.  The
verification step enumerates the solution lattice inside the index-set box,
with cost exponential in the number of free lattice directions -- which is
why the paper's compositional Theorem 3.1 is worth having.

Guards on statements restrict which solutions are real dependences: the
write's guard must hold at the source iteration, the read's at the sink.
"""

from __future__ import annotations

import time

from repro import obs
from repro.depanalysis.diophantine import bounded_lattice_points
from repro.depanalysis.gcdtest import gcd_test
from repro.depanalysis.banerjee import banerjee_test
from repro.depanalysis.pairs import AnalysisResult, DependenceInstance
from repro.ir.program import LoopNest
from repro.structures.params import ParamBinding
from repro.util.linalg import solve_integer_system

__all__ = ["analyze_exact"]


def _lex_positive(vec: tuple[int, ...]) -> bool:
    for x in vec:
        if x > 0:
            return True
        if x < 0:
            return False
    return False


def analyze_exact(
    program: LoopNest,
    binding: ParamBinding,
    use_screens: bool = True,
) -> AnalysisResult:
    """Run the exact general dependence analysis on a program instance.

    Parameters
    ----------
    program:
        The loop nest to analyze.
    binding:
        Values for all symbolic parameters (``{"u": 4, "p": 3}``).
    use_screens:
        When True (default), apply the GCD and Banerjee screening tests
        before solving each Diophantine system; turning them off measures
        the cost of bare exact analysis (used by the ablation benchmark).

    Returns
    -------
    AnalysisResult
        All flow-dependence instances with both endpoints inside the index
        set, plus analyzer statistics in ``result.stats``.
    """
    order = program.index_names
    n = program.dim
    bounds = program.index_set.bounds(binding)
    box = bounds + bounds  # unknowns: (source j̄', sink j̄)

    stats = {
        "pairs_tested": 0,
        "gcd_pruned": 0,
        "banerjee_pruned": 0,
        "systems_solved": 0,
        "no_integer_solution": 0,
        "candidates_verified": 0,
        "instances": 0,
    }
    instances: set[DependenceInstance] = set()
    reg = obs.get_registry()

    def test_pair(w_stmt, write, r_stmt, read) -> None:
        if use_screens:
            if not gcd_test(write, read, order, binding):
                stats["gcd_pruned"] += 1
                return
            if not banerjee_test(
                write, read, order, program.index_set, binding
            ):
                stats["banerjee_pruned"] += 1
                return
        # Subscript system over z = (j̄', j̄).
        a_rows: list[list[int]] = []
        rhs: list[int] = []
        for w_e, r_e in zip(write.subscripts, read.subscripts):
            a_rows.append(
                w_e.coeff_vector(order)
                + [-c for c in r_e.coeff_vector(order)]
            )
            rhs.append(
                r_e.offset.evaluate(binding) - w_e.offset.evaluate(binding)
            )
        stats["systems_solved"] += 1
        sol = solve_integer_system(a_rows, rhs)
        if sol is None:
            stats["no_integer_solution"] += 1
            return
        particular, basis = sol
        for z in bounded_lattice_points(particular, basis, box):
            stats["candidates_verified"] += 1
            src = tuple(z[:n])
            snk = tuple(z[n:])
            if src == snk:
                continue
            if not w_stmt.active_at(src, binding):
                continue
            if not r_stmt.active_at(snk, binding):
                continue
            vec = tuple(s - t for s, t in zip(snk, src))
            kind = "flow" if _lex_positive(vec) else "reversed"
            instances.add(
                DependenceInstance(snk, vec, write.array, kind)
            )

    with obs.span("depanalysis.analyze_exact", statements=len(program.statements)):
        for w_stmt in program.statements:
            write = w_stmt.write
            for r_stmt in program.statements:
                for read in r_stmt.reads:
                    if read.array != write.array:
                        continue
                    stats["pairs_tested"] += 1
                    if reg is None:
                        test_pair(w_stmt, write, r_stmt, read)
                    else:
                        t0 = time.perf_counter()
                        test_pair(w_stmt, write, r_stmt, read)
                        reg.observe(
                            "depanalysis.pair_seconds",
                            time.perf_counter() - t0,
                        )
    stats["instances"] = len(instances)
    if reg is not None:
        reg.count_many(stats, prefix="depanalysis.")
    return AnalysisResult(sorted(instances, key=lambda i: i.key()), stats)
