"""Vectorized dependence-analysis engine with pluggable backends.

The scalar analyzers (:mod:`repro.depanalysis.exact`,
:func:`repro.depanalysis.analyzer.analyze_enumerate`) are the reference
semantics; this module re-implements both as batched numpy passes that
produce **bit-identical** :class:`AnalysisResult`\\ s (same instances, same
``stats`` dict) while touching each reference pair / iteration point with
matrix arithmetic instead of Python loops:

* **Batched screening** -- every subscript row of every write/read pair is
  stacked into one int64 matrix; the GCD divisibility test and the
  Banerjee bounds run as single vectorized passes, and only surviving
  pairs reach the per-pair Diophantine solver.  The scalar short-circuit
  order is preserved exactly (``gcd_pruned`` counts GCD failures,
  ``banerjee_pruned`` counts Banerjee failures *among GCD passers*).
* **Memoized exact solves** -- surviving pairs whose subscript systems
  have the same Hermite normal form of ``[A | b]`` share one solve and
  candidate enumeration (equal row lattices have identical solution
  sets); counters are charged per pair, so stats match the scalar run.
* **Block candidate enumeration** -- instead of branch-and-prune
  recursion, the lattice-parameter box from
  :func:`repro.depanalysis.diophantine.lattice_intervals` is materialized
  as a dense grid and mapped through the basis in one matmul; in-box
  filtering, guard checks, and lex-sign classification are all masked
  array ops.
* **Batched enumeration** -- the hash-join oracle walks the index set as
  one lex-ordered lattice block (the mixed-radix trick from
  :mod:`repro.machine.wavefront`): per-statement guard masks, write
  coordinates via one matmul per access, writer tables as sorted
  mixed-radix codes, and reads joined by ``searchsorted``.

Every batched path falls back to the scalar implementation when numpy is
unavailable or when int64 could overflow (coefficients/bounds/radix
products are range-checked with exact Python arithmetic first).

:func:`run_analysis` is the engine entry point: it resolves the backend
(``REPRO_ANALYSIS_BACKEND`` env, ``auto`` = batched when numpy is
present) and consults the persistent artifact cache
(:mod:`repro.cache`) keyed by the canonicalized program instance, so
repeated pipeline/verify/experiment runs skip re-analysis entirely.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass

from repro import obs
from repro.cache import (
    Uncacheable,
    analysis_key,
    analysis_result_from_payload,
    analysis_result_to_payload,
    resolve_cache,
    system_key,
)
from repro.depanalysis.banerjee import banerjee_test
from repro.depanalysis.diophantine import (
    bounded_lattice_points,
    lattice_intervals,
)
from repro.depanalysis.exact import analyze_exact
from repro.depanalysis.gcdtest import gcd_test
from repro.depanalysis.pairs import AnalysisResult, DependenceInstance
from repro.ir.program import LoopNest
from repro.structures.conditions import And, Condition, Eq, Ne, Not, Or, _False, _True
from repro.structures.params import ParamBinding
from repro.util.linalg import solve_integer_system

try:
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised via backend fallback tests
    np = None
    HAVE_NUMPY = False

__all__ = [
    "AnalysisConfig",
    "BACKENDS",
    "HAVE_NUMPY",
    "analyze_enumerate_batched",
    "analyze_exact_batched",
    "box_lattice",
    "condition_mask",
    "default_backend",
    "resolve_backend",
    "run_analysis",
    "run_analysis_batch",
]

BACKENDS = ("scalar", "batched")

#: int64 safety margin: all intermediate products must stay below this.
_INT64_SAFE = 1 << 62
#: densest candidate grid the exact verifier will materialize.
_GRID_CAP = 1 << 20
#: largest iteration-space block the batched enumerator will materialize.
_POINTS_CAP = 1 << 23


@dataclass(frozen=True)
class AnalysisConfig:
    """How :func:`run_analysis` should execute.

    ``backend=None`` defers to ``$REPRO_ANALYSIS_BACKEND`` (default
    ``auto`` = batched when numpy is importable).  ``cache=None`` enables
    the persistent artifact cache iff ``cache_dir`` is given or
    ``$REPRO_CACHE_DIR`` is set; ``True``/``False`` force it.
    """

    backend: str | None = None
    cache: bool | None = None
    cache_dir: str | os.PathLike | None = None


def default_backend() -> str:
    """``"batched"`` when numpy is available, else ``"scalar"``."""
    return "batched" if HAVE_NUMPY else "scalar"


def resolve_backend(name: str | None = None) -> str:
    """Resolve a backend request to a concrete engine name.

    ``None`` consults ``$REPRO_ANALYSIS_BACKEND``; ``"auto"`` (the
    default) picks :func:`default_backend`.  Requesting ``"batched"``
    without numpy degrades to ``"scalar"`` (results are identical by
    construction, so this is a pure performance note).
    """
    if name is None:
        name = os.environ.get("REPRO_ANALYSIS_BACKEND") or "auto"
    if name == "auto":
        return default_backend()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown analysis backend {name!r}; choose from "
            f"{('auto',) + BACKENDS}"
        )
    if name == "batched" and not HAVE_NUMPY:
        return "scalar"
    return name


# ---------------------------------------------------------------------------
# Shared vector helpers
# ---------------------------------------------------------------------------

def box_lattice(bounds):
    """All points of an integer box as an ``(N, n)`` int64 array, in the
    lexicographic order of ``itertools.product`` (``meshgrid`` with
    ``indexing="ij"``)."""
    axes = [np.arange(lo, hi + 1, dtype=np.int64) for lo, hi in bounds]
    grids = np.meshgrid(*axes, indexing="ij")
    return np.stack([g.reshape(-1) for g in grids], axis=1)


def condition_mask(cond: Condition, pts, binding: ParamBinding):
    """Evaluate a condition over an ``(N, n)`` point block as a bool mask.

    The intensional algebra (``Eq``/``Ne``/``And``/``Or``/``Not`` and the
    constants) vectorizes directly; any other condition type (including
    extensional :class:`PointSet`\\ s) falls back to per-point ``holds``.
    """
    n_pts = len(pts)
    if isinstance(cond, _True):
        return np.ones(n_pts, dtype=bool)
    if isinstance(cond, _False):
        return np.zeros(n_pts, dtype=bool)
    if isinstance(cond, Eq):
        return pts[:, cond.axis] == cond.value.evaluate(binding)
    if isinstance(cond, Ne):
        return pts[:, cond.axis] != cond.value.evaluate(binding)
    if isinstance(cond, And):
        mask = np.ones(n_pts, dtype=bool)
        for term in cond.terms:
            mask &= condition_mask(term, pts, binding)
        return mask
    if isinstance(cond, Or):
        mask = np.zeros(n_pts, dtype=bool)
        for term in cond.terms:
            mask |= condition_mask(term, pts, binding)
        return mask
    if isinstance(cond, Not):
        return ~condition_mask(cond.term, pts, binding)
    return np.fromiter(
        (
            cond.holds(tuple(int(x) for x in row), binding)
            for row in pts
        ),
        dtype=bool,
        count=n_pts,
    )


def _lex_positive_mask(vecs):
    """Vectorized sign of the first nonzero component (True = lex-positive)."""
    pos = np.zeros(len(vecs), dtype=bool)
    decided = np.zeros(len(vecs), dtype=bool)
    for col in range(vecs.shape[1]):
        c = vecs[:, col]
        pos |= ~decided & (c > 0)
        decided |= c != 0
    return pos


class _Int64Overflow(Exception):
    """Internal signal: the batched path cannot stay within int64."""


def _check_magnitude(*values) -> None:
    for v in values:
        if abs(int(v)) >= _INT64_SAFE:
            raise _Int64Overflow


# ---------------------------------------------------------------------------
# Batched exact analysis
# ---------------------------------------------------------------------------

def _collect_pairs(program: LoopNest):
    """Reference pairs in the scalar analyzer's loop order."""
    pairs = []
    for w_stmt in program.statements:
        write = w_stmt.write
        for r_stmt in program.statements:
            for read in r_stmt.reads:
                if read.array != write.array:
                    continue
                pairs.append((w_stmt, write, r_stmt, read))
    return pairs


def _batched_screens(pairs, order, binding, box, stats):
    """Vectorized GCD + Banerjee screening over all pairs at once.

    Returns the list of surviving pair indices, or ``None`` when int64
    could overflow (the caller then screens pair-by-pair).  Raises the
    same ``ValueError`` as :func:`gcd_test` on a rank-mismatched pair,
    at the first such pair in scalar loop order.
    """
    n_pairs = len(pairs)
    coeff_rows: list[list[int]] = []
    rhs_list: list[int] = []
    row_pair: list[int] = []
    for pi, (_w_stmt, write, _r_stmt, read) in enumerate(pairs):
        if write.rank != read.rank:
            raise ValueError(
                f"rank mismatch on array {write.array}: "
                f"{write.rank} vs {read.rank}"
            )
        for w_e, r_e in zip(write.subscripts, read.subscripts):
            coeff_rows.append(
                w_e.coeff_vector(order) + [-c for c in r_e.coeff_vector(order)]
            )
            rhs_list.append(
                r_e.offset.evaluate(binding) - w_e.offset.evaluate(binding)
            )
            row_pair.append(pi)
    if not coeff_rows:
        return list(range(n_pairs))

    max_c = max(max(abs(c) for c in row) for row in coeff_rows)
    max_b = max(max(abs(lo), abs(hi)) for lo, hi in box) if box else 0
    max_rhs = max(abs(r) for r in rhs_list)
    try:
        _check_magnitude(len(box) * max_c * max_b + max_rhs)
    except _Int64Overflow:
        return None

    C = np.asarray(coeff_rows, dtype=np.int64)
    rhs = np.asarray(rhs_list, dtype=np.int64)
    pair_idx = np.asarray(row_pair, dtype=np.intp)

    # GCD: each row needs gcd(|coeffs|) | rhs (zero gcd: rhs must be 0).
    g = np.gcd.reduce(np.abs(C), axis=1)
    zero_g = g == 0
    row_fail_gcd = np.where(zero_g, rhs != 0, rhs % np.where(zero_g, 1, g) != 0)

    # Banerjee: rhs must lie within the affine range of the row over the box.
    b_lo = np.asarray([lo for lo, _ in box], dtype=np.int64)
    b_hi = np.asarray([hi for _, hi in box], dtype=np.int64)
    pos = np.where(C > 0, C, 0)
    neg = np.where(C < 0, C, 0)
    lo = pos @ b_lo + neg @ b_hi
    hi = pos @ b_hi + neg @ b_lo
    # banerjee_test's const is w_off - r_off = -rhs.
    row_ok_ban = (lo - rhs <= 0) & (0 <= hi - rhs)

    gcd_ok = np.ones(n_pairs, dtype=bool)
    np.logical_and.at(gcd_ok, pair_idx, ~row_fail_gcd)
    ban_ok = np.ones(n_pairs, dtype=bool)
    np.logical_and.at(ban_ok, pair_idx, row_ok_ban)

    stats["gcd_pruned"] += int(np.count_nonzero(~gcd_ok))
    stats["banerjee_pruned"] += int(np.count_nonzero(gcd_ok & ~ban_ok))
    return [int(i) for i in np.nonzero(gcd_ok & ban_ok)[0]]


def _candidate_block(particular, basis, box):
    """All lattice points ``particular + B t̄`` inside the box, as tuples.

    Equivalent to ``list(bounded_lattice_points(...))`` up to ordering
    (the basis is linearly independent, so ``t̄ -> x`` is injective and
    both enumerate exactly the in-box solutions); materializes the
    ``t̄`` interval box as a dense grid and maps it through one matmul.
    Falls back to the recursive enumerator for oversized or overflowing
    grids.
    """
    n = len(particular)
    if len(box) != n:
        # Mirror bounded_lattice_points: a degenerate system (e.g. a rank-0
        # access pair) must fail identically on both backends.
        raise ValueError("bounds length must match solution dimension")
    if not basis:
        ok = all(lo <= x <= hi for x, (lo, hi) in zip(particular, box))
        return [tuple(int(x) for x in particular)] if ok else []
    intervals = lattice_intervals(particular, basis, box)
    if intervals is None:
        return []
    total = 1
    for lo, hi in intervals:
        total *= hi - lo + 1
    if total <= 0:
        return []
    max_t = max(max(abs(lo), abs(hi)) for lo, hi in intervals)
    max_basis = max(max(abs(int(x)) for x in vec) for vec in basis)
    max_part = max(abs(int(x)) for x in particular)
    try:
        _check_magnitude(len(basis) * max_t * max_basis + max_part)
    except _Int64Overflow:
        return [tuple(x) for x in bounded_lattice_points(particular, basis, box)]
    if total > _GRID_CAP:
        return [tuple(x) for x in bounded_lattice_points(particular, basis, box)]

    axes = [np.arange(lo, hi + 1, dtype=np.int64) for lo, hi in intervals]
    grids = np.meshgrid(*axes, indexing="ij")
    T = np.stack([g.reshape(-1) for g in grids], axis=1)
    B = np.asarray([[int(vec[i]) for i in range(n)] for vec in basis],
                   dtype=np.int64)
    X = np.asarray([int(x) for x in particular], dtype=np.int64) + T @ B
    b_lo = np.asarray([lo for lo, _ in box], dtype=np.int64)
    b_hi = np.asarray([hi for _, hi in box], dtype=np.int64)
    inside = np.all((X >= b_lo) & (X <= b_hi), axis=1)
    return [tuple(int(v) for v in row) for row in X[inside]]


def analyze_exact_batched(
    program: LoopNest,
    binding: ParamBinding,
    use_screens: bool = True,
    solve_memo: dict | None = None,
) -> AnalysisResult:
    """Batched re-implementation of :func:`analyze_exact`.

    Produces a bit-identical :class:`AnalysisResult` (instances and
    ``stats``); see the module docstring for the batching strategy.

    ``solve_memo`` lets a caller share the HNF-keyed Diophantine memo
    across several analyses (:func:`run_analysis_batch`): entries are
    keyed on ``(system HNF, candidate box)``, so reuse is exact no
    matter which program in the batch populated them.  Memo hits change
    only wall-clock (and the ``depanalysis.system_memo_hits`` obs
    counter), never the result or its ``stats`` dict.
    """
    if not HAVE_NUMPY:
        return analyze_exact(program, binding, use_screens=use_screens)
    order = program.index_names
    n = program.dim
    bounds = program.index_set.bounds(binding)
    box = bounds + bounds  # unknowns: (source j̄', sink j̄)
    if box and max(max(abs(lo), abs(hi)) for lo, hi in box) >= _INT64_SAFE:
        return analyze_exact(program, binding, use_screens=use_screens)

    stats = {
        "pairs_tested": 0,
        "gcd_pruned": 0,
        "banerjee_pruned": 0,
        "systems_solved": 0,
        "no_integer_solution": 0,
        "candidates_verified": 0,
        "instances": 0,
    }
    instances: set[DependenceInstance] = set()
    reg = obs.get_registry()

    with obs.span(
        "depanalysis.analyze_exact",
        statements=len(program.statements),
        backend="batched",
    ):
        pairs = _collect_pairs(program)
        stats["pairs_tested"] = len(pairs)
        obs.count("depanalysis.pairs_batch_screened", len(pairs))

        if use_screens:
            survivor_idx = _batched_screens(pairs, order, binding, box, stats)
            if survivor_idx is None:
                # int64-unsafe widths: screen pair-by-pair (same counters).
                survivor_idx = []
                for pi, (_w, write, _r, read) in enumerate(pairs):
                    if not gcd_test(write, read, order, binding):
                        stats["gcd_pruned"] += 1
                        continue
                    if not banerjee_test(
                        write, read, order, program.index_set, binding
                    ):
                        stats["banerjee_pruned"] += 1
                        continue
                    survivor_idx.append(pi)
        else:
            survivor_idx = list(range(len(pairs)))

        memo = solve_memo if solve_memo is not None else {}
        box_key = tuple(box)
        progress = obs.progress(
            "depanalysis.candidate_blocks", total=len(survivor_idx)
        )
        for pi in survivor_idx:
            progress.advance()
            w_stmt, write, r_stmt, read = pairs[pi]
            a_rows: list[list[int]] = []
            rhs: list[int] = []
            for w_e, r_e in zip(write.subscripts, read.subscripts):
                a_rows.append(
                    w_e.coeff_vector(order)
                    + [-c for c in r_e.coeff_vector(order)]
                )
                rhs.append(
                    r_e.offset.evaluate(binding) - w_e.offset.evaluate(binding)
                )
            stats["systems_solved"] += 1
            memo_key = (system_key(a_rows, rhs), box_key)
            if memo_key in memo:
                candidates = memo[memo_key]
                obs.count("depanalysis.system_memo_hits")
            else:
                sol = solve_integer_system(a_rows, rhs)
                candidates = (
                    None if sol is None else _candidate_block(sol[0], sol[1], box)
                )
                memo[memo_key] = candidates
            if candidates is None:
                stats["no_integer_solution"] += 1
                continue
            stats["candidates_verified"] += len(candidates)
            if not candidates:
                continue

            Z = np.asarray(candidates, dtype=np.int64)
            src = Z[:, :n]
            snk = Z[:, n:]
            keep = np.any(src != snk, axis=1)
            keep &= condition_mask(w_stmt.guard, src, binding)
            keep &= condition_mask(r_stmt.guard, snk, binding)
            if not keep.any():
                continue
            src_k = src[keep]
            snk_k = snk[keep]
            vecs = snk_k - src_k
            lex_pos = _lex_positive_mask(vecs)
            for i in range(len(vecs)):
                instances.add(
                    DependenceInstance(
                        snk_k[i],
                        vecs[i],
                        write.array,
                        "flow" if lex_pos[i] else "reversed",
                    )
                )
        progress.close()
    stats["instances"] = len(instances)
    if reg is not None:
        reg.count_many(stats, prefix="depanalysis.")
    return AnalysisResult(sorted(instances, key=lambda i: i.key()), stats)


# ---------------------------------------------------------------------------
# Batched enumeration (hash-join oracle)
# ---------------------------------------------------------------------------

def _access_coords(access, order, binding, pts):
    """Subscript coordinates of an access over a point block: ``(M, rank)``."""
    rank = access.rank
    if rank == 0:
        return np.zeros((len(pts), 0), dtype=np.int64)
    coeffs = [e.coeff_vector(order) for e in access.subscripts]
    offsets = [e.offset.evaluate(binding) for e in access.subscripts]
    if pts.size:
        max_b = int(np.abs(pts).max())
    else:
        max_b = 0
    max_c = max((abs(c) for row in coeffs for c in row), default=0)
    _check_magnitude(
        len(order) * max_c * max_b + max((abs(o) for o in offsets), default=0)
    )
    C = np.asarray(coeffs, dtype=np.int64)
    off = np.asarray(offsets, dtype=np.int64)
    return pts @ C.T + off


def _encode_codes(shifted, radices):
    """Mixed-radix encode non-negative coordinate columns into one int64."""
    codes = np.zeros(len(shifted), dtype=np.int64)
    for j, radix in enumerate(radices):
        codes = codes * int(radix) + shifted[:, j]
    return codes


def analyze_enumerate_batched(
    program: LoopNest, binding: ParamBinding
) -> AnalysisResult:
    """Batched re-implementation of
    :func:`repro.depanalysis.analyzer.analyze_enumerate` (bit-identical
    results and stats).

    The iteration space becomes one lex-ordered lattice block; writer
    elements are mixed-radix-encoded into sorted int64 tables and reads
    join by ``searchsorted``.  Falls back to the scalar oracle when numpy
    is missing, the block would be too large, or int64 could overflow.
    """
    from repro.depanalysis.analyzer import analyze_enumerate

    if not HAVE_NUMPY:
        return analyze_enumerate(program, binding)
    n = program.dim
    bounds = program.index_set.bounds(binding)
    size = program.index_set.size(binding)
    if (
        n == 0
        or size > _POINTS_CAP
        or (bounds and max(max(abs(lo), abs(hi)) for lo, hi in bounds)
            >= _INT64_SAFE)
    ):
        return analyze_enumerate(program, binding)

    order = program.index_names
    stats = {"points_visited": 0, "reads_joined": 0, "instances": 0}
    instances: set[DependenceInstance] = set()

    try:
        with obs.span("depanalysis.analyze_enumerate", backend="batched"):
            pts = box_lattice(bounds)
            stats["points_visited"] = len(pts)
            obs.count("depanalysis.points_batch_visited", len(pts))

            active = [
                condition_mask(stmt.guard, pts, binding)
                for stmt in program.statements
            ]

            # Pass 1: writer tables per (array, rank) group.
            groups: dict[tuple[str, int], list] = {}
            for si, stmt in enumerate(program.statements):
                mask = active[si]
                if not mask.any():
                    continue
                sub = pts[mask]
                coords = _access_coords(stmt.write, order, binding, sub)
                groups.setdefault(
                    (stmt.write.array, stmt.write.rank), []
                ).append((sub, coords))

            tables: dict[tuple[str, int], tuple] = {}
            for key, entries in groups.items():
                all_pts = np.concatenate([sub for sub, _ in entries], axis=0)
                all_coords = np.concatenate([c for _, c in entries], axis=0)
                rank = key[1]
                if rank == 0:
                    mins = np.zeros(0, dtype=np.int64)
                    radices: list[int] = []
                    codes = np.zeros(len(all_coords), dtype=np.int64)
                else:
                    mins = all_coords.min(axis=0)
                    maxs = all_coords.max(axis=0)
                    radices = [int(hi - lo + 1) for lo, hi in zip(mins, maxs)]
                    product = 1
                    for r in radices:
                        product *= r
                    _check_magnitude(product)
                    codes = _encode_codes(all_coords - mins, radices)
                sort_idx = np.argsort(codes, kind="stable")
                s_codes = codes[sort_idx]
                s_pts = all_pts[sort_idx]
                if len(s_codes) > 1:
                    dup = s_codes[1:] == s_codes[:-1]
                    conflict = dup & np.any(s_pts[1:] != s_pts[:-1], axis=1)
                    if conflict.any():
                        i = int(np.nonzero(conflict)[0][0])
                        coords_i = all_coords[sort_idx][i + 1]
                        elem = (key[0], tuple(int(x) for x in coords_i))
                        prev = tuple(int(x) for x in s_pts[i])
                        point = tuple(int(x) for x in s_pts[i + 1])
                        raise ValueError(
                            f"program is not single-assignment: {elem} "
                            f"written at both {prev} and {point}"
                        )
                uniq_codes, first_idx = np.unique(s_codes, return_index=True)
                tables[key] = (mins, radices, uniq_codes, s_pts[first_idx])

            # Pass 2: join every guarded read against the writer tables.
            for si, stmt in enumerate(program.statements):
                mask = active[si]
                n_active = int(np.count_nonzero(mask))
                sub = pts[mask]
                for acc in stmt.reads:
                    stats["reads_joined"] += n_active
                    if n_active == 0:
                        continue
                    table = tables.get((acc.array, acc.rank))
                    if table is None:
                        continue
                    mins, radices, uniq_codes, rep_pts = table
                    coords = _access_coords(acc, order, binding, sub)
                    if acc.rank == 0:
                        in_range = np.ones(len(sub), dtype=bool)
                        codes = np.zeros(len(sub), dtype=np.int64)
                    else:
                        shifted = coords - mins
                        in_range = np.all(
                            (shifted >= 0)
                            & (shifted < np.asarray(radices, dtype=np.int64)),
                            axis=1,
                        )
                        codes = _encode_codes(
                            np.where(in_range[:, None], shifted, 0), radices
                        )
                    pos = np.searchsorted(uniq_codes, codes)
                    pos = np.minimum(pos, len(uniq_codes) - 1)
                    found = in_range & (uniq_codes[pos] == codes)
                    src = rep_pts[pos]
                    found &= ~np.all(src == sub, axis=1)
                    if not found.any():
                        continue
                    snk_k = sub[found]
                    vecs = snk_k - src[found]
                    lex_pos = _lex_positive_mask(vecs)
                    for i in range(len(vecs)):
                        instances.add(
                            DependenceInstance(
                                snk_k[i],
                                vecs[i],
                                acc.array,
                                "flow" if lex_pos[i] else "reversed",
                            )
                        )
    except _Int64Overflow:
        return analyze_enumerate(program, binding)
    stats["instances"] = len(instances)
    obs.count_many(stats, prefix="depanalysis.")
    return AnalysisResult(sorted(instances, key=lambda i: i.key()), stats)


# ---------------------------------------------------------------------------
# Engine entry point
# ---------------------------------------------------------------------------

def run_analysis(
    program: LoopNest,
    binding: ParamBinding,
    method: str = "exact",
    use_screens: bool = True,
    config: AnalysisConfig | None = None,
) -> AnalysisResult:
    """Analyze through the configured backend and the persistent cache.

    The scalar and batched backends return bit-identical results, so cache
    entries are shared across backends (the key covers the canonicalized
    program instance, method, and screen setting -- not the backend).
    Delegates to :func:`run_analysis_batch` with a batch of one.
    """
    return run_analysis_batch(
        [(program, binding, method, use_screens)], config=config
    )[0]


def run_analysis_batch(
    requests,
    config: AnalysisConfig | None = None,
    timings: list | None = None,
) -> list[AnalysisResult]:
    """Run several analyses as **one** engine call.

    ``requests`` is a sequence of ``(program, binding, method,
    use_screens)`` tuples; the return list holds each request's
    :class:`AnalysisResult` in request order, bit-identical to what
    per-request :func:`run_analysis` calls would produce.

    Batching buys three things over a loop of single calls:

    * one cache store (one lock acquisition pattern, one stats flush)
      serves the whole batch;
    * cache hits are peeled off first, and the ``analysis.engine_calls``
      obs counter increments **once** for the whole batch iff anything
      is actually computed (``analysis.engine_jobs`` counts the computed
      requests) -- this is the counter the ``repro.serve`` coalescing
      guarantee is stated in;
    * under the batched backend, every exact analysis in the batch
      shares a single ``(system HNF, candidate box)``-keyed Diophantine
      memo, so structurally recurring subscript systems across requests
      are solved once.

    When ``timings`` (an empty list) is passed, one wall-clock figure
    per request -- its cache lookup plus, for misses, its share of the
    batch's compute -- is appended in request order.
    """
    import time

    reqs = [
        (program, binding, method, use_screens)
        for program, binding, method, use_screens in requests
    ]
    for _prog, _bind, method, _scr in reqs:
        if method not in ("exact", "enumerate"):
            raise ValueError(f"unknown analysis method {method!r}")
    if config is None:
        config = AnalysisConfig()
    backend = resolve_backend(config.backend)
    store = resolve_cache(config.cache, config.cache_dir)

    results: list[AnalysisResult | None] = [None] * len(reqs)
    spent = [0.0] * len(reqs)
    pending: list[tuple[int, str | None]] = []
    for idx, (program, binding, method, use_screens) in enumerate(reqs):
        t0 = time.perf_counter()
        key = None
        if store is not None:
            try:
                key = analysis_key(program, binding, method, use_screens)
            except Uncacheable:
                key = None
            if key is not None:
                payload = store.get("analysis", key)
                if payload is not None:
                    try:
                        results[idx] = analysis_result_from_payload(payload)
                        spent[idx] = time.perf_counter() - t0
                        continue
                    except (KeyError, TypeError, ValueError):
                        pass  # malformed entry: recompute (and overwrite)
        spent[idx] = time.perf_counter() - t0
        pending.append((idx, key))

    if pending:
        from repro.depanalysis.analyzer import analyze_enumerate

        obs.count("analysis.engine_calls")
        obs.count("analysis.engine_jobs", len(pending))
        shared_memo: dict = {}
        batch_span = (
            obs.span(
                "depanalysis.engine_batch", jobs=len(pending), backend=backend
            )
            if len(reqs) > 1
            else contextlib.nullcontext()
        )
        with batch_span:
            for idx, key in pending:
                t0 = time.perf_counter()
                program, binding, method, use_screens = reqs[idx]
                if method == "exact":
                    if backend == "batched":
                        result = analyze_exact_batched(
                            program, binding, use_screens=use_screens,
                            solve_memo=shared_memo,
                        )
                    else:
                        result = analyze_exact(
                            program, binding, use_screens=use_screens
                        )
                elif backend == "batched":
                    result = analyze_enumerate_batched(program, binding)
                else:
                    result = analyze_enumerate(program, binding)
                if store is not None and key is not None:
                    store.put(
                        "analysis", key, analysis_result_to_payload(result)
                    )
                results[idx] = result
                spent[idx] += time.perf_counter() - t0

    if store is not None:
        store.flush_stats()
    if timings is not None:
        timings.extend(spent)
    return results
