"""Top-level dependence-analysis entry point.

:func:`analyze` dispatches between two independent implementations:

* ``method="exact"`` -- the classical Diophantine-plus-verification analyzer
  (:mod:`repro.depanalysis.exact`); this is the baseline whose cost the
  paper's compositional method avoids.
* ``method="enumerate"`` -- a hash-join oracle that walks the iteration space
  once, records every element written, and joins reads against it.  For the
  single-assignment programs of the paper this is exact, fast, and serves as
  an independent cross-check of the exact analyzer (two implementations must
  agree instance-for-instance).
"""

from __future__ import annotations

from repro import obs
from repro.depanalysis.pairs import AnalysisResult, DependenceInstance
from repro.ir.program import LoopNest
from repro.structures.params import ParamBinding

__all__ = ["analyze", "analyze_enumerate"]


def analyze_enumerate(program: LoopNest, binding: ParamBinding) -> AnalysisResult:
    """Hash-join dependence analysis (exact for single-assignment programs).

    Pass 1 records, for every array element, the iteration that writes it
    (verifying single assignment on the way).  Pass 2 joins every guarded
    read against that table; each hit with a distinct writer iteration is a
    flow-dependence instance.
    """
    writers: dict[tuple[str, tuple[int, ...]], tuple[int, ...]] = {}
    stats = {"points_visited": 0, "reads_joined": 0, "instances": 0}
    instances: set[DependenceInstance] = set()
    with obs.span("depanalysis.analyze_enumerate"):
        for point in program.index_set.points(binding):
            stats["points_visited"] += 1
            env = program.point_env(point)
            for stmt in program.statements:
                if not stmt.active_at(point, binding):
                    continue
                elem = stmt.write.element(env, binding)
                prev = writers.get(elem)
                if prev is not None and prev != point:
                    raise ValueError(
                        f"program is not single-assignment: {elem} written at "
                        f"both {prev} and {point}"
                    )
                writers[elem] = point

        for point in program.index_set.points(binding):
            env = program.point_env(point)
            for stmt in program.statements:
                if not stmt.active_at(point, binding):
                    continue
                for acc in stmt.reads:
                    stats["reads_joined"] += 1
                    elem = acc.element(env, binding)
                    src = writers.get(elem)
                    if src is None or src == point:
                        continue
                    vec = tuple(s - t for s, t in zip(point, src))
                    kind = "flow"
                    for x in vec:
                        if x > 0:
                            break
                        if x < 0:
                            kind = "reversed"
                            break
                    instances.add(DependenceInstance(point, vec, acc.array, kind))
    stats["instances"] = len(instances)
    obs.count_many(stats, prefix="depanalysis.")
    return AnalysisResult(sorted(instances, key=lambda i: i.key()), stats)


def analyze(
    program: LoopNest,
    binding: ParamBinding,
    method: str = "exact",
    use_screens: bool = True,
    config: "AnalysisConfig | None" = None,
) -> AnalysisResult:
    """Analyze a program instance for cross-iteration flow dependences.

    Parameters
    ----------
    program:
        The loop nest.
    binding:
        Concrete values for the symbolic parameters in bounds/guards.
    method:
        ``"exact"`` (Diophantine + in-set verification) or ``"enumerate"``
        (hash-join oracle).
    use_screens:
        For ``method="exact"``: whether to apply GCD/Banerjee screening.
    config:
        Engine configuration (:class:`repro.depanalysis.engine.AnalysisConfig`):
        backend selection (scalar vs batched; default ``auto``) and the
        persistent artifact cache policy.  ``None`` uses the environment
        defaults (``REPRO_ANALYSIS_BACKEND`` / ``REPRO_CACHE_DIR``); all
        backends produce bit-identical results.
    """
    from repro.depanalysis.engine import run_analysis

    return run_analysis(
        program, binding, method=method, use_screens=use_screens, config=config
    )
