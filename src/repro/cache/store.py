"""The on-disk artifact store.

Content-addressed JSON files under a versioned root::

    <root>/v1/<kind>/<key[:2]>/<key>.json

``<root>`` defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``; the
``v<SCHEMA_VERSION>`` level invalidates everything at once when payload
shapes change (bump :data:`SCHEMA_VERSION`, old dirs become dead weight
that ``repro cache clear`` removes).  Writes are atomic (temp file +
``os.replace``), reads touch the entry's mtime so the byte-cap eviction
in :meth:`ArtifactCache.put` is LRU, and any unreadable/corrupt entry is
treated as a miss and deleted.  The store is best-effort throughout: I/O
errors disable the affected operation, never the caller.

Library code resolves whether to cache via :func:`resolve_cache`: an
explicit ``True``/``False`` wins, ``None`` means "enabled iff
``REPRO_CACHE_DIR`` is set", so plain library calls never write to
``~/.cache`` unless the user opted in (the ``repro analyze`` CLI flips
the default to on).
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile

from repro import obs

__all__ = [
    "SCHEMA_VERSION",
    "ENV_DIR",
    "ArtifactCache",
    "default_cache_root",
    "resolve_cache",
]

SCHEMA_VERSION = 1
ENV_DIR = "REPRO_CACHE_DIR"
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def default_cache_root() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    env = os.environ.get(ENV_DIR)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


class ArtifactCache:
    """Content-addressed persistent cache with an LRU byte cap."""

    __slots__ = ("base", "root", "max_bytes", "hits", "misses", "evictions")

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ):
        self.base = pathlib.Path(root) if root is not None else default_cache_root()
        self.root = self.base / f"v{SCHEMA_VERSION}"
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _path(self, kind: str, key: str) -> pathlib.Path:
        return self.root / kind / key[:2] / f"{key}.json"

    # -- core operations ------------------------------------------------------
    def get(self, kind: str, key: str):
        """The stored payload, or ``None`` on miss (corrupt entries vanish)."""
        path = self._path(kind, key)
        try:
            raw = path.read_text()
        except OSError:
            self.misses += 1
            obs.count("cache.misses")
            return None
        try:
            payload = json.loads(raw)
        except ValueError:
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            obs.count("cache.misses")
            return None
        try:
            os.utime(path)  # recency for LRU eviction
        except OSError:
            pass
        self.hits += 1
        obs.count("cache.hits")
        return payload

    def put(self, kind: str, key: str, payload) -> None:
        """Atomically store ``payload`` (JSON), then enforce the byte cap."""
        path = self._path(kind, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                # No sort_keys: dict insertion order is part of the exact
                # round-trip contract (e.g. AnalysisResult.stats ordering).
                with os.fdopen(fd, "w") as fh:
                    json.dump(payload, fh)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, TypeError, ValueError):
            return  # best-effort: an unwritable cache must not fail the caller
        obs.count("cache.writes")
        try:
            obs.count("cache.put_bytes", path.stat().st_size)
        except OSError:
            pass
        self._evict()

    # -- maintenance ----------------------------------------------------------
    def _entries(self) -> list[tuple[pathlib.Path, os.stat_result]]:
        out = []
        try:
            for path in self.root.rglob("*.json"):
                try:
                    out.append((path, path.stat()))
                except OSError:
                    continue
        except OSError:
            pass
        return out

    def _evict(self) -> None:
        entries = self._entries()
        total = sum(st.st_size for _, st in entries)
        if total > self.max_bytes:
            entries.sort(key=lambda e: e[1].st_mtime)  # oldest access first
            for path, st in entries:
                if total <= self.max_bytes:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= st.st_size
                self.evictions += 1
                obs.count("cache.evictions")
        obs.gauge("cache.bytes_on_disk", total)

    def stats(self) -> dict:
        """Snapshot of the on-disk store (entry/byte counts per kind)."""
        entries = self._entries()
        kinds: dict[str, int] = {}
        for path, _st in entries:
            try:
                kind = path.relative_to(self.root).parts[0]
            except (ValueError, IndexError):
                kind = "?"
            kinds[kind] = kinds.get(kind, 0) + 1
        return {
            "root": str(self.base),
            "schema_version": SCHEMA_VERSION,
            "entries": len(entries),
            "bytes": sum(st.st_size for _, st in entries),
            "max_bytes": self.max_bytes,
            "kinds": dict(sorted(kinds.items())),
            "session": {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            },
        }

    def clear(self) -> int:
        """Remove every versioned cache dir under the base; returns entries
        removed.  Only ``v*`` subdirectories are touched, so pointing
        ``REPRO_CACHE_DIR`` at a shared directory cannot lose user data."""
        import shutil

        removed = 0
        try:
            version_dirs = [
                d for d in self.base.glob("v*") if d.is_dir()
            ]
        except OSError:
            return 0
        for vdir in version_dirs:
            removed += sum(1 for _ in vdir.rglob("*.json"))
            shutil.rmtree(vdir, ignore_errors=True)
        return removed

    def __repr__(self) -> str:
        return (
            f"ArtifactCache({str(self.base)!r}, {self.hits} hits, "
            f"{self.misses} misses)"
        )


def resolve_cache(
    enabled: bool | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> ArtifactCache | None:
    """Resolve the caching policy to a store (or ``None`` = disabled).

    ``enabled=None`` enables the cache iff an explicit ``cache_dir`` is
    given or ``$REPRO_CACHE_DIR`` is set -- library calls never touch
    ``~/.cache`` without an opt-in.
    """
    if enabled is None:
        enabled = cache_dir is not None or bool(os.environ.get(ENV_DIR))
    if not enabled:
        return None
    return ArtifactCache(cache_dir)
