"""The on-disk artifact store.

Content-addressed JSON files under a versioned root::

    <root>/v1/<kind>/<key[:2]>/<key>.json

``<root>`` defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``; the
``v<SCHEMA_VERSION>`` level invalidates everything at once when payload
shapes change (bump :data:`SCHEMA_VERSION`, old dirs become dead weight
that ``repro cache clear`` removes).  Writes are atomic (temp file +
``os.replace``), reads touch the entry's mtime so the byte-cap eviction
in :meth:`ArtifactCache.put` is LRU, and any unreadable/corrupt entry is
treated as a miss and deleted.  The store is best-effort throughout: I/O
errors disable the affected operation, never the caller.

**Shared mode.**  A store directory may be shared by many processes at
once (the ``repro.serve`` front-end, its workers, and any number of
CLI runs).  Entry reads/writes are already safe to interleave (atomic
replace + whole-file reads), so the two cross-process hazards are the
read-modify-write operations: LRU eviction and the persistent stats
ledger.  Both run under an advisory :class:`~repro.cache.lock.FileLock`
on ``<base>/.lock`` when ``shared=True`` (the default).  Session
counters (hits/misses/evictions/writes of *this* process) are flushed
to ``<root>/stats.json`` as **deltas** under the lock -- flushing is
idempotent (a counter increment is added to the ledger exactly once, no
matter how often :meth:`flush_stats` runs) and lock-serialized, so two
processes sharing a store dir cannot lose or double-report counts.

Library code resolves whether to cache via :func:`resolve_cache`: an
explicit ``True``/``False`` wins, ``None`` means "enabled iff
``REPRO_CACHE_DIR`` is set", so plain library calls never write to
``~/.cache`` unless the user opted in (the ``repro analyze`` CLI flips
the default to on).
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile

from repro import obs
from repro.cache.lock import FileLock

__all__ = [
    "SCHEMA_VERSION",
    "ENV_DIR",
    "ArtifactCache",
    "default_cache_root",
    "resolve_cache",
]

SCHEMA_VERSION = 1
ENV_DIR = "REPRO_CACHE_DIR"
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: the cross-process stats ledger, directly under the versioned root.
_STATS_NAME = "stats.json"
#: session counters accumulated into the ledger.
_STATS_KEYS = ("hits", "misses", "evictions", "writes")


def default_cache_root() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    env = os.environ.get(ENV_DIR)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


class ArtifactCache:
    """Content-addressed persistent cache with an LRU byte cap.

    ``shared=True`` (default) serializes eviction and stats-ledger
    updates across processes with a file lock; ``shared=False`` skips
    the locking for strictly-private store dirs.
    """

    __slots__ = (
        "base", "root", "max_bytes", "hits", "misses", "evictions", "writes",
        "shared", "_lock", "_flushed",
    )

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
        shared: bool = True,
    ):
        self.base = pathlib.Path(root) if root is not None else default_cache_root()
        self.root = self.base / f"v{SCHEMA_VERSION}"
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writes = 0
        self.shared = bool(shared)
        self._lock = FileLock(self.base / ".lock")
        #: session counts already accumulated into the on-disk ledger;
        #: flushing writes only the delta beyond this snapshot, so the
        #: same increment can never be reported twice.
        self._flushed = dict.fromkeys(_STATS_KEYS, 0)

    def _path(self, kind: str, key: str) -> pathlib.Path:
        return self.root / kind / key[:2] / f"{key}.json"

    def _locked(self):
        """The store lock in shared mode; a no-op context otherwise."""
        if self.shared:
            return self._lock
        return _UNLOCKED

    # -- core operations ------------------------------------------------------
    def get(self, kind: str, key: str):
        """The stored payload, or ``None`` on miss (corrupt entries vanish)."""
        path = self._path(kind, key)
        try:
            raw = path.read_text()
        except OSError:
            self.misses += 1
            obs.count("cache.misses")
            return None
        try:
            payload = json.loads(raw)
        except ValueError:
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            obs.count("cache.misses")
            return None
        try:
            os.utime(path)  # recency for LRU eviction
        except OSError:
            pass
        self.hits += 1
        obs.count("cache.hits")
        return payload

    def put(self, kind: str, key: str, payload) -> None:
        """Atomically store ``payload`` (JSON), then enforce the byte cap."""
        path = self._path(kind, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                # No sort_keys: dict insertion order is part of the exact
                # round-trip contract (e.g. AnalysisResult.stats ordering).
                with os.fdopen(fd, "w") as fh:
                    json.dump(payload, fh)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, TypeError, ValueError):
            return  # best-effort: an unwritable cache must not fail the caller
        self.writes += 1
        obs.count("cache.writes")
        try:
            obs.count("cache.put_bytes", path.stat().st_size)
        except OSError:
            pass
        with self._locked():
            self._evict()

    # -- maintenance ----------------------------------------------------------
    def _entries(self) -> list[tuple[pathlib.Path, os.stat_result]]:
        out = []
        try:
            for path in self.root.rglob("*.json"):
                if path.parent == self.root:
                    continue  # the stats ledger is not a cache entry
                try:
                    out.append((path, path.stat()))
                except OSError:
                    continue
        except OSError:
            pass
        return out

    def _evict(self) -> None:
        entries = self._entries()
        total = sum(st.st_size for _, st in entries)
        if total > self.max_bytes:
            entries.sort(key=lambda e: e[1].st_mtime)  # oldest access first
            for path, st in entries:
                if total <= self.max_bytes:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= st.st_size
                self.evictions += 1
                obs.count("cache.evictions")
        obs.gauge("cache.bytes_on_disk", total)

    # -- the cross-process stats ledger ---------------------------------------
    def _session_counts(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writes": self.writes,
        }

    def _read_ledger(self) -> dict:
        try:
            raw = json.loads((self.root / _STATS_NAME).read_text())
            return {k: int(raw.get(k, 0)) for k in _STATS_KEYS}
        except (OSError, ValueError, TypeError, AttributeError):
            return dict.fromkeys(_STATS_KEYS, 0)

    def flush_stats(self) -> dict:
        """Accumulate this session's *new* counts into the shared ledger.

        Idempotent: only the delta since the previous flush is added, so
        calling this any number of times (or from any number of
        processes under the lock) reports each increment exactly once.
        Returns the ledger totals after the update (best-effort: on I/O
        failure the current on-disk view is returned unchanged).
        """
        session = self._session_counts()
        delta = {k: session[k] - self._flushed[k] for k in _STATS_KEYS}
        if not any(delta.values()):
            return self._read_ledger()
        with self._locked():
            totals = self._read_ledger()
            for k in _STATS_KEYS:
                totals[k] += delta[k]
            try:
                self.root.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
                try:
                    with os.fdopen(fd, "w") as fh:
                        json.dump(totals, fh)
                    os.replace(tmp, self.root / _STATS_NAME)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
            except OSError:
                return totals  # best-effort: ledger unavailable
        self._flushed = session
        return totals

    def stats(self) -> dict:
        """Snapshot of the on-disk store (entry/byte counts per kind).

        Flushes this session's counters first, so ``store`` holds the
        exact cross-process totals accumulated in the shared ledger.
        """
        store_totals = self.flush_stats()
        entries = self._entries()
        kinds: dict[str, int] = {}
        for path, _st in entries:
            try:
                kind = path.relative_to(self.root).parts[0]
            except (ValueError, IndexError):
                kind = "?"
            kinds[kind] = kinds.get(kind, 0) + 1
        return {
            "root": str(self.base),
            "schema_version": SCHEMA_VERSION,
            "entries": len(entries),
            "bytes": sum(st.st_size for _, st in entries),
            "max_bytes": self.max_bytes,
            "kinds": dict(sorted(kinds.items())),
            "session": {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            },
            "store": store_totals,
        }

    def clear(self, kind: str | None = None) -> int:
        """Remove cache entries; returns the number removed.

        With ``kind=None``, every versioned cache dir under the base is
        removed (only ``v*`` subdirectories are touched, so pointing
        ``REPRO_CACHE_DIR`` at a shared directory cannot lose user
        data).  With a ``kind`` (e.g. ``"kernel"``), only that kind's
        subtree is removed from each versioned dir -- other artifact
        kinds and the stats ledger stay intact.
        """
        import shutil

        removed = 0
        try:
            version_dirs = [
                d for d in self.base.glob("v*") if d.is_dir()
            ]
        except OSError:
            return 0
        for vdir in version_dirs:
            target = vdir if kind is None else vdir / kind
            if not target.is_dir():
                continue
            removed += sum(
                1 for p in target.rglob("*.json") if p.parent != vdir
            )
            shutil.rmtree(target, ignore_errors=True)
        if kind is None:
            self._flushed = self._session_counts()  # ledger gone; don't re-add
        return removed

    def __repr__(self) -> str:
        return (
            f"ArtifactCache({str(self.base)!r}, {self.hits} hits, "
            f"{self.misses} misses)"
        )


class _Unlocked:
    """Context stand-in used when ``shared=False``."""

    __slots__ = ()
    held = False

    def __enter__(self) -> "_Unlocked":
        return self

    def __exit__(self, *exc) -> None:
        return None


_UNLOCKED = _Unlocked()


def resolve_cache(
    enabled: bool | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> ArtifactCache | None:
    """Resolve the caching policy to a store (or ``None`` = disabled).

    ``enabled=None`` enables the cache iff an explicit ``cache_dir`` is
    given or ``$REPRO_CACHE_DIR`` is set -- library calls never touch
    ``~/.cache`` without an opt-in.
    """
    if enabled is None:
        enabled = cache_dir is not None or bool(os.environ.get(ENV_DIR))
    if not enabled:
        return None
    return ArtifactCache(cache_dir)
