"""Persistent cross-run artifact cache.

Content-addressed, on-disk memoization for the expensive pure derivations
of the pipeline: dependence-analysis results, Theorem 3.1 structures, and
the design-space search's conflict/interconnect solves.  Keys are SHA-256
fingerprints of canonicalized inputs (:mod:`repro.cache.keys` -- including
HNF normalization of per-pair subscript systems), values are exact JSON
serializations (:mod:`repro.cache.serde`), and the store
(:class:`repro.cache.store.ArtifactCache`) lives under
``$REPRO_CACHE_DIR`` or ``~/.cache/repro`` with a versioned schema and an
LRU byte cap.

Caching is opt-in: library calls default to "enabled iff
``REPRO_CACHE_DIR`` is set"; the CLI's ``analyze`` subcommand enables it
by default (``--no-cache`` opts out) and ``repro cache stats|clear``
inspects the store.  See ``docs/ANALYSIS.md``.
"""

from repro.cache.keys import (
    Uncacheable,
    analysis_key,
    fingerprint,
    shard_run_key,
    structure_key,
    symbolic_key,
    system_key,
)
from repro.cache.serde import (
    Unserializable,
    algorithm_from_payload,
    algorithm_to_payload,
    analysis_result_from_payload,
    analysis_result_to_payload,
    condition_from_payload,
    condition_to_payload,
    decode_obj,
    encode_obj,
)
from repro.cache.lock import FileLock
from repro.cache.store import (
    ENV_DIR,
    SCHEMA_VERSION,
    ArtifactCache,
    default_cache_root,
    resolve_cache,
)

__all__ = [
    "ENV_DIR",
    "SCHEMA_VERSION",
    "ArtifactCache",
    "FileLock",
    "Uncacheable",
    "Unserializable",
    "algorithm_from_payload",
    "algorithm_to_payload",
    "analysis_key",
    "analysis_result_from_payload",
    "analysis_result_to_payload",
    "condition_from_payload",
    "condition_to_payload",
    "decode_obj",
    "default_cache_root",
    "encode_obj",
    "fingerprint",
    "resolve_cache",
    "shard_run_key",
    "structure_key",
    "symbolic_key",
    "system_key",
]
