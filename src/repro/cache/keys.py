"""Canonical fingerprints for cacheable analysis inputs.

A cache key must change whenever anything that can change the result
changes, and *should* coincide for inputs that provably yield the same
result.  Two canonicalizations do the work:

* :func:`analysis_key` keys a whole program instance.  Loop-index and
  statement names are erased (subscripts become coefficient rows over the
  positional index order), symbolic offsets/bounds/guard values are
  evaluated under the concrete binding (so ``p`` vs ``q`` as a parameter
  name cannot split the cache), and array names are kept verbatim because
  they appear in the result.  Method and screen settings are part of the
  key; the *backend* deliberately is not -- scalar and batched engines
  produce bit-identical results, so they share entries.
* :func:`system_key` keys one per-pair subscript system by the row-style
  Hermite normal form of the augmented matrix ``[A | b]``.  Two systems
  with the same HNF generate the same row lattice, hence have identical
  solution sets, so HNF-equal pairs may share one cached Diophantine
  solve and candidate enumeration.

Inputs with no exact canonical form (unknown condition subclasses, unbound
parameters) raise :class:`Uncacheable`; callers skip the cache and compute.
"""

from __future__ import annotations

import hashlib
import json

from repro.cache.serde import (
    Unserializable,
    algorithm_to_payload,
    condition_to_payload,
)
from repro.depanalysis.pairs import PointSet
from repro.structures.conditions import And, Eq, Ne, Not, Or, _False, _True
from repro.util.linalg import hermite_normal_form

__all__ = [
    "Uncacheable",
    "fingerprint",
    "analysis_key",
    "kernel_key",
    "shard_run_key",
    "structure_key",
    "symbolic_key",
    "system_key",
]


class Uncacheable(ValueError):
    """The input has no canonical key; compute without the cache."""


def fingerprint(payload) -> str:
    """SHA-256 over the canonical (sorted-key, compact) JSON of ``payload``."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _guard_payload(cond, binding) -> list:
    """Condition payload with parameter values evaluated under ``binding``."""
    try:
        if isinstance(cond, _True):
            return ["true"]
        if isinstance(cond, _False):
            return ["false"]
        if isinstance(cond, Eq):
            return ["eq", cond.axis, cond.value.evaluate(binding)]
        if isinstance(cond, Ne):
            return ["ne", cond.axis, cond.value.evaluate(binding)]
        if isinstance(cond, And):
            return ["and", sorted(_guard_payload(t, binding) for t in cond.terms)]
        if isinstance(cond, Or):
            return ["or", sorted(_guard_payload(t, binding) for t in cond.terms)]
        if isinstance(cond, Not):
            return ["not", _guard_payload(cond.term, binding)]
        if isinstance(cond, PointSet):
            return ["points", sorted(list(pt) for pt in cond.points), cond.offset]
    except KeyError as exc:  # unbound parameter
        raise Uncacheable(f"guard mentions unbound parameter: {exc}") from exc
    raise Uncacheable(f"guard condition {type(cond).__name__} has no canonical form")


def _access_payload(access, order, binding) -> dict:
    try:
        return {
            "array": access.array,
            "rows": [e.coeff_vector(order) for e in access.subscripts],
            "offsets": [e.offset.evaluate(binding) for e in access.subscripts],
        }
    except KeyError as exc:
        raise Uncacheable(f"subscript mentions unbound parameter: {exc}") from exc


def analysis_key(program, binding, method: str, use_screens: bool) -> str:
    """Content-address one ``analyze()`` call (program instance + method)."""
    try:
        bounds = program.index_set.bounds(binding)
    except KeyError as exc:
        raise Uncacheable(f"bounds mention unbound parameter: {exc}") from exc
    order = program.index_names
    payload = {
        "kind": "analysis",
        "method": method,
        # The enumerate method never screens; canonicalize so both flag
        # values hit the same entry there.
        "use_screens": bool(use_screens) if method == "exact" else True,
        "bounds": [[lo, hi] for lo, hi in bounds],
        "statements": [
            {
                "write": _access_payload(s.write, order, binding),
                "reads": [_access_payload(r, order, binding) for r in s.reads],
                "guard": _guard_payload(s.guard, binding),
            }
            for s in program.statements
        ],
    }
    return fingerprint(payload)


def symbolic_key(program) -> str:
    """Content-address one symbolic (parametric) analysis.

    Unlike :func:`analysis_key`, nothing is evaluated: bounds, subscript
    offsets, and guard values are serialized as linear expressions, so the
    key identifies the whole *family* of program instances over the free
    parameters.  Parameter names are part of the key (a result for ``u``
    cannot answer a program phrased over ``v``), which matches how the
    cached closed forms are instantiated by name.
    """
    from repro.cache.serde import linexpr_to_payload

    order = program.index_names

    def access(a) -> dict:
        return {
            "array": a.array,
            "rows": [e.coeff_vector(order) for e in a.subscripts],
            "offsets": [linexpr_to_payload(e.offset) for e in a.subscripts],
        }

    try:
        payload = {
            "kind": "symbolic",
            "bounds": [
                [linexpr_to_payload(lo), linexpr_to_payload(hi)]
                for lo, hi in zip(
                    program.index_set.lowers, program.index_set.uppers
                )
            ],
            "statements": [
                {
                    "write": access(s.write),
                    "reads": [access(r) for r in s.reads],
                    "guard": condition_to_payload(s.guard),
                }
                for s in program.statements
            ],
        }
    except Unserializable as exc:
        raise Uncacheable(str(exc)) from exc
    return fingerprint(payload)


def structure_key(word, arith_name: str, expansion_key: str, p) -> str:
    """Content-address one symbolic Theorem 3.1 composition.

    ``word`` is the word-level :class:`~repro.structures.algorithm.Algorithm`
    (serialized exactly, symbolic bounds and validity conditions included),
    ``arith_name``/``expansion_key`` the registered arithmetic structure and
    expansion, ``p`` the symbolic-or-``None`` stage count.
    """
    try:
        word_payload = algorithm_to_payload(word)
        for vec in word.dependences:
            # Validity must be canonically serializable too (checked above via
            # algorithm_to_payload); nothing extra needed here.
            condition_to_payload(vec.validity)
    except Unserializable as exc:
        raise Uncacheable(str(exc)) from exc
    payload = {
        "kind": "theorem31",
        "word": word_payload,
        "arith": arith_name,
        "expansion": expansion_key,
        "p": None if p is None else repr(p),
    }
    return fingerprint(payload)


def kernel_key(family: str, rows, params: dict, version: int) -> str:
    """Content-address one compiled simulation kernel.

    ``family`` names the program shape (``"matmul"`` | ``"word"``),
    ``rows`` is the design's space-time matrix ``T`` (the content the
    kernel is specialized to), ``params`` the remaining specialization
    inputs (problem size, expansion, ...), and ``version`` the compiled
    payload's schema version (bumped whenever the generated-kernel
    payload shape changes, so stale entries miss instead of mis-load).
    """
    payload = {
        "kind": "kernel",
        "family": family,
        "rows": [[int(x) for x in row] for row in rows],
        "params": {k: params[k] for k in sorted(params)},
        "version": int(version),
    }
    return fingerprint(payload)


def shard_run_key(
    algorithm_name: str,
    dependence_columns,
    bounds,
    primitives,
    config: dict,
    blocks: int,
) -> str:
    """Content key identifying one sharded design-space search run.

    Workers and the coordinator derive the same key from the same inputs,
    so claim ledgers and block results published in a shared store never
    collide across distinct searches -- and a re-run of the identical
    search finds its blocks already published.  The worker count is
    deliberately *not* part of the key: any number of workers cooperates
    on (and reuses) the same run.
    """
    payload = {
        "kind": "search-shard",
        "algorithm": str(algorithm_name),
        "columns": [[int(x) for x in col] for col in dependence_columns],
        "bounds": [[int(lo), int(hi)] for lo, hi in bounds],
        "primitives": (
            None
            if primitives is None
            else [[int(x) for x in row] for row in primitives]
        ),
        "config": {k: config[k] for k in sorted(config)},
        "blocks": int(blocks),
    }
    return fingerprint(payload)


def system_key(a_rows, rhs) -> tuple:
    """In-memory memo key for one subscript system ``A z = b``.

    The row-HNF of ``[A | b]`` identifies the row lattice of the system:
    HNF-equal systems have identical integer solution sets (each one's rows
    are integer combinations of the other's), so they can share one solve.
    """
    if not a_rows:
        return ("sys", 0, tuple(rhs))
    aug = [list(row) + [int(b)] for row, b in zip(a_rows, rhs)]
    h, _u = hermite_normal_form(aug)
    return ("sys", tuple(tuple(r) for r in h if any(r)))
