"""Exact JSON serialization for cached artifacts.

A cache hit must be indistinguishable from a recomputation, so every
round-trip here is *exact*: the decoded object equals (and hashes equal
to) what the miss path would have built.  Three families are covered:

* a generic tagged codec (:func:`encode_obj` / :func:`decode_obj`) that
  preserves the ``tuple``/``list`` distinction -- used to persist the
  design-space search's :class:`~repro.mapping.memo.EvalCache` tables,
  whose keys are nested tuples;
* the dependence-analysis result types
  (:class:`~repro.depanalysis.pairs.AnalysisResult` with its
  :class:`~repro.depanalysis.pairs.DependenceInstance` tuple and stats);
* the Theorem 3.1 structure types (:class:`LinExpr`, the condition
  algebra including extensional :class:`PointSet`\\ s, :class:`IndexSet`,
  :class:`DependenceVector`, :class:`Algorithm`).

Objects that cannot be represented exactly (e.g. an
:class:`~repro.structures.algorithm.ComputationSet` carrying an
executable ``semantics`` callable, or an unknown condition subclass)
raise :class:`Unserializable`; callers treat that as "skip the cache".
"""

from __future__ import annotations

from repro.depanalysis.pairs import AnalysisResult, DependenceInstance, PointSet
from repro.structures.algorithm import Algorithm, ComputationSet
from repro.structures.conditions import (
    And,
    Condition,
    Eq,
    FALSE,
    Ne,
    Not,
    Or,
    TRUE,
    _False,
    _True,
)
from repro.structures.dependence import DependenceMatrix, DependenceVector
from repro.structures.indexset import IndexSet
from repro.structures.params import LinExpr

__all__ = [
    "Unserializable",
    "encode_obj",
    "decode_obj",
    "linexpr_to_payload",
    "linexpr_from_payload",
    "condition_to_payload",
    "condition_from_payload",
    "indexset_to_payload",
    "indexset_from_payload",
    "analysis_result_to_payload",
    "analysis_result_from_payload",
    "algorithm_to_payload",
    "algorithm_from_payload",
]


class Unserializable(TypeError):
    """The object has no exact JSON form; the caller must skip the cache."""


# ---------------------------------------------------------------------------
# Generic tagged codec (EvalCache keys and values)
# ---------------------------------------------------------------------------

def encode_obj(value):
    """Encode ``None``/``bool``/``int``/``str`` and nested list/tuple/dict
    structures into JSON-safe form, keeping the tuple/list distinction."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, list):
        return {"l": [encode_obj(v) for v in value]}
    if isinstance(value, tuple):
        return {"t": [encode_obj(v) for v in value]}
    if isinstance(value, dict):
        return {
            "d": [[encode_obj(k), encode_obj(v)] for k, v in value.items()]
        }
    raise Unserializable(f"cannot encode {type(value).__name__} exactly")


def decode_obj(payload):
    """Inverse of :func:`encode_obj`."""
    if payload is None or isinstance(payload, (bool, int, str)):
        return payload
    if isinstance(payload, dict):
        if "l" in payload:
            return [decode_obj(v) for v in payload["l"]]
        if "t" in payload:
            return tuple(decode_obj(v) for v in payload["t"])
        if "d" in payload:
            return {decode_obj(k): decode_obj(v) for k, v in payload["d"]}
    raise Unserializable(f"malformed payload {payload!r}")


# ---------------------------------------------------------------------------
# Structure types
# ---------------------------------------------------------------------------

def linexpr_to_payload(expr: LinExpr) -> list:
    return [expr.const, [[name, c] for name, c in expr.coeffs]]


def linexpr_from_payload(payload) -> LinExpr:
    const, coeffs = payload
    return LinExpr(const, {name: c for name, c in coeffs})


def condition_to_payload(cond: Condition) -> list:
    if isinstance(cond, _True):
        return ["true"]
    if isinstance(cond, _False):
        return ["false"]
    if isinstance(cond, Eq):
        return ["eq", cond.axis, linexpr_to_payload(cond.value)]
    if isinstance(cond, Ne):
        return ["ne", cond.axis, linexpr_to_payload(cond.value)]
    if isinstance(cond, And):
        return ["and", [condition_to_payload(t) for t in cond.terms]]
    if isinstance(cond, Or):
        return ["or", [condition_to_payload(t) for t in cond.terms]]
    if isinstance(cond, Not):
        return ["not", condition_to_payload(cond.term)]
    if isinstance(cond, PointSet):
        return ["points", sorted(list(pt) for pt in cond.points), cond.offset]
    raise Unserializable(f"cannot encode condition {type(cond).__name__}")


def condition_from_payload(payload) -> Condition:
    tag = payload[0]
    if tag == "true":
        return TRUE
    if tag == "false":
        return FALSE
    if tag == "eq":
        return Eq(payload[1], linexpr_from_payload(payload[2]))
    if tag == "ne":
        return Ne(payload[1], linexpr_from_payload(payload[2]))
    if tag == "and":
        return And(*(condition_from_payload(t) for t in payload[1]))
    if tag == "or":
        return Or(*(condition_from_payload(t) for t in payload[1]))
    if tag == "not":
        return Not(condition_from_payload(payload[1]))
    if tag == "points":
        return PointSet(payload[1], offset=payload[2])
    raise Unserializable(f"unknown condition tag {tag!r}")


def indexset_to_payload(index_set: IndexSet) -> dict:
    return {
        "lowers": [linexpr_to_payload(b) for b in index_set.lowers],
        "uppers": [linexpr_to_payload(b) for b in index_set.uppers],
        "names": list(index_set.names),
    }


def indexset_from_payload(payload) -> IndexSet:
    return IndexSet(
        [linexpr_from_payload(b) for b in payload["lowers"]],
        [linexpr_from_payload(b) for b in payload["uppers"]],
        payload["names"],
    )


# ---------------------------------------------------------------------------
# Analysis results
# ---------------------------------------------------------------------------

def analysis_result_to_payload(result: AnalysisResult) -> dict:
    return {
        "instances": [
            [list(i.sink), list(i.vector), i.variable, i.kind]
            for i in result.instances
        ],
        "stats": dict(result.stats),
    }


def analysis_result_from_payload(payload) -> AnalysisResult:
    instances = [
        DependenceInstance(sink, vector, variable, kind)
        for sink, vector, variable, kind in payload["instances"]
    ]
    return AnalysisResult(instances, dict(payload["stats"]))


# ---------------------------------------------------------------------------
# Algorithms (Theorem 3.1 structures)
# ---------------------------------------------------------------------------

def algorithm_to_payload(algorithm: Algorithm) -> dict:
    if algorithm.computations.semantics is not None:
        raise Unserializable("executable semantics cannot be cached")
    return {
        "index_set": indexset_to_payload(algorithm.index_set),
        "dependences": [
            {
                "vector": list(v.vector),
                "causes": list(v.causes),
                "validity": condition_to_payload(v.validity),
            }
            for v in algorithm.dependences
        ],
        "computations": [list(pair) for pair in algorithm.computations.statements],
        "name": algorithm.name,
    }


def algorithm_from_payload(payload) -> Algorithm:
    dep = DependenceMatrix(
        DependenceVector(
            v["vector"], v["causes"], condition_from_payload(v["validity"])
        )
        for v in payload["dependences"]
    )
    comp = ComputationSet([tuple(pair) for pair in payload["computations"]])
    return Algorithm(
        indexset_from_payload(payload["index_set"]),
        dep,
        comp,
        name=payload["name"],
    )
