"""Advisory cross-process file locking for the shared artifact store.

Multiple worker processes and the ``repro.serve`` front-end share one
``$REPRO_CACHE_DIR``; the individual entry files are already safe to
share (atomic ``os.replace`` writes, whole-file reads), but two
operations are read-modify-write over shared state and need mutual
exclusion:

* LRU eviction -- two processes scanning and deleting concurrently can
  both count the same bytes and over-evict;
* the persistent stats ledger (``v1/stats.json``) -- concurrent
  read-add-write updates lose or double increments.

:class:`FileLock` wraps both in an advisory ``fcntl.flock`` on a
dedicated ``.lock`` file next to the versioned store (the lock file is
never deleted, so the inode every process locks is stable).  On
platforms without ``fcntl`` it degrades to an ``O_CREAT | O_EXCL``
spin lock with a stale-lock ceiling.  Acquisition is best-effort with a
timeout: the cache philosophy is that an unavailable lock must degrade
the *guarantee* (callers may proceed unlocked and note it via the
``cache.lock_timeouts`` counter), never fail the caller.
"""

from __future__ import annotations

import os
import pathlib
import time

from repro import obs

try:  # POSIX
    import fcntl

    HAVE_FCNTL = True
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None
    HAVE_FCNTL = False

__all__ = ["FileLock", "HAVE_FCNTL"]

#: fallback spin lock: a lock file older than this is considered stale.
_STALE_S = 300.0
#: polling interval while waiting for the lock.
_POLL_S = 0.01


class FileLock:
    """An advisory, reentrant-per-instance cross-process file lock.

    Usable as a context manager::

        with FileLock(root / ".lock") as lock:
            if lock.held:        # False if acquisition timed out
                ...exclusive...

    ``__enter__`` never raises on contention: after ``timeout`` seconds
    the context body runs with ``held == False`` and the caller decides
    whether the unlocked path is acceptable (the cache treats it as
    best-effort degradation and counts ``cache.lock_timeouts``).
    """

    __slots__ = ("path", "timeout", "_fd", "_depth", "held")

    def __init__(self, path: str | os.PathLike, timeout: float = 10.0):
        self.path = pathlib.Path(path)
        self.timeout = timeout
        self._fd: int | None = None
        self._depth = 0
        self.held = False

    # -- acquisition ---------------------------------------------------------
    def acquire(self, timeout: float | None = None) -> bool:
        """Try to take the lock; ``True`` on success within ``timeout``."""
        if self._depth:
            self._depth += 1
            return self.held
        timeout = self.timeout if timeout is None else timeout
        deadline = time.monotonic() + timeout
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError:
            self._depth = 1
            self.held = False
            return False
        acquired = (
            self._acquire_flock(deadline)
            if HAVE_FCNTL
            else self._acquire_excl(deadline)
        )
        self._depth = 1
        self.held = acquired
        if not acquired:
            obs.count("cache.lock_timeouts")
        return acquired

    def _acquire_flock(self, deadline: float) -> bool:
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        except OSError:
            return False
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                self._fd = fd
                return True
            except OSError:
                if time.monotonic() >= deadline:
                    os.close(fd)
                    return False
                time.sleep(_POLL_S)

    def _acquire_excl(self, deadline: float) -> bool:  # pragma: no cover
        # Portable fallback: exclusive-create a marker file, treat ancient
        # markers (crashed holders) as stale.
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_RDWR)
                self._fd = fd
                return True
            except FileExistsError:
                try:
                    age = time.time() - self.path.stat().st_mtime
                    if age > _STALE_S:
                        self.path.unlink()
                        continue
                except OSError:
                    pass
                if time.monotonic() >= deadline:
                    return False
                time.sleep(_POLL_S)
            except OSError:
                return False

    # -- release -------------------------------------------------------------
    def release(self) -> None:
        if self._depth > 1:
            self._depth -= 1
            return
        self._depth = 0
        fd, self._fd = self._fd, None
        held, self.held = self.held, False
        if fd is None:
            return
        try:
            if HAVE_FCNTL:
                fcntl.flock(fd, fcntl.LOCK_UN)
            elif held:  # pragma: no cover - exclusive-create fallback
                try:
                    self.path.unlink()
                except OSError:
                    pass
        finally:
            try:
                os.close(fd)
            except OSError:
                pass

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()
        return None

    def __repr__(self) -> str:
        state = "held" if self.held else "free"
        return f"FileLock({str(self.path)!r}, {state})"
