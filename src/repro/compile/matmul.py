"""The design compiler for the bit-level matmul lattice.

Specializes the add-shift compressor lattice of Example 3.1 (Expansion I
or II) to one concrete design ``T`` and problem size: everything the
wavefront slot kernel re-derives per run -- slot grouping, per-slot
neighbor masks, the five-subscript fancy indexing, boundary re-route
targets, the structural read/write census -- is resolved here, once, into
flat int32 index plans and generated loop-free NumPy source.

The generated kernel operates on *flattened* ``(u, u, u, p, p)`` C-order
value arrays, so every neighbor access is a precomputed flat index:

* own position ``o = ((((a·u + b)·u + c)·p + d)·p + e)``;
* the in-row carry source is ``o - 1`` (``i2 - 1``), the Expansion sites
  sit at ``o - p²`` (``j3 - 1``), ``o - p + 1`` (``i1 - 1, i2 + 1``) and
  ``o - 2`` (``i2 - 2``);
* boundary re-routes (carries crossing ``i2 = p``) fall into three
  compile-time classes with *constant* schedule displacement: the ``C``
  carry re-route (``Δt = π₄``), and the ``C2`` re-route from ``i2 = p-1``
  (``Δt = π₄ + π₅``) and from ``i2 = p`` (``Δt = 2π₄``).  Classes with
  ``Δt >= 1`` compile to a plain scatter; classes with ``Δt < 1`` compile
  to a guard that raises the wavefront backend's exact causality error
  iff a re-routed carry is actually realized at run time.

What stays at run time is exactly the data-dependent part: gathering the
operand bit products, summing carries, the compressor-overflow check,
``max_summands``, and the realized/dropped re-route counts.  Everything
value-independent (store reads, causality checks, link traffic, keep
writes) is a compile-time constant folded into the returned
:class:`~repro.machine.wavefront.SlotCounters`.

Programs serialize to JSON payloads (base64 little-endian int32 streams)
for the artifact store; loading a payload rebuilds the index plans and
re-emits + ``exec``-compiles the source, producing byte-identical runs.
"""

from __future__ import annotations

import base64

from repro.machine.wavefront import SlotCounters, matmul_read_sites
from repro.mapping.transform import MappingMatrix

try:  # pragma: no cover - runner gates on HAVE_NUMPY
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "KERNEL_PAYLOAD_VERSION",
    "CompiledMatmulProgram",
    "compile_matmul_program",
    "matmul_program_from_payload",
]

#: Bump when the payload shape or generated-kernel contract changes.
KERNEL_PAYLOAD_VERSION = 1

#: Per-slot index-plan arrays, in serialization order.  ``*s`` names are
#: selections into the slot block, ``*q`` gather sources, ``*t`` scatter
#: targets -- all flat indices into the raveled value arrays.
_SLOT_ARRAYS = (
    "o",            # own flat index of every point in the slot
    "cs", "cq",     # in-row carry gather (i2 > 1)
    "ns", "nq",     # pending re-route gather (i2 = p)
    "g0s", "g0q",   # expansion read site 0 (S)
    "g1s", "g1q",   # expansion read site 1 (S)
    "g2s", "g2q",   # expansion read site 2 (C2)
    "ks", "kq",     # C keep scatter (i2 + 1 <= p)
    "q1s",          # C re-route candidates out of range (drop census)
    "r1s", "r1t",   # C re-route in range: selection + NR targets
    "k2s", "k2q",   # C2 keep scatter (i2 + 2 <= p)
    "q2s",          # C2 re-route candidates out of range
    "rAs", "rAt",   # C2 re-route class A (from i2 = p-1)
    "rBs", "rBt",   # C2 re-route class B (from i2 = p)
)


def _i32(a):
    return _np.ascontiguousarray(a, dtype=_np.int32)


class CompiledMatmulProgram:
    """One design's compiled bit-level matmul kernel.

    Holds the per-slot index plans, the precomputed structural counters
    and utilization statistics, and the ``exec``-compiled kernel
    function.  ``execute`` runs it against a fresh
    :class:`~repro.machine.wavefront.DenseValueStore`, reproducing the
    wavefront slot kernel bit for bit.
    """

    family = "matmul"

    def __init__(self, u, p, expansion_key, slots, slot_times, rr_ok,
                 reads, causality_checks, writes_struct, links):
        self.u = int(u)
        self.p = int(p)
        self.expansion_key = expansion_key
        self.lowers = (1, 1, 1, 1, 1)
        self.uppers = (u, u, u, p, p)
        self.slots = slots
        self.slot_times = [int(t) for t in slot_times]
        #: compile-time causality verdict per re-route class (C, C2-A, C2-B)
        self.rr_ok = tuple(bool(x) for x in rr_ok)
        self.reads = int(reads)
        self.causality_checks = int(causality_checks)
        self.writes_struct = int(writes_struct)
        self.links = dict(links)
        # Utilization statistics of the design (set by the factories):
        # busy-per-step, per-PE busy beats, schedule extent, point count.
        self.busy: dict[int, int] = {}
        self.pe_busy: dict[tuple[int, ...], int] = {}
        self.first = 0
        self.last = -1
        self.n_points = 0
        self._mapname = ["?"]
        self.source = _emit_matmul_source(self)
        env = {
            "_n": _np,
            "_add": _np.add.at,
            "_ovf": _make_overflow(u, p),
            "_bad": _make_badrr(self._mapname),
        }
        for k, rec in enumerate(self.slots):
            for name in _SLOT_ARRAYS:
                env[f"{name}{k}"] = rec[name]
        exec(compile(self.source, "<repro.compile.matmul>", "exec"), env)
        self._fn = env["_kernel"]

    # -- execution -----------------------------------------------------------
    def execute(self, kernel, store) -> SlotCounters:
        np = _np
        u, p = self.u, self.p
        shape = (u, u, u, p, p)
        int8 = np.int8
        # X and Y are pure pipelines: once every point has fired, their
        # dense contents are exactly the operand bit planes broadcast over
        # the non-carrying axes -- attach views, write nothing.
        Xv = np.broadcast_to(kernel._xbits[:, None, :, None, :], shape)
        Yv = np.broadcast_to(
            kernel._ybits.transpose(1, 0, 2)[None, :, :, :, None], shape
        )
        base = Xv & Yv  # xb & yb at every point, hoisted out of the slots
        S = np.zeros(shape, int8)
        C = np.zeros(shape, int8)
        C2 = np.zeros(shape, int8)
        NR = np.zeros(shape, int8)

        always = np.broadcast_to(np.bool_(True), shape)
        i2_axis = np.arange(1, p + 1)
        store.attach("x", Xv, always)
        store.attach("y", Yv, always)
        store.attach("s", S, always)
        store.attach("c", C, np.broadcast_to(i2_axis <= p - 1, shape))
        store.attach("c2", C2, np.broadcast_to(i2_axis <= p - 2, shape))

        self._mapname[0] = store._mapping.name
        ms, w, dd = self._fn(
            base.reshape(-1), S.reshape(-1), C.reshape(-1),
            C2.reshape(-1), NR.reshape(-1),
        )
        if NR.any():  # every pending slot must have been consumed
            raise AssertionError("unconsumed re-routed carries at end of run")
        state = kernel.state
        state["dropped"] = state.get("dropped", 0) + dd
        state["max_summands"] = max(int(state.get("max_summands", 0)), ms)
        return SlotCounters(
            reads=self.reads,
            writes=self.writes_struct + w,
            causality_checks=self.causality_checks,
            links=dict(self.links),
        )

    # -- serialization -------------------------------------------------------
    def to_payload(self) -> dict:
        streams = {}
        lens = {}
        for name in _SLOT_ARRAYS:
            parts = [rec[name] for rec in self.slots]
            lens[name] = [int(len(x)) for x in parts]
            cat = (
                _np.concatenate(parts)
                if parts else _np.zeros(0, dtype=_np.int32)
            )
            blob = cat.astype("<i4").tobytes()
            streams[name] = base64.b64encode(blob).decode("ascii")
        return {
            "version": KERNEL_PAYLOAD_VERSION,
            "family": self.family,
            "u": self.u,
            "p": self.p,
            "expansion": self.expansion_key,
            "slot_times": self.slot_times,
            "rr_ok": list(self.rr_ok),
            "streams": streams,
            "lens": lens,
            "reads": self.reads,
            "causality_checks": self.causality_checks,
            "writes_struct": self.writes_struct,
            "links": dict(self.links),
            "busy": [[int(t), int(n)] for t, n in sorted(self.busy.items())],
            "pe_busy": [
                [list(pos), int(n)]
                for pos, n in sorted(self.pe_busy.items())
            ],
            "first": int(self.first),
            "last": int(self.last),
            "n_points": int(self.n_points),
        }


def _make_overflow(u, p):
    """The compressor-overflow reporter: decode the flat own index back to
    the 1-based lattice point the wavefront backend names."""

    def _ovf(o, v):
        k = int(_np.argmax(v > 7))
        f = int(o[k])
        e = f % p
        f //= p
        d = f % p
        f //= p
        c = f % u
        f //= u
        b = f % u
        a = f // u
        pt = (a + 1, b + 1, c + 1, d + 1, e + 1)
        raise AssertionError(f"compressor overflow at {pt}: {int(v[k])}")

    return _ovf


def _make_badrr(mapname_ref):
    """Raise the wavefront backend's re-route causality error (fires only
    when a re-routed carry is realized in a compile-time-bad class)."""

    def _bad(t):
        raise AssertionError(
            f"causality violation: boundary carry re-routed from "
            f"slot t={t} into a slot <= t under {mapname_ref[0]}"
        )

    return _bad


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------

def compile_matmul_program(
    mapping: MappingMatrix, u: int, p: int, expansion_key: str
) -> CompiledMatmulProgram:
    """Compile the (``T``, expansion, ``u``, ``p``) tuple to a program."""
    from repro.compile.plan import plan_for

    exp1 = expansion_key == "I"
    plan = plan_for(mapping, (1,) * 5, (u, u, u, p, p))
    lattice = plan.lattice

    # The structural read census (reads, causality checks, link traffic)
    # is a constant of the design; folding it here also performs the
    # per-site Π·d̄ >= 1 causality check the wavefront kernel runs.
    counters = SlotCounters()
    for displacement, mask in matmul_read_sites(u, p, exp1, lattice):
        counters.account_site(mapping, displacement, int(mask.sum()))

    pi = [int(x) for x in mapping.schedule]
    # Constant schedule displacement of each boundary re-route class.
    rr_ok = (pi[3] >= 1, pi[3] + pi[4] >= 1, 2 * pi[3] >= 1)

    writes_struct = 3 * plan.n_points
    flat = _np.flatnonzero
    slots = []
    for (start, end), t in zip(plan.slices, plan.slot_times):
        block = lattice[plan.order[start:end]]
        a = block[:, 0] - 1
        b = block[:, 1] - 1
        c = block[:, 2] - 1
        d = block[:, 3] - 1
        e = block[:, 4] - 1
        o = ((((a * u + b) * u + c) * p + d) * p + e)
        rec = {"t": int(t), "o": _i32(o)}

        sel = flat(e > 0)  # in-row carry from i2 - 1
        rec["cs"], rec["cq"] = _i32(sel), _i32(o[sel] - 1)
        sel = flat(e == p - 1)  # pending boundary re-routes land on i2 = p
        rec["ns"], rec["nq"] = _i32(sel), _i32(o[sel])

        if exp1:
            gathers = (
                (c > 0, o - p * p),                           # j3 - 1
                ((c == u - 1) & (d > 0) & (e < p - 1), o - p + 1),
                ((c == u - 1) & (e > 1), o - 2),              # C2, i2 - 2
            )
        else:
            gathers = (
                ((d > 0) & (e < p - 1), o - p + 1),           # δ̄₃ collapse
                (((d == p - 1) | (e == 0)) & (c > 0), o - p * p),
                ((d == p - 1) & (e > 1), o - 2),              # C2, i2 - 2
            )
        for name, (m, q) in zip(("g0", "g1", "g2"), gathers):
            sel = flat(m)
            rec[name + "s"], rec[name + "q"] = _i32(sel), _i32(q[sel])

        sel = flat(e <= p - 2)  # C keep: i2 + 1 <= p
        rec["ks"], rec["kq"] = _i32(sel), _i32(o[sel])
        writes_struct += len(sel)
        # C re-route (from i2 = p): in range iff i1 <= p - 1.
        sel = flat((e == p - 1) & (d <= p - 2))
        rec["r1s"], rec["r1t"] = _i32(sel), _i32(o[sel] + p)
        rec["q1s"] = _i32(flat((e == p - 1) & (d > p - 2)))

        sel = flat(e <= p - 3)  # C2 keep: i2 + 2 <= p
        rec["k2s"], rec["k2q"] = _i32(sel), _i32(o[sel])
        writes_struct += len(sel)
        # C2 re-route class A (from i2 = p-1): in range iff i1 <= p - 1.
        sel = flat((e == p - 2) & (d <= p - 2))
        rec["rAs"], rec["rAt"] = _i32(sel), _i32(o[sel] + p + 1)
        # C2 re-route class B (from i2 = p): in range iff i1 <= p - 2.
        sel = flat((e == p - 1) & (d <= p - 3))
        rec["rBs"], rec["rBt"] = _i32(sel), _i32(o[sel] + 2 * p)
        rec["q2s"] = _i32(flat(
            ((e == p - 2) & (d == p - 1)) | ((e == p - 1) & (d >= p - 2))
        ))
        slots.append(rec)

    program = CompiledMatmulProgram(
        u, p, expansion_key, slots, plan.slot_times, rr_ok,
        counters.reads, counters.causality_checks, writes_struct,
        counters.links,
    )
    program.busy = plan.busy_per_step()
    program.pe_busy = plan.pe_busy()
    program.first = plan.first
    program.last = plan.last
    program.n_points = plan.n_points
    return program


def matmul_program_from_payload(payload: dict) -> CompiledMatmulProgram:
    """Rebuild a program from its artifact-store payload.

    Raises on any malformed/mismatched payload (the runner treats that
    as a cache miss and recompiles).
    """
    if payload.get("version") != KERNEL_PAYLOAD_VERSION:
        raise ValueError("kernel payload version mismatch")
    if payload.get("family") != "matmul":
        raise ValueError("kernel payload family mismatch")
    u, p = int(payload["u"]), int(payload["p"])
    lens = payload["lens"]
    n_slots = len(payload["slot_times"])
    per_name = {}
    for name in _SLOT_ARRAYS:
        blob = base64.b64decode(payload["streams"][name])
        cat = _np.frombuffer(blob, dtype="<i4").astype(_np.int32)
        counts = [int(x) for x in lens[name]]
        if len(counts) != n_slots or sum(counts) != len(cat):
            raise ValueError("kernel payload stream length mismatch")
        parts, pos = [], 0
        for n in counts:
            parts.append(cat[pos:pos + n])
            pos += n
        per_name[name] = parts
    slots = []
    for k, t in enumerate(payload["slot_times"]):
        rec = {"t": int(t)}
        for name in _SLOT_ARRAYS:
            rec[name] = per_name[name][k]
        slots.append(rec)
    links = {str(k): int(v) for k, v in payload["links"].items()}
    program = CompiledMatmulProgram(
        u, p, payload["expansion"], slots, payload["slot_times"],
        payload["rr_ok"], payload["reads"], payload["causality_checks"],
        payload["writes_struct"], links,
    )
    program.busy = {int(t): int(n) for t, n in payload["busy"]}
    program.pe_busy = {
        tuple(int(x) for x in pos): int(n) for pos, n in payload["pe_busy"]
    }
    program.first = int(payload["first"])
    program.last = int(payload["last"])
    program.n_points = int(payload["n_points"])
    return program


# ---------------------------------------------------------------------------
# Source emission
# ---------------------------------------------------------------------------

def _gather(dst_len, sel_name, sel, src, q_name):
    """``v += <src>[q]`` statement, sliced only when the selection is a
    strict subset of the slot block."""
    if len(sel) == dst_len:
        return f"    v += {src}[{q_name}]"
    return f"    v[{sel_name}] += {src}[{q_name}]"


def _emit_matmul_source(program: CompiledMatmulProgram) -> str:
    """Emit the loop-free kernel: one straight-line block per time slot.

    The function closes over nothing; every index plan is a global of the
    ``exec`` environment (``o3``, ``cs3``, ... for slot 3).  Arguments are
    the raveled value arrays; returns ``(max_summands, reroute_writes,
    dropped)`` -- the only data-dependent observables.
    """
    rr1_ok, rrA_ok, rrB_ok = program.rr_ok
    L = [
        "def _kernel(B, S, C, D, N):",
        "    ms = 0",
        "    w = 0",
        "    dd = 0",
    ]
    for k, rec in enumerate(program.slots):
        n = len(rec["o"])
        L.append(f"    # slot t={rec['t']} ({n} points)")
        L.append(f"    v = B[o{k}]")
        if len(rec["cs"]):
            L.append(_gather(n, f"cs{k}", rec["cs"], "C", f"cq{k}"))
        if len(rec["ns"]):
            L.append(_gather(n, f"ns{k}", rec["ns"], "N", f"nq{k}"))
            L.append(f"    N[nq{k}] = 0")
        for g, src in (("g0", "S"), ("g1", "S"), ("g2", "D")):
            if len(rec[g + "s"]):
                L.append(_gather(n, f"{g}s{k}", rec[g + "s"], src, f"{g}q{k}"))
        L.append("    m = int(v.max())")
        L.append(f"    if m > 7: _ovf(o{k}, v)")
        L.append("    if m > ms: ms = m")
        L.append(f"    S[o{k}] = v & 1")

        if len(rec["ks"]) or len(rec["q1s"]) or len(rec["r1s"]):
            L.append("    b = (v >> 1) & 1")
            if len(rec["ks"]):
                src = "b" if len(rec["ks"]) == n else f"b[ks{k}]"
                L.append(f"    C[kq{k}] = {src}")
            if len(rec["q1s"]):
                L.append(f"    dd += int(b[q1s{k}].sum())")
            if len(rec["r1s"]):
                if rr1_ok:
                    L.append(f"    r = b[r1s{k}]")
                    L.append("    w += int(r.sum())")
                    L.append(f"    _add(N, r1t{k}, r)")
                else:
                    L.append(f"    if b[r1s{k}].any(): _bad({rec['t']})")

        has_rr2 = len(rec["rAs"]) or len(rec["rBs"])
        if len(rec["k2s"]) or len(rec["q2s"]) or has_rr2:
            L.append("    b = (v >> 2) & 1")
            if len(rec["k2s"]):
                src = "b" if len(rec["k2s"]) == n else f"b[k2s{k}]"
                L.append(f"    D[k2q{k}] = {src}")
            if len(rec["q2s"]):
                L.append(f"    dd += int(b[q2s{k}].sum())")
            for cls, ok in (("A", rrA_ok), ("B", rrB_ok)):
                if not len(rec[f"r{cls}s"]):
                    continue
                if ok:
                    L.append(f"    r = b[r{cls}s{k}]")
                    L.append("    w += int(r.sum())")
                    L.append(f"    _add(N, r{cls}t{k}, r)")
                else:
                    L.append(f"    if b[r{cls}s{k}].any(): _bad({rec['t']})")
    L.append("    return ms, w, dd")
    return "\n".join(L) + "\n"
