"""The ``compiled`` simulation backend.

Dispatches a :class:`~repro.machine.simulator.SpaceTimeSimulator` run to
a compiled per-design program:

* resolve the program for (design rows, kernel family, size, expansion)
  from the in-process program memo, then the artifact store (kind
  ``"kernel"``, keyed by :func:`repro.cache.keys.kernel_key`), and only
  then by compiling from scratch -- so repeat simulations of a known
  design skip compilation entirely;
* execute it against a fresh
  :class:`~repro.machine.wavefront.DenseValueStore` and assemble the
  :class:`~repro.machine.simulator.SimulationResult` from the program's
  precomputed utilization statistics, emitting metrics through the same
  :func:`~repro.machine.simulator.emit_machine_metrics` as the other
  backends (bit-identical names and values).

``cache.kernel_hits`` / ``cache.kernel_misses`` counters are emitted
only when the disk cache is active (``REPRO_CACHE_DIR``), so cache-off
runs stay metric-identical to the pointwise and wavefront backends.

Kernels the compiler does not know (custom machines, no-NumPy
processes) fall back to the wavefront module's generic shim under the
``compiled`` span label -- every caller keeps working.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro import obs
from repro.cache.keys import kernel_key
from repro.cache.store import resolve_cache
from repro.machine import wavefront
from repro.machine.simulator import SimulationResult, emit_machine_metrics
from repro.compile.matmul import (
    KERNEL_PAYLOAD_VERSION,
    compile_matmul_program,
    matmul_program_from_payload,
)
from repro.compile.word import (
    compile_word_program,
    word_program_from_payload,
)

__all__ = ["run_compiled", "clear_program_memo"]

#: Compiled programs hold O(points) int32 index plans; keep a small
#: in-process working set (a serve process sees a handful of designs).
_MEMO_CAPACITY = 8

_PROGRAMS: "OrderedDict[tuple, object]" = OrderedDict()


def clear_program_memo() -> None:
    """Drop every memoized compiled program (tests/benchmarks force cold
    compiles with this)."""
    _PROGRAMS.clear()


def _memo_put(key, program) -> None:
    _PROGRAMS[key] = program
    _PROGRAMS.move_to_end(key)
    while len(_PROGRAMS) > _MEMO_CAPACITY:
        _PROGRAMS.popitem(last=False)


def _program_for(mapping, family, memo_key, params, compile_fn, load_fn):
    """Memo -> artifact store -> compile, in that order."""
    cache = resolve_cache(None)
    program = _PROGRAMS.get(memo_key)
    if program is not None:
        _PROGRAMS.move_to_end(memo_key)
        if cache is not None:
            obs.count("cache.kernel_hits")
        return program
    disk_key = None
    if cache is not None:
        disk_key = kernel_key(
            family, mapping.rows, params, KERNEL_PAYLOAD_VERSION
        )
        payload = cache.get("kernel", disk_key)
        if payload is not None:
            try:
                program = load_fn(payload)
            except Exception:
                program = None  # corrupt/stale payload: recompile below
        if program is not None:
            obs.count("cache.kernel_hits")
            cache.flush_stats()
            _memo_put(memo_key, program)
            return program
    program = compile_fn()
    if cache is not None:
        obs.count("cache.kernel_misses")
        cache.put("kernel", disk_key, program.to_payload())
        cache.flush_stats()
    _memo_put(memo_key, program)
    return program


def _lazy_pes(mapping, lowers, uppers):
    """PE-map builder deferred to first ``sim.pes`` access (the compiled
    hot path never needs the O(points) firing records)."""

    def build():
        from repro.compile.plan import plan_for

        plan = plan_for(mapping, lowers, uppers)
        return wavefront._pes_materializer(
            plan.lattice, plan.times, plan.procs
        )()

    return build


def _run_program(sim, kernel, program) -> SimulationResult:
    reg = obs.get_registry()
    mapping = sim.mapping
    with obs.span(
        "machine.simulate", mapping=mapping.name, backend="compiled"
    ):
        store = wavefront.DenseValueStore(
            mapping, kernel.lowers, kernel.uppers
        )
        store._registry = reg
        sim.store = store
        busy: dict[int, int] = {}
        pe_busy: dict[tuple[int, ...], int] = {}
        first, last = 0, -1
        if program.n_points:
            counters = program.execute(kernel, store)
            store.reads += counters.reads
            store.writes += counters.writes
            store.causality_checks += counters.causality_checks
            if reg is not None:
                for label in sorted(counters.links):
                    reg.count(label, counters.links[label])
            busy = dict(program.busy)
            pe_busy = dict(program.pe_busy)
            first, last = program.first, program.last
            sim._pes_builder = _lazy_pes(mapping, kernel.lowers, kernel.uppers)
        result = SimulationResult(
            makespan=last - first + 1,
            first_time=first,
            last_time=last,
            computations=program.n_points,
            processor_count=len(pe_busy),
            busy_per_step=busy,
            store_reads=store.reads,
            store_writes=store.writes,
            pe_busy=pe_busy,
        )
    emit_machine_metrics(reg, result, store)
    return result


def run_compiled(sim, compute: Callable, kernel=None) -> SimulationResult:
    """Execute ``sim`` under the ``compiled`` backend.

    Slot kernels the compiler recognizes run through a compiled
    per-design program (memoized, artifact-cached); anything else --
    generic ``compute`` callables, unknown kernels, no-NumPy processes
    -- runs through the wavefront module's batched per-point shim.  The
    result, store contents, and metrics are identical to the other
    backends either way.
    """
    if kernel is not None and wavefront.HAVE_NUMPY:
        mapping = sim.mapping
        if isinstance(kernel, wavefront.MatmulSlotKernel):
            expkey = "I" if kernel.exp1 else "II"
            u, p = kernel.u, kernel.p
            program = _program_for(
                mapping,
                "matmul",
                ("matmul", mapping.rows, u, p, expkey),
                {"u": u, "p": p, "expansion": expkey},
                lambda: compile_matmul_program(mapping, u, p, expkey),
                matmul_program_from_payload,
            )
            return _run_program(sim, kernel, program)
        if isinstance(kernel, wavefront.WordMatmulSlotKernel):
            u = kernel.u
            program = _program_for(
                mapping,
                "word",
                ("word", mapping.rows, u),
                {"u": u},
                lambda: compile_word_program(mapping, u),
                word_program_from_payload,
            )
            return _run_program(sim, kernel, program)
    return wavefront._run_generic(sim, compute, label="compiled")
