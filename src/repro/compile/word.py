"""The design compiler for the word-level baseline array.

The word-level matmul lattice is pure pipelining: ``x`` flows along
``j2``, ``y`` along ``j1``, and ``z`` accumulates along ``j3``.  Once a
design is conflict-checked and its read sites pass the ``Π·d̄ >= 1``
causality census (both compile-time facts), the whole simulation
collapses to three array expressions -- no slot loop at all:

* the final ``x``/``y`` planes are the operand matrices broadcast over
  the pipelining axes (views; nothing is written);
* every product is one batched ``multiply_block`` call over the full
  lattice (the sequential multiplier under test still computes every
  bit, elementwise exactly as the per-slot kernel would);
* the running sums are a ``cumsum`` along ``j3``.

All counters (reads, causality checks, link traffic, ``3N`` writes) are
structural constants folded at compile time, so the program payload is a
small JSON record with no index streams.
"""

from __future__ import annotations

from repro.machine.wavefront import SlotCounters
from repro.mapping.transform import MappingMatrix

try:  # pragma: no cover - runner gates on HAVE_NUMPY
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "CompiledWordProgram",
    "compile_word_program",
    "word_program_from_payload",
]

from repro.compile.matmul import KERNEL_PAYLOAD_VERSION


class CompiledWordProgram:
    """One design's compiled word-level matmul program."""

    family = "word"

    def __init__(self, u, reads, causality_checks, writes_struct, links):
        self.u = int(u)
        self.lowers = (1, 1, 1)
        self.uppers = (u, u, u)
        self.reads = int(reads)
        self.causality_checks = int(causality_checks)
        self.writes_struct = int(writes_struct)
        self.links = dict(links)
        self.busy: dict[int, int] = {}
        self.pe_busy: dict[tuple[int, ...], int] = {}
        self.first = 0
        self.last = -1
        self.n_points = 0

    def execute(self, kernel, store) -> SlotCounters:
        np = _np
        u = self.u
        shape = (u, u, u)
        # x[j1, j3] pipelined along j2; y[j3, j2] pipelined along j1.
        Xv = np.broadcast_to(kernel._x[:, None, :], shape)
        Yv = np.broadcast_to(kernel._y.T[None, :, :], shape)
        products = kernel.multiplier.multiply_block(
            Xv.reshape(-1), Yv.reshape(-1)
        )
        Z = np.asarray(products, dtype=np.int64).reshape(shape).cumsum(axis=2)
        always = np.broadcast_to(np.bool_(True), shape)
        store.attach("x", Xv, always)
        store.attach("y", Yv, always)
        store.attach("z", Z, always)
        return SlotCounters(
            reads=self.reads,
            writes=self.writes_struct,
            causality_checks=self.causality_checks,
            links=dict(self.links),
        )

    def to_payload(self) -> dict:
        return {
            "version": KERNEL_PAYLOAD_VERSION,
            "family": self.family,
            "u": self.u,
            "reads": self.reads,
            "causality_checks": self.causality_checks,
            "writes_struct": self.writes_struct,
            "links": dict(self.links),
            "busy": [[int(t), int(n)] for t, n in sorted(self.busy.items())],
            "pe_busy": [
                [list(pos), int(n)]
                for pos, n in sorted(self.pe_busy.items())
            ],
            "first": int(self.first),
            "last": int(self.last),
            "n_points": int(self.n_points),
        }


def compile_word_program(mapping: MappingMatrix, u: int) -> CompiledWordProgram:
    """Compile the (``T``, ``u``) pair to a word-level program."""
    from repro.compile.plan import plan_for

    plan = plan_for(mapping, (1, 1, 1), (u, u, u))
    lattice = plan.lattice
    j1, j2, j3 = lattice[:, 0], lattice[:, 1], lattice[:, 2]
    counters = SlotCounters()
    counters.account_site(mapping, (0, 1, 0), int((j2 > 1).sum()))
    counters.account_site(mapping, (1, 0, 0), int((j1 > 1).sum()))
    counters.account_site(
        mapping, (0, 0, 1), len(lattice), int((j3 > 1).sum())
    )
    program = CompiledWordProgram(
        u, counters.reads, counters.causality_checks,
        3 * plan.n_points, counters.links,
    )
    program.busy = plan.busy_per_step()
    program.pe_busy = plan.pe_busy()
    program.first = plan.first
    program.last = plan.last
    program.n_points = plan.n_points
    return program


def word_program_from_payload(payload: dict) -> CompiledWordProgram:
    """Rebuild a word program from its artifact-store payload (raises on
    malformed payloads; the runner recompiles)."""
    if payload.get("version") != KERNEL_PAYLOAD_VERSION:
        raise ValueError("kernel payload version mismatch")
    if payload.get("family") != "word":
        raise ValueError("kernel payload family mismatch")
    links = {str(k): int(v) for k, v in payload["links"].items()}
    program = CompiledWordProgram(
        int(payload["u"]), payload["reads"], payload["causality_checks"],
        payload["writes_struct"], links,
    )
    program.busy = {int(t): int(n) for t, n in payload["busy"]}
    program.pe_busy = {
        tuple(int(x) for x in pos): int(n) for pos, n in payload["pe_busy"]
    }
    program.first = int(payload["first"])
    program.last = int(payload["last"])
    program.n_points = int(payload["n_points"])
    return program
