"""Per-design compilation: from a space-time mapping to a specialized kernel.

Once a design ``T`` is fixed, the structure the simulator re-derives per
run -- schedule tables, slot grouping, gather/scatter index plans, the
structural read/write census -- is a constant of the design.  This
package resolves it once:

* :mod:`repro.compile.plan` -- memoized schedule plans (the run-invariant
  lattice/times/slots structure), shared with the wavefront backend;
* :mod:`repro.compile.matmul` / :mod:`repro.compile.word` -- design
  compilers that emit loop-free, ``exec``-compiled NumPy kernels for the
  bit-level and word-level matmul lattices;
* :mod:`repro.compile.runner` -- the ``compiled`` simulation backend:
  program memo, artifact-store persistence (kind ``"kernel"``), and the
  execution harness producing bit-identical results and metrics versus
  the pointwise and wavefront backends.

See ``docs/COMPILE.md``.
"""

from repro.compile.plan import (
    GenericPlan,
    SchedulePlan,
    clear_plan_memo,
    generic_plan_for,
    plan_for,
)

__all__ = [
    "GenericPlan",
    "SchedulePlan",
    "clear_plan_memo",
    "generic_plan_for",
    "plan_for",
    "run_compiled",
    "clear_program_memo",
]


def __getattr__(name):
    # The runner pulls in the machine layer; load it on demand so that
    # importing the plan helpers stays cheap and cycle-free.
    if name in ("run_compiled", "clear_program_memo"):
        from repro.compile import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
