"""Per-design schedule plans: the run-invariant structure, computed once.

Everything the wavefront runner re-derived on every ``simulate`` call --
the box lattice, the batched ``Π j̄`` / ``S j̄`` transforms, the conflict
check, the time-sorted slot grouping, busy-per-step and per-PE busy
counts -- is a constant of ``(T, lowers, uppers)``.  :func:`plan_for`
builds that structure exactly once per design and memoizes it in-process
(an LRU keyed like the mapping engine's ``EvalCache``: by content, not
identity), so repeat simulations of the same design -- the serve tier's
bread and butter -- skip straight to value execution.

Two plan shapes exist:

* :class:`SchedulePlan` (NumPy): dense arrays + slot slices, consumed by
  the wavefront slot kernels and by the :mod:`repro.compile` design
  compiler as the substrate for per-slot index plans;
* :class:`GenericPlan` (pure Python): the point list, batched times /
  processors, and time-bucketed slots used by the generic per-point
  shim, memoized only for plain box index sets (whose point enumeration
  is fully determined by the bounds).

Plans are read-only by convention: consumers receive *copies* of the
mutable per-run statistics (``busy_per_step``, ``pe_busy``) and must not
write into the shared arrays.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from repro.mapping.transform import MappingMatrix
from repro.structures.indexset import IndexSet

try:  # pragma: no cover - both paths exercised by the test suite
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "SchedulePlan",
    "GenericPlan",
    "plan_for",
    "generic_plan_for",
    "clear_plan_memo",
]

#: In-process memo capacity (plans are O(points) memory; a handful of
#: designs is the realistic working set of a serve process).
_MEMO_CAPACITY = 32

_PLAN_MEMO: "OrderedDict[tuple, SchedulePlan]" = OrderedDict()
_GENERIC_MEMO: "OrderedDict[tuple, GenericPlan]" = OrderedDict()


def clear_plan_memo() -> None:
    """Drop every memoized plan (tests and benchmarks use this to force
    cold builds)."""
    _PLAN_MEMO.clear()
    _GENERIC_MEMO.clear()


def _memo_put(memo: OrderedDict, key, value) -> None:
    memo[key] = value
    memo.move_to_end(key)
    while len(memo) > _MEMO_CAPACITY:
        memo.popitem(last=False)


class SchedulePlan:
    """The dense run-invariant schedule structure of one design + box."""

    __slots__ = (
        "lattice", "times", "procs", "order", "slices", "sorted_times",
        "slot_times", "first", "last", "n_points", "_busy", "_pe_busy",
    )

    def __init__(self, lattice, times, procs, order, slices, sorted_times,
                 first, last, busy, pe_busy):
        self.lattice = lattice
        self.times = times
        self.procs = procs
        self.order = order
        self.slices = slices
        self.sorted_times = sorted_times
        self.slot_times = [int(sorted_times[s]) for s, _ in slices]
        self.first = first
        self.last = last
        self.n_points = len(lattice)
        self._busy = busy
        self._pe_busy = pe_busy

    def busy_per_step(self) -> dict[int, int]:
        """Per-time-step busy-PE counts (a fresh dict per caller)."""
        return dict(self._busy)

    def pe_busy(self) -> dict[tuple[int, ...], int]:
        """Per-PE busy-beat counts (a fresh dict per caller)."""
        return dict(self._pe_busy)


def _build_plan(
    mapping: MappingMatrix,
    lowers: Sequence[int],
    uppers: Sequence[int],
) -> SchedulePlan:
    # Imported here (not at module top) purely for the helper functions;
    # wavefront imports this module lazily inside its runner, so the two
    # modules never form an import cycle at load time.
    from repro.machine.wavefront import (
        _box_lattice,
        _check_conflicts,
        _encode_columns,
        _group_counts,
        _slot_slices,
    )

    lattice = _box_lattice(lowers, uppers)
    times = mapping.times_of(lattice)
    procs = mapping.processors_of(lattice)
    if len(lattice):
        _check_conflicts(lattice, times, procs)
        first = int(times.min())
        last = int(times.max())
        order = _np.argsort(times, kind="stable")
        sorted_times = times[order]
        slices = _slot_slices(sorted_times)
        step_values, step_counts = _np.unique(times, return_counts=True)
        busy = {
            int(t): int(n)
            for t, n in zip(step_values.tolist(), step_counts.tolist())
        }
        pe_busy = _group_counts(
            _encode_columns([procs[:, k] for k in range(procs.shape[1])]),
            procs,
        )
    else:
        first, last = 0, -1
        order = _np.zeros(0, dtype=_np.int64)
        sorted_times = times
        slices = []
        busy = {}
        pe_busy = {}
    return SchedulePlan(
        lattice, times, procs, order, slices, sorted_times,
        first, last, busy, pe_busy,
    )


def plan_for(
    mapping: MappingMatrix,
    lowers: Sequence[int],
    uppers: Sequence[int],
) -> SchedulePlan:
    """The (memoized) :class:`SchedulePlan` of ``mapping`` over the box.

    Keyed by the mapping's *rows* (content, like ``EvalCache``), so two
    equal designs share one plan regardless of object identity or name.
    Conflicting designs raise the usual ``ValueError`` and are never
    cached, so the error re-raises on every attempt.
    """
    key = (mapping.rows, tuple(lowers), tuple(uppers))
    plan = _PLAN_MEMO.get(key)
    if plan is not None:
        _PLAN_MEMO.move_to_end(key)
        return plan
    plan = _build_plan(mapping, lowers, uppers)
    _memo_put(_PLAN_MEMO, key, plan)
    return plan


class GenericPlan:
    """The pure-Python plan consumed by the generic per-point shim."""

    __slots__ = ("points", "times", "procs", "slots")

    def __init__(self, points, times, procs, slots):
        self.points = points  # list[tuple[int, ...]]
        self.times = times  # list[int], aligned with points
        self.procs = procs  # list[tuple[int, ...]], aligned with points
        #: ``[(t, [points...]), ...]`` in ascending schedule time
        self.slots = slots


def _build_generic_plan(mapping: MappingMatrix, points) -> GenericPlan:
    points = list(points)
    times = mapping.times_of(points)
    tlist = times.tolist() if hasattr(times, "tolist") else list(times)
    procs = mapping.processors_of(points)
    if hasattr(procs, "tolist"):
        procs = [tuple(row) for row in procs.tolist()]
    else:
        procs = [tuple(row) for row in procs]
    buckets: dict[int, list[tuple[int, ...]]] = {}
    for point, t in zip(points, tlist):
        buckets.setdefault(t, []).append(point)
    slots = [(t, buckets[t]) for t in sorted(buckets)]
    return GenericPlan(points, tlist, procs, slots)


def generic_plan_for(mapping: MappingMatrix, index_set, binding) -> GenericPlan:
    """The (memoized) :class:`GenericPlan` for an algorithm instance.

    Only plain rectangular :class:`~repro.structures.indexset.IndexSet`
    instances are memoized -- their point enumeration is a pure function
    of the concrete bounds, which become the memo key.  Any other index
    set (or unbound parameters) builds a fresh plan every call.
    """
    key = None
    if type(index_set) is IndexSet:
        try:
            bounds = tuple(tuple(b) for b in index_set.bounds(binding))
        except KeyError:
            bounds = None
        if bounds is not None:
            key = (mapping.rows, bounds)
            plan = _GENERIC_MEMO.get(key)
            if plan is not None:
                _GENERIC_MEMO.move_to_end(key)
                return plan
    plan = _build_generic_plan(mapping, index_set.points(binding))
    if key is not None:
        _memo_put(_GENERIC_MEMO, key, plan)
    return plan
