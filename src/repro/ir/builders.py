"""Builders for the paper's concrete programs and word-level structures.

Each builder returns either a :class:`~repro.ir.program.LoopNest` (the
program form used by the general dependence analyzer) or an
:class:`~repro.structures.algorithm.Algorithm` (the distilled ``(J, D, E)``
triplet), mirroring the equations of the paper:

* :func:`matmul_naive` -- program (2.2): single-assignment matmul with
  broadcasts of ``x`` and ``y``;
* :func:`matmul_pipelined` -- program (2.3): broadcast-free pipelined matmul;
* :func:`matmul_word_structure` -- the triplet (2.4);
* :func:`addshift_broadcast` / :func:`addshift_pipelined` -- programs (3.1)
  and (3.3) for the add-shift multiplier;
* :func:`model_1d` -- the 1-D model (3.7);
* :func:`word_model` / :func:`word_model_structure` -- the general model
  (3.5)/(3.6);
* :func:`convolution_word_structure`, :func:`matvec_word_structure` --
  further instances of model (3.5) named in the paper's applicability list.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.expr import AffineExpr, const, var
from repro.ir.program import ArrayAccess, LoopNest, Statement
from repro.structures.algorithm import Algorithm, ComputationSet
from repro.structures.conditions import TRUE
from repro.structures.dependence import DependenceMatrix, DependenceVector
from repro.structures.indexset import IndexSet
from repro.structures.params import LinExpr, S, as_linexpr

__all__ = [
    "matmul_naive",
    "matmul_pipelined",
    "matmul_word_structure",
    "addshift_broadcast",
    "addshift_pipelined",
    "model_1d",
    "word_model",
    "word_model_structure",
    "convolution_word_structure",
    "matvec_word_structure",
    "lu_word_structure",
]


def matmul_naive(u: LinExpr | int | None = None) -> LoopNest:
    """Program (2.2): single-assignment matmul, with broadcasts.

    ``z(j1,j2,j3) = z(j1,j2,j3-1) + x(j1,j3) * y(j3,j2)`` over the cube
    ``1 <= j1,j2,j3 <= u``.  Data ``x(j1,j3)`` is needed by all ``j2`` (a
    broadcast), and ``y(j3,j2)`` by all ``j1``.
    """
    u = S("u") if u is None else as_linexpr(u)
    j1, j2, j3 = var("j1"), var("j2"), var("j3")
    body = [
        Statement(
            "S_z",
            ArrayAccess("z", [j1, j2, j3]),
            [
                ArrayAccess("z", [j1, j2, j3 - 1]),
                ArrayAccess("x", [j1, j3]),
                ArrayAccess("y", [j3, j2]),
            ],
            description="z(j1,j2,j3) = z(j1,j2,j3-1) + x(j1,j3)*y(j3,j2)",
        )
    ]
    return LoopNest(("j1", "j2", "j3"), IndexSet.cube(3, u), body, "matmul-2.2")


def matmul_pipelined(u: LinExpr | int | None = None) -> LoopNest:
    """Program (2.3): broadcast-free pipelined matrix multiplication.

    ``x`` is pipelined along the ``j2`` axis, ``y`` along ``j1``, and ``z``
    accumulates along ``j3``.
    """
    u = S("u") if u is None else as_linexpr(u)
    j1, j2, j3 = var("j1"), var("j2"), var("j3")
    body = [
        Statement(
            "S_x",
            ArrayAccess("x", [j1, j2, j3]),
            [ArrayAccess("x", [j1, j2 - 1, j3])],
            description="x(j̄) = x(j̄ - [0,1,0]ᵀ)",
        ),
        Statement(
            "S_y",
            ArrayAccess("y", [j1, j2, j3]),
            [ArrayAccess("y", [j1 - 1, j2, j3])],
            description="y(j̄) = y(j̄ - [1,0,0]ᵀ)",
        ),
        Statement(
            "S_z",
            ArrayAccess("z", [j1, j2, j3]),
            [
                ArrayAccess("z", [j1, j2, j3 - 1]),
                ArrayAccess("x", [j1, j2, j3]),
                ArrayAccess("y", [j1, j2, j3]),
            ],
            description="z(j̄) = z(j̄ - [0,0,1]ᵀ) + x(j̄)·y(j̄)",
        ),
    ]
    return LoopNest(("j1", "j2", "j3"), IndexSet.cube(3, u), body, "matmul-2.3")


def matmul_word_structure(u: LinExpr | int | None = None) -> Algorithm:
    """The triplet (2.4) for pipelined word-level matrix multiplication.

    ``D`` columns (paper order): ``y: [1,0,0]``, ``x: [0,1,0]``,
    ``z: [0,0,1]``; all uniform.
    """
    u = S("u") if u is None else as_linexpr(u)
    dep = DependenceMatrix(
        [
            DependenceVector([1, 0, 0], ("y",), TRUE),
            DependenceVector([0, 1, 0], ("x",), TRUE),
            DependenceVector([0, 0, 1], ("z",), TRUE),
        ]
    )
    comp = ComputationSet(
        {
            "S_x": "x(j̄) = x(j̄ - d̄₂)",
            "S_y": "y(j̄) = y(j̄ - d̄₁)",
            "S_z": "z(j̄) = z(j̄ - d̄₃) + x(j̄)·y(j̄)",
        }
    )
    return Algorithm(IndexSet.cube(3, u), dep, comp, "matmul-word-level")


def addshift_broadcast(p: LinExpr | int | None = None) -> LoopNest:
    """Program (3.1): add-shift multiplication with broadcasts.

    ``a(i2)`` is broadcast down each column (all ``i1``) and ``b(i1)`` across
    each row (all ``i2``); carry moves east-to-west (``i2`` direction) and the
    partial sum along ``δ̄₃ = [1,-1]``.
    """
    p = S("p") if p is None else as_linexpr(p)
    i1, i2 = var("i1"), var("i2")
    reads_cs = [
        ArrayAccess("a", [i2]),
        ArrayAccess("b", [i1]),
        ArrayAccess("c", [i1, i2 - 1]),
        ArrayAccess("s", [i1 - 1, i2 + 1]),
    ]
    body = [
        Statement(
            "S_c",
            ArrayAccess("c", [i1, i2]),
            reads_cs,
            description="c(ī) = g(a(i2)∧b(i1), c(i1,i2-1), s(i1-1,i2+1))",
        ),
        Statement(
            "S_s",
            ArrayAccess("s", [i1, i2]),
            reads_cs,
            description="s(ī) = f(a(i2)∧b(i1), c(i1,i2-1), s(i1-1,i2+1))",
        ),
    ]
    return LoopNest(
        ("i1", "i2"), IndexSet.cube(2, p, 1).rename(("i1", "i2")), body,
        "add-shift-3.1",
    )


def addshift_pipelined(p: LinExpr | int | None = None) -> LoopNest:
    """Program (3.3): broadcast-free add-shift multiplier.

    Adds pipelining statements ``a(ī)=a(ī-δ̄₁)`` and ``b(ī)=b(ī-δ̄₂)`` with
    ``δ̄₁=[1,0]ᵀ``, ``δ̄₂=[0,1]ᵀ``, ``δ̄₃=[1,-1]ᵀ``.
    """
    p = S("p") if p is None else as_linexpr(p)
    i1, i2 = var("i1"), var("i2")
    reads_cs = [
        ArrayAccess("a", [i1, i2]),
        ArrayAccess("b", [i1, i2]),
        ArrayAccess("c", [i1, i2 - 1]),
        ArrayAccess("s", [i1 - 1, i2 + 1]),
    ]
    body = [
        Statement(
            "S_a",
            ArrayAccess("a", [i1, i2]),
            [ArrayAccess("a", [i1 - 1, i2])],
            description="a(ī) = a(ī - δ̄₁), δ̄₁ = [1,0]ᵀ",
        ),
        Statement(
            "S_b",
            ArrayAccess("b", [i1, i2]),
            [ArrayAccess("b", [i1, i2 - 1])],
            description="b(ī) = b(ī - δ̄₂), δ̄₂ = [0,1]ᵀ",
        ),
        Statement(
            "S_c",
            ArrayAccess("c", [i1, i2]),
            reads_cs,
            description="c(ī) = g(a(ī)∧b(ī), c(ī-δ̄₂), s(ī-δ̄₃))",
        ),
        Statement(
            "S_s",
            ArrayAccess("s", [i1, i2]),
            reads_cs,
            description="s(ī) = f(a(ī)∧b(ī), c(ī-δ̄₂), s(ī-δ̄₃))",
        ),
    ]
    return LoopNest(
        ("i1", "i2"), IndexSet.cube(2, p, 1).rename(("i1", "i2")), body,
        "add-shift-3.3",
    )


def model_1d(
    h1: int = 1,
    h2: int = 1,
    h3: int = 1,
    lower: LinExpr | int = 1,
    upper: LinExpr | int | None = None,
) -> LoopNest:
    """The 1-D model (3.7): ``z(j) = z(j-h3) + x(j-h1 ...)·y(...)``."""
    upper = S("u") if upper is None else as_linexpr(upper)
    j = var("j")
    body = [
        Statement(
            "S_x", ArrayAccess("x", [j]), [ArrayAccess("x", [j - h1])],
            description=f"x(j) = x(j - {h1})",
        ),
        Statement(
            "S_y", ArrayAccess("y", [j]), [ArrayAccess("y", [j - h2])],
            description=f"y(j) = y(j - {h2})",
        ),
        Statement(
            "S_z",
            ArrayAccess("z", [j]),
            [
                ArrayAccess("z", [j - h3]),
                ArrayAccess("x", [j]),
                ArrayAccess("y", [j]),
            ],
            description=f"z(j) = z(j - {h3}) + x(j)·y(j)",
        ),
    ]
    return LoopNest(("j",), IndexSet([lower], [upper], ("j",)), body, "model-3.7")


def word_model(
    h1: Sequence[int],
    h2: Sequence[int],
    h3: Sequence[int],
    lowers: Sequence[LinExpr | int],
    uppers: Sequence[LinExpr | int],
) -> LoopNest:
    """The general word-level model (3.5) as a program.

    ``x(j̄)=x(j̄-h̄₁); y(j̄)=y(j̄-h̄₂); z(j̄)=z(j̄-h̄₃)+x(j̄)·y(j̄)``.
    """
    n = len(h1)
    if not (len(h2) == len(h3) == len(lowers) == len(uppers) == n):
        raise ValueError("h̄ vectors and bounds must share one dimension")
    names = tuple(f"j{i + 1}" for i in range(n))
    idx = [var(name) for name in names]

    def shifted(h: Sequence[int]) -> list[AffineExpr]:
        return [idx[k] - int(h[k]) for k in range(n)]

    body = [
        Statement(
            "S_x", ArrayAccess("x", idx), [ArrayAccess("x", shifted(h1))],
            description="x(j̄) = x(j̄ - h̄₁)",
        ),
        Statement(
            "S_y", ArrayAccess("y", idx), [ArrayAccess("y", shifted(h2))],
            description="y(j̄) = y(j̄ - h̄₂)",
        ),
        Statement(
            "S_z",
            ArrayAccess("z", idx),
            [
                ArrayAccess("z", shifted(h3)),
                ArrayAccess("x", idx),
                ArrayAccess("y", idx),
            ],
            description="z(j̄) = z(j̄ - h̄₃) + x(j̄)·y(j̄)",
        ),
    ]
    return LoopNest(names, IndexSet(lowers, uppers, names), body, "model-3.5")


def word_model_structure(
    h1: Sequence[int],
    h2: Sequence[int],
    h3: Sequence[int],
    lowers: Sequence[LinExpr | int],
    uppers: Sequence[LinExpr | int],
    name: str = "word-model",
) -> Algorithm:
    """The triplet (3.6) for the general model (3.5)."""
    dep = DependenceMatrix(
        [
            DependenceVector(h1, ("x",), TRUE),
            DependenceVector(h2, ("y",), TRUE),
            DependenceVector(h3, ("z",), TRUE),
        ]
    )
    names = tuple(f"j{i + 1}" for i in range(len(h1)))
    comp = ComputationSet(
        {
            "S_x": "x(j̄) = x(j̄ - h̄₁)",
            "S_y": "y(j̄) = y(j̄ - h̄₂)",
            "S_z": "z(j̄) = z(j̄ - h̄₃) + x(j̄)·y(j̄)",
        }
    )
    return Algorithm(IndexSet(lowers, uppers, names), dep, comp, name)


def convolution_word_structure(
    n_points: LinExpr | int | None = None,
    taps: LinExpr | int | None = None,
) -> Algorithm:
    """Word-level 1-D convolution as an instance of model (3.5).

    ``z(j1) = sum_{j2} w(j2) · x(j1 + j2 - 1)``: the weight ``w(j2)`` is
    reused along ``j1`` (``h̄₁ = [1,0]``), the signal sample ``x(j1+j2-1)`` is
    constant along the antidiagonal (``h̄₂ = [1,-1]``), and the accumulation
    runs along ``j2`` (``h̄₃ = [0,1]``).
    """
    n_points = S("u") if n_points is None else as_linexpr(n_points)
    taps = S("k") if taps is None else as_linexpr(taps)
    return word_model_structure(
        [1, 0], [1, -1], [0, 1], [1, 1], [n_points, taps], "convolution-word-level"
    )


def matvec_word_structure(u: LinExpr | int | None = None) -> Algorithm:
    """Word-level matrix-vector product as an instance of model (3.5).

    ``z(j1) = sum_{j2} x(j1,j2) · y(j2)``: ``y(j2)`` is reused along ``j1``
    (``h̄₂ = [1,0]``), the accumulation runs along ``j2`` (``h̄₃ = [0,1]``).
    Each ``x(j1,j2)`` is used exactly once; the model still requires a formal
    pipelining direction for ``x`` and we use ``h̄₁ = [0,1]`` (input skewed
    along rows), which adds no real communication.
    """
    u = S("u") if u is None else as_linexpr(u)
    return word_model_structure(
        [0, 1], [1, 0], [0, 1], [1, 1], [u, u], "matvec-word-level"
    )


def lu_word_structure(n: LinExpr | int | None = None) -> Algorithm:
    """Word-level LU decomposition (Gentleman-Kung, no pivoting).

    The paper's motivating list includes LU decomposition; unlike matmul
    its iteration space is *triangular*:

    .. math:: J = \\{ (i, j, k) : 1 \\le k \\le n,\\;
              k \\le i \\le n,\\; k \\le j \\le n \\}

    with the familiar unit dependence vectors -- ``u(k, j)`` pipelined down
    the columns (``[1,0,0]``), ``l(i, k)`` across the rows (``[0,1,0]``),
    and the active submatrix updated along ``k`` (``[0,0,1]``):
    ``a(i,j,k+1) = a(i,j,k) - l(i,k)·u(k,j)`` with ``l(i,k) =
    a(i,k,k)/u(k,k)`` on the ``j = k`` face.  The triangular domain is an
    exact :class:`~repro.structures.constrained.ConstrainedIndexSet`; the
    mapping machinery handles it through its enumeration fallbacks.
    """
    from repro.structures.constrained import AffineConstraint, ConstrainedIndexSet

    n = S("n") if n is None else as_linexpr(n)
    index_set = ConstrainedIndexSet(
        [1, 1, 1],
        [n, n, n],
        [
            AffineConstraint((1, 0, -1)),  # i - k >= 0
            AffineConstraint((0, 1, -1)),  # j - k >= 0
        ],
        ("i", "j", "k"),
    )
    dep = DependenceMatrix(
        [
            DependenceVector([1, 0, 0], ("u",), TRUE),
            DependenceVector([0, 1, 0], ("l",), TRUE),
            DependenceVector([0, 0, 1], ("a",), TRUE),
        ]
    )
    comp = ComputationSet(
        {
            "S_u": "u(k,j) = a(k,j,k)                       [i = k face]",
            "S_l": "l(i,k) = a(i,k,k) / u(k,k)              [j = k face]",
            "S_a": "a(i,j,k+1) = a(i,j,k) - l(i,k)·u(k,j)   [interior]",
        }
    )
    return Algorithm(index_set, dep, comp, "lu-word-level")
