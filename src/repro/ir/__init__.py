"""Loop-nest intermediate representation.

Programs in the paper are Fortran-like nested DO loops (model (2.1)) whose
statements write and read array elements through affine subscript functions of
the index vector.  This package provides:

* :mod:`repro.ir.expr` -- affine expressions over loop indices with symbolic
  constants;
* :mod:`repro.ir.program` -- statements, guarded regions and
  :class:`~repro.ir.program.LoopNest` programs;
* :mod:`repro.ir.builders` -- the paper's concrete programs: matrix
  multiplication (2.2)/(2.3), the add-shift multiplier (3.1)/(3.3), the 1-D
  model (3.7), convolution and matrix-vector products;
* :mod:`repro.ir.transform` -- single-assignment conversion and
  Fortes-Moldovan broadcast elimination;
* :mod:`repro.ir.expand` -- the bit-level program expander generating the
  explicit ``(n+2)``-dimensional programs of Expansion I / II.
"""

from repro.ir.expr import AffineExpr, var
from repro.ir.program import ArrayAccess, LoopNest, Statement
from repro.ir import builders, expand, transform

__all__ = [
    "AffineExpr",
    "var",
    "ArrayAccess",
    "Statement",
    "LoopNest",
    "builders",
    "transform",
    "expand",
]
