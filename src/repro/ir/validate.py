"""Static validation of loop-nest programs.

Utilities that check the structural premises the rest of the library
relies on, *before* any enumeration:

* :func:`extract_model35` -- recognize the paper's model (3.5) in a program
  and extract its ``(h̄₁, h̄₂, h̄₃)`` vectors;
* :func:`check_guard_partition` -- for each array, the guards of its
  writing statements must partition the index set (at most one writer per
  point; exactly one when requested), the static counterpart of the
  single-assignment premise;
* :func:`uniform_shift` / :func:`check_uniform_shifts` -- detect reads that
  are constant-offset shifts of a write of the same array (the uniform-
  dependence shape all of the paper's machinery assumes).
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.expr import AffineExpr
from repro.ir.program import ArrayAccess, LoopNest
from repro.structures.params import ParamBinding

__all__ = [
    "extract_model35",
    "check_guard_partition",
    "uniform_shift",
    "check_uniform_shifts",
]


def uniform_shift(
    write: ArrayAccess, read: ArrayAccess, index_order: Sequence[str]
) -> list[int] | None:
    """The constant vector ``d̄`` with ``read(j̄) = write(j̄ - d̄)``.

    Returns ``None`` when the accesses are not uniform shifts of each other
    (different arrays, different coefficient structure, or a symbolic
    offset difference).  Only identity-coefficient writes (the
    single-assignment convention ``v(j̄) = ...``) are recognized.
    """
    if write.array != read.array or write.rank != read.rank:
        return None
    if write.rank != len(index_order):
        return None
    shift: list[int] = []
    for k, (w_e, r_e) in enumerate(zip(write.subscripts, read.subscripts)):
        # Write must be exactly the k-th index.
        if w_e.coeff_vector(index_order) != [
            1 if i == k else 0 for i in range(len(index_order))
        ] or not w_e.offset.is_constant or w_e.offset.constant_value() != 0:
            return None
        if r_e.coeff_vector(index_order) != w_e.coeff_vector(index_order):
            return None
        diff = w_e.offset - r_e.offset
        if not diff.is_constant:
            return None
        shift.append(diff.constant_value())
    return shift


def extract_model35(program: LoopNest) -> dict[str, list[int]]:
    """Recognize model (3.5) and return ``{"x": h̄₁, "y": h̄₂, "z": h̄₃}``.

    Requirements checked: statements writing arrays ``x``, ``y``, ``z``
    with identity subscripts; each reads its own array at a constant shift;
    the ``z`` statement additionally reads ``x(j̄)`` and ``y(j̄)`` in place.
    Raises ``ValueError`` with a specific message otherwise.
    """
    order = program.index_names
    shifts: dict[str, list[int]] = {}
    by_target = {s.write.array: s for s in program.statements}
    for name in ("x", "y", "z"):
        stmt = by_target.get(name)
        if stmt is None:
            raise ValueError(f"model (3.5) requires a statement writing {name!r}")
        self_reads = [a for a in stmt.reads if a.array == name]
        if len(self_reads) != 1:
            raise ValueError(
                f"statement for {name!r} must read {name!r} exactly once"
            )
        shift = uniform_shift(stmt.write, self_reads[0], order)
        if shift is None:
            raise ValueError(
                f"the {name!r} recurrence is not a uniform shift"
            )
        shifts[name] = shift
    z_stmt = by_target["z"]
    for operand in ("x", "y"):
        in_place = [
            a for a in z_stmt.reads
            if a.array == operand and uniform_shift(
                by_target[operand].write, a, order
            ) == [0] * program.dim
        ]
        if not in_place:
            raise ValueError(
                f"the z statement must read {operand}(j̄) in place"
            )
    return shifts


def check_guard_partition(
    program: LoopNest,
    binding: ParamBinding,
    require_exactly_one: bool = False,
) -> dict[str, bool]:
    """Per-array check that writer guards never overlap.

    Returns ``{array: ok}``; with ``require_exactly_one`` an array also
    fails when some index point has *no* active writer (useful for value
    arrays like ``s`` that every point must produce).
    """
    writers: dict[str, list] = {}
    for stmt in program.statements:
        writers.setdefault(stmt.write.array, []).append(stmt)
    out: dict[str, bool] = {}
    for array, stmts in writers.items():
        ok = True
        for point in program.index_set.points(binding):
            active = sum(1 for s in stmts if s.active_at(point, binding))
            if active > 1 or (require_exactly_one and active == 0):
                ok = False
                break
        out[array] = ok
    return out


def check_uniform_shifts(program: LoopNest) -> dict[tuple[str, str], list[int]]:
    """All recognized uniform-shift (writer, reader-statement) pairs.

    Returns ``{(array, reader_statement): d̄}`` for every read that is a
    constant shift of that array's write -- the statically-derivable part
    of the dependence structure (guards refine where each shift applies).
    """
    order = program.index_names
    by_target: dict[str, list] = {}
    for stmt in program.statements:
        by_target.setdefault(stmt.write.array, []).append(stmt)
    out: dict[tuple[str, str], list[int]] = {}
    for stmt in program.statements:
        for acc in stmt.reads:
            for writer in by_target.get(acc.array, ()):
                shift = uniform_shift(writer.write, acc, order)
                if shift is not None and any(shift):
                    out[(acc.array, stmt.name)] = shift
    return out
