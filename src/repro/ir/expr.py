"""Affine expressions over loop indices.

An :class:`AffineExpr` is ``sum_i c_i * index_i + const`` where the ``c_i``
are integers and ``const`` may be symbolic
(:class:`~repro.structures.params.LinExpr`), e.g. ``j2 - 1`` or ``i1 + p``.
Array subscripts, loop bounds and guard thresholds are all affine in this
sense (the paper's ``g()``/``h_i()`` are linear functions of ``j̄``).
"""

from __future__ import annotations

from typing import Mapping, Sequence, Union

from repro.structures.params import LinExpr, ParamBinding, as_linexpr

__all__ = ["AffineExpr", "var", "const"]

ExprLike = Union["AffineExpr", LinExpr, int]


class AffineExpr:
    """``sum_i coeffs[name_i] * index_i + offset`` with symbolic offset."""

    __slots__ = ("coeffs", "offset")

    def __init__(
        self,
        coeffs: Mapping[str, int] | None = None,
        offset: LinExpr | int = 0,
    ):
        items: dict[str, int] = {}
        if coeffs:
            for name, c in coeffs.items():
                c = int(c)
                if c != 0:
                    items[name] = c
        self.coeffs: tuple[tuple[str, int], ...] = tuple(sorted(items.items()))
        self.offset: LinExpr = as_linexpr(offset)

    # -- constructors -------------------------------------------------------
    @staticmethod
    def index(name: str) -> "AffineExpr":
        """The expression consisting of the single loop index ``name``."""
        return AffineExpr({name: 1})

    @staticmethod
    def constant(value: LinExpr | int) -> "AffineExpr":
        """A constant (possibly symbolic) expression."""
        return AffineExpr({}, value)

    # -- queries --------------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        """True when no loop index appears (the offset may be symbolic)."""
        return not self.coeffs

    def indices(self) -> frozenset[str]:
        """Loop-index names with nonzero coefficient."""
        return frozenset(name for name, _ in self.coeffs)

    def coeff(self, name: str) -> int:
        """Coefficient of loop index ``name`` (0 if absent)."""
        for n, c in self.coeffs:
            if n == name:
                return c
        return 0

    def evaluate(self, point: Mapping[str, int], binding: ParamBinding) -> int:
        """Evaluate at a concrete index assignment and parameter binding."""
        total = self.offset.evaluate(binding)
        for name, c in self.coeffs:
            total += c * int(point[name])
        return total

    def coeff_vector(self, index_order: Sequence[str]) -> list[int]:
        """Coefficient row aligned to a fixed index ordering."""
        return [self.coeff(name) for name in index_order]

    def substitute(self, mapping: Mapping[str, "AffineExpr"]) -> "AffineExpr":
        """Substitute loop indices by affine expressions (for transforms)."""
        out = AffineExpr({}, self.offset)
        for name, c in self.coeffs:
            repl = mapping.get(name)
            if repl is None:
                out = out + c * AffineExpr.index(name)
            else:
                out = out + c * repl
        return out

    # -- arithmetic -------------------------------------------------------------
    def _as_expr(self, other: ExprLike) -> "AffineExpr":
        if isinstance(other, AffineExpr):
            return other
        return AffineExpr({}, as_linexpr(other))

    def __add__(self, other: ExprLike) -> "AffineExpr":
        other = self._as_expr(other)
        coeffs = dict(self.coeffs)
        for name, c in other.coeffs:
            coeffs[name] = coeffs.get(name, 0) + c
        return AffineExpr(coeffs, self.offset + other.offset)

    __radd__ = __add__

    def __neg__(self) -> "AffineExpr":
        return AffineExpr({n: -c for n, c in self.coeffs}, -self.offset)

    def __sub__(self, other: ExprLike) -> "AffineExpr":
        return self + (-self._as_expr(other))

    def __rsub__(self, other: ExprLike) -> "AffineExpr":
        return self._as_expr(other) + (-self)

    def __mul__(self, k: int) -> "AffineExpr":
        k = int(k)
        return AffineExpr({n: c * k for n, c in self.coeffs}, self.offset * k)

    __rmul__ = __mul__

    # -- identity -------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, LinExpr)):
            other = AffineExpr({}, as_linexpr(other))
        if not isinstance(other, AffineExpr):
            return NotImplemented
        return self.coeffs == other.coeffs and self.offset == other.offset

    def __hash__(self) -> int:
        return hash((self.coeffs, self.offset))

    def __repr__(self) -> str:
        parts = []
        for name, c in self.coeffs:
            if c == 1:
                parts.append(name)
            elif c == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{c}*{name}")
        off = str(self.offset)
        if off != "0" or not parts:
            parts.append(off)
        out = parts[0]
        for piece in parts[1:]:
            out += f" - {piece[1:]}" if piece.startswith("-") else f" + {piece}"
        return out


def var(name: str) -> AffineExpr:
    """Shorthand for :meth:`AffineExpr.index`."""
    return AffineExpr.index(name)


def const(value: LinExpr | int) -> AffineExpr:
    """Shorthand for :meth:`AffineExpr.constant`."""
    return AffineExpr.constant(value)
