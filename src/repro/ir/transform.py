"""Program transformations: single-assignment conversion and broadcast
elimination.

Two preprocessing steps precede dependence analysis in the paper:

1. **Single-assignment conversion** (Example 2.1): an accumulation such as
   ``z(j1,j2) = z(j1,j2) + ...`` writes the same element once per ``j3``
   iteration; extending the array with the missing loop indices yields
   program (2.2), in which every element is written exactly once and only
   flow dependences remain.

2. **Broadcast elimination** (Fortes and Moldovan [2]): a read whose
   subscript map is non-injective over the iteration space (e.g.
   ``x(j1,j3)`` inside a ``(j1,j2,j3)`` nest) means one datum is needed by
   many iterations simultaneously.  Broadcasting is undesirable in VLSI, so
   the datum is *pipelined* instead: a propagation statement
   ``x(j̄) = x(j̄ - d̄)`` is added, with ``d̄`` an integer generator of the
   nullspace of the subscript map, and the original read becomes ``x(j̄)``.
   Applying this to (2.2) yields program (2.3), and to (3.1) yields (3.3).
"""

from __future__ import annotations

from repro.ir.expr import AffineExpr, var
from repro.ir.program import ArrayAccess, LoopNest, Statement
from repro.util.intmath import gcd_list
from repro.util.linalg import integer_nullspace, integer_rank

__all__ = [
    "to_single_assignment",
    "eliminate_broadcasts",
    "broadcast_directions",
]


def _subscript_coeff_matrix(access: ArrayAccess, index_order: tuple[str, ...]):
    """Coefficient matrix of an access: rows = subscripts, cols = loop indices."""
    return [e.coeff_vector(index_order) for e in access.subscripts]


def _is_injective(access: ArrayAccess, index_order: tuple[str, ...]) -> bool:
    """True when distinct iterations always reference distinct elements."""
    mat = _subscript_coeff_matrix(access, index_order)
    if not mat:
        return len(index_order) == 0
    return integer_rank(mat) == len(index_order)


def to_single_assignment(program: LoopNest) -> LoopNest:
    """Convert accumulation statements to single-assignment form.

    Handles the paper's accumulation pattern: a statement whose write access
    is non-injective *and* which reads the identical access (the running
    total).  The write is extended with the loop indices missing from its
    subscripts, and the self-read references the previous iteration of the
    innermost added index (offset ``-1``), exactly as (2.1) becomes (2.2).

    Statements already in single-assignment form pass through unchanged.
    """
    order = program.index_names
    new_statements: list[Statement] = []
    for stmt in program.statements:
        if _is_injective(stmt.write, order):
            new_statements.append(stmt)
            continue
        # Indices absent from the write subscripts (the accumulation axes).
        used = set()
        for e in stmt.write.subscripts:
            used |= e.indices()
        missing = [name for name in order if name not in used]
        if not missing:
            raise NotImplementedError(
                f"cannot single-assign {stmt.name}: write map is non-injective "
                "but mentions every loop index"
            )
        new_write = ArrayAccess(
            stmt.write.array,
            list(stmt.write.subscripts) + [var(name) for name in missing],
        )
        new_reads: list[ArrayAccess] = []
        for acc in stmt.reads:
            if acc == stmt.write:
                # The running total: previous value along the innermost added
                # axis, same value of the other added axes.
                extra: list[AffineExpr] = [var(name) for name in missing]
                extra[-1] = extra[-1] - 1
                new_reads.append(
                    ArrayAccess(acc.array, list(acc.subscripts) + extra)
                )
            else:
                new_reads.append(acc)
        new_statements.append(
            Statement(stmt.name, new_write, new_reads, stmt.guard, stmt.description)
        )
    return LoopNest(
        program.index_names,
        program.index_set,
        new_statements,
        program.name + "+sa",
    )


def broadcast_directions(program: LoopNest) -> dict[str, list[int]]:
    """The broadcast (propagation) direction for each broadcast array.

    For every array read through a non-injective subscript map, return an
    integer generator of the map's nullspace, normalized to be primitive
    (gcd 1) and lexicographically positive.  These are the directions along
    which Fortes-Moldovan pipelining propagates the datum.
    """
    order = program.index_names
    out: dict[str, list[int]] = {}
    for stmt in program.statements:
        for acc in stmt.reads:
            if acc.array in out or acc.array in program.arrays_written():
                continue
            if _is_injective(acc, order):
                continue
            basis = integer_nullspace(_subscript_coeff_matrix(acc, order))
            if len(basis) != 1:
                raise NotImplementedError(
                    f"broadcast of {acc.array} spans a {len(basis)}-dimensional "
                    "direction space; only rank-1 broadcasts are supported"
                )
            d = basis[0]
            g = gcd_list(d)
            if g > 1:
                d = [x // g for x in d]
            # Lexicographically positive orientation so data flow forward.
            first = next((x for x in d if x != 0), 0)
            if first < 0:
                d = [-x for x in d]
            out[acc.array] = d
    return out


def eliminate_broadcasts(program: LoopNest) -> LoopNest:
    """Fortes-Moldovan broadcast elimination.

    Every broadcast array ``v`` (read through a non-injective map, not
    written by the program) is replaced by a full-rank pipelined array:
    a new statement ``v(j̄) = v(j̄ - d̄)`` is prepended and every original
    read of ``v`` becomes ``v(j̄)``.  Applied to :func:`~repro.ir.builders.
    matmul_naive` this reproduces program (2.3); applied to
    :func:`~repro.ir.builders.addshift_broadcast` it reproduces (3.3).
    """
    order = program.index_names
    directions = broadcast_directions(program)
    idx = [var(name) for name in order]

    pipeline_stmts = [
        Statement(
            f"S_{array}_pipe",
            ArrayAccess(array, idx),
            [ArrayAccess(array, [idx[k] - d[k] for k in range(len(order))])],
            description=f"{array}(j̄) = {array}(j̄ - {d})  [broadcast eliminated]",
        )
        for array, d in directions.items()
    ]

    new_statements: list[Statement] = []
    for stmt in program.statements:
        new_reads = [
            ArrayAccess(acc.array, idx) if acc.array in directions else acc
            for acc in stmt.reads
        ]
        new_statements.append(
            Statement(stmt.name, stmt.write, new_reads, stmt.guard, stmt.description)
        )
    return LoopNest(
        program.index_names,
        program.index_set,
        pipeline_stmts + new_statements,
        program.name + "+nobroadcast",
    )
