"""Loop-nest programs: statements with affine accesses and region guards.

A :class:`LoopNest` is the executable form of the paper's model (2.1):

.. code-block:: none

    DO (j1 = l1, u1; ...; jn = ln, un)
        S1(j̄)
        ...
        Sq(j̄)
    END

Each :class:`Statement` writes one array element through an affine subscript
map and reads zero or more elements.  A statement may carry a *guard*
(:class:`~repro.structures.conditions.Condition` over the index tuple), which
is how the explicit bit-level programs express their region structure (e.g.
"pipeline ``x`` along the ``j`` axis only where ``i1 = 1``").

The analyzer in :mod:`repro.depanalysis` treats all statements of one
iteration as a single computation node, matching the paper's convention.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.ir.expr import AffineExpr
from repro.structures.conditions import Condition, TRUE
from repro.structures.indexset import IndexSet
from repro.structures.params import ParamBinding

__all__ = ["ArrayAccess", "Statement", "LoopNest"]


class ArrayAccess:
    """A reference ``array(e_1, ..., e_k)`` with affine subscripts."""

    __slots__ = ("array", "subscripts")

    def __init__(self, array: str, subscripts: Sequence[AffineExpr]):
        self.array = array
        self.subscripts: tuple[AffineExpr, ...] = tuple(subscripts)

    @property
    def rank(self) -> int:
        """Number of subscript positions."""
        return len(self.subscripts)

    def element(
        self, point: Mapping[str, int], binding: ParamBinding
    ) -> tuple[str, tuple[int, ...]]:
        """The concrete array element referenced at ``point``."""
        return self.array, tuple(
            e.evaluate(point, binding) for e in self.subscripts
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArrayAccess):
            return NotImplemented
        return self.array == other.array and self.subscripts == other.subscripts

    def __hash__(self) -> int:
        return hash((self.array, self.subscripts))

    def __repr__(self) -> str:
        subs = ", ".join(map(repr, self.subscripts))
        return f"{self.array}({subs})"


class Statement:
    """One assignment ``write = f(reads...)`` guarded by a region predicate."""

    __slots__ = ("name", "write", "reads", "guard", "description")

    def __init__(
        self,
        name: str,
        write: ArrayAccess,
        reads: Iterable[ArrayAccess] = (),
        guard: Condition = TRUE,
        description: str = "",
    ):
        self.name = name
        self.write = write
        self.reads: tuple[ArrayAccess, ...] = tuple(reads)
        self.guard = guard
        self.description = description

    def active_at(self, point: Sequence[int], binding: ParamBinding) -> bool:
        """True when the statement executes at ``point`` (guard holds)."""
        return self.guard.holds(point, binding)

    def __repr__(self) -> str:
        rhs = ", ".join(map(repr, self.reads))
        guard = "" if self.guard is TRUE else f"  [if {self.guard!r}]"
        return f"{self.name}: {self.write!r} = f({rhs}){guard}"


class LoopNest:
    """An ``n``-dimensional nested DO loop program.

    Parameters
    ----------
    index_names:
        Loop index names, outermost first (``("j1", "j2", "j3")``).
    index_set:
        The iteration space (bounds may be symbolic).
    statements:
        The loop body, in program order.
    name:
        Display name.
    """

    __slots__ = ("index_names", "index_set", "statements", "name")

    def __init__(
        self,
        index_names: Sequence[str],
        index_set: IndexSet,
        statements: Iterable[Statement],
        name: str = "loopnest",
    ):
        if len(index_names) != index_set.dim:
            raise ValueError("index name count does not match index set dimension")
        self.index_names: tuple[str, ...] = tuple(index_names)
        self.index_set = index_set.rename(index_names)
        self.statements: tuple[Statement, ...] = tuple(statements)
        self.name = name

    @property
    def dim(self) -> int:
        """Loop-nest depth ``n`` (the algorithm dimension)."""
        return len(self.index_names)

    def axis(self, index_name: str) -> int:
        """Position of a loop index within the index vector."""
        return self.index_names.index(index_name)

    def point_env(self, point: Sequence[int]) -> dict[str, int]:
        """Map a concrete index tuple to a ``{name: value}`` environment."""
        return dict(zip(self.index_names, point))

    def writes(self) -> list[ArrayAccess]:
        """All write accesses in program order."""
        return [s.write for s in self.statements]

    def arrays_written(self) -> set[str]:
        """Names of arrays written by some statement."""
        return {s.write.array for s in self.statements}

    def arrays_read(self) -> set[str]:
        """Names of arrays read by some statement."""
        return {acc.array for s in self.statements for acc in s.reads}

    def verify_single_assignment(self, binding: ParamBinding) -> bool:
        """Check the paper's single-assignment premise on a concrete instance.

        Every array element must be written at most once over the whole
        execution; the paper assumes this (Section 2) so that no output or
        anti dependences arise.
        """
        written: set[tuple[str, tuple[int, ...]]] = set()
        for point in self.index_set.points(binding):
            env = self.point_env(point)
            for stmt in self.statements:
                if not stmt.active_at(point, binding):
                    continue
                elem = stmt.write.element(env, binding)
                if elem in written:
                    return False
                written.add(elem)
        return True

    def __repr__(self) -> str:
        body = "\n  ".join(map(repr, self.statements))
        return (
            f"LoopNest {self.name!r} over {self.index_set!r}:\n  {body}"
        )
