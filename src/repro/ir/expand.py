"""Explicit bit-level program expansion.

Given a word-level algorithm in the model (3.5) -- pipelining vectors
``h̄₁`` (for ``x``), ``h̄₂`` (for ``y``) and accumulation vector ``h̄₃``
(for ``z``) over an ``n``-dimensional index set -- and a word length ``p``,
this module generates the *explicit* ``(n+2)``-dimensional bit-level program
obtained by replacing every word-level multiply-accumulate with the add-shift
multiplier lattice of Fig. 1c, under either algorithm expansion of Fig. 2:

* **Expansion I** (Fig. 2b / Fig. 3b): the ``p²`` *partial-sum* bits of
  ``z(j̄-h̄₃)`` are forwarded position-wise into iteration ``j̄``; the
  in-lattice collapse ``δ̄₃ = [1,-1]`` runs only in the final word iteration
  ``j_n = u_n``, where second carries ``c'`` also appear.
* **Expansion II** (Fig. 2a / Fig. 3c): every word iteration runs the full
  add-shift lattice (``δ̄₃`` uniform); the ``2p-1`` *final-sum* bits of
  ``z(j̄-h̄₃)`` are injected at the lattice boundary ``i₁ = p`` or
  ``i₂ = 1``, where second carries ``c'`` appear on ``i₁ = p``.

These generated programs are what a general dependence analyzer would have to
chew through; the paper's Theorem 3.1 predicts their dependence structure
without ever materializing them.  :mod:`repro.expansion.verify` runs the
analyzer of :mod:`repro.depanalysis` over these programs to machine-check the
theorem.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.expr import AffineExpr, var
from repro.ir.program import ArrayAccess, LoopNest, Statement
from repro.structures.conditions import Condition, Eq, Ne, Or, TRUE
from repro.structures.indexset import IndexSet
from repro.structures.params import LinExpr, S, as_linexpr

__all__ = ["expand_bit_level", "EXPANSION_I", "EXPANSION_II"]

EXPANSION_I = "I"
EXPANSION_II = "II"


def expand_bit_level(
    h1: Sequence[int],
    h2: Sequence[int],
    h3: Sequence[int],
    lowers: Sequence[LinExpr | int],
    uppers: Sequence[LinExpr | int],
    p: LinExpr | int | None = None,
    expansion: str = EXPANSION_II,
    p2: LinExpr | int | None = None,
) -> LoopNest:
    """Generate the explicit bit-level program for model (3.5).

    Parameters
    ----------
    h1, h2, h3:
        Word-level dependence vectors of ``x``, ``y`` and ``z``.
    lowers, uppers:
        Bounds of the word-level index set ``J_w`` (entries may be symbolic).
    p:
        Word length of the multiplier ``y`` (the ``i1`` extent; symbolic
        ``p`` by default).
    expansion:
        ``"I"`` or ``"II"`` selecting the algorithm expansion.
    p2:
        Word length of the multiplicand ``x`` (the ``i2`` extent); defaults
        to ``p`` (the paper's square lattice).  Passing a different value
        generates the mixed-word-length program matching
        :func:`repro.arith.rectangular.rectangular_addshift_structure`.

    Returns
    -------
    LoopNest
        An ``(n+2)``-dimensional program over indices
        ``(j1, ..., jn, i1, i2)`` with region guards expressing where each
        propagation/summation variant applies.  Arrays:

        ``x``, ``y``
            bit pipelines (one bit per lattice point);
        ``s``
            partial-sum bits (indexed by the full bit-level point);
        ``c``
            full-adder carries flowing along ``i₂``;
        ``c2``
            second carries ``c'`` flowing along ``[0, 0, 2]``.
    """
    if expansion not in (EXPANSION_I, EXPANSION_II):
        raise ValueError(f"unknown expansion {expansion!r}; use 'I' or 'II'")
    n = len(h1)
    if not (len(h2) == len(h3) == len(lowers) == len(uppers) == n):
        raise ValueError("h̄ vectors and bounds must share one dimension")
    p = S("p") if p is None else as_linexpr(p)
    p2 = p if p2 is None else as_linexpr(p2)

    word_names = tuple(f"j{k + 1}" for k in range(n))
    names = word_names + ("i1", "i2")
    jvars = [var(name) for name in word_names]
    i1, i2 = var("i1"), var("i2")
    q: list[AffineExpr] = [*jvars, i1, i2]

    ax_i1, ax_i2 = n, n + 1  # axis positions of the lattice indices
    ax_jn = n - 1  # the innermost word axis j_n
    u_n = as_linexpr(uppers[-1])

    def shift_word(h: Sequence[int]) -> list[AffineExpr]:
        """q̄ - [h̄, 0, 0]ᵀ."""
        return [jvars[k] - int(h[k]) for k in range(n)] + [i1, i2]

    def shift_lattice(d1: int, d2: int) -> list[AffineExpr]:
        """q̄ - [0̄, d1, d2]ᵀ."""
        return [*jvars, i1 - d1, i2 - d2]

    index_set = IndexSet(
        list(lowers) + [1, 1], list(uppers) + [p, p2], names
    )

    on_entry_row = Eq(ax_i1, 1)
    off_entry_row = Ne(ax_i1, 1)
    on_entry_col = Eq(ax_i2, 1)
    off_entry_col = Ne(ax_i2, 1)
    boundary = Or(Eq(ax_i1, p), Eq(ax_i2, 1))  # q̄₂ of Expansion II
    final_word = Eq(ax_jn, u_n)  # j_n = u_n of Expansion I
    not_final_word = Ne(ax_jn, u_n)

    statements: list[Statement] = [
        Statement(
            "S_x_word",
            ArrayAccess("x", q),
            [ArrayAccess("x", shift_word(h1))],
            guard=on_entry_row,
            description="x bits pipelined along j̄ (d̄₁ = [h̄₁,0,0]ᵀ, i₁ = 1)",
        ),
        Statement(
            "S_x_lat",
            ArrayAccess("x", q),
            [ArrayAccess("x", shift_lattice(1, 0))],
            guard=off_entry_row,
            description="x bits pipelined along i₁ (d̄₄, i₁ ≠ 1)",
        ),
        Statement(
            "S_y_word",
            ArrayAccess("y", q),
            [ArrayAccess("y", shift_word(h2))],
            guard=on_entry_col,
            description="y bits pipelined along j̄ (d̄₂ = [h̄₂,0,0]ᵀ, i₂ = 1)",
        ),
        Statement(
            "S_y_lat",
            ArrayAccess("y", q),
            [ArrayAccess("y", shift_lattice(0, 1))],
            guard=off_entry_col,
            description="y bits pipelined along i₂ (d̄₅, i₂ ≠ 1)",
        ),
    ]

    xy = [ArrayAccess("x", q), ArrayAccess("y", q)]
    carry_in = ArrayAccess("c", shift_lattice(0, 1))
    s_chain = ArrayAccess("s", shift_lattice(1, -1))
    z_prev = ArrayAccess("s", shift_word(h3))
    c2_in = ArrayAccess("c2", shift_lattice(0, 2))

    if expansion == EXPANSION_I:
        # Interior word iterations: carry-save accumulation of x∧y into the
        # position-wise partial sums of z(j̄ - h̄₃).
        interior_reads = [*xy, carry_in, z_prev]
        statements.append(
            Statement(
                "S_sum",
                ArrayAccess("s", q),
                interior_reads,
                guard=not_final_word,
                description="s = f(x∧y, c, z-prev partial sums); j_n ≠ u_n",
            )
        )
        statements.append(
            Statement(
                "S_carry",
                ArrayAccess("c", q),
                interior_reads,
                guard=not_final_word,
                description="c = g(x∧y, c, z-prev partial sums); j_n ≠ u_n",
            )
        )
        # Final word iteration: additionally run the δ̄₃ collapse and the
        # second carries c'.
        final_reads = [*xy, carry_in, z_prev, s_chain, c2_in]
        statements.append(
            Statement(
                "S_sum_final",
                ArrayAccess("s", q),
                final_reads,
                guard=final_word,
                description="final collapse: 5-input compressor; j_n = u_n",
            )
        )
        statements.append(
            Statement(
                "S_carry_final",
                ArrayAccess("c", q),
                final_reads,
                guard=final_word,
                description="carry of final collapse; j_n = u_n",
            )
        )
        statements.append(
            Statement(
                "S_carry2_final",
                ArrayAccess("c2", q),
                final_reads,
                guard=final_word,
                description="second carry c' (d̄₇ = [0̄,0,2]ᵀ); j_n = u_n",
            )
        )
    else:  # Expansion II
        southern = Eq(ax_i1, p)
        eastern_only = on_entry_col & Ne(ax_i1, p)
        interior_guard: Condition = Ne(ax_i1, p) & off_entry_col
        # Interior lattice points: plain add-shift full adder.
        interior_reads = [*xy, carry_in, s_chain]
        statements.append(
            Statement(
                "S_sum",
                ArrayAccess("s", q),
                interior_reads,
                guard=interior_guard,
                description="s = f(x∧y, c, s-chain); interior lattice point",
            )
        )
        statements.append(
            Statement(
                "S_carry",
                ArrayAccess("c", q),
                interior_reads,
                guard=interior_guard,
                description="c = g(x∧y, c, s-chain); interior lattice point",
            )
        )
        # Eastern boundary (i₂ = 1, i₁ ≠ p): inject the final bits of
        # z(j̄ - h̄₃), produced at the matching boundary point of the previous
        # word iteration.  No carry arrives at i₂ = 1.
        eastern_reads = [*xy, carry_in, s_chain, z_prev]
        statements.append(
            Statement(
                "S_sum_east",
                ArrayAccess("s", q),
                eastern_reads,
                guard=eastern_only,
                description="s with z(j̄-h̄₃) final-bit injection (i₂ = 1)",
            )
        )
        statements.append(
            Statement(
                "S_carry_east",
                ArrayAccess("c", q),
                eastern_reads,
                guard=eastern_only,
                description="c with z(j̄-h̄₃) final-bit injection (i₂ = 1)",
            )
        )
        # Southern hyperplane (i₁ = p): z injection plus the second carries
        # c' -- four or five bits are summed here.
        southern_reads = [*xy, carry_in, s_chain, z_prev, c2_in]
        statements.append(
            Statement(
                "S_sum_south",
                ArrayAccess("s", q),
                southern_reads,
                guard=southern,
                description="5-input compressor with z injection (i₁ = p)",
            )
        )
        statements.append(
            Statement(
                "S_carry_south",
                ArrayAccess("c", q),
                southern_reads,
                guard=southern,
                description="carry of the i₁ = p compressor",
            )
        )
        statements.append(
            Statement(
                "S_carry2",
                ArrayAccess("c2", q),
                southern_reads,
                guard=southern,
                description="second carry c' (d̄₇ = [0̄,0,2]ᵀ); i₁ = p",
            )
        )

    kind = "expI" if expansion == EXPANSION_I else "expII"
    return LoopNest(names, index_set, statements, f"bitlevel-{kind}")
