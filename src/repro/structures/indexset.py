"""Parametric rectangular index sets (iteration spaces).

Every algorithm in the paper iterates over an integer box
``J = { j̄ : l_i <= j_i <= u_i }`` whose bounds may involve the symbolic
parameters ``p`` (word length) and ``u`` (problem size).  :class:`IndexSet`
stores the bounds symbolically, supports Cartesian products (used by Theorem
3.1: the bit-level index set is ``J_w x J_as``), membership tests, exact
enumeration after parameter instantiation, and cardinality.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from repro.structures.params import LinExpr, ParamBinding, as_linexpr

__all__ = ["IndexSet"]


class IndexSet:
    """An ``n``-dimensional integer box with symbolic bounds.

    Parameters
    ----------
    lowers, uppers:
        Sequences of per-axis inclusive bounds; each entry is an ``int`` or a
        :class:`~repro.structures.params.LinExpr`.
    names:
        Optional axis names (e.g. ``("j1", "j2", "j3", "i1", "i2")``); used
        only for display.
    """

    __slots__ = ("lowers", "uppers", "names")

    def __init__(
        self,
        lowers: Sequence[LinExpr | int],
        uppers: Sequence[LinExpr | int],
        names: Sequence[str] | None = None,
    ):
        if len(lowers) != len(uppers):
            raise ValueError("lowers and uppers must have equal length")
        self.lowers: tuple[LinExpr, ...] = tuple(as_linexpr(b) for b in lowers)
        self.uppers: tuple[LinExpr, ...] = tuple(as_linexpr(b) for b in uppers)
        if names is None:
            names = tuple(f"j{i + 1}" for i in range(len(lowers)))
        if len(names) != len(lowers):
            raise ValueError("names length mismatch")
        self.names: tuple[str, ...] = tuple(names)

    # -- constructors ---------------------------------------------------------
    @staticmethod
    def cube(dim: int, upper: LinExpr | int, lower: LinExpr | int = 1) -> "IndexSet":
        """The box ``{ j̄ : lower <= j_i <= upper }`` in ``dim`` dimensions."""
        return IndexSet([lower] * dim, [upper] * dim)

    def product(self, other: "IndexSet") -> "IndexSet":
        """Cartesian product ``self x other`` (Theorem 3.1's ``J_w x J_as``)."""
        return IndexSet(
            self.lowers + other.lowers,
            self.uppers + other.uppers,
            self.names + other.names,
        )

    def rename(self, names: Sequence[str]) -> "IndexSet":
        """Return a copy with new axis names."""
        return IndexSet(self.lowers, self.uppers, names)

    # -- queries ----------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Number of axes (the algorithm dimension ``n``)."""
        return len(self.lowers)

    def params(self) -> frozenset[str]:
        """All symbolic parameters mentioned by any bound."""
        out: frozenset[str] = frozenset()
        for b in self.lowers + self.uppers:
            out |= b.params()
        return out

    def bounds(self, binding: ParamBinding) -> list[tuple[int, int]]:
        """Concrete per-axis ``(lower, upper)`` bounds under ``binding``."""
        return [
            (lo.evaluate(binding), hi.evaluate(binding))
            for lo, hi in zip(self.lowers, self.uppers)
        ]

    def contains(self, point: Sequence[int], binding: ParamBinding) -> bool:
        """Membership test for a concrete point under ``binding``."""
        if len(point) != self.dim:
            return False
        for x, (lo, hi) in zip(point, self.bounds(binding)):
            if not lo <= x <= hi:
                return False
        return True

    def size(self, binding: ParamBinding) -> int:
        """Number of integer points (``0`` if any axis is empty)."""
        total = 1
        for lo, hi in self.bounds(binding):
            if hi < lo:
                return 0
            total *= hi - lo + 1
        return total

    def points(self, binding: ParamBinding) -> Iterator[tuple[int, ...]]:
        """Iterate over all integer points in lexicographic order."""
        ranges = [range(lo, hi + 1) for lo, hi in self.bounds(binding)]
        return itertools.product(*ranges)

    def corner_min(self, binding: ParamBinding) -> tuple[int, ...]:
        """The lexicographically smallest corner (all lower bounds)."""
        return tuple(lo.evaluate(binding) for lo in self.lowers)

    def corner_max(self, binding: ParamBinding) -> tuple[int, ...]:
        """The corner of all upper bounds."""
        return tuple(hi.evaluate(binding) for hi in self.uppers)

    # -- equality / display -------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IndexSet):
            return NotImplemented
        return self.lowers == other.lowers and self.uppers == other.uppers

    def __hash__(self) -> int:
        return hash((self.lowers, self.uppers))

    def __repr__(self) -> str:
        parts = [
            f"{lo} <= {name} <= {hi}"
            for name, lo, hi in zip(self.names, self.lowers, self.uppers)
        ]
        return "IndexSet{" + ", ".join(parts) + "}"
