"""Algorithm dependence structures: the triplet ``(J, D, E)``.

The paper characterizes an algorithm by a triplet ``A = (J, D, E)`` where

* ``J`` is the *index set* (iteration space) -- here a parametric integer box,
  :class:`repro.structures.IndexSet`;
* ``D`` is the *dependence matrix* whose columns are the distinct dependence
  vectors, each optionally restricted to a validity subdomain of ``J`` --
  :class:`repro.structures.DependenceVector` and
  :class:`repro.structures.DependenceMatrix`;
* ``E`` records the computations performed in each iteration --
  :class:`repro.structures.ComputationSet`.

Bounds and validity conditions may reference symbolic parameters (the word
length ``p``, the problem size ``u``) through :class:`repro.structures.LinExpr`
so the structures can be stated exactly as in the paper, then instantiated
numerically for enumeration and simulation.
"""

from repro.structures.params import LinExpr, ParamBinding, S
from repro.structures.conditions import (
    And,
    Condition,
    Eq,
    FALSE,
    Ne,
    Not,
    Or,
    TRUE,
)
from repro.structures.indexset import IndexSet
from repro.structures.constrained import AffineConstraint, ConstrainedIndexSet
from repro.structures.dependence import DependenceMatrix, DependenceVector
from repro.structures.algorithm import Algorithm, ComputationSet

__all__ = [
    "LinExpr",
    "ParamBinding",
    "S",
    "Condition",
    "Eq",
    "Ne",
    "And",
    "Or",
    "Not",
    "TRUE",
    "FALSE",
    "IndexSet",
    "AffineConstraint",
    "ConstrainedIndexSet",
    "DependenceVector",
    "DependenceMatrix",
    "Algorithm",
    "ComputationSet",
]
