"""Linear symbolic expressions over named integer parameters.

The paper states index sets and validity conditions parametrically: the
add-shift multiplier lattice is ``1 <= i1, i2 <= p`` for a symbolic word
length ``p``; the bit-level matmul set is ``1 <= j_i <= u``.  To mirror that,
bounds and condition right-hand sides are :class:`LinExpr` values -- integer
linear combinations of named parameters plus a constant -- which can be
compared symbolically and instantiated with a :class:`ParamBinding`.

Only linear expressions are needed anywhere in the paper, which keeps this
layer tiny and exact.

>>> p = S("p")
>>> (2 * p - 1).evaluate({"p": 4})
7
>>> p + 1 == S("p") + 1
True
"""

from __future__ import annotations

from typing import Mapping, Union

__all__ = ["LinExpr", "S", "ParamBinding", "as_linexpr"]

ParamBinding = Mapping[str, int]
ExprLike = Union["LinExpr", int]


class LinExpr:
    """An integer linear expression ``const + sum_k coeff_k * param_k``.

    Immutable and hashable; supports ``+``, ``-``, ``*`` (by int), equality,
    and evaluation under a parameter binding.
    """

    __slots__ = ("const", "coeffs")

    def __init__(self, const: int = 0, coeffs: Mapping[str, int] | None = None):
        self.const = int(const)
        items = {}
        if coeffs:
            for name, c in coeffs.items():
                c = int(c)
                if c != 0:
                    items[name] = c
        # Canonical (sorted) tuple form keeps hashing/equality deterministic.
        self.coeffs: tuple[tuple[str, int], ...] = tuple(sorted(items.items()))

    # -- constructors -----------------------------------------------------
    @staticmethod
    def symbol(name: str) -> "LinExpr":
        """The expression consisting of a single parameter."""
        return LinExpr(0, {name: 1})

    @staticmethod
    def constant(value: int) -> "LinExpr":
        """The constant expression ``value``."""
        return LinExpr(int(value))

    # -- queries -----------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        """True when no parameter appears."""
        return not self.coeffs

    def constant_value(self) -> int:
        """Return the integer value of a constant expression."""
        if not self.is_constant:
            raise ValueError(f"{self!r} is not constant")
        return self.const

    def params(self) -> frozenset[str]:
        """Names of the parameters appearing with nonzero coefficient."""
        return frozenset(name for name, _ in self.coeffs)

    def evaluate(self, binding: ParamBinding) -> int:
        """Evaluate under ``binding``; raises ``KeyError`` on missing params."""
        total = self.const
        for name, c in self.coeffs:
            total += c * int(binding[name])
        return total

    # -- arithmetic ----------------------------------------------------------
    def _coeff_dict(self) -> dict[str, int]:
        return dict(self.coeffs)

    def __add__(self, other: ExprLike) -> "LinExpr":
        other = as_linexpr(other)
        coeffs = self._coeff_dict()
        for name, c in other.coeffs:
            coeffs[name] = coeffs.get(name, 0) + c
        return LinExpr(self.const + other.const, coeffs)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr(-self.const, {name: -c for name, c in self.coeffs})

    def __sub__(self, other: ExprLike) -> "LinExpr":
        return self + (-as_linexpr(other))

    def __rsub__(self, other: ExprLike) -> "LinExpr":
        return as_linexpr(other) + (-self)

    def __mul__(self, k: int) -> "LinExpr":
        if isinstance(k, LinExpr):
            if k.is_constant:
                k = k.const
            else:
                raise TypeError("LinExpr supports multiplication by integers only")
        k = int(k)
        return LinExpr(self.const * k, {name: c * k for name, c in self.coeffs})

    __rmul__ = __mul__

    # -- comparison / hashing ------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            other = LinExpr(other)
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self.const == other.const and self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash((self.const, self.coeffs))

    # -- formatting ------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinExpr({self})"

    def __str__(self) -> str:
        parts: list[str] = []
        for name, c in self.coeffs:
            if c == 1:
                parts.append(name)
            elif c == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{c}*{name}")
        if self.const or not parts:
            parts.append(str(self.const))
        out = parts[0]
        for piece in parts[1:]:
            out += f" - {piece[1:]}" if piece.startswith("-") else f" + {piece}"
        return out


def S(name: str) -> LinExpr:
    """Shorthand for :meth:`LinExpr.symbol` -- ``S("p")`` is the parameter p."""
    return LinExpr.symbol(name)


def as_linexpr(value: ExprLike) -> LinExpr:
    """Coerce an ``int`` or :class:`LinExpr` into a :class:`LinExpr`."""
    if isinstance(value, LinExpr):
        return value
    if isinstance(value, int):
        return LinExpr(value)
    raise TypeError(f"cannot interpret {value!r} as a linear expression")
