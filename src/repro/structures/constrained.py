"""Affine-constrained index sets (triangular and trapezoidal domains).

The paper's motivating list includes LU decomposition, whose iteration
space is a *triangular* prism (``k <= i, j``), not a box.
:class:`ConstrainedIndexSet` extends the box :class:`~repro.structures.
indexset.IndexSet` with affine inequality constraints
``Σ_k c_k·j_k + offset >= 0``; membership, enumeration and cardinality are
exact, while the inherited box bounds act as a (documented) bounding box.

Consumers that reason through the bounding box stay *safe* but may be
conservative; the ones where exactness matters are taught to detect the
``is_constrained`` flag and fall back to enumeration
(:func:`repro.mapping.schedule.execution_time`,
:func:`repro.mapping.conflicts.is_conflict_free`).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.structures.indexset import IndexSet
from repro.structures.params import LinExpr, ParamBinding, as_linexpr

__all__ = ["AffineConstraint", "ConstrainedIndexSet"]


class AffineConstraint:
    """The half-space ``Σ_k coeffs[k]·j_k + offset >= 0``."""

    __slots__ = ("coeffs", "offset")

    def __init__(self, coeffs: Sequence[int], offset: LinExpr | int = 0):
        self.coeffs: tuple[int, ...] = tuple(int(c) for c in coeffs)
        self.offset: LinExpr = as_linexpr(offset)

    def holds(self, point: Sequence[int], binding: ParamBinding) -> bool:
        total = self.offset.evaluate(binding)
        for c, x in zip(self.coeffs, point):
            total += c * x
        return total >= 0

    def params(self) -> frozenset[str]:
        return self.offset.params()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffineConstraint):
            return NotImplemented
        return self.coeffs == other.coeffs and self.offset == other.offset

    def __hash__(self) -> int:
        return hash((self.coeffs, self.offset))

    def __repr__(self) -> str:
        terms = [
            f"{c:+d}*j{k + 1}" for k, c in enumerate(self.coeffs) if c != 0
        ]
        expr = " ".join(terms) or "0"
        off = str(self.offset)
        return f"{expr} + {off} >= 0"


class ConstrainedIndexSet(IndexSet):
    """A box intersected with affine half-spaces."""

    __slots__ = ("constraints",)

    #: duck-typed marker consulted by exactness-sensitive consumers
    is_constrained = True

    def __init__(
        self,
        lowers: Sequence[LinExpr | int],
        uppers: Sequence[LinExpr | int],
        constraints: Sequence[AffineConstraint] = (),
        names: Sequence[str] | None = None,
    ):
        super().__init__(lowers, uppers, names)
        self.constraints: tuple[AffineConstraint, ...] = tuple(constraints)
        for c in self.constraints:
            if len(c.coeffs) != self.dim:
                raise ValueError(
                    f"constraint arity {len(c.coeffs)} does not match "
                    f"dimension {self.dim}"
                )

    # -- exact set semantics --------------------------------------------------
    def contains(self, point: Sequence[int], binding: ParamBinding) -> bool:
        if not super().contains(point, binding):
            return False
        return all(c.holds(point, binding) for c in self.constraints)

    def points(self, binding: ParamBinding) -> Iterator[tuple[int, ...]]:
        for point in super().points(binding):
            if all(c.holds(point, binding) for c in self.constraints):
                yield point

    def size(self, binding: ParamBinding) -> int:
        return sum(1 for _ in self.points(binding))

    def params(self) -> frozenset[str]:
        out = super().params()
        for c in self.constraints:
            out |= c.params()
        return out

    # -- structure-preserving rebuilds -----------------------------------------
    def rename(self, names: Sequence[str]) -> "ConstrainedIndexSet":
        return ConstrainedIndexSet(
            self.lowers, self.uppers, self.constraints, names
        )

    def product(self, other: IndexSet) -> "ConstrainedIndexSet":
        """Cartesian product; constraints are padded to the joint space."""
        mine = [
            AffineConstraint(c.coeffs + (0,) * other.dim, c.offset)
            for c in self.constraints
        ]
        theirs = [
            AffineConstraint((0,) * self.dim + c.coeffs, c.offset)
            for c in getattr(other, "constraints", ())
        ]
        return ConstrainedIndexSet(
            self.lowers + other.lowers,
            self.uppers + other.uppers,
            mine + theirs,
            self.names + other.names,
        )

    # -- identity -----------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstrainedIndexSet):
            if isinstance(other, IndexSet):
                return not self.constraints and super().__eq__(other)
            return NotImplemented
        return (
            super().__eq__(other)
            and set(self.constraints) == set(other.constraints)
        )

    def __hash__(self) -> int:
        return hash((self.lowers, self.uppers, frozenset(self.constraints)))

    def __repr__(self) -> str:
        base = super().__repr__()
        if not self.constraints:
            return base
        cons = "; ".join(map(repr, self.constraints))
        return base[:-1] + f" | {cons}}}"
