"""Validity conditions for conditional dependence vectors.

Most dependence vectors in a bit-level expansion are *not* uniform: they are
valid only on a subdomain of the index set.  The paper annotates each column
of the dependence matrix with a predicate such as ``i1 = 1``, ``i2 != 1``,
``j_n = u_n``, or ``i1 = p or i2 = 1`` (the boundary set ``q̄₂`` of
Expansion I).  This module provides a tiny closed predicate algebra over
index-point coordinates whose right-hand sides may be symbolic
(:class:`repro.structures.params.LinExpr`):

* atoms: :class:`Eq` (coordinate equals expression), :class:`Ne`
  (coordinate differs from expression), :data:`TRUE`, :data:`FALSE`;
* combinators: :class:`And`, :class:`Or`, :class:`Not`.

Conditions evaluate on concrete points given a parameter binding, can be
*shifted* to new axis positions (used when embedding the 2-D arithmetic
structure into an ``(n+2)``-dimensional bit-level structure), and have
canonical equality so derived structures can be compared against the paper's
matrices verbatim.
"""

from __future__ import annotations

from typing import Sequence

from repro.structures.params import LinExpr, ParamBinding, as_linexpr

__all__ = ["Condition", "Eq", "Ne", "And", "Or", "Not", "TRUE", "FALSE"]


class Condition:
    """Abstract predicate over index points ``q̄`` (tuples of ints)."""

    def holds(self, point: Sequence[int], binding: ParamBinding) -> bool:
        """Return True when the predicate holds at ``point`` under ``binding``."""
        raise NotImplementedError

    def shift_axes(self, offset: int) -> "Condition":
        """Return the same predicate with every axis index moved by ``offset``."""
        raise NotImplementedError

    def params(self) -> frozenset[str]:
        """Symbolic parameters mentioned by the predicate."""
        raise NotImplementedError

    # Convenience combinators -------------------------------------------------
    def __and__(self, other: "Condition") -> "Condition":
        return And(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return Or(self, other)

    def __invert__(self) -> "Condition":
        return Not(self)


class _True(Condition):
    """The always-true predicate: the dependence vector is *uniform*."""

    def holds(self, point: Sequence[int], binding: ParamBinding) -> bool:
        return True

    def shift_axes(self, offset: int) -> "Condition":
        return self

    def params(self) -> frozenset[str]:
        return frozenset()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _True)

    def __hash__(self) -> int:
        return hash("TRUE")

    def __repr__(self) -> str:
        return "TRUE"


class _False(Condition):
    """The always-false predicate (empty validity domain)."""

    def holds(self, point: Sequence[int], binding: ParamBinding) -> bool:
        return False

    def shift_axes(self, offset: int) -> "Condition":
        return self

    def params(self) -> frozenset[str]:
        return frozenset()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _False)

    def __hash__(self) -> int:
        return hash("FALSE")

    def __repr__(self) -> str:
        return "FALSE"


TRUE = _True()
FALSE = _False()


class Eq(Condition):
    """``point[axis] == value`` where ``value`` may be symbolic."""

    __slots__ = ("axis", "value")

    def __init__(self, axis: int, value: LinExpr | int):
        self.axis = int(axis)
        self.value = as_linexpr(value)

    def holds(self, point: Sequence[int], binding: ParamBinding) -> bool:
        return point[self.axis] == self.value.evaluate(binding)

    def shift_axes(self, offset: int) -> "Condition":
        return Eq(self.axis + offset, self.value)

    def params(self) -> frozenset[str]:
        return self.value.params()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Eq)
            and self.axis == other.axis
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash(("Eq", self.axis, self.value))

    def __repr__(self) -> str:
        return f"q[{self.axis}] == {self.value}"


class Ne(Condition):
    """``point[axis] != value`` where ``value`` may be symbolic."""

    __slots__ = ("axis", "value")

    def __init__(self, axis: int, value: LinExpr | int):
        self.axis = int(axis)
        self.value = as_linexpr(value)

    def holds(self, point: Sequence[int], binding: ParamBinding) -> bool:
        return point[self.axis] != self.value.evaluate(binding)

    def shift_axes(self, offset: int) -> "Condition":
        return Ne(self.axis + offset, self.value)

    def params(self) -> frozenset[str]:
        return self.value.params()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Ne)
            and self.axis == other.axis
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash(("Ne", self.axis, self.value))

    def __repr__(self) -> str:
        return f"q[{self.axis}] != {self.value}"


def _flatten(kind: type, terms: Sequence[Condition]) -> tuple[Condition, ...]:
    out: list[Condition] = []
    for t in terms:
        if isinstance(t, kind):
            out.extend(t.terms)  # type: ignore[attr-defined]
        else:
            out.append(t)
    # Deduplicate while preserving order (conditions are hashable).
    seen: set[Condition] = set()
    uniq = []
    for t in out:
        if t not in seen:
            seen.add(t)
            uniq.append(t)
    return tuple(uniq)


class And(Condition):
    """Conjunction of conditions; flattens and deduplicates its terms."""

    __slots__ = ("terms",)

    def __init__(self, *terms: Condition):
        flat = _flatten(And, terms)
        flat = tuple(t for t in flat if t is not TRUE and not isinstance(t, _True))
        self.terms = flat

    def holds(self, point: Sequence[int], binding: ParamBinding) -> bool:
        return all(t.holds(point, binding) for t in self.terms)

    def shift_axes(self, offset: int) -> "Condition":
        return And(*(t.shift_axes(offset) for t in self.terms))

    def params(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for t in self.terms:
            out |= t.params()
        return out

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and set(self.terms) == set(other.terms)

    def __hash__(self) -> int:
        return hash(("And", frozenset(self.terms)))

    def __repr__(self) -> str:
        if not self.terms:
            return "TRUE"
        return "(" + " and ".join(map(repr, self.terms)) + ")"


class Or(Condition):
    """Disjunction of conditions; flattens and deduplicates its terms."""

    __slots__ = ("terms",)

    def __init__(self, *terms: Condition):
        flat = _flatten(Or, terms)
        flat = tuple(t for t in flat if not isinstance(t, _False))
        self.terms = flat

    def holds(self, point: Sequence[int], binding: ParamBinding) -> bool:
        return any(t.holds(point, binding) for t in self.terms)

    def shift_axes(self, offset: int) -> "Condition":
        return Or(*(t.shift_axes(offset) for t in self.terms))

    def params(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for t in self.terms:
            out |= t.params()
        return out

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Or) and set(self.terms) == set(other.terms)

    def __hash__(self) -> int:
        return hash(("Or", frozenset(self.terms)))

    def __repr__(self) -> str:
        if not self.terms:
            return "FALSE"
        return "(" + " or ".join(map(repr, self.terms)) + ")"


class Not(Condition):
    """Negation of a condition."""

    __slots__ = ("term",)

    def __init__(self, term: Condition):
        self.term = term

    def holds(self, point: Sequence[int], binding: ParamBinding) -> bool:
        return not self.term.holds(point, binding)

    def shift_axes(self, offset: int) -> "Condition":
        return Not(self.term.shift_axes(offset))

    def params(self) -> frozenset[str]:
        return self.term.params()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and self.term == other.term

    def __hash__(self) -> int:
        return hash(("Not", self.term))

    def __repr__(self) -> str:
        return f"not {self.term!r}"
