"""The algorithm triplet ``A = (J, D, E)``.

:class:`Algorithm` bundles an index set, a dependence matrix, and the set of
computations ``E`` performed per iteration.  For the purposes of space-time
mapping only ``(J, D)`` matter, but ``E`` is retained so the systolic-array
simulator can execute the algorithm functionally (each computation is a
Python callable over the local input bits/words).
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from repro.structures.dependence import DependenceMatrix, DependenceVector
from repro.structures.indexset import IndexSet
from repro.structures.params import ParamBinding

__all__ = ["ComputationSet", "Algorithm"]


class ComputationSet:
    """The computations ``E`` of an algorithm.

    Stored as a mapping from statement name to a human-readable description
    plus an optional executable semantic function.  The semantic function, when
    provided, has signature ``fn(point, inputs) -> outputs`` with ``inputs`` /
    ``outputs`` being dicts keyed by variable name; it is consumed by
    :mod:`repro.machine` for functional simulation.
    """

    __slots__ = ("statements", "semantics")

    def __init__(
        self,
        statements: Mapping[str, str] | Iterable[tuple[str, str]] = (),
        semantics: Callable[..., Mapping[str, int]] | None = None,
    ):
        self.statements: tuple[tuple[str, str], ...] = tuple(
            statements.items() if isinstance(statements, Mapping) else statements
        )
        self.semantics = semantics

    def names(self) -> list[str]:
        """Statement names in declaration order."""
        return [name for name, _ in self.statements]

    def __repr__(self) -> str:
        return "ComputationSet[" + "; ".join(f"{n}: {d}" for n, d in self.statements) + "]"


class Algorithm:
    """An algorithm characterized by the triplet ``(J, D, E)``.

    Parameters
    ----------
    index_set:
        The iteration space ``J``.
    dependences:
        The dependence matrix ``D`` (distinct dependence vectors with their
        validity subdomains).
    computations:
        The computation set ``E``; optional for purely structural work.
    name:
        Display name.
    """

    __slots__ = ("index_set", "dependences", "computations", "name")

    def __init__(
        self,
        index_set: IndexSet,
        dependences: DependenceMatrix | Iterable[DependenceVector],
        computations: ComputationSet | None = None,
        name: str = "algorithm",
    ):
        if not isinstance(dependences, DependenceMatrix):
            dependences = DependenceMatrix(dependences)
        if dependences.vectors and dependences.dim != index_set.dim:
            raise ValueError(
                f"dependence dimension {dependences.dim} does not match "
                f"index set dimension {index_set.dim}"
            )
        self.index_set = index_set
        self.dependences = dependences
        self.computations = computations or ComputationSet()
        self.name = name

    # -- paper terminology -------------------------------------------------
    @property
    def dim(self) -> int:
        """The algorithm dimension ``n`` (number of nested loops)."""
        return self.index_set.dim

    @property
    def is_uniform(self) -> bool:
        """True for a *uniform dependence algorithm* (all vectors uniform)."""
        return self.dependences.is_uniform

    def check_dependences_inside(self, binding: ParamBinding) -> bool:
        """Sanity check: for every point ``q̄`` where a vector ``d̄`` is valid,
        the source ``q̄ - d̄`` lies inside ``J`` or on its input boundary.

        The paper treats boundary reads (initial values like ``z(j₁,j₂,0)=0``)
        as external inputs, so a source strictly outside ``J`` is permitted
        only when it is reachable by a single ``d̄`` step across a face.  For
        uniform structures this is automatic; the check here validates that at
        least *some* valid point has its source inside ``J`` for each vector
        (guarding against dependence vectors that never connect two iterations).
        """
        for vec in self.dependences:
            connects = False
            for point in self.index_set.points(binding):
                if not vec.valid_at(point, binding):
                    continue
                src = tuple(x - d for x, d in zip(point, vec.vector))
                if self.index_set.contains(src, binding):
                    connects = True
                    break
            if not connects:
                return False
        return True

    def dependence_edges(
        self, binding: ParamBinding
    ) -> list[tuple[tuple[int, ...], tuple[int, ...], DependenceVector]]:
        """All concrete dependence edges ``(source, sink, d̄)`` inside ``J``.

        Only edges whose both endpoints lie in the instantiated index set are
        reported; boundary inputs are not edges.
        """
        edges = []
        for point in self.index_set.points(binding):
            for vec in self.dependences.valid_vectors_at(point, binding):
                src = tuple(x - d for x, d in zip(point, vec.vector))
                if self.index_set.contains(src, binding):
                    edges.append((src, point, vec))
        return edges

    def __repr__(self) -> str:
        kind = "uniform" if self.is_uniform else "conditional"
        return (
            f"Algorithm({self.name!r}, dim={self.dim}, "
            f"{len(self.dependences)} {kind} dependence vectors)"
        )
