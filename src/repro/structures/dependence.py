"""Dependence vectors and dependence matrices.

A dependence pair ``(j̄, d̄)`` records that iteration ``j̄`` depends on
iteration ``j̄ - d̄``.  A :class:`DependenceVector` is the distilled form used
by the paper's dependence matrices: the integer vector ``d̄``, the variable
that causes it (the column labels ``x``, ``y``, ``z``, ``c``, ``c'`` on top of
the paper's matrices), and the *validity condition* -- the subdomain of the
index set at which the dependence holds.  A vector with validity ``TRUE`` is
*uniform* in the paper's sense.

A :class:`DependenceMatrix` is an ordered collection of distinct dependence
vectors (the columns of ``D``) with helpers to view the plain integer matrix,
compare structurally against a reference (e.g. the paper's eq. (3.12)), and
enumerate validity domains.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.structures.conditions import Condition, TRUE
from repro.structures.indexset import IndexSet
from repro.structures.params import ParamBinding

__all__ = ["DependenceVector", "DependenceMatrix"]


class DependenceVector:
    """A (possibly conditional) dependence vector.

    Parameters
    ----------
    vector:
        The integer difference ``d̄ = j̄ - j̄'`` between the dependent and the
        depended-on iteration.
    causes:
        Names of the variables responsible (``("x",)``, ``("y", "c")``, ...).
    validity:
        Predicate on index points at which the dependence is valid; ``TRUE``
        means the vector is uniform.
    """

    __slots__ = ("vector", "causes", "validity")

    def __init__(
        self,
        vector: Sequence[int],
        causes: Iterable[str] = (),
        validity: Condition = TRUE,
    ):
        self.vector: tuple[int, ...] = tuple(int(x) for x in vector)
        self.causes: tuple[str, ...] = tuple(causes)
        self.validity = validity

    @property
    def dim(self) -> int:
        """Dimensionality of the vector."""
        return len(self.vector)

    @property
    def is_uniform(self) -> bool:
        """True when the vector is valid at every index point."""
        return self.validity == TRUE

    def valid_at(self, point: Sequence[int], binding: ParamBinding) -> bool:
        """True when the dependence is valid at ``point`` under ``binding``."""
        return self.validity.holds(point, binding)

    def prefixed(self, zeros: int, axis_offset: int | None = None) -> "DependenceVector":
        """Prefix the vector with ``zeros`` zero components.

        This is the paper's construction "``δ̄₁`` prefixed by a zero
        corresponding to the ``j`` axis": embedding an arithmetic-level
        dependence into the bit-level space.  The validity condition's axes
        are shifted accordingly (by ``zeros`` unless overridden).
        """
        if axis_offset is None:
            axis_offset = zeros
        return DependenceVector(
            (0,) * zeros + self.vector,
            self.causes,
            self.validity.shift_axes(axis_offset),
        )

    def suffixed(self, zeros: int) -> "DependenceVector":
        """Append ``zeros`` zero components (word-level vector ``h̄`` into
        the bit-level space ``[h̄ᵀ, 0, 0]ᵀ``); validity axes are unchanged."""
        return DependenceVector((*self.vector, *((0,) * zeros)), self.causes, self.validity)

    def with_validity(self, validity: Condition) -> "DependenceVector":
        """Return a copy with a replaced validity condition."""
        return DependenceVector(self.vector, self.causes, validity)

    def with_causes(self, causes: Iterable[str]) -> "DependenceVector":
        """Return a copy with replaced cause labels."""
        return DependenceVector(self.vector, causes, self.validity)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DependenceVector):
            return NotImplemented
        return (
            self.vector == other.vector
            and self.validity == other.validity
            and set(self.causes) == set(other.causes)
        )

    def __hash__(self) -> int:
        return hash((self.vector, self.validity, frozenset(self.causes)))

    def __repr__(self) -> str:
        causes = ",".join(self.causes) or "?"
        cond = "" if self.is_uniform else f" valid at {self.validity!r}"
        return f"d[{causes}]={list(self.vector)}{cond}"


class DependenceMatrix:
    """Ordered collection of distinct dependence vectors (columns of ``D``)."""

    __slots__ = ("vectors",)

    def __init__(self, vectors: Iterable[DependenceVector]):
        vecs = list(vectors)
        dims = {v.dim for v in vecs}
        if len(dims) > 1:
            raise ValueError(f"inconsistent dependence vector dimensions: {dims}")
        self.vectors: tuple[DependenceVector, ...] = tuple(vecs)

    # -- container protocol -------------------------------------------------
    def __iter__(self) -> Iterator[DependenceVector]:
        return iter(self.vectors)

    def __len__(self) -> int:
        return len(self.vectors)

    def __getitem__(self, i: int) -> DependenceVector:
        return self.vectors[i]

    # -- views ----------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Row count ``n`` of the matrix (algorithm dimension)."""
        return self.vectors[0].dim if self.vectors else 0

    def as_matrix(self) -> list[list[int]]:
        """The plain ``n x m`` integer matrix (columns = vectors)."""
        n, m = self.dim, len(self.vectors)
        return [[self.vectors[c].vector[r] for c in range(m)] for r in range(n)]

    def columns(self) -> list[tuple[int, ...]]:
        """The column vectors as tuples."""
        return [v.vector for v in self.vectors]

    @property
    def is_uniform(self) -> bool:
        """True when every dependence vector is uniform (paper: *uniform
        dependence algorithm*)."""
        return all(v.is_uniform for v in self.vectors)

    def by_cause(self, cause: str) -> list[DependenceVector]:
        """All vectors caused (at least in part) by variable ``cause``."""
        return [v for v in self.vectors if cause in v.causes]

    def valid_vectors_at(
        self, point: Sequence[int], binding: ParamBinding
    ) -> list[DependenceVector]:
        """The subset of vectors valid at a concrete index point."""
        return [v for v in self.vectors if v.valid_at(point, binding)]

    # -- comparisons -----------------------------------------------------------
    def structurally_equal(
        self,
        other: "DependenceMatrix",
        index_set: IndexSet,
        binding: ParamBinding,
    ) -> bool:
        """Semantic equality on a concrete index set.

        Two dependence matrices are considered equal when, at *every* point of
        ``index_set`` (instantiated with ``binding``), the multiset of valid
        dependence vectors is identical.  This compares validity conditions by
        extension rather than syntactically, which is what matters for
        correctness of Theorem 3.1 cross-validation.
        """
        for point in index_set.points(binding):
            mine = sorted(v.vector for v in self.valid_vectors_at(point, binding))
            theirs = sorted(v.vector for v in other.valid_vectors_at(point, binding))
            if mine != theirs:
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DependenceMatrix):
            return NotImplemented
        return set(self.vectors) == set(other.vectors)

    def __hash__(self) -> int:
        return hash(frozenset(self.vectors))

    def __repr__(self) -> str:
        return "DependenceMatrix[\n  " + "\n  ".join(map(repr, self.vectors)) + "\n]"
