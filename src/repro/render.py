"""Text rendering of dependence structures, arrays and schedules.

The paper communicates through annotated matrices (causes above the
columns, validity conditions below) and array diagrams (Figs. 4/5).  This
module renders the library's objects in the same spirit, monospace-only:

* :func:`render_dependence_matrix` -- the paper's ``D`` layout: one column
  per dependence vector, cause labels on top, validity conditions below;
* :func:`render_algorithm` -- index set + dependence matrix;
* :func:`render_array` -- a floorplan of a :class:`~repro.machine.array.
  SystolicArray`: PE grid extents, link inventory by primitive, wiring and
  buffer statistics;
* :func:`render_gantt` -- PE-occupancy over time for a finished simulation
  (which beats were busy where);
* :func:`render_wavefronts` -- the equitemporal hyperplanes ``Π q̄ = t``:
  which index points fire at each beat.

Everything returns plain strings; nothing here touches a display.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Sequence

from repro.machine.array import SystolicArray
from repro.machine.pe import ProcessorElement
from repro.mapping.transform import MappingMatrix
from repro.structures.algorithm import Algorithm
from repro.structures.conditions import TRUE
from repro.structures.dependence import DependenceMatrix
from repro.structures.params import ParamBinding

__all__ = [
    "render_dependence_matrix",
    "render_algorithm",
    "render_array",
    "render_gantt",
    "render_wavefronts",
]


def render_dependence_matrix(dep: DependenceMatrix) -> str:
    """The paper's matrix layout: causes / entries / validity conditions."""
    if not len(dep):
        return "(empty dependence matrix)"
    cols = []
    for vec in dep:
        causes = ",".join(vec.causes) or "?"
        entries = [str(x) for x in vec.vector]
        validity = "q̄" if vec.validity == TRUE else repr(vec.validity)
        cols.append([causes, *entries, validity])
    widths = [max(len(row) for row in col) for col in cols]
    n_rows = dep.dim
    lines = []
    # Causes row.
    lines.append("  " + "  ".join(c[0].center(w) for c, w in zip(cols, widths)))
    # Matrix body.
    for r in range(n_rows):
        body = "  ".join(c[1 + r].rjust(w) for c, w in zip(cols, widths))
        edge = "[]" if r in (0, n_rows - 1) or n_rows == 1 else "||"
        lines.append(f"{edge[0]} {body} {edge[1]}")
    # Validity row (may be long: stack vertically when wide).
    validity_cells = [c[-1] for c in cols]
    if sum(len(v) for v in validity_cells) <= 100:
        lines.append("  " + "  ".join(v.center(w) for v, w in zip(validity_cells, widths)))
    else:
        for i, v in enumerate(validity_cells):
            lines.append(f"  col {i + 1} valid at: {v}")
    return "\n".join(lines)


def render_algorithm(algorithm: Algorithm) -> str:
    """Index set plus dependence matrix, titled."""
    kind = "uniform" if algorithm.is_uniform else "conditional"
    header = (
        f"Algorithm {algorithm.name!r} ({algorithm.dim}-dimensional, "
        f"{len(algorithm.dependences)} {kind} dependence vectors)\n"
        f"J = {algorithm.index_set!r}\nD ="
    )
    return header + "\n" + render_dependence_matrix(algorithm.dependences)


def render_array(array: SystolicArray, max_cells: int = 400) -> str:
    """Floorplan summary of a systolic array.

    For small arrays a dot-grid is drawn (one character per PE); large
    arrays get the statistics block only.
    """
    lines = [
        f"SystolicArray: {array.processor_count} PEs, "
        f"{array.link_count} directed links",
    ]
    extents = array.extents()
    lines.append(
        "extents: "
        + " x ".join(f"[{lo}..{hi}]" for lo, hi in extents)
    )
    if array.links:
        by_prim = Counter(link.primitive for link in array.links.values())
        inventory = ", ".join(
            f"{list(prim)}x{count}" for prim, count in sorted(by_prim.items())
        )
        lines.append(f"links by primitive: {inventory}")
        lines.append(
            f"longest wire: {array.longest_wire}, total wire length: "
            f"{array.total_wire_length}, buffer stages: {array.buffer_count}"
        )
    if len(extents) == 2:
        (x0, x1), (y0, y1) = extents
        cells = (x1 - x0 + 1) * (y1 - y0 + 1)
        if cells <= max_cells:
            lines.append("")
            for i in range(x0, x1 + 1):
                row = "".join(
                    "#" if (i, j) in array.pes else "."
                    for j in range(y0, y1 + 1)
                )
                lines.append(row)
    return "\n".join(lines)


def render_gantt(
    pes: dict[tuple[int, ...], ProcessorElement],
    max_pes: int = 24,
    max_time: int = 80,
) -> str:
    """PE occupancy chart: one row per PE, one column per beat."""
    if not pes:
        return "(no PEs fired)"
    times = [t for pe in pes.values() for t in pe.firings]
    t0, t1 = min(times), max(times)
    span = min(t1, t0 + max_time - 1)
    ordered = sorted(pes)[:max_pes]
    label_w = max(len(str(list(pos))) for pos in ordered)
    lines = [
        " " * label_w + " t=" + "".join(
            str(t % 10) for t in range(t0, span + 1)
        )
    ]
    for pos in ordered:
        pe = pes[pos]
        row = "".join(
            "#" if t in pe.firings else "." for t in range(t0, span + 1)
        )
        lines.append(f"{str(list(pos)).rjust(label_w)}   {row}")
    hidden = len(pes) - len(ordered)
    if hidden > 0:
        lines.append(f"... ({hidden} more PEs)")
    return "\n".join(lines)


def render_wavefronts(
    algorithm: Algorithm,
    mapping: MappingMatrix,
    binding: ParamBinding,
    max_fronts: int = 12,
    max_points_per_front: int = 8,
) -> str:
    """The equitemporal hyperplanes: points grouped by firing time."""
    fronts: dict[int, list[tuple[int, ...]]] = defaultdict(list)
    for point in algorithm.index_set.points(binding):
        fronts[mapping.time_of(point)].append(point)
    lines = []
    for i, t in enumerate(sorted(fronts)):
        if i >= max_fronts:
            lines.append(f"... ({len(fronts) - max_fronts} more fronts)")
            break
        pts = fronts[t]
        shown = ", ".join(str(list(p)) for p in pts[:max_points_per_front])
        more = f", ... +{len(pts) - max_points_per_front}" if len(pts) > max_points_per_front else ""
        lines.append(f"t={t:4d}  ({len(pts):4d} points)  {shown}{more}")
    return "\n".join(lines)
