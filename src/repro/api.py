"""The stable top-level API: four verbs, one result contract.

``repro.analyze``, ``repro.search_designs``, ``repro.simulate`` and
``repro.verify_run`` are the supported, stability-guaranteed entry
points for the four things this library does.  The first two are the
engines' native calls (re-exported here unchanged); the last two are
thin wrappers that route through the unified job dispatch
(:mod:`repro.serve.dispatch`), so a library call, a CLI run, and an
HTTP job produce the same :class:`~repro.serve.jobs.JobResult` down to
the rendered ``output`` text.

Older scattered import paths (``repro.run_verification``,
``repro.run_mutation_check``) keep working through lazy
``DeprecationWarning`` shims in :mod:`repro`'s ``__getattr__`` --
mirroring the deprecated-kwargs pattern of
:func:`repro.mapping.engine.search_designs` -- and will be removed in
a future major version.
"""

from __future__ import annotations

from repro.depanalysis import AnalysisConfig, analyze
from repro.mapping import SearchConfig, search_designs

__all__ = [
    "AnalysisConfig",
    "SearchConfig",
    "analyze",
    "analyze_symbolic",
    "search_designs",
    "simulate",
    "verify_run",
]


def analyze_symbolic(
    u: int = 3,
    p: int = 3,
    *,
    expansion: str = "II",
    cache: bool | None = None,
    cache_dir: str | None = None,
    budget_s: float | None = None,
):
    """Parametric dependence analysis of bit-level matmul; returns a JobResult.

    Solves the dependence structure once with ``u`` and ``p`` kept free
    (:func:`repro.symbolic.analyze_symbolic` on the expanded program),
    then instantiates the closed form at the given concrete sizes --
    O(1) in ``u`` and ``p``, so arbitrarily large instances answer in
    milliseconds.  ``.data`` carries the instance count, distinct
    vectors, per-kind totals and the solve/instantiate timings; the
    CLI-equal rendering (``repro analyze --symbolic``) is in ``.output``.

    For symbolic analysis of an arbitrary loop nest (rather than the
    matmul family at concrete sizes), call
    :func:`repro.symbolic.analyze_symbolic` directly.
    """
    from repro.serve.dispatch import run_job
    from repro.serve.jobs import JobSpec

    return run_job(
        JobSpec(
            kind="analyze_symbolic", u=u, p=p, expansion=expansion,
            cache=cache, cache_dir=cache_dir, budget_s=budget_s,
        )
    )


def simulate(
    u: int = 3,
    p: int = 3,
    *,
    design: str = "fig4",
    seed: int = 0,
    backend: str | None = None,
    gantt: bool = False,
    budget_s: float | None = None,
):
    """Simulate a bit-level matmul design end to end; returns a JobResult.

    Builds the ``design`` mapping (``"fig4"`` or ``"fig5"``), runs the
    systolic simulator on a seeded random ``u x u`` problem with
    ``p``-bit operands, and checks the product bit-exactly.  The
    returned :class:`~repro.serve.jobs.JobResult` carries the CLI-equal
    rendering in ``.output`` and the structured summary (makespan,
    processor count, utilization, correctness) in ``.data``.
    """
    from repro.serve.dispatch import run_job
    from repro.serve.jobs import JobSpec

    return run_job(
        JobSpec(
            kind="simulate", u=u, p=p, design=design, seed=seed,
            sim_backend=backend, gantt=gantt, budget_s=budget_s,
        )
    )


def verify_run(
    *,
    seed: int = 0,
    cases: int | None = None,
    budget_s: float | None = None,
    oracles=None,
):
    """Run the differential verification oracles; returns a JobResult.

    ``budget_s`` is the verify subsystem's own oracle budget
    (:class:`~repro.verify.runner.VerifyConfig` ``budget_s``); the
    report is in ``.data`` and its human summary in ``.output``.
    """
    from repro.serve.dispatch import run_job
    from repro.serve.jobs import JobSpec

    return run_job(
        JobSpec(
            kind="verify", seed=seed, cases=cases, oracle_budget_s=budget_s,
            oracles=None if oracles is None else tuple(oracles),
        )
    )
