"""Command-line interface.

Usage::

    python -m repro experiments [e1 e2 ...]   # reproduce the paper's figures
    python -m repro structure [options]       # print a bit-level structure
    python -m repro design [options]          # check/search a matmul design
    python -m repro simulate [options]        # run the bit-level matmul machine
"""

from __future__ import annotations

import argparse
import random
import sys


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.__main__ import main as run_experiments

    return run_experiments(args.ids)


def _cmd_structure(args: argparse.Namespace) -> int:
    from repro.expansion.theorem31 import matmul_bit_level
    from repro.render import render_algorithm

    alg = matmul_bit_level(
        args.u, args.p, expansion=args.expansion, arith=args.arithmetic
    )
    print(render_algorithm(alg))
    return 0


def _cmd_design(args: argparse.Namespace) -> int:
    from repro.expansion.theorem31 import matmul_bit_level
    from repro.mapping import check_feasibility, designs, execution_time, processor_count

    alg = matmul_bit_level(args.u, args.p, expansion=args.expansion)
    binding = {"u": args.u, "p": args.p}
    for name, t, prims in [
        ("Fig. 4 (time-optimal)", designs.fig4_mapping(args.p),
         designs.fig4_primitives(args.p)),
        ("Fig. 5 (nearest-neighbour)", designs.fig5_mapping(args.p),
         designs.fig5_primitives()),
    ]:
        rep = check_feasibility(t, alg, binding, primitives=prims)
        time = execution_time(t.schedule, alg, binding)
        pes = processor_count(t, alg.index_set, binding)
        print(f"{name}: {rep.summary()}")
        print(f"  t = {time}, PEs = {pes}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.machine import BitLevelMatmulMachine
    from repro.mapping import designs
    from repro.render import render_gantt

    u, p = args.u, args.p
    rng = random.Random(args.seed)
    x = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
    y = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
    t = designs.fig5_mapping(p) if args.design == "fig5" else designs.fig4_mapping(p)
    machine = BitLevelMatmulMachine(u, p, t, args.expansion)
    run = machine.run(x, y)
    mask = (1 << (2 * p - 1)) - 1
    want = [
        [sum(x[i][k] * y[k][j] for k in range(u)) & mask for j in range(u)]
        for i in range(u)
    ]
    print(f"design={args.design} u={u} p={p} expansion={args.expansion}")
    print(f"makespan: {run.sim.makespan}  PEs: {run.sim.processor_count}  "
          f"utilization: {run.sim.mean_utilization:.1%}")
    print(f"product correct (mod 2^{2*p-1}): {run.product == want}")
    if args.gantt:
        from repro.machine.simulator import SpaceTimeSimulator

        sim = SpaceTimeSimulator(t, machine.algorithm, machine.binding)
        sim.run(lambda q, s: None)
        print(render_gantt(sim.pes))
    return 0 if run.product == want else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bit-level dependence analysis and architecture design "
        "(Shang & Wah, ICPP 1993 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="reproduce the paper's figures")
    p_exp.add_argument("ids", nargs="*", help="experiment ids (e1..e8)")
    p_exp.set_defaults(fn=_cmd_experiments)

    def common(p):
        p.add_argument("--u", type=int, default=3, help="matrix dimension")
        p.add_argument("--p", type=int, default=3, help="word length")
        p.add_argument("--expansion", choices=["I", "II"], default="II")

    p_struct = sub.add_parser("structure", help="print a bit-level structure")
    common(p_struct)
    p_struct.add_argument(
        "--arithmetic", default="add-shift",
        help="registered arithmetic structure name",
    )
    p_struct.set_defaults(fn=_cmd_structure)

    p_design = sub.add_parser("design", help="check the paper's designs")
    common(p_design)
    p_design.set_defaults(fn=_cmd_design)

    p_sim = sub.add_parser("simulate", help="run the bit-level matmul machine")
    common(p_sim)
    p_sim.add_argument("--design", choices=["fig4", "fig5"], default="fig4")
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--gantt", action="store_true", help="print PE chart")
    p_sim.set_defaults(fn=_cmd_simulate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
