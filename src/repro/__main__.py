"""Command-line interface.

Usage::

    python -m repro experiments [e1 e2 ...]   # reproduce the paper's figures
    python -m repro structure [options]       # print a bit-level structure
    python -m repro design [options]          # check/search a matmul design
    python -m repro search [options]          # search the design space
    python -m repro simulate [options]        # run the bit-level matmul machine
    python -m repro analyze [options]         # general dependence analysis
    python -m repro cache stats|clear         # inspect the artifact cache
    python -m repro verify [options]          # differential oracle verification
    python -m repro serve [options]           # run the async job server

The ``analyze``, ``search``, ``simulate`` and ``verify`` subcommands are
thin clients of the unified job dispatch (:mod:`repro.serve`): each one
builds a frozen :class:`~repro.serve.jobs.JobSpec`, runs it through
:func:`~repro.serve.dispatch.run_job` (or, with ``--server HOST:PORT``,
ships it to a running ``repro serve`` instance), and prints the
``JobResult``'s output -- which is byte-identical to what the subcommand
printed before the dispatch existed.

Every subcommand honors the global observability flags (before or after the
subcommand name): ``--metrics-out FILE`` writes the flat metrics dict as
JSON, ``--trace FILE`` writes a span trace (``--trace-format jsonl`` for
JSON-lines, ``chrome`` for a Chrome trace-event / Perfetto file with
per-process tracks and counter tracks), and either one also prints a
human-readable trace tree -- plus live progress lines while the run goes
-- to stderr unless ``--quiet-metrics`` is given.  Without these flags no
registry is installed and output is exactly the uninstrumented program's.
"""

from __future__ import annotations

import argparse
import sys


def _dispatch(args: argparse.Namespace, spec) -> "object":
    """Run ``spec`` locally or on ``--server``; returns the JobResult."""
    server = getattr(args, "server", None)
    if server:
        from repro.serve import ServeClient

        host, _, port = server.rpartition(":")
        client = ServeClient(host=host or "127.0.0.1", port=int(port))
        return client.run(spec)
    from repro.serve.dispatch import run_job

    return run_job(spec)


def _finish(result) -> int:
    """Print a JobResult the way the pre-dispatch CLI did."""
    sys.stdout.write(result.output)
    if result.error:
        print(result.error.rstrip("\n"), file=sys.stderr)
    return result.exit_code


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.__main__ import main as run_experiments

    return run_experiments(args.ids)


def _cmd_structure(args: argparse.Namespace) -> int:
    from repro.expansion.theorem31 import matmul_bit_level
    from repro.render import render_algorithm

    alg = matmul_bit_level(
        args.u, args.p, expansion=args.expansion, arith=args.arithmetic
    )
    print(render_algorithm(alg))
    return 0


def _cmd_design(args: argparse.Namespace) -> int:
    from repro.expansion.theorem31 import matmul_bit_level
    from repro.mapping import check_feasibility, designs, execution_time, processor_count

    alg = matmul_bit_level(args.u, args.p, expansion=args.expansion)
    binding = {"u": args.u, "p": args.p}
    for name, t, prims in [
        ("Fig. 4 (time-optimal)", designs.fig4_mapping(args.p),
         designs.fig4_primitives(args.p)),
        ("Fig. 5 (nearest-neighbour)", designs.fig5_mapping(args.p),
         designs.fig5_primitives()),
    ]:
        rep = check_feasibility(t, alg, binding, primitives=prims,
                                full_report=True)
        time = execution_time(t.schedule, alg, binding)
        pes = processor_count(t, alg.index_set, binding)
        print(f"{name}: {rep.summary()}")
        print(f"  t = {time}, PEs = {pes}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.serve.jobs import JobSpec

    spec = JobSpec(
        kind="search", u=args.u, p=args.p, expansion=args.expansion,
        target_space_dim=args.target_dim,
        block=None if args.block is None else tuple(args.block),
        schedule_bound=args.schedule_bound,
        max_candidates=args.max_candidates,
        workers=args.workers,
        overcollect=args.overcollect,
        exhaustive=args.exhaustive,
        primitives=args.primitives,
        strategy=args.strategy,
        frontier=(
            ("time", "processors", "wire_length") if args.pareto else None
        ),
        shard_workers=args.shard_workers,
        shard_dir=args.shard_dir,
    )
    return _finish(_dispatch(args, spec))


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.serve.jobs import JobSpec

    spec = JobSpec(
        kind="simulate", u=args.u, p=args.p, expansion=args.expansion,
        design=args.design, seed=args.seed, sim_backend=args.backend,
        gantt=args.gantt,
    )
    return _finish(_dispatch(args, spec))


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.serve.jobs import JobSpec

    if args.symbolic:
        spec = JobSpec(
            kind="analyze_symbolic", u=args.u, p=args.p,
            expansion=args.expansion,
            cache=not args.no_cache,  # this command defaults the cache to ON
            cache_dir=args.cache_dir,
        )
    else:
        spec = JobSpec(
            kind="analyze", u=args.u, p=args.p, expansion=args.expansion,
            method=args.method,
            use_screens=not args.no_screens,
            analysis_backend=args.backend,
            cache=not args.no_cache,  # this command defaults the cache to ON
            cache_dir=args.cache_dir,
        )
    return _finish(_dispatch(args, spec))


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache import ArtifactCache

    cache = ArtifactCache(args.dir)
    if args.action == "stats":
        st = cache.stats()
        print(f"cache root: {st['root']} (schema v{st['schema_version']})")
        print(f"entries: {st['entries']}  bytes: {st['bytes']:,} "
              f"(cap {st['max_bytes']:,})")
        for kind, count in st["kinds"].items():
            print(f"  {kind}: {count} entries")
        sess = st["session"]
        print(f"this process: {sess['hits']} hits, {sess['misses']} misses, "
              f"{sess['evictions']} evictions")
        store = st.get("store")
        if store is not None:
            # Cross-process totals from the locked on-disk stats ledger.
            print(f"store totals: {store['hits']} hits, "
                  f"{store['misses']} misses, "
                  f"{store['evictions']} evictions, "
                  f"{store['writes']} writes")
        from repro import obs

        obs.gauge("cache.bytes_on_disk", st["bytes"])
        obs.gauge("cache.entries", st["entries"])
        return 0
    kind = getattr(args, "kind", None)
    removed = cache.clear(kind=kind)
    what = f"{kind} entries" if kind else "entries"
    print(f"cleared {removed} {what} under {cache.base}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    cases = 10 if args.smoke and args.cases is None else (args.cases or 50)
    budget = 5.0 if args.smoke and args.budget_s is None else args.budget_s

    if args.mutation_check:
        from repro.verify import run_mutation_check

        counterexample = run_mutation_check(seed=args.seed, cases=cases)
        if counterexample is None:
            print(
                "mutation check FAILED: oracle_theorem31 did not catch the "
                "seeded validity bug"
            )
            return 1
        print(
            f"mutation check ok: seeded c' validity bug caught, "
            f"counterexample shrunk in {counterexample.shrink_steps} steps"
        )
        print(f"  case: {dict(counterexample.case)}")
        print(f"  {counterexample.detail}")
        return 0

    if args.search_mutation:
        from repro.verify import run_search_mutation_check

        counterexample = run_search_mutation_check(
            args.search_mutation, seed=args.seed, cases=cases
        )
        if counterexample is None:
            print(
                f"mutation check FAILED: oracle_search did not catch the "
                f"seeded {args.search_mutation} bug"
            )
            return 1
        print(
            f"mutation check ok: seeded {args.search_mutation} bug "
            f"caught, counterexample shrunk in "
            f"{counterexample.shrink_steps} steps"
        )
        print(f"  case: {dict(counterexample.case)}")
        print(f"  {counterexample.detail}")
        return 0

    if args.symbolic_mutation:
        from repro.verify import run_symbolic_mutation_check

        counterexample = run_symbolic_mutation_check(
            args.symbolic_mutation, seed=args.seed, cases=cases
        )
        if counterexample is None:
            print(
                f"mutation check FAILED: oracle_symbolic did not catch the "
                f"seeded {args.symbolic_mutation} bug"
            )
            return 1
        print(
            f"mutation check ok: seeded {args.symbolic_mutation} bug "
            f"caught, counterexample shrunk in "
            f"{counterexample.shrink_steps} steps"
        )
        print(f"  case: {dict(counterexample.case)}")
        print(f"  {counterexample.detail}")
        return 0

    from repro.serve.jobs import JobSpec

    spec = JobSpec(
        kind="verify",
        seed=args.seed,
        cases=cases,
        oracle_budget_s=budget,
        oracles=tuple(args.oracle) if args.oracle else None,
    )
    result = _dispatch(args, spec)
    rc = _finish(result)
    if args.report and result.data is not None:
        import json

        try:
            with open(args.report, "w", encoding="utf-8") as fh:
                fh.write(
                    json.dumps(result.data, indent=2, sort_keys=True) + "\n"
                )
            print(f"report written to {args.report}")
        except OSError as exc:
            print(f"repro verify: cannot write report: {exc}", file=sys.stderr)
            return 1
    return rc


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import JobLimits, JobServer, ServerConfig

    config = ServerConfig(
        host=args.host,
        port=args.port,
        limits=JobLimits(
            max_points=args.max_points,
            max_cases=args.max_cases,
            max_budget_s=args.max_budget_s,
        ),
        max_batch=args.max_batch,
    )
    server = JobServer(config)

    async def _run() -> None:
        await server.start()
        print(f"repro serve: listening on http://{server.host}:{server.port}",
              flush=True)
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _server_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--server", metavar="HOST:PORT", default=None,
        help="run this job on a 'repro serve' instance instead of in-process",
    )


def _obs_options(parser: argparse.ArgumentParser, top_level: bool) -> None:
    """The global observability flags.

    Added both to the top-level parser (real defaults) and to every
    subparser with ``SUPPRESS`` defaults, so the flags are accepted on
    either side of the subcommand name without the subparser's defaults
    clobbering values parsed at the top level.
    """
    suppress = argparse.SUPPRESS
    parser.add_argument(
        "--trace", metavar="FILE", default=None if top_level else suppress,
        help="write a span trace to FILE (see --trace-format)",
    )
    parser.add_argument(
        "--trace-format", choices=["jsonl", "chrome"],
        default="jsonl" if top_level else suppress,
        help="trace file format: JSON-lines (default) or Chrome "
        "trace-event/Perfetto JSON",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE", default=None if top_level else suppress,
        help="write the run's metrics as JSON to FILE",
    )
    parser.add_argument(
        "--quiet-metrics", action="store_true",
        default=False if top_level else suppress,
        help="suppress the stderr trace-tree summary",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bit-level dependence analysis and architecture design "
        "(Shang & Wah, ICPP 1993 reproduction)",
    )
    _obs_options(parser, top_level=True)
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="reproduce the paper's figures")
    p_exp.add_argument("ids", nargs="*", help="experiment ids (e1..e8)")
    _obs_options(p_exp, top_level=False)
    p_exp.set_defaults(fn=_cmd_experiments)

    def common(p):
        p.add_argument("--u", type=int, default=3, help="matrix dimension")
        p.add_argument("--p", type=int, default=3, help="word length")
        p.add_argument("--expansion", choices=["I", "II"], default="II")
        _obs_options(p, top_level=False)

    p_struct = sub.add_parser("structure", help="print a bit-level structure")
    common(p_struct)
    p_struct.add_argument(
        "--arithmetic", default="add-shift",
        help="registered arithmetic structure name",
    )
    p_struct.set_defaults(fn=_cmd_structure)

    p_design = sub.add_parser("design", help="check the paper's designs")
    common(p_design)
    p_design.set_defaults(fn=_cmd_design)

    p_search = sub.add_parser("search", help="search the design space")
    common(p_search)
    p_search.add_argument(
        "--target-dim", type=int, default=2,
        help="space dimensions of the target array",
    )
    p_search.add_argument(
        "--block", type=int, nargs="*", default=None, metavar="B",
        help="blocking factors for catalog rows b*e_i + e_j (default: p)",
    )
    p_search.add_argument("--schedule-bound", type=int, default=2,
                          help="max |entry| of candidate schedules")
    p_search.add_argument("--max-candidates", type=int, default=5,
                          help="ranked designs to return")
    p_search.add_argument("--workers", type=int, default=1,
                          help="worker processes for candidate evaluation")
    p_search.add_argument(
        "--overcollect", type=int, default=4,
        help="collect max_candidates*K feasible designs before ranking",
    )
    p_search.add_argument(
        "--exhaustive", action="store_true",
        help="evaluate the full catalog (ignore candidate caps)",
    )
    p_search.add_argument(
        "--primitives", choices=["fig4", "fig5", "mesh", "none"],
        default="fig4", help="interconnection-primitive set P",
    )
    p_search.add_argument(
        "--strategy", choices=["auto", "catalog", "solver"], default="auto",
        help="candidate generation: 'solver' prunes with the Definition 4.1 "
        "constraint system, 'catalog' enumerates everything (auto = solver)",
    )
    p_search.add_argument(
        "--pareto", action="store_true",
        help="return the Pareto frontier over (time, PEs, wire length) "
        "instead of the (time, PEs)-ranked list",
    )
    p_search.add_argument(
        "--shard-workers", type=int, default=None, metavar="N",
        help="shard the search: N processes claim candidate blocks from a "
        "shared work queue (see --shard-dir)",
    )
    p_search.add_argument(
        "--shard-dir", metavar="DIR", default=None,
        help="shared shard directory for cooperating --shard-workers runs "
        "(default: a fresh temporary directory)",
    )
    _server_option(p_search)
    p_search.set_defaults(fn=_cmd_search)

    p_sim = sub.add_parser("simulate", help="run the bit-level matmul machine")
    common(p_sim)
    p_sim.add_argument("--design", choices=["fig4", "fig5"], default="fig4")
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument(
        "--backend", choices=["pointwise", "wavefront", "compiled"],
        default=None,
        help="simulator engine (default: REPRO_SIM_BACKEND or pointwise); "
        "'compiled' runs per-design codegen kernels (see docs/COMPILE.md)",
    )
    p_sim.add_argument("--gantt", action="store_true", help="print PE chart")
    _server_option(p_sim)
    p_sim.set_defaults(fn=_cmd_simulate)

    p_analyze = sub.add_parser(
        "analyze", help="run general dependence analysis on bit-level matmul"
    )
    common(p_analyze)
    p_analyze.add_argument(
        "--symbolic", action="store_true",
        help="parametric analysis: solve once with u/p free, instantiate "
        "at the given sizes in O(1)",
    )
    p_analyze.add_argument(
        "--method", choices=["exact", "enumerate"], default="exact",
        help="exact (Diophantine) or enumerate (hash-join oracle)",
    )
    p_analyze.add_argument(
        "--backend", choices=["auto", "scalar", "batched"], default=None,
        help="engine backend (default: REPRO_ANALYSIS_BACKEND or auto)",
    )
    p_analyze.add_argument(
        "--no-screens", action="store_true",
        help="skip GCD/Banerjee screening (method=exact only)",
    )
    p_analyze.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent artifact cache",
    )
    p_analyze.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cache directory (default: REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    _server_option(p_analyze)
    p_analyze.set_defaults(fn=_cmd_analyze)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the persistent artifact cache"
    )
    p_cache.add_argument("action", choices=["stats", "clear"])
    p_cache.add_argument(
        "--dir", default=None,
        help="cache directory (default: REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    p_cache.add_argument(
        "--kind", default=None, metavar="KIND",
        help="with 'clear': remove only entries of this kind "
        "(e.g. kernel, analysis)",
    )
    _obs_options(p_cache, top_level=False)
    p_cache.set_defaults(fn=_cmd_cache)

    p_verify = sub.add_parser(
        "verify", help="differential verification: run the randomized oracles"
    )
    p_verify.add_argument("--seed", type=int, default=0)
    p_verify.add_argument(
        "--cases", type=int, default=None,
        help="random cases per oracle (default 50; 10 with --smoke)",
    )
    p_verify.add_argument(
        "--budget-s", type=float, default=None, metavar="S",
        help="wall-clock budget per oracle in seconds (default unbounded; "
        "5 with --smoke)",
    )
    p_verify.add_argument(
        "--oracle", action="append", default=None,
        choices=["theorem31", "analysis", "symbolic", "mapping", "simulator",
                 "search"],
        help="run only this oracle (repeatable; default: all)",
    )
    p_verify.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the JSON report (counterexamples included) to FILE",
    )
    p_verify.add_argument(
        "--smoke", action="store_true",
        help="small fast preset for PR CI (10 cases, 5s budget per oracle)",
    )
    p_verify.add_argument(
        "--mutation-check", action="store_true",
        help="self-test: seed a wrong validity condition into the Theorem "
        "3.1 assembly and require oracle_theorem31 to catch it",
    )
    p_verify.add_argument(
        "--symbolic-mutation", metavar="NAME", default=None,
        choices=["dropped-congruence", "shifted-bound"],
        help="self-test: seed NAME into the symbolic solver and require "
        "the symbolic cross-validation oracle to catch it",
    )
    p_verify.add_argument(
        "--search-mutation", metavar="NAME", default=None,
        choices=["tight-deadline", "dropped-conflict-gate"],
        help="self-test: seed NAME into the search solver's cuts and "
        "require the search differential oracle to catch it",
    )
    _server_option(p_verify)
    _obs_options(p_verify, top_level=False)
    p_verify.set_defaults(fn=_cmd_verify)

    p_serve = sub.add_parser(
        "serve", help="run the async analysis job server (HTTP/JSON)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8741,
                         help="listen port (0 picks a free port)")
    p_serve.add_argument(
        "--max-points", type=int, default=4_000_000,
        help="admission limit on estimated iteration-space points",
    )
    p_serve.add_argument(
        "--max-cases", type=int, default=1_000,
        help="admission limit on verify cases per job",
    )
    p_serve.add_argument(
        "--max-budget-s", type=float, default=None, metavar="S",
        help="cap (and default) for per-job wall-clock budgets",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=16,
        help="max analyze jobs fused into one vectorized-engine call",
    )
    _obs_options(p_serve, top_level=False)
    p_serve.set_defaults(fn=_cmd_serve)
    return parser


def _progress_line(event: dict) -> None:
    """Render one bus ``progress`` event as a stderr status line."""
    done, total = event["done"], event["total"]
    parts = [
        f"[{event['name']}] {done}" + (f"/{total}" if total is not None else "")
    ]
    rate = event.get("rate")
    if rate:
        parts.append(f"{rate:.1f}/s")
    eta = event.get("eta_s")
    if eta is not None:
        parts.append(f"eta {eta:.1f}s")
    if event.get("final"):
        parts.append("done")
    print("  ".join(parts), file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if not (args.trace or args.metrics_out):
        return args.fn(args)

    from repro import obs

    with obs.collecting() as reg:
        ring = None
        if args.trace and args.trace_format == "chrome":
            # Buffer bus events so the exporter can rebuild counter tracks.
            ring = obs.RingBufferSink()
            reg.add_sink(ring)
        if args.trace and not args.quiet_metrics:
            reg.add_sink(obs.CallbackSink(_progress_line, kinds={"progress"}))
        with reg.span(f"cli.{args.command}"):
            rc = args.fn(args)
        try:
            if args.trace:
                if args.trace_format == "chrome":
                    obs.write_chrome_trace(reg, args.trace, ring.events)
                else:
                    obs.write_trace(reg, args.trace)
            if args.metrics_out:
                obs.write_metrics(reg, args.metrics_out)
        except OSError as exc:
            print(f"repro: cannot write metrics: {exc}", file=sys.stderr)
            rc = rc or 1
        if not args.quiet_metrics:
            print(obs.render_tree(reg), file=sys.stderr)
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
