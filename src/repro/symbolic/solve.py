"""Parametric integer linear-system solving (the symbolic Smith route).

:func:`repro.util.linalg.solve_integer_system` solves ``A z = b`` for
*concrete* integer right-hand sides.  Here the subscript coefficient
matrix ``A`` is still a plain integer matrix (array subscripts in the IR
have integer coefficients), but the right-hand side entries are
:class:`~repro.structures.params.LinExpr` values over free nonnegative
integer parameters such as ``u`` and ``p``.

The Smith normal form ``U A V = D`` is computed once, parameter-free.
With ``c = U b`` a vector of linear expressions, the solvability and the
particular solution decompose per invariant factor ``d_i``:

* ``d_i != 0``: the equation ``d_i y_i = c_i`` needs ``d_i | c_i``.  When
  every coefficient of ``c_i`` (including the constant) is divisible, the
  quotient is again linear and the system is solvable for *all* bindings;
  when only the constant term breaks divisibility the system is solvable
  for *no* binding; a genuinely parameter-dependent congruence (some
  parameter coefficient indivisible) has no linear closed form and raises
  :class:`SymbolicUnsupported`.
* ``d_i == 0`` (and every row beyond ``min(m, n)``): the residual
  equation ``0 = c_i`` either holds identically, fails for every binding
  (constant nonzero), or becomes a *feasibility predicate* -- a linear
  expression that must evaluate to zero -- attached to the solution.

The result is the exact symbolic counterpart of ``(particular, basis)``:
``particular`` is a vector of linear expressions, ``basis`` the same
integer lattice basis the concrete solver would return, and ``zeros`` the
piecewise-feasibility predicates over the parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.structures.params import LinExpr, ParamBinding, as_linexpr
from repro.util.linalg import smith_normal_form

__all__ = [
    "SymbolicSolution",
    "SymbolicUnsupported",
    "solve_symbolic_system",
]


class SymbolicUnsupported(ValueError):
    """The system has no linear closed form over the free parameters."""


@dataclass(frozen=True)
class SymbolicSolution:
    """General solution of ``A z = b(params)`` over the integers.

    For every binding satisfying the ``zeros`` predicates, the concrete
    solution set is ``{particular(binding) + sum_k t_k basis[k]}`` --
    identical to what :func:`~repro.util.linalg.solve_integer_system`
    returns for the instantiated right-hand side.
    """

    particular: tuple[LinExpr, ...]
    basis: tuple[tuple[int, ...], ...]
    #: linear expressions that must evaluate to 0 for a solution to exist
    zeros: tuple[LinExpr, ...] = field(default=())

    def feasible_at(self, binding: ParamBinding) -> bool:
        """True when the instantiated system has integer solutions."""
        return all(z.evaluate(binding) == 0 for z in self.zeros)

    def instantiate(
        self, binding: ParamBinding
    ) -> tuple[tuple[int, ...], tuple[tuple[int, ...], ...]] | None:
        """Concrete ``(particular, basis)`` at ``binding`` (None if infeasible)."""
        if not self.feasible_at(binding):
            return None
        return (
            tuple(e.evaluate(binding) for e in self.particular),
            self.basis,
        )


def _congruence_quotient(expr: LinExpr, d: int):
    """Decide ``d | expr`` identically and divide.

    Returns ``("ok", expr / d)`` when every coefficient is divisible,
    ``("never", None)`` when indivisibility is confined to the constant
    term (no binding solves it), and ``("param", None)`` when
    divisibility depends on the parameter values.
    """
    if any(c % d for _name, c in expr.coeffs):
        return "param", None
    if expr.const % d:
        return "never", None
    return "ok", LinExpr(
        expr.const // d, {name: c // d for name, c in expr.coeffs}
    )


def _sym_mat_vec(a: list[list[int]], v: list[LinExpr]) -> list[LinExpr]:
    out = []
    for row in a:
        acc = LinExpr(0)
        for coeff, expr in zip(row, v):
            if coeff:
                acc = acc + expr * coeff
        out.append(acc)
    return out


def solve_symbolic_system(
    a_rows: list[list[int]], rhs: list
) -> SymbolicSolution | None:
    """Solve ``A z = b`` with a symbolic right-hand side.

    Mirrors :func:`repro.util.linalg.solve_integer_system` step for step;
    ``rhs`` entries may be ints or :class:`LinExpr`.  Returns ``None``
    when no binding admits an integer solution, raises
    :class:`SymbolicUnsupported` on parameter-dependent congruences.
    """
    m = len(a_rows)
    n = len(a_rows[0]) if a_rows else 0
    b = [as_linexpr(x) for x in rhs]
    if len(b) != m:
        raise ValueError("rhs length mismatch")
    if n == 0:
        zeros = tuple(c for c in b if not (c.is_constant and c.const == 0))
        if any(z.is_constant for z in zeros):
            return None
        return SymbolicSolution((), (), zeros)
    d, u, v = smith_normal_form(a_rows)
    c = _sym_mat_vec(u, b)
    y: list[LinExpr] = [LinExpr(0)] * n
    zeros: list[LinExpr] = []
    for i in range(min(m, n)):
        di = d[i][i]
        if di == 0:
            if c[i].is_constant:
                if c[i].const != 0:
                    return None
            else:
                zeros.append(c[i])
        else:
            status, quotient = _congruence_quotient(c[i], di)
            if status == "never":
                return None
            if status == "param":
                raise SymbolicUnsupported(
                    f"congruence {di} | {c[i]} depends on the parameters"
                )
            y[i] = quotient
    for i in range(min(m, n), m):
        if c[i].is_constant:
            if c[i].const != 0:
                return None
        else:
            zeros.append(c[i])
    particular = tuple(_sym_mat_vec(v, y))
    r = sum(1 for i in range(min(m, n)) if d[i][i] != 0)
    basis = tuple(
        tuple(v[row][col] for row in range(n)) for col in range(r, n)
    )
    return SymbolicSolution(particular, basis, tuple(zeros))
