"""Symbolic (parametric) dependence analysis.

The concrete analyzers in :mod:`repro.depanalysis` enumerate solution
lattices for one ``(u, p)`` at a time.  This package solves the same
linear Diophantine systems and validity domains with the parameters kept
free, producing closed-form *dependence families* that instantiate to
the exact analyzer's output in O(1) for any size:

* :mod:`repro.symbolic.solve` -- the parametric Smith-normal-form solve
  (symbolic right-hand sides, divisibility reasoning, feasibility
  predicates);
* :mod:`repro.symbolic.families` -- the closed-form object model
  (uniform families over a symbolic sink region; a general fallback for
  variable-distance dependences);
* :mod:`repro.symbolic.analyze` -- :func:`analyze_symbolic` and
  :class:`SymbolicResult` (``instantiate``/``summary``/``count``);
* :mod:`repro.symbolic.crosscheck` -- the Theorem 3.1 composition
  cross-check;
* :mod:`repro.symbolic.serde` -- exact JSON round-trips for the
  content-addressed artifact store.

See ``docs/SYMBOLIC.md`` for the object model and the cross-validation
story.
"""

from repro.symbolic.analyze import SymbolicResult, analyze_symbolic, clear_memo
from repro.symbolic.crosscheck import crosscheck_theorem31
from repro.symbolic.families import GeneralFamily, UniformFamily
from repro.symbolic.solve import (
    SymbolicSolution,
    SymbolicUnsupported,
    solve_symbolic_system,
)

__all__ = [
    "GeneralFamily",
    "SymbolicResult",
    "SymbolicSolution",
    "SymbolicUnsupported",
    "UniformFamily",
    "analyze_symbolic",
    "clear_memo",
    "crosscheck_theorem31",
    "solve_symbolic_system",
]
