"""Closed-form dependence families and the symbolic region algebra.

A *family* is the parametric analogue of a set of
:class:`~repro.depanalysis.pairs.DependenceInstance` rows: one write/read
pair's full solution set, represented so that instantiation at any
``(u, p)`` is O(1) counting work instead of lattice enumeration.

Two shapes cover everything the analyzer meets:

* :class:`UniformFamily` -- the solution lattice maps bijectively onto
  the sink coordinates and the source is always ``sink - vector`` for a
  single (parametric) distance ``vector``.  The instance set is then a
  *region* over sink space: a union (DNF) of conjunctions, each
  conjunction holding per-axis interval bounds plus ``=``/``!=`` atoms
  from the statement guards.  Counting a conjunction is a per-axis
  product; counting the union is inclusion-exclusion with empty-
  intersection pruning.  Every program produced by
  :func:`repro.ir.expand.expand_bit_level` lands here (identity
  subscript coefficients), which is what makes ``u = p = 1024``
  answerable instantly.
* :class:`GeneralFamily` -- the fallback for non-uniform distances (the
  variable-distance dependences of Kale et al.): the symbolic
  ``(particular, basis)`` pair is kept and instantiation enumerates the
  concrete lattice exactly like the reference analyzer.  Correct for any
  program, but not O(1); :attr:`SymbolicResult.closed_form` reports
  which regime a result is in.

All bounds, guard values, and distances are
:class:`~repro.structures.params.LinExpr`; nothing is evaluated until a
binding arrives.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.structures.conditions import (
    And,
    Condition,
    Eq,
    FALSE,
    Ne,
    Not,
    Or,
    TRUE,
)
from repro.structures.params import LinExpr, ParamBinding, as_linexpr
from repro.symbolic.solve import SymbolicUnsupported

__all__ = [
    "AxisConstraint",
    "Conjunction",
    "GeneralFamily",
    "UniformFamily",
    "condition_to_region",
    "conjunction_count",
    "conjunction_points",
    "lex_kind",
    "region_and",
    "region_count",
    "region_points",
    "shifted_bounds",
    "universe",
]

#: a region is a union of conjunctions (DNF) over the sink coordinates
Region = tuple["Conjunction", ...]


def lex_kind(vec: Sequence[int]) -> str:
    """The analyzer's classification of a nonzero distance vector."""
    for x in vec:
        if x > 0:
            return "flow"
        if x < 0:
            return "reversed"
    raise ValueError("zero distance vector has no kind")


def shifted_bounds(lo: LinExpr, hi: LinExpr, delta: LinExpr):
    """Sink-space image of ``lo <= sink - delta <= hi`` (source-in-box)."""
    return lo + delta, hi + delta


@dataclass(frozen=True)
class AxisConstraint:
    """Constraints on one sink axis inside a conjunction.

    ``intervals`` are inclusive ``(lo, hi)`` pairs (all must hold); ``eq``
    pins the axis to every listed value (more than one distinct value at a
    binding means the conjunction is empty); ``ne`` excludes values.
    """

    intervals: tuple[tuple[LinExpr, LinExpr], ...] = ()
    eq: tuple[LinExpr, ...] = ()
    ne: tuple[LinExpr, ...] = ()

    def merge(self, other: "AxisConstraint") -> "AxisConstraint":
        return AxisConstraint(
            _dedupe(self.intervals + other.intervals),
            _dedupe(self.eq + other.eq),
            _dedupe(self.ne + other.ne),
        )

    def admissible(self, binding: ParamBinding) -> tuple[int, int, set, set]:
        """Evaluated ``(lo, hi, eq_values, ne_values)`` at ``binding``."""
        lo = hi = None
        for l_expr, h_expr in self.intervals:
            lv, hv = l_expr.evaluate(binding), h_expr.evaluate(binding)
            lo = lv if lo is None else max(lo, lv)
            hi = hv if hi is None else min(hi, hv)
        if lo is None or hi is None:
            raise SymbolicUnsupported("axis without interval bounds")
        eqs = {e.evaluate(binding) for e in self.eq}
        nes = {e.evaluate(binding) for e in self.ne}
        return lo, hi, eqs, nes

    def count(self, binding: ParamBinding) -> int:
        lo, hi, eqs, nes = self.admissible(binding)
        if eqs:
            if len(eqs) > 1:
                return 0
            v = next(iter(eqs))
            return int(lo <= v <= hi and v not in nes)
        if hi < lo:
            return 0
        return hi - lo + 1 - sum(1 for v in nes if lo <= v <= hi)

    def values(self, binding: ParamBinding) -> list[int]:
        lo, hi, eqs, nes = self.admissible(binding)
        if eqs:
            if len(eqs) > 1:
                return []
            v = next(iter(eqs))
            return [v] if lo <= v <= hi and v not in nes else []
        return [v for v in range(lo, hi + 1) if v not in nes]


def _dedupe(items: tuple) -> tuple:
    return tuple(dict.fromkeys(items))


@dataclass(frozen=True)
class Conjunction:
    """One DNF term: the conjunction of its per-axis constraints."""

    axes: tuple[AxisConstraint, ...]

    def merge(self, other: "Conjunction") -> "Conjunction":
        return Conjunction(
            tuple(a.merge(b) for a, b in zip(self.axes, other.axes))
        )


def universe(n: int) -> Conjunction:
    return Conjunction((AxisConstraint(),) * n)


def conjunction_count(conj: Conjunction, binding: ParamBinding) -> int:
    total = 1
    for axis in conj.axes:
        total *= axis.count(binding)
        if total == 0:
            return 0
    return total


def conjunction_points(conj: Conjunction, binding: ParamBinding):
    return itertools.product(
        *(axis.values(binding) for axis in conj.axes)
    )


def region_and(left: Region, right: Region) -> Region:
    """Intersection of two DNF regions (cross product of terms)."""
    return tuple(a.merge(b) for a in left for b in right)


def region_count(region: Region, binding: ParamBinding) -> int:
    """Exact point count of a union of conjunctions at ``binding``.

    Inclusion-exclusion over nonempty subsets; a subset whose
    intersection is already empty prunes all of its supersets (adding
    constraints cannot repopulate a conjunction), which keeps the
    recursion far below ``2^k`` on guard-heavy regions.
    """
    terms = [c for c in region if conjunction_count(c, binding) > 0]
    total = 0

    def expand(start: int, current: Conjunction, sign: int) -> None:
        nonlocal total
        count = conjunction_count(current, binding)
        if count == 0:
            return
        total += sign * count
        for j in range(start, len(terms)):
            expand(j + 1, current.merge(terms[j]), -sign)

    for i, term in enumerate(terms):
        expand(i + 1, term, 1)
    return total


def region_points(
    region: Region, binding: ParamBinding
) -> set[tuple[int, ...]]:
    """Materialize the region (cross-validation path; size-proportional)."""
    out: set[tuple[int, ...]] = set()
    for conj in region:
        out.update(conjunction_points(conj, binding))
    return out


def _negate(cond: Condition) -> Condition:
    if cond is TRUE:
        return FALSE
    if cond is FALSE:
        return TRUE
    if isinstance(cond, Eq):
        return Ne(cond.axis, cond.value)
    if isinstance(cond, Ne):
        return Eq(cond.axis, cond.value)
    if isinstance(cond, Not):
        return cond.term
    if isinstance(cond, And):
        return Or(*(_negate(t) for t in cond.terms))
    if isinstance(cond, Or):
        return And(*(_negate(t) for t in cond.terms))
    raise SymbolicUnsupported(f"cannot negate condition {cond!r}")


def condition_to_region(
    cond: Condition, n: int, shift: Sequence[LinExpr] | None = None
) -> Region:
    """DNF region (over sink coordinates) of a guard condition.

    ``shift`` translates a *source-side* guard into sink space: with
    ``source = sink - vector``, the atom ``axis == e`` at the source
    becomes ``axis == e + vector[axis]`` at the sink.
    """
    if cond is TRUE:
        return (universe(n),)
    if cond is FALSE:
        return ()
    if isinstance(cond, (Eq, Ne)):
        value = as_linexpr(cond.value)
        if shift is not None:
            value = value + shift[cond.axis]
        axes = list(universe(n).axes)
        if isinstance(cond, Eq):
            axes[cond.axis] = AxisConstraint(eq=(value,))
        else:
            axes[cond.axis] = AxisConstraint(ne=(value,))
        return (Conjunction(tuple(axes)),)
    if isinstance(cond, Not):
        return condition_to_region(_negate(cond.term), n, shift)
    if isinstance(cond, And):
        region = (universe(n),)
        for term in cond.terms:
            region = region_and(region, condition_to_region(term, n, shift))
        return region
    if isinstance(cond, Or):
        out: Region = ()
        for term in cond.terms:
            out = out + condition_to_region(term, n, shift)
        return out
    raise SymbolicUnsupported(
        f"guard {cond!r} is not representable in the symbolic region algebra"
    )


# ---------------------------------------------------------------------------
# Families
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class UniformFamily:
    """A closed-form dependence family with one parametric distance.

    Every member instance is ``(sink - vector, sink)`` for a sink inside
    ``region``; ``zeros`` are the solver's feasibility predicates (all
    must evaluate to 0 for the family to exist at a binding).
    """

    vector: tuple[LinExpr, ...]
    variable: str
    region: Region
    zeros: tuple[LinExpr, ...] = field(default=())

    def vector_at(self, binding: ParamBinding) -> tuple[int, ...] | None:
        """Concrete distance, or None when the family is vacuous there."""
        if any(z.evaluate(binding) != 0 for z in self.zeros):
            return None
        vec = tuple(e.evaluate(binding) for e in self.vector)
        if not any(vec):
            return None  # source == sink is never a dependence
        return vec

    def count(self, binding: ParamBinding) -> int:
        if self.vector_at(binding) is None:
            return 0
        return region_count(self.region, binding)

    def sinks(self, binding: ParamBinding) -> set[tuple[int, ...]]:
        if self.vector_at(binding) is None:
            return set()
        return region_points(self.region, binding)


@dataclass(frozen=True)
class GeneralFamily:
    """Fallback family: symbolic lattice kept, instantiation enumerates.

    ``box`` is the per-axis symbolic bound list over the stacked
    ``(source, sink)`` unknowns; guards apply to source and sink
    respectively, exactly as in the reference analyzer.
    """

    particular: tuple[LinExpr, ...]
    basis: tuple[tuple[int, ...], ...]
    variable: str
    box: tuple[tuple[LinExpr, LinExpr], ...]
    write_guard: Condition
    read_guard: Condition
    zeros: tuple[LinExpr, ...] = field(default=())

    def instances(self, binding: ParamBinding) -> Iterable:
        from repro.depanalysis.diophantine import bounded_lattice_points
        from repro.depanalysis.pairs import DependenceInstance

        if any(z.evaluate(binding) != 0 for z in self.zeros):
            return
        n = len(self.particular) // 2
        particular = [e.evaluate(binding) for e in self.particular]
        box = [
            (lo.evaluate(binding), hi.evaluate(binding))
            for lo, hi in self.box
        ]
        basis = [list(row) for row in self.basis]
        for z in bounded_lattice_points(particular, basis, box):
            src, snk = tuple(z[:n]), tuple(z[n:])
            if src == snk:
                continue
            if not self.write_guard.holds(src, binding):
                continue
            if not self.read_guard.holds(snk, binding):
                continue
            vec = tuple(s - t for s, t in zip(snk, src))
            yield DependenceInstance(snk, vec, self.variable, lex_kind(vec))
