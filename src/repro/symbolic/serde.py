"""Exact JSON round-trips for cached symbolic results.

Same contract as :mod:`repro.cache.serde`: a decoded
:class:`~repro.symbolic.analyze.SymbolicResult` equals what the miss path
would have computed, expression for expression.  The codecs for the
shared atoms (:class:`LinExpr`, conditions) are reused from the cache
layer.
"""

from __future__ import annotations

from repro.cache.serde import (
    Unserializable,
    condition_from_payload,
    condition_to_payload,
    linexpr_from_payload,
    linexpr_to_payload,
)
from repro.symbolic.families import (
    AxisConstraint,
    Conjunction,
    GeneralFamily,
    UniformFamily,
)

__all__ = [
    "symbolic_result_from_payload",
    "symbolic_result_to_payload",
]

#: bumped whenever the family model changes shape
PAYLOAD_VERSION = 1


def _axis_to_payload(axis: AxisConstraint) -> dict:
    return {
        "iv": [
            [linexpr_to_payload(lo), linexpr_to_payload(hi)]
            for lo, hi in axis.intervals
        ],
        "eq": [linexpr_to_payload(e) for e in axis.eq],
        "ne": [linexpr_to_payload(e) for e in axis.ne],
    }


def _axis_from_payload(payload) -> AxisConstraint:
    return AxisConstraint(
        intervals=tuple(
            (linexpr_from_payload(lo), linexpr_from_payload(hi))
            for lo, hi in payload["iv"]
        ),
        eq=tuple(linexpr_from_payload(e) for e in payload["eq"]),
        ne=tuple(linexpr_from_payload(e) for e in payload["ne"]),
    )


def _family_to_payload(fam) -> dict:
    if isinstance(fam, UniformFamily):
        return {
            "type": "uniform",
            "vector": [linexpr_to_payload(e) for e in fam.vector],
            "variable": fam.variable,
            "region": [
                [_axis_to_payload(a) for a in conj.axes]
                for conj in fam.region
            ],
            "zeros": [linexpr_to_payload(z) for z in fam.zeros],
        }
    if isinstance(fam, GeneralFamily):
        return {
            "type": "general",
            "particular": [linexpr_to_payload(e) for e in fam.particular],
            "basis": [list(row) for row in fam.basis],
            "variable": fam.variable,
            "box": [
                [linexpr_to_payload(lo), linexpr_to_payload(hi)]
                for lo, hi in fam.box
            ],
            "write_guard": condition_to_payload(fam.write_guard),
            "read_guard": condition_to_payload(fam.read_guard),
            "zeros": [linexpr_to_payload(z) for z in fam.zeros],
        }
    raise Unserializable(f"unknown family type {type(fam).__name__}")


def _family_from_payload(payload):
    if payload["type"] == "uniform":
        return UniformFamily(
            vector=tuple(linexpr_from_payload(e) for e in payload["vector"]),
            variable=payload["variable"],
            region=tuple(
                Conjunction(tuple(_axis_from_payload(a) for a in axes))
                for axes in payload["region"]
            ),
            zeros=tuple(linexpr_from_payload(z) for z in payload["zeros"]),
        )
    if payload["type"] == "general":
        return GeneralFamily(
            particular=tuple(
                linexpr_from_payload(e) for e in payload["particular"]
            ),
            basis=tuple(tuple(row) for row in payload["basis"]),
            variable=payload["variable"],
            box=tuple(
                (linexpr_from_payload(lo), linexpr_from_payload(hi))
                for lo, hi in payload["box"]
            ),
            write_guard=condition_from_payload(payload["write_guard"]),
            read_guard=condition_from_payload(payload["read_guard"]),
            zeros=tuple(linexpr_from_payload(z) for z in payload["zeros"]),
        )
    raise Unserializable(f"unknown family payload type {payload['type']!r}")


def symbolic_result_to_payload(result) -> dict:
    return {
        "version": PAYLOAD_VERSION,
        "index_names": list(result.index_names),
        "lowers": [linexpr_to_payload(e) for e in result.lowers],
        "uppers": [linexpr_to_payload(e) for e in result.uppers],
        "families": [_family_to_payload(f) for f in result.families],
        "stats": dict(result.stats),
    }


def symbolic_result_from_payload(payload):
    from repro.symbolic.analyze import SymbolicResult

    if payload.get("version") != PAYLOAD_VERSION:
        raise ValueError(f"unknown symbolic payload version: {payload!r}")
    return SymbolicResult(
        families=tuple(_family_from_payload(f) for f in payload["families"]),
        index_names=tuple(payload["index_names"]),
        lowers=tuple(linexpr_from_payload(e) for e in payload["lowers"]),
        uppers=tuple(linexpr_from_payload(e) for e in payload["uppers"]),
        stats=dict(payload["stats"]),
    )
