"""Parametric dependence analysis: solve once, instantiate anywhere.

:func:`analyze_symbolic` runs the same per-pair Diophantine pipeline as
:func:`repro.depanalysis.exact.analyze_exact`, but with the program's
``u``/``p`` parameters kept free: each write/read pair yields a
closed-form family (:mod:`repro.symbolic.families`) instead of an
enumerated instance list.  The returned :class:`SymbolicResult` then

* ``instantiate(binding)`` materializes the exact analyzer's
  :class:`~repro.depanalysis.pairs.AnalysisResult` -- identical instance
  rows, identical ordering -- by evaluating every family (used by the
  cross-validation oracle);
* ``summary(binding)`` answers counting questions (instances, distinct
  vectors, per-kind totals) in O(1) when every family is uniform, which
  is the case for every :func:`~repro.ir.expand.expand_bit_level`
  program.

Results are cached in the content-addressed artifact store under the
``"symbolic"`` kind, keyed on the *symbolic* program (bounds and guard
values as expressions, not evaluated), plus an in-process memo so
repeated instantiation sweeps never re-solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.depanalysis.pairs import AnalysisResult, DependenceInstance
from repro.ir.program import LoopNest
from repro.structures.conditions import TRUE
from repro.structures.params import LinExpr, ParamBinding
from repro.symbolic import families as families_mod
from repro.symbolic.families import (
    Conjunction,
    GeneralFamily,
    UniformFamily,
    condition_to_region,
    lex_kind,
    region_and,
    region_count,
    universe,
)
from repro.symbolic.solve import (
    SymbolicUnsupported,
    solve_symbolic_system,
)
from repro.util.linalg import hermite_normal_form

__all__ = ["SymbolicResult", "analyze_symbolic", "clear_memo"]


@dataclass(frozen=True)
class SymbolicResult:
    """Closed-form dependence analysis of one (symbolic) program."""

    families: tuple
    index_names: tuple[str, ...]
    lowers: tuple[LinExpr, ...]
    uppers: tuple[LinExpr, ...]
    stats: dict = field(default_factory=dict)

    @property
    def closed_form(self) -> bool:
        """True when every family instantiates by O(1) counting."""
        return all(isinstance(f, UniformFamily) for f in self.families)

    def params(self) -> frozenset[str]:
        out: set[str] = set()
        for expr in (*self.lowers, *self.uppers):
            out |= expr.params()
        for fam in self.families:
            for z in fam.zeros:
                out |= z.params()
        return frozenset(out)

    # -- instantiation -----------------------------------------------------
    def instantiate(self, binding: ParamBinding) -> AnalysisResult:
        """The exact analyzer's result at ``binding``, bit for bit.

        Instance rows (sink, vector, variable, kind) and their sort order
        match :func:`repro.depanalysis.exact.analyze_exact` exactly; the
        ``stats`` carry symbolic-layer counters instead of the concrete
        solver's pruning counters.
        """
        instances: set[DependenceInstance] = set()
        for fam in self.families:
            if isinstance(fam, UniformFamily):
                vec = fam.vector_at(binding)
                if vec is None:
                    continue
                kind = lex_kind(vec)
                for sink in fam.sinks(binding):
                    instances.add(
                        DependenceInstance(sink, vec, fam.variable, kind)
                    )
            else:
                instances.update(fam.instances(binding))
        stats = dict(self.stats)
        stats["instances"] = len(instances)
        return AnalysisResult(
            sorted(instances, key=lambda i: i.key()), stats
        )

    def count(self, binding: ParamBinding) -> int:
        """Total dependence instances at ``binding`` (O(1) counting when
        :attr:`closed_form`)."""
        return self.summary(binding)["instances"]

    def summary(self, binding: ParamBinding) -> dict:
        """Counting view: totals per distance vector and per kind.

        Families sharing an evaluated ``(vector, variable, kind)`` key are
        counted as one region union (inclusion-exclusion), so overlapping
        per-pair regions are never double counted.
        """
        if not self.closed_form:
            result = self.instantiate(binding)
            groups: dict = {}
            for inst in result.instances:
                key = (inst.vector, inst.variable, inst.kind)
                groups[key] = groups.get(key, 0) + 1
            counts = groups
        else:
            merged: dict[tuple, list[Conjunction]] = {}
            for fam in self.families:
                vec = fam.vector_at(binding)
                if vec is None:
                    continue
                key = (vec, fam.variable, lex_kind(vec))
                merged.setdefault(key, []).extend(fam.region)
            counts = {}
            for key, terms in merged.items():
                n = region_count(tuple(terms), binding)
                if n:
                    counts[key] = n
        vectors = sorted({key[0] for key in counts})
        by_kind: dict[str, int] = {}
        for (vec, _var, kind), n in counts.items():
            by_kind[kind] = by_kind.get(kind, 0) + n
        return {
            "instances": sum(counts.values()),
            "distinct_vectors": vectors,
            "by_kind": dict(sorted(by_kind.items())),
            "families": len(self.families),
            "closed_form": self.closed_form,
        }


# ---------------------------------------------------------------------------
# The pair loop
# ---------------------------------------------------------------------------

def _identity_lattice(rows: tuple[tuple[int, ...], ...], n: int) -> bool:
    """Do the sink-halves of the basis generate all of ``Z^n``?"""
    if len(rows) < n:
        return False
    h, _u = hermite_normal_form([list(r) for r in rows])
    nonzero = [row for row in h if any(row)]
    if len(nonzero) != n:
        return False
    return all(
        nonzero[i][j] == (1 if i == j else 0)
        for i in range(n)
        for j in range(n)
    )


def _pair_family(w_stmt, write, r_stmt, read, order, lowers, uppers, stats):
    n = len(order)
    a_rows: list[list[int]] = []
    rhs: list[LinExpr] = []
    for w_e, r_e in zip(write.subscripts, read.subscripts):
        a_rows.append(
            w_e.coeff_vector(order) + [-c for c in r_e.coeff_vector(order)]
        )
        rhs.append(r_e.offset - w_e.offset)
    stats["systems_solved"] += 1
    sol = solve_symbolic_system(a_rows, rhs)
    if sol is None:
        stats["no_integer_solution"] += 1
        return None
    w_guard = w_stmt.guard if w_stmt.guard is not None else TRUE
    r_guard = r_stmt.guard if r_stmt.guard is not None else TRUE
    uniform = all(
        vec[:n] == vec[n:] for vec in sol.basis
    ) and _identity_lattice(tuple(vec[n:] for vec in sol.basis), n)
    if not uniform:
        stats["general_families"] += 1
        return GeneralFamily(
            particular=sol.particular,
            basis=sol.basis,
            variable=write.array,
            box=tuple(zip(lowers + lowers, uppers + uppers)),
            write_guard=w_guard,
            read_guard=r_guard,
            zeros=sol.zeros,
        )
    vector = tuple(
        snk - src for src, snk in zip(sol.particular[:n], sol.particular[n:])
    )
    if all(e.is_constant and e.const == 0 for e in vector):
        stats["self_dependences_dropped"] += 1
        return None  # source == sink identically: never a dependence
    # Sink in box, and source (= sink - vector) in box.
    axes = []
    for i in range(n):
        src_lo, src_hi = families_mod.shifted_bounds(
            lowers[i], uppers[i], vector[i]
        )
        axes.append(
            families_mod.AxisConstraint(
                intervals=((lowers[i], uppers[i]), (src_lo, src_hi))
            )
        )
    region = (Conjunction(tuple(axes)),)
    region = region_and(region, condition_to_region(w_guard, n, shift=vector))
    region = region_and(region, condition_to_region(r_guard, n, shift=None))
    if not region:
        stats["guard_infeasible"] += 1
        return None
    stats["uniform_families"] += 1
    return UniformFamily(
        vector=vector, variable=write.array, region=region, zeros=sol.zeros
    )


def analyze_symbolic(
    program: LoopNest,
    cache=None,
    cache_dir: str | None = None,
) -> SymbolicResult:
    """Analyze ``program`` with its parameters kept free.

    Parameters
    ----------
    program:
        A loop nest whose bounds/guards may reference free parameters
        (``u``, ``p``); fully concrete programs work too (the result is
        then a constant family set).
    cache, cache_dir:
        Artifact-store policy, with the same semantics as
        :class:`repro.depanalysis.engine.AnalysisConfig`: ``None`` means
        "enabled iff ``$REPRO_CACHE_DIR`` is set".

    Raises
    ------
    SymbolicUnsupported
        When a pair's system or guards have no linear closed form (e.g.
        parameter-dependent congruences); callers can fall back to the
        concrete analyzer.
    """
    from repro.cache import Uncacheable, resolve_cache
    from repro.cache.keys import symbolic_key
    from repro.symbolic.serde import (
        symbolic_result_from_payload,
        symbolic_result_to_payload,
    )

    key = None
    try:
        key = symbolic_key(program)
    except Uncacheable:
        pass
    if key is not None and key in _MEMO:
        obs.count("symbolic.memo_hits")
        return _MEMO[key]
    store = resolve_cache(cache, cache_dir)
    if store is not None and key is not None:
        payload = store.get("symbolic", key)
        if payload is not None:
            try:
                result = symbolic_result_from_payload(payload)
            except (KeyError, TypeError, ValueError):
                result = None  # malformed entry: recompute and overwrite
            if result is not None:
                obs.count("symbolic.cache_hits")
                _MEMO[key] = result
                return result

    order = program.index_names
    lowers = tuple(program.index_set.lowers)
    uppers = tuple(program.index_set.uppers)
    stats = {
        "pairs_tested": 0,
        "systems_solved": 0,
        "no_integer_solution": 0,
        "self_dependences_dropped": 0,
        "guard_infeasible": 0,
        "uniform_families": 0,
        "general_families": 0,
    }
    families: list = []
    with obs.span(
        "symbolic.analyze", statements=len(program.statements)
    ):
        for w_stmt in program.statements:
            write = w_stmt.write
            for r_stmt in program.statements:
                for read in r_stmt.reads:
                    if read.array != write.array:
                        continue
                    stats["pairs_tested"] += 1
                    fam = _pair_family(
                        w_stmt, write, r_stmt, read, order,
                        lowers, uppers, stats,
                    )
                    if fam is not None:
                        families.append(fam)
    obs.count("symbolic.analyses")
    result = SymbolicResult(
        families=tuple(families),
        index_names=tuple(order),
        lowers=lowers,
        uppers=uppers,
        stats=stats,
    )
    if key is not None:
        _MEMO[key] = result
        if store is not None:
            from repro.cache import Unserializable

            try:
                store.put(
                    "symbolic", key, symbolic_result_to_payload(result)
                )
            except Unserializable:
                pass
    return result


#: process-local memo: symbolic key -> SymbolicResult (sweeps re-solve never)
_MEMO: dict[str, SymbolicResult] = {}


def clear_memo() -> None:
    """Drop the in-process memo (tests and mutation checks)."""
    _MEMO.clear()
