"""Cross-checking the symbolic analyzer against Theorem 3.1.

Theorem 3.1 assembles the bit-level dependence structure *composition­
ally* -- constant work, symbolic validity conditions.  The symbolic
analyzer derives the same object from the expanded program by parametric
Diophantine solving.  Both are size-independent representations of one
dependence structure, so they can be compared at the symbolic level:

1. **Vector cover** (binding-free): every dependence column of the
   Theorem 3.1 structure must appear among the analyzer's family
   distances (the families are per write/read pair, so several families
   may share one column's vector).
2. **Extensional agreement** (sampled bindings): at each ``(u, p)`` in a
   small deterministic grid, the instantiated family edges
   ``{(sink, vector)}`` must equal the structure's effective edges
   (:func:`repro.expansion.verify.effective_edges`) -- the same
   comparison :func:`~repro.expansion.verify.verify_theorem31` uses
   against the concrete analyzer, now with the symbolic layer standing
   in for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.structures.params import S

__all__ = ["CrosscheckReport", "crosscheck_theorem31"]

#: adversarial little sizes: 1, 2, primes, powers of two
DEFAULT_BINDINGS = ((1, 1), (1, 2), (2, 2), (3, 2), (2, 3), (4, 3), (3, 4))


@dataclass
class CrosscheckReport:
    """Outcome of one symbolic-vs-compositional comparison."""

    ok: bool
    expansion: str
    #: theorem columns with no matching family distance
    uncovered_vectors: list = field(default_factory=list)
    #: per-binding [(binding, missing_edges, extra_edges)] mismatches
    mismatches: list = field(default_factory=list)
    bindings_checked: int = 0
    closed_form: bool = True

    def summary(self) -> str:
        if self.ok:
            return (
                f"MATCH: expansion {self.expansion}, "
                f"{self.bindings_checked} bindings, identical edges"
            )
        return (
            f"MISMATCH: {len(self.uncovered_vectors)} uncovered vectors, "
            f"{len(self.mismatches)} binding mismatches"
        )


def crosscheck_theorem31(
    expansion: str = "II",
    h1: Sequence[int] = (0, 1, 0),
    h2: Sequence[int] = (1, 0, 0),
    h3: Sequence[int] = (0, 0, 1),
    lowers: Sequence[int] = (1, 1, 1),
    bindings: Sequence[tuple[int, int]] = DEFAULT_BINDINGS,
    cache=False,
) -> CrosscheckReport:
    """Compare the symbolic analysis of the expanded program against the
    Theorem 3.1 composition for one model-(3.5) shape.

    All word axes share the symbolic extent ``u``; the word length is the
    symbolic ``p``.  With the defaults this is the paper's bit-level
    matrix multiplication.
    """
    from repro.expansion.theorem31 import bit_level_structure
    from repro.expansion.verify import effective_edges
    from repro.ir.builders import word_model_structure
    from repro.ir.expand import expand_bit_level
    from repro.symbolic.analyze import analyze_symbolic
    from repro.symbolic.families import UniformFamily

    n = len(lowers)
    uppers = tuple(S("u") for _ in range(n))
    program = expand_bit_level(
        h1, h2, h3, tuple(lowers), uppers, S("p"), expansion
    )
    symbolic = analyze_symbolic(program, cache=cache)

    word = word_model_structure(h1, h2, h3, tuple(lowers), uppers)
    structure = bit_level_structure(word, "add-shift", expansion, S("p"))

    family_vectors = {
        tuple(e.const for e in fam.vector)
        for fam in symbolic.families
        if isinstance(fam, UniformFamily)
        and all(e.is_constant for e in fam.vector)
    }
    uncovered = sorted(
        vec.vector
        for vec in structure.dependences
        if vec.vector not in family_vectors
    )

    mismatches = []
    for u, p in bindings:
        binding = {"u": u, "p": p}
        got = {
            (inst.sink, inst.vector)
            for inst in symbolic.instantiate(binding).instances
        }
        want = effective_edges(structure, binding)
        if got != want:
            mismatches.append(
                (dict(binding), sorted(want - got), sorted(got - want))
            )
    return CrosscheckReport(
        ok=not uncovered and not mismatches,
        expansion=expansion,
        uncovered_vectors=uncovered,
        mismatches=mismatches,
        bindings_checked=len(bindings),
        closed_form=symbolic.closed_form,
    )
