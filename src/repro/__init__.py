"""repro: bit-level dependence analysis and architecture design.

A from-scratch reproduction of

    Weijia Shang and Benjamin W. Wah,
    "Dependence Analysis and Architecture Design for Bit-Level Algorithms",
    Proc. Int'l Conf. on Parallel Processing (ICPP), 1993.

The library derives dependence structures of bit-level algorithms
*compositionally* (Theorem 3.1) -- from a word-level dependence structure,
an arithmetic algorithm's dependence structure, and an algorithm expansion --
instead of running general (exponential) dependence analysis on the expanded
program; and it designs/validates bit-level systolic architectures with the
linear space-time mapping machinery of Definition 4.1.

Quickstart::

    from repro import matmul_bit_level, designs, check_feasibility
    from repro.machine import BitLevelMatmulMachine

    alg = matmul_bit_level(u=4, p=8)           # eq. (3.12)/(3.13)
    T = designs.fig4_mapping(p=8)              # eq. (4.2), time optimal
    report = check_feasibility(T, alg, {"u": 4, "p": 8},
                               primitives=designs.fig4_primitives(8))
    assert report.feasible
    machine = BitLevelMatmulMachine(4, 8, T)
    run = machine.run(X, Y)                    # bit-exact Z = X·Y

Subpackages
-----------
``repro.structures``   index sets, conditions, dependence matrices
``repro.ir``           loop-nest IR, the paper's programs, bit-level expander
``repro.depanalysis``  general dependence analysis (the costly baseline)
``repro.symbolic``     parametric (closed-form) dependence analysis
``repro.arith``        add-shift / carry-save / ripple-carry arithmetic
``repro.expansion``    Expansions I/II, Theorem 3.1, verification, semantics
``repro.mapping``      Definition 4.1 machinery and the paper's designs
``repro.machine``      systolic-array simulators (bit-level and word-level)
``repro.experiments``  harnesses regenerating every figure of the paper
``repro.verify``       differential verification (randomized oracles)
``repro.cache``        persistent content-addressed artifact cache
``repro.obs``          observability: metrics, spans, event bus
``repro.serve``        async job server, thin client, unified JobSpec API
"""

from repro.structures import (
    Algorithm,
    DependenceMatrix,
    DependenceVector,
    IndexSet,
)
from repro.depanalysis import AnalysisConfig, analyze
from repro.expansion import (
    BitLevelEvaluator,
    bit_level_structure,
    matmul_bit_level,
    verify_theorem31,
)
from repro.mapping import (
    MappingMatrix,
    check_feasibility,
    designs,
    execution_time,
    find_optimal_schedule,
    processor_count,
)
from repro.verify import VerifyConfig, VerifyReport
from repro.api import analyze_symbolic, search_designs, simulate, verify_run

__version__ = "1.0.0"

# Old scattered import paths, kept alive behind DeprecationWarning shims
# (the deprecated-kwargs pattern of repro.mapping.engine.search_designs,
# applied to module attributes).  Maps old top-level name -> (module,
# attribute, suggested replacement).
_DEPRECATED_ALIASES = {
    "run_verification": (
        "repro.verify", "run_verification",
        "repro.verify_run or repro.verify.run_verification",
    ),
    "run_mutation_check": (
        "repro.verify", "run_mutation_check",
        "repro.verify.run_mutation_check",
    ),
}


def __getattr__(name):
    alias = _DEPRECATED_ALIASES.get(name)
    if alias is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib
    import warnings

    module, attribute, replacement = alias
    warnings.warn(
        f"'repro.{name}' is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(module), attribute)

__all__ = [
    "Algorithm",
    "DependenceMatrix",
    "DependenceVector",
    "IndexSet",
    "AnalysisConfig",
    "analyze",
    "analyze_symbolic",
    "BitLevelEvaluator",
    "bit_level_structure",
    "matmul_bit_level",
    "verify_theorem31",
    "MappingMatrix",
    "check_feasibility",
    "designs",
    "execution_time",
    "find_optimal_schedule",
    "processor_count",
    "VerifyConfig",
    "VerifyReport",
    "search_designs",
    "simulate",
    "verify_run",
    "__version__",
]
