"""Greedy counterexample shrinking.

A case is shrinkable when it exposes ``shrink_candidates() -> Iterator``
yielding strictly "smaller" variants of itself.  :func:`shrink` walks the
candidates greedily: the first candidate that still fails becomes the new
current case and the walk restarts from its candidates.  This is the same
structure Hypothesis uses internally, specialized to our frozen case
dataclasses so the pure-random runner gets shrinking without depending on
Hypothesis at all.
"""

from __future__ import annotations

from typing import Callable, TypeVar

Case = TypeVar("Case")

__all__ = ["shrink"]


def shrink(
    case: Case,
    fails: Callable[[Case], bool],
    max_steps: int = 200,
) -> tuple[Case, int]:
    """Minimize ``case`` while ``fails(case)`` stays true.

    ``fails`` must return ``True`` for the input ``case`` (the caller has
    already observed the failure); candidates for which ``fails`` raises
    are treated as not failing and skipped, so shrinking never widens the
    failure class.  Returns ``(smallest_failing_case, steps_taken)`` where
    a step is one successful reduction.
    """
    steps = 0
    budget = max_steps
    improved = True
    while improved and budget > 0:
        improved = False
        for candidate in case.shrink_candidates():  # type: ignore[attr-defined]
            if budget <= 0:
                break
            budget -= 1
            try:
                still_fails = fails(candidate)
            except Exception:
                still_fails = False
            if still_fails:
                case = candidate
                steps += 1
                improved = True
                break
    return case, steps
