"""Oracle: solver-backed search vs. the exhaustive catalog search.

For one random search instance, run :func:`repro.mapping.engine.run_search`
twice -- once with ``strategy="catalog"`` (the enumerate-and-filter
baseline, which tries every catalog candidate through
:func:`~repro.mapping.feasibility.check_feasibility`) and once with
``strategy="solver"`` (the branch-and-prune constraint generator of
:mod:`repro.mapping.solver`) -- and demand *identical* results:

* the canonicalized feasible ``T`` sets must be equal (an unsound solver
  cut shows up as a design missing from the solver side; a dropped
  feasibility condition as an extra design the catalog never admits);
* the ranked lists must agree element-wise in ``(rows, time,
  processors, wire_length)`` -- the solver contract is not merely
  set-equality but identical enumeration order, so capped searches
  return the same prefix.

Word-model cases run exhaustively (true set equality over the whole
design space); bit-level cases are capped and compare the identical
ranked prefix.  Both runs use ``persist_cache=False`` so no artifact
store can leak results between the two strategies.
"""

from __future__ import annotations

import random

from repro.verify.generator import SearchCase, SizeEnvelope, gen_search_case

__all__ = ["NAME", "generate", "check"]

NAME = "search"


def generate(rng: random.Random, envelope: SizeEnvelope) -> SearchCase:
    return gen_search_case(rng, envelope)


def _signature(candidates) -> list[tuple]:
    return [
        (c.mapping.rows, c.time, c.processors, c.wire_length)
        for c in candidates
    ]


def check(case: SearchCase) -> str | None:
    """Return a disagreement description, or ``None`` when the two
    strategies produce identical designs."""
    from repro.mapping.engine import run_search

    algorithm, binding, primitives = case.build()
    catalog = run_search(
        algorithm, binding, primitives, case.config("catalog")
    )
    solver = run_search(
        algorithm, binding, primitives, case.config("solver")
    )
    catalog_sig = _signature(catalog)
    solver_sig = _signature(solver)
    if catalog_sig == solver_sig:
        return None

    # Diagnose: set-level disagreement (soundness/completeness bug) vs.
    # order-level disagreement (broken enumeration-order contract).
    catalog_ts = {sig[0] for sig in catalog_sig}
    solver_ts = {sig[0] for sig in solver_sig}
    problems: list[str] = []
    missing = sorted(catalog_ts - solver_ts)
    extra = sorted(solver_ts - catalog_ts)
    if missing:
        problems.append(
            f"solver misses {len(missing)} feasible design(s), e.g. "
            f"T={[list(r) for r in missing[0]]} (unsound cut)"
        )
    if extra:
        problems.append(
            f"solver admits {len(extra)} design(s) the catalog rejects, "
            f"e.g. T={[list(r) for r in extra[0]]} (dropped condition)"
        )
    if not problems:
        problems.append(
            f"same feasible set but different ranking/metrics: "
            f"catalog={catalog_sig[:3]} solver={solver_sig[:3]}"
        )
    return f"[{case.kind}/{case.primitives}] " + "; ".join(problems)
