"""Differential verification: randomized oracles for the paper's claims.

The subsystem cross-checks the repository's three load-bearing components
against independent implementations on randomized inputs:

* :mod:`repro.verify.oracle_theorem31` -- the O(1) compositional bit-level
  dependence structure (Theorem 3.1) vs. brute-force dependence analysis
  of the expanded program;
* :mod:`repro.verify.oracle_analysis` -- the batched (vectorized) analysis
  engine vs. the scalar reference: identical instances and statistics on
  randomized programs;
* :mod:`repro.verify.oracle_symbolic` -- the parametric (closed-form)
  analyzer instantiated at randomized and adversarial concrete sizes vs.
  the concrete analyzer on the same program;
* :mod:`repro.verify.oracle_mapping` -- Definition 4.1 feasibility verdicts
  vs. exhaustive per-condition rechecking on the concrete index set;
* :mod:`repro.verify.oracle_simulator` -- bit-level machine executions vs.
  word-level reference products (signed and Baugh-Wooley paths included);
* :mod:`repro.verify.oracle_search` -- the branch-and-prune search solver
  vs. the exhaustive catalog search: identical feasible sets and rankings
  on randomized instances.

Entry points: ``python -m repro verify`` on the command line,
:func:`run_verification` / :func:`run_mutation_check` programmatically.
See ``docs/VERIFY.md``.
"""

from repro.verify.generator import (
    EDGE_SIZES,
    HAVE_HYPOTHESIS,
    AnalysisCase,
    MappingCase,
    SearchCase,
    SimulatorCase,
    SizeEnvelope,
    SymbolicCase,
    Theorem31Case,
    gen_analysis_case,
    gen_mapping_case,
    gen_search_case,
    gen_simulator_case,
    gen_symbolic_case,
    gen_theorem31_case,
)
from repro.verify.report import Counterexample, OracleOutcome, VerifyReport
from repro.verify.runner import (
    ORACLES,
    SEARCH_MUTATIONS,
    SYMBOLIC_MUTATIONS,
    VerifyConfig,
    run_mutation_check,
    run_search_mutation_check,
    run_symbolic_mutation_check,
    run_verification,
)
from repro.verify.shrink import shrink

__all__ = [
    "EDGE_SIZES",
    "HAVE_HYPOTHESIS",
    "SizeEnvelope",
    "Theorem31Case",
    "AnalysisCase",
    "MappingCase",
    "SearchCase",
    "SimulatorCase",
    "SymbolicCase",
    "gen_theorem31_case",
    "gen_analysis_case",
    "gen_mapping_case",
    "gen_search_case",
    "gen_simulator_case",
    "gen_symbolic_case",
    "Counterexample",
    "OracleOutcome",
    "VerifyReport",
    "ORACLES",
    "SEARCH_MUTATIONS",
    "SYMBOLIC_MUTATIONS",
    "VerifyConfig",
    "run_verification",
    "run_mutation_check",
    "run_search_mutation_check",
    "run_symbolic_mutation_check",
    "shrink",
]
