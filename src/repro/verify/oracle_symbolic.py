"""Oracle: the symbolic (parametric) analyzer vs. the concrete analyzer.

For one random program (bit-level matmul with symbolic extents, or a
strided 1-D nest exercising the congruence reasoning), run
:func:`repro.symbolic.analyze_symbolic` once with ``u``/``p`` kept free,
instantiate the result at the case's concrete binding, and demand that it
reproduce :func:`repro.depanalysis.analyzer.analyze` on the same program
bit for bit: identical instance keys in identical order.  The O(1)
counting view (``summary``) is cross-checked against the same reference
-- total instances and the distinct-vector set must agree -- so both the
extensional and the closed-form counting paths are covered by every case.

A program whose system has no linear closed form is a failure here, not a
skip: every case this generator draws is within the symbolic layer's
advertised support.
"""

from __future__ import annotations

import random

from repro.verify.generator import SizeEnvelope, SymbolicCase, gen_symbolic_case

__all__ = ["NAME", "generate", "check"]

NAME = "symbolic"


def generate(rng: random.Random, envelope: SizeEnvelope) -> SymbolicCase:
    return gen_symbolic_case(rng, envelope)


def check(case: SymbolicCase) -> str | None:
    """Return a divergence description, or ``None`` when the layers agree."""
    from repro.depanalysis.analyzer import analyze
    from repro.depanalysis.engine import AnalysisConfig
    from repro.symbolic import SymbolicUnsupported, analyze_symbolic

    program = case.build_program()
    binding = case.binding()
    try:
        symbolic = analyze_symbolic(program, cache=False)
    except SymbolicUnsupported as exc:
        return f"no closed form for a supported program: {exc}"
    want = analyze(
        program, binding, method=case.method,
        config=AnalysisConfig(cache=False),
    )
    got = symbolic.instantiate(binding)
    g_keys = [inst.key() for inst in got.instances]
    w_keys = [inst.key() for inst in want.instances]
    if g_keys != w_keys:
        only_g = sorted(set(g_keys) - set(w_keys))
        only_w = sorted(set(w_keys) - set(g_keys))
        return (
            f"instance divergence at {binding} ({case.method}): "
            f"{len(g_keys)} symbolic vs {len(w_keys)} exact; "
            f"symbolic-only (first 3): {only_g[:3]}; "
            f"exact-only (first 3): {only_w[:3]}"
        )
    summary = symbolic.summary(binding)
    if summary["instances"] != len(want.instances):
        return (
            f"summary count diverges at {binding}: "
            f"{summary['instances']} counted vs {len(want.instances)} exact"
        )
    want_vectors = sorted({inst.vector for inst in want.instances})
    if summary["distinct_vectors"] != want_vectors:
        return (
            f"distinct vectors diverge at {binding}: "
            f"{summary['distinct_vectors']} vs {want_vectors}"
        )
    return None
