"""Oracle: bit-level machine executions vs. word-level reference products.

For one random operand set, run the full space-time machine (bit-level
lattice on a paper design, the word-level systolic baseline, the signed
coefficient-splitting driver, or the Baugh-Wooley signed multiplier) and
compare against an independently computed reference product -- numpy
``object``-dtype matmul when numpy is importable, a pure-Python triple loop
otherwise.  The bit-level modes also cross-check the simulator's measured
makespan against the closed-form :func:`repro.mapping.schedule.
execution_time` of the design's schedule.
"""

from __future__ import annotations

import random

from repro.verify.generator import SimulatorCase, SizeEnvelope, gen_simulator_case

try:  # pragma: no cover - identical results either way, by construction
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["NAME", "generate", "check", "reference_matmul"]

NAME = "simulator"


def generate(rng: random.Random, envelope: SizeEnvelope) -> SimulatorCase:
    return gen_simulator_case(rng, envelope)


def reference_matmul(x, y, modulus: int | None = None) -> list[list[int]]:
    """Exact word-level ``X·Y`` (optionally mod ``modulus``).

    Uses numpy with ``object`` dtype when available (arbitrary-precision
    Python ints inside the array, so no silent wraparound), else a plain
    triple loop.
    """
    if _np is not None:
        z = _np.array(x, dtype=object) @ _np.array(y, dtype=object)
        out = [[int(v) for v in row] for row in z.tolist()]
    else:
        u, cols = len(x), len(y[0])
        inner = len(y)
        out = [
            [sum(x[i][k] * y[k][j] for k in range(inner)) for j in range(cols)]
            for i in range(u)
        ]
    if modulus is not None:
        out = [[v % modulus for v in row] for row in out]
    return out


def _design_mapping(case: SimulatorCase):
    from repro.mapping import designs

    if case.design == "fig5":
        return designs.fig5_mapping(case.p)
    return designs.fig4_mapping(case.p)


def check(case: SimulatorCase, backend: str | None = None) -> str | None:
    """Return a mismatch description, or ``None`` on exact agreement.

    ``backend`` selects the simulator engine for the machine-backed modes
    (``None`` defers to :func:`repro.machine.simulator.default_backend`,
    i.e. the ``REPRO_SIM_BACKEND`` environment variable in fuzz jobs); the
    wavefront backend routes every mode through the batched space-time
    transforms and slot kernels.
    """
    if case.mode == "baughwooley":
        from repro.arith.baughwooley import BaughWooleyMultiplier

        multiplier = BaughWooleyMultiplier(case.p)
        got = multiplier.multiply(case.a, case.b)
        want = case.a * case.b
        if got != want:
            return (
                f"BaughWooley({case.p}).multiply({case.a}, {case.b}) = "
                f"{got}, expected {want}"
            )
        batch = multiplier.multiply_block([case.a], [case.b])
        if int(batch[0]) != want:
            return (
                f"BaughWooley({case.p}).multiply_block([{case.a}], "
                f"[{case.b}]) = {int(batch[0])}, expected {want}"
            )
        return None

    if case.mode == "word":
        from repro.machine.wordlevel import WordLevelMatmulMachine

        machine = WordLevelMatmulMachine(
            case.u, case.p, case.arithmetic, backend=backend
        )
        run = machine.run([list(r) for r in case.x], [list(r) for r in case.y])
        want = reference_matmul(case.x, case.y)
        if run.product != want:
            return (
                f"word-level machine ({case.arithmetic}) product "
                f"{run.product} != reference {want}"
            )
        return None

    # Bit-level modes share the machine; build it once.
    from repro.machine.bitlevel import BitLevelMatmulMachine
    from repro.mapping.schedule import execution_time

    t = _design_mapping(case)
    machine = BitLevelMatmulMachine(
        case.u, case.p, t, case.expansion, backend=backend
    )
    modulus = 1 << (2 * case.p - 1)

    if case.mode == "signed":
        from repro.machine.signed import signed_matmul

        got = signed_matmul(
            lambda a, b: machine.run(a, b).product,
            [list(r) for r in case.x],
            [list(r) for r in case.y],
            modulus=modulus,
        )
        want = reference_matmul(case.x, case.y)
        if got != want:
            return (
                f"signed coefficient-split product {got} != reference "
                f"{want} (design {case.design}, expansion {case.expansion})"
            )
        return None

    run = machine.run([list(r) for r in case.x], [list(r) for r in case.y])
    want = reference_matmul(case.x, case.y, modulus=modulus)
    if run.product != want:
        return (
            f"bit-level product {run.product} != reference (mod 2^"
            f"{2 * case.p - 1}) {want} (design {case.design}, "
            f"expansion {case.expansion})"
        )
    expected_makespan = execution_time(
        t.schedule, machine.algorithm, machine.binding
    )
    if run.sim.makespan != expected_makespan:
        return (
            f"measured makespan {run.sim.makespan} != closed-form "
            f"execution time {expected_makespan} (design {case.design}, "
            f"u={case.u}, p={case.p})"
        )
    return None
