"""Oracle: Theorem 3.1's compositional structure vs. brute-force analysis.

For one random model-(3.5) instance, assemble the bit-level dependence
structure compositionally (O(1) work, :mod:`repro.expansion.theorem31`) and
compare it extensionally against what the general dependence analyzer of
:mod:`repro.depanalysis` finds on the explicitly expanded program --
exactly the paper's central claim, on inputs nobody hand-picked.

An oracle module exports ``NAME``, ``generate(rng, envelope)`` and
``check(case) -> str | None`` (``None`` = agreement, otherwise a
human-readable description of the disagreement).
"""

from __future__ import annotations

import random

from repro.verify.generator import SizeEnvelope, Theorem31Case, gen_theorem31_case

__all__ = ["NAME", "generate", "check"]

NAME = "theorem31"


def generate(rng: random.Random, envelope: SizeEnvelope) -> Theorem31Case:
    return gen_theorem31_case(rng, envelope)


def check(case: Theorem31Case) -> str | None:
    """Return a mismatch description, or ``None`` when both sides agree."""
    from repro.expansion.verify import verify_theorem31

    report = verify_theorem31(
        case.h1, case.h2, case.h3, case.lowers, case.uppers,
        case.p, expansion=case.expansion, method=case.method,
    )
    if report.matches:
        return None
    parts = [report.summary()]
    if report.missing_from_analysis:
        parts.append(
            f"predicted-only edges (first 3): "
            f"{report.missing_from_analysis[:3]}"
        )
    if report.extra_in_analysis:
        parts.append(
            f"analysis-only edges (first 3): {report.extra_in_analysis[:3]}"
        )
    return "; ".join(parts)
