"""Randomized case generation for the differential verification subsystem.

Every oracle in :mod:`repro.verify` consumes *cases*: small, frozen,
JSON-serializable descriptions of one concrete instance to cross-check.
This module owns

* :class:`SizeEnvelope` -- the configurable size limits within which cases
  are drawn (word dimensions, index-set extents, word lengths, mapping
  entry bounds);
* the case dataclasses (:class:`Theorem31Case`, :class:`MappingCase`,
  :class:`SimulatorCase`), each carrying its own ``shrink_candidates``
  generator so :mod:`repro.verify.shrink` can minimize counterexamples
  without knowing their shape;
* seeded pure-``random`` generators (``gen_*``) used by the CLI runner --
  fully deterministic for a given ``random.Random``;
* Hypothesis strategies mirroring the same envelopes, exported for the
  property-based test suites.  Hypothesis is optional: when it is not
  importable, :data:`HAVE_HYPOTHESIS` is ``False``, the strategy helpers
  raise, and the pure-random generators (which never touch Hypothesis)
  keep working.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, replace
from typing import Iterator, Sequence

try:  # pragma: no cover - exercised implicitly by the test suites
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    st = None  # type: ignore[assignment]
    HAVE_HYPOTHESIS = False

__all__ = [
    "EDGE_SIZES",
    "HAVE_HYPOTHESIS",
    "SizeEnvelope",
    "Theorem31Case",
    "AnalysisCase",
    "MappingCase",
    "SearchCase",
    "SimulatorCase",
    "SymbolicCase",
    "lex_positive",
    "random_word_vector",
    "gen_theorem31_case",
    "gen_analysis_case",
    "gen_mapping_case",
    "gen_search_case",
    "gen_simulator_case",
    "gen_symbolic_case",
    "word_vector_strategy",
    "theorem31_case_strategy",
    "int_vector_strategy",
    "int_matrix_strategy",
]


@dataclass(frozen=True)
class SizeEnvelope:
    """Size limits for generated cases.

    The defaults keep every oracle check well under a tenth of a second so
    that ``verify --cases 50`` finishes in seconds; fuzz jobs may enlarge
    them (`max_extent`, `max_p`) for deeper sweeps.
    """

    #: word-level dimensions to draw from (Theorem 3.1 cases)
    word_dims: tuple[int, ...] = (1, 2)
    #: largest per-axis upper bound of a word-level index set
    max_extent: int = 4
    #: largest |entry| of a word-level dependence vector
    max_step: int = 2
    #: word-length range (inclusive)
    min_p: int = 2
    max_p: int = 3
    #: largest matrix dimension for simulator cases
    max_u: int = 3
    #: largest |entry| of a randomly drawn mapping-matrix row
    mapping_entry_bound: int = 2


# ---------------------------------------------------------------------------
# Shared primitives
# ---------------------------------------------------------------------------

def lex_positive(vec: Sequence[int]) -> bool:
    """True when the first nonzero entry of ``vec`` is positive."""
    for x in vec:
        if x > 0:
            return True
        if x < 0:
            return False
    return False


def random_word_vector(
    rng: random.Random, dim: int, max_step: int
) -> tuple[int, ...]:
    """A lexicographically positive integer vector, by construction.

    The leading prefix is zero, the pivot entry is drawn from
    ``1..max_step``, and trailing entries range over ``-max_step..max_step``
    -- exactly the shape of a model-(3.5) pipelining vector.
    """
    pivot = rng.randrange(dim)
    vec = [0] * dim
    vec[pivot] = rng.randint(1, max_step)
    for k in range(pivot + 1, dim):
        vec[k] = rng.randint(-max_step, max_step)
    return tuple(vec)


def _shrink_int(value: int, floor: int) -> Iterator[int]:
    """Candidate reductions of ``value`` toward ``floor`` (halving, then -1)."""
    if value <= floor:
        return
    half = floor + (value - floor) // 2
    if half != value:
        yield half
    if value - 1 != half:
        yield value - 1


def _shrink_vector(
    vec: tuple[int, ...], keep: "callable[[tuple[int, ...]], bool]"
) -> Iterator[tuple[int, ...]]:
    """Move entries toward zero, one at a time, preserving ``keep``."""
    for i, x in enumerate(vec):
        if x == 0:
            continue
        candidate = list(vec)
        candidate[i] = x - 1 if x > 0 else x + 1
        out = tuple(candidate)
        if keep(out):
            yield out


# ---------------------------------------------------------------------------
# Theorem 3.1 cases
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Theorem31Case:
    """One concrete model-(3.5) instance for the Theorem 3.1 oracle."""

    h1: tuple[int, ...]
    h2: tuple[int, ...]
    h3: tuple[int, ...]
    lowers: tuple[int, ...]
    uppers: tuple[int, ...]
    p: int
    expansion: str
    #: analyzer backend run on the expanded program
    method: str = "enumerate"

    def to_dict(self) -> dict:
        return asdict(self)

    def shrink_candidates(self) -> Iterator["Theorem31Case"]:
        for axis, hi in enumerate(self.uppers):
            for smaller in _shrink_int(hi, self.lowers[axis]):
                uppers = list(self.uppers)
                uppers[axis] = smaller
                yield replace(self, uppers=tuple(uppers))
        for smaller in _shrink_int(self.p, 2):
            yield replace(self, p=smaller)
        for name in ("h1", "h2", "h3"):
            for vec in _shrink_vector(getattr(self, name), lex_positive):
                yield replace(self, **{name: vec})
        if self.method == "exact":
            yield replace(self, method="enumerate")


def gen_theorem31_case(
    rng: random.Random, env: SizeEnvelope = SizeEnvelope()
) -> Theorem31Case:
    """Draw a random Theorem 3.1 case inside the envelope."""
    dim = rng.choice(env.word_dims)
    uppers = tuple(rng.randint(2, env.max_extent) for _ in range(dim))
    # The exact (Diophantine) analyzer is exponential; run it on a sample of
    # the smallest cases so both backends stay cross-checked.
    method = "exact" if dim == 1 and rng.random() < 0.25 else "enumerate"
    return Theorem31Case(
        h1=random_word_vector(rng, dim, env.max_step),
        h2=random_word_vector(rng, dim, env.max_step),
        h3=random_word_vector(rng, dim, env.max_step),
        lowers=(1,) * dim,
        uppers=uppers,
        p=rng.randint(env.min_p, env.max_p),
        expansion=rng.choice(("I", "II")),
        method=method,
    )


# ---------------------------------------------------------------------------
# Analysis-engine cases
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AnalysisCase:
    """One expanded bit-level program for the scalar-vs-batched engine oracle.

    The same model-(3.5) shape as :class:`Theorem31Case`, but here the two
    sides of the differential check are the two *backends* of
    :mod:`repro.depanalysis.engine` on one program: the batched (vectorized)
    engine must reproduce the scalar reference bit-for-bit -- same instance
    list, same statistics counters.
    """

    h1: tuple[int, ...]
    h2: tuple[int, ...]
    h3: tuple[int, ...]
    lowers: tuple[int, ...]
    uppers: tuple[int, ...]
    p: int
    expansion: str
    #: analyzer method compared across backends
    method: str = "enumerate"
    #: exercise the GCD/Banerjee screens (method="exact" only)
    use_screens: bool = True

    def to_dict(self) -> dict:
        return asdict(self)

    def build_program(self):
        """The explicit bit-level loop nest this case analyzes."""
        from repro.ir.expand import expand_bit_level

        return expand_bit_level(
            self.h1, self.h2, self.h3, self.lowers, self.uppers,
            self.p, self.expansion,
        )

    def shrink_candidates(self) -> Iterator["AnalysisCase"]:
        for axis, hi in enumerate(self.uppers):
            for smaller in _shrink_int(hi, self.lowers[axis]):
                uppers = list(self.uppers)
                uppers[axis] = smaller
                yield replace(self, uppers=tuple(uppers))
        for smaller in _shrink_int(self.p, 2):
            yield replace(self, p=smaller)
        for name in ("h1", "h2", "h3"):
            for vec in _shrink_vector(getattr(self, name), lex_positive):
                yield replace(self, **{name: vec})
        if not self.use_screens:
            yield replace(self, use_screens=True)


def gen_analysis_case(
    rng: random.Random, env: SizeEnvelope = SizeEnvelope()
) -> AnalysisCase:
    """Draw a random engine-equivalence case inside the envelope."""
    dim = rng.choice(env.word_dims)
    uppers = tuple(rng.randint(2, env.max_extent) for _ in range(dim))
    # The exact analyzer is the expensive leg; sample it mostly on the
    # smallest programs, the hash-join everywhere.
    r = rng.random()
    if (dim == 1 and r < 0.5) or (dim == 2 and r < 0.15):
        method = "exact"
    else:
        method = "enumerate"
    return AnalysisCase(
        h1=random_word_vector(rng, dim, env.max_step),
        h2=random_word_vector(rng, dim, env.max_step),
        h3=random_word_vector(rng, dim, env.max_step),
        lowers=(1,) * dim,
        uppers=uppers,
        p=rng.randint(env.min_p, env.max_p),
        expansion=rng.choice(("I", "II")),
        method=method,
        use_screens=rng.random() < 0.8,
    )


# ---------------------------------------------------------------------------
# Symbolic-analysis cases
# ---------------------------------------------------------------------------

#: adversarial concrete sizes: 1, 2, primes, powers of two
EDGE_SIZES = (1, 2, 3, 4, 5, 7, 8)


@dataclass(frozen=True)
class SymbolicCase:
    """One symbolic-vs-exact cross-validation instance.

    ``kind`` selects the program family:

    * ``"matmul"`` -- :func:`repro.ir.expand.expand_bit_level` with the
      extents kept symbolic (every word axis bound to ``u``, the word
      length to ``p``), the shape every closed-form path must handle;
    * ``"stride"`` -- a 1-D nest writing ``x(s*j)`` and reading
      ``x(s*j - o)``: its Diophantine system has invariant factor ``s``,
      so the congruence reasoning of the symbolic solver (``s | o`` vs.
      no dependence at all) is genuinely load-bearing -- matmul programs
      have identity subscripts and never exercise it.

    The differential check instantiates the symbolic analysis at the
    stored concrete ``(u, p)`` and compares against the concrete analyzer
    run on the same program with the same binding.
    """

    kind: str
    u: int
    p: int = 2
    h1: tuple[int, ...] = ()
    h2: tuple[int, ...] = ()
    h3: tuple[int, ...] = ()
    lowers: tuple[int, ...] = ()
    expansion: str = "II"
    stride: int = 2
    offset: int = 1
    #: concrete analyzer leg of the differential check
    method: str = "enumerate"

    def to_dict(self) -> dict:
        return asdict(self)

    def binding(self) -> dict:
        """The concrete parameter binding the case instantiates at."""
        if self.kind == "matmul":
            return {"u": self.u, "p": self.p}
        return {"u": self.u}

    def build_program(self):
        """The loop nest with its parameters kept free."""
        from repro.structures.params import S

        if self.kind == "matmul":
            from repro.ir.expand import expand_bit_level

            dim = len(self.h1)
            return expand_bit_level(
                self.h1, self.h2, self.h3, self.lowers,
                tuple(S("u") for _ in range(dim)), S("p"), self.expansion,
            )
        if self.kind == "stride":
            from repro.ir.expr import AffineExpr
            from repro.ir.program import ArrayAccess, LoopNest, Statement
            from repro.structures.indexset import IndexSet

            j = AffineExpr.index("j1")
            stmt = Statement(
                "S1",
                ArrayAccess("x", (j * self.stride,)),
                (ArrayAccess("x", (j * self.stride - self.offset,)),),
            )
            return LoopNest(
                ("j1",),
                IndexSet((0,), (S("u"),)),
                (stmt,),
                name=f"stride-{self.stride}-{self.offset}",
            )
        raise ValueError(f"unknown symbolic-case kind {self.kind!r}")

    def shrink_candidates(self) -> Iterator["SymbolicCase"]:
        for smaller in _shrink_int(self.u, 1):
            yield replace(self, u=smaller)
        if self.kind == "matmul":
            for smaller in _shrink_int(self.p, 1):
                yield replace(self, p=smaller)
            for name in ("h1", "h2", "h3"):
                for vec in _shrink_vector(getattr(self, name), lex_positive):
                    yield replace(self, **{name: vec})
        else:
            for smaller in _shrink_int(self.offset, 1):
                yield replace(self, offset=smaller)
        if self.method == "exact":
            yield replace(self, method="enumerate")


def gen_symbolic_case(
    rng: random.Random, env: SizeEnvelope = SizeEnvelope()
) -> SymbolicCase:
    """Draw a random symbolic cross-validation case inside the envelope.

    Concrete sizes come from :data:`EDGE_SIZES` (clipped to the envelope)
    rather than a uniform range: off-by-one and divisibility bugs live at
    1, 2, primes and powers of two.  Word lengths include ``p = 1``, the
    degenerate single-bit word.
    """
    if rng.random() < 0.25:
        stride = rng.choice((2, 3))
        u_pool = [s for s in EDGE_SIZES if s <= 2 * env.max_extent]
        return SymbolicCase(
            kind="stride",
            u=rng.choice(u_pool),
            stride=stride,
            # about half the draws are indivisible by the stride: the
            # "no dependence at any size" verdict must be exercised too
            offset=rng.randint(1, 3 * stride),
            method=rng.choice(("exact", "enumerate")),
        )
    dim = rng.choice(env.word_dims)
    u_pool = [s for s in EDGE_SIZES if s <= env.max_extent] or [1, 2]
    method = "exact" if dim == 1 and rng.random() < 0.25 else "enumerate"
    return SymbolicCase(
        kind="matmul",
        h1=random_word_vector(rng, dim, env.max_step),
        h2=random_word_vector(rng, dim, env.max_step),
        h3=random_word_vector(rng, dim, env.max_step),
        lowers=(1,) * dim,
        u=rng.choice(u_pool),
        p=rng.randint(1, env.max_p),
        expansion=rng.choice(("I", "II")),
        method=method,
    )


# ---------------------------------------------------------------------------
# Mapping cases
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MappingCase:
    """One (algorithm instance, mapping, primitives) triple for the
    feasibility oracle.

    ``kind`` selects how the algorithm is rebuilt:

    * ``"word"`` -- :func:`repro.ir.builders.word_model_structure` from the
      stored ``h``-vectors and concrete bounds (box index set);
    * ``"lu"`` -- :func:`repro.ir.builders.lu_word_structure` with ``n``
      (an affine-constrained triangular index set);
    * ``"bitlevel"`` -- :func:`repro.expansion.theorem31.matmul_bit_level`
      with ``(u, p)`` (the paper's 5-D structure).
    """

    kind: str
    rows: tuple[tuple[int, ...], ...]
    #: "none" | "mesh" | "fig4" | "fig5"
    primitives: str
    h1: tuple[int, ...] = ()
    h2: tuple[int, ...] = ()
    h3: tuple[int, ...] = ()
    lowers: tuple[int, ...] = ()
    uppers: tuple[int, ...] = ()
    n: int = 0
    u: int = 0
    p: int = 0
    expansion: str = "II"

    def to_dict(self) -> dict:
        return asdict(self)

    def build(self):
        """Rebuild ``(algorithm, binding, mapping, primitives)`` objects."""
        from repro.expansion.theorem31 import matmul_bit_level
        from repro.ir.builders import lu_word_structure, word_model_structure
        from repro.mapping import designs
        from repro.mapping.interconnect import mesh_primitives
        from repro.mapping.transform import MappingMatrix

        if self.kind == "word":
            alg = word_model_structure(
                self.h1, self.h2, self.h3, self.lowers, self.uppers
            )
            binding: dict[str, int] = {}
        elif self.kind == "lu":
            alg = lu_word_structure(self.n)
            binding = {"n": self.n}
        elif self.kind == "bitlevel":
            alg = matmul_bit_level(self.u, self.p, self.expansion)
            binding = {"u": self.u, "p": self.p}
        else:
            raise ValueError(f"unknown mapping-case kind {self.kind!r}")
        t = MappingMatrix([list(r) for r in self.rows], name="T-verify")
        prims = {
            "none": lambda: None,
            "mesh": lambda: mesh_primitives(max(1, len(self.rows) - 1)),
            "fig4": lambda: designs.fig4_primitives(self.p or 2),
            "fig5": lambda: designs.fig5_primitives(),
        }[self.primitives]()
        return alg, binding, t, prims

    def shrink_candidates(self) -> Iterator["MappingCase"]:
        # Shrink the instance first (cheapest wins for reproduction)...
        if self.kind == "word":
            for axis, hi in enumerate(self.uppers):
                for smaller in _shrink_int(hi, self.lowers[axis]):
                    uppers = list(self.uppers)
                    uppers[axis] = smaller
                    yield replace(self, uppers=tuple(uppers))
            for name in ("h1", "h2", "h3"):
                for vec in _shrink_vector(getattr(self, name), lex_positive):
                    yield replace(self, **{name: vec})
        elif self.kind == "lu":
            for smaller in _shrink_int(self.n, 2):
                yield replace(self, n=smaller)
        elif self.kind == "bitlevel":
            for smaller in _shrink_int(self.u, 2):
                yield replace(self, u=smaller)
            for smaller in _shrink_int(self.p, 2):
                yield replace(self, p=smaller)
        # ... then the mapping entries toward zero.
        for i, row in enumerate(self.rows):
            for vec in _shrink_vector(row, lambda _: True):
                rows = list(self.rows)
                rows[i] = vec
                yield replace(self, rows=tuple(rows))
        if self.primitives != "none":
            yield replace(self, primitives="none")


def _random_rows(
    rng: random.Random, k: int, n: int, bound: int
) -> tuple[tuple[int, ...], ...]:
    return tuple(
        tuple(rng.randint(-bound, bound) for _ in range(n)) for _ in range(k)
    )


def _biased_rows(
    rng: random.Random, k: int, n: int
) -> tuple[tuple[int, ...], ...]:
    """Catalog space rows plus a lexicographically positive schedule: close
    to the shapes the search engine accepts, so the oracle regularly sees
    *feasible* designs (not only rejections)."""
    from repro.mapping.engine import space_map_catalog

    catalog = space_map_catalog(n)
    space = [catalog[rng.randrange(len(catalog))] for _ in range(k - 1)]
    schedule = tuple(rng.randint(0, 2) for _ in range(n))
    if not any(schedule):
        schedule = (1,) * n
    return tuple(space) + (schedule,)


def gen_mapping_case(
    rng: random.Random, env: SizeEnvelope = SizeEnvelope()
) -> MappingCase:
    """Draw a random mapping case: algorithm instance, mapping, primitives."""
    kind = rng.choice(("word", "word", "lu", "bitlevel"))
    if kind == "word":
        dim = rng.choice((2, 3))
        case = MappingCase(
            kind="word",
            h1=random_word_vector(rng, dim, 1),
            h2=random_word_vector(rng, dim, 1),
            h3=random_word_vector(rng, dim, 1),
            lowers=(1,) * dim,
            uppers=tuple(rng.randint(2, 3) for _ in range(dim)),
            rows=(),
            primitives="none",
        )
        n = dim
    elif kind == "lu":
        case = MappingCase(kind="lu", n=rng.randint(2, 3), rows=(), primitives="none")
        n = 3
    else:
        case = MappingCase(kind="bitlevel", u=2, p=2, rows=(), primitives="none")
        n = 5
        if rng.random() < 0.4:
            # The paper's own designs (and their primitive sets) must always
            # re-validate: feed them through the oracle verbatim.
            from repro.mapping import designs

            design, prims = rng.choice(
                ((designs.fig4_mapping(2), "fig4"), (designs.fig5_mapping(2), "fig5"))
            )
            return replace(case, rows=design.rows, primitives=prims)
    k = rng.randint(2, min(3, n))
    if rng.random() < 0.5:
        rows = _biased_rows(rng, k, n)
    else:
        rows = _random_rows(rng, k, n, env.mapping_entry_bound)
    primitives = rng.choice(("none", "mesh", "mesh"))
    return replace(case, rows=rows, primitives=primitives)


# ---------------------------------------------------------------------------
# Search cases (solver-vs-catalog differential)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SearchCase:
    """One design-space search instance for the solver/catalog oracle.

    ``kind`` selects the algorithm exactly as :class:`MappingCase` does
    (``"word"`` rebuilds via ``word_model_structure``, ``"bitlevel"`` via
    ``matmul_bit_level``); the remaining fields are the
    :class:`~repro.mapping.engine.SearchConfig` knobs under test.  Word
    cases run exhaustively (``max_candidates=None``), so the oracle
    compares true feasible *sets*; bit-level cases are capped
    (``max_candidates``/``overcollect``) and compare the identical
    ranked prefix both strategies must produce.
    """

    kind: str
    #: "none" | "mesh" | "fig4"
    primitives: str
    target_space_dim: int
    block: tuple[int, ...]
    schedule_bound: int
    max_candidates: int | None = None
    overcollect: int | None = None
    h1: tuple[int, ...] = ()
    h2: tuple[int, ...] = ()
    h3: tuple[int, ...] = ()
    lowers: tuple[int, ...] = ()
    uppers: tuple[int, ...] = ()
    u: int = 0
    p: int = 0
    expansion: str = "II"

    def to_dict(self) -> dict:
        return asdict(self)

    def build(self):
        """Rebuild ``(algorithm, binding, primitives)`` objects."""
        from repro.expansion.theorem31 import matmul_bit_level
        from repro.ir.builders import word_model_structure
        from repro.mapping import designs
        from repro.mapping.interconnect import mesh_primitives

        if self.kind == "word":
            alg = word_model_structure(
                self.h1, self.h2, self.h3, self.lowers, self.uppers
            )
            binding: dict[str, int] = {}
        elif self.kind == "bitlevel":
            alg = matmul_bit_level(self.u, self.p, self.expansion)
            binding = {"u": self.u, "p": self.p}
        else:
            raise ValueError(f"unknown search-case kind {self.kind!r}")
        prims = {
            "none": lambda: None,
            "mesh": lambda: mesh_primitives(self.target_space_dim),
            "fig4": lambda: designs.fig4_primitives(self.p or 2),
        }[self.primitives]()
        return alg, binding, prims

    def config(self, strategy: str):
        """The :class:`SearchConfig` for one strategy under test."""
        from repro.mapping.engine import SearchConfig

        return SearchConfig(
            target_space_dim=self.target_space_dim,
            block_values=self.block,
            schedule_bound=self.schedule_bound,
            max_candidates=self.max_candidates,
            overcollect=self.overcollect,
            strategy=strategy,
            persist_cache=False,
        )

    def shrink_candidates(self) -> Iterator["SearchCase"]:
        if self.kind == "word":
            for axis, hi in enumerate(self.uppers):
                for smaller in _shrink_int(hi, self.lowers[axis]):
                    uppers = list(self.uppers)
                    uppers[axis] = smaller
                    yield replace(self, uppers=tuple(uppers))
        elif self.kind == "bitlevel":
            for smaller in _shrink_int(self.u, 2):
                yield replace(self, u=smaller)
            for smaller in _shrink_int(self.p, 2):
                yield replace(self, p=smaller)
        for smaller in _shrink_int(self.schedule_bound, 1):
            yield replace(self, schedule_bound=smaller)
        if self.primitives != "none":
            yield replace(self, primitives="none")


def gen_search_case(
    rng: random.Random, env: SizeEnvelope = SizeEnvelope()
) -> SearchCase:
    """Draw a random search case: word exhaustive, or bit-level capped."""
    if rng.random() < 0.6:
        dim = rng.choice((2, 3))
        return SearchCase(
            kind="word",
            h1=random_word_vector(rng, dim, 1),
            h2=random_word_vector(rng, dim, 1),
            h3=random_word_vector(rng, dim, 1),
            lowers=(1,) * dim,
            uppers=tuple(rng.randint(2, 3) for _ in range(dim)),
            primitives=rng.choice(("none", "mesh")),
            target_space_dim=dim - 1,
            block=(2,),
            schedule_bound=rng.choice((1, 2)),
            max_candidates=None,
            overcollect=None,
        )
    return SearchCase(
        kind="bitlevel",
        u=2,
        p=2,
        primitives=rng.choice(("none", "mesh", "fig4")),
        target_space_dim=2,
        block=(2,),
        schedule_bound=2,
        max_candidates=3,
        overcollect=2,
    )


# ---------------------------------------------------------------------------
# Simulator cases
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SimulatorCase:
    """One end-to-end machine execution to check against the word-level
    reference.

    ``mode`` selects the path:

    * ``"unsigned"`` -- :class:`~repro.machine.bitlevel.BitLevelMatmulMachine`
      on a paper design, product compared mod ``2^{2p-1}``;
    * ``"signed"`` -- the coefficient-split driver
      :func:`repro.machine.signed.signed_matmul` over the same machine;
    * ``"word"`` -- :class:`~repro.machine.wordlevel.WordLevelMatmulMachine`
      (sequential arithmetic inside each PE), exact product;
    * ``"baughwooley"`` -- the signed
      :class:`~repro.arith.baughwooley.BaughWooleyMultiplier` on the scalar
      operand pair ``(a, b)``.
    """

    mode: str
    u: int
    p: int
    design: str = "fig4"
    expansion: str = "II"
    arithmetic: str = "add-shift"
    x: tuple[tuple[int, ...], ...] = ()
    y: tuple[tuple[int, ...], ...] = ()
    a: int = 0
    b: int = 0

    def to_dict(self) -> dict:
        return asdict(self)

    def shrink_candidates(self) -> Iterator["SimulatorCase"]:
        def shrink_matrix(name: str) -> Iterator["SimulatorCase"]:
            matrix = getattr(self, name)
            for i, row in enumerate(matrix):
                for j, v in enumerate(row):
                    if v == 0:
                        continue
                    rows = [list(r) for r in matrix]
                    rows[i][j] = v - 1 if v > 0 else v + 1
                    yield replace(
                        self, **{name: tuple(tuple(r) for r in rows)}
                    )

        yield from shrink_matrix("x")
        yield from shrink_matrix("y")
        for smaller in _shrink_int(abs(self.a), 0):
            yield replace(self, a=smaller if self.a >= 0 else -smaller)
        for smaller in _shrink_int(abs(self.b), 0):
            yield replace(self, b=smaller if self.b >= 0 else -smaller)


def _random_matrix(
    rng: random.Random, u: int, lo: int, hi: int
) -> tuple[tuple[int, ...], ...]:
    return tuple(
        tuple(rng.randint(lo, hi) for _ in range(u)) for _ in range(u)
    )


def gen_simulator_case(
    rng: random.Random, env: SizeEnvelope = SizeEnvelope()
) -> SimulatorCase:
    """Draw a random simulator case inside the envelope."""
    mode = rng.choice(("unsigned", "unsigned", "signed", "word", "baughwooley"))
    u = rng.randint(2, env.max_u)
    p = rng.randint(env.min_p, env.max_p)
    if mode == "baughwooley":
        half = 1 << (p - 1)
        return SimulatorCase(
            mode=mode, u=u, p=p,
            a=rng.randint(-half, half - 1), b=rng.randint(-half, half - 1),
        )
    design = rng.choice(("fig4", "fig5"))
    expansion = rng.choice(("I", "II"))
    if mode == "signed":
        # Keep the true values inside the recentring range [-2^{2p-2},
        # 2^{2p-2}) of the mod-2^{2p-1} machine: u * xmax * ymax must stay
        # below 2^{2p-2}.
        budget = (1 << (2 * p - 2)) - 1
        ymax = max(1, int((budget // u) ** 0.5))
        xmax = max(1, budget // (u * ymax))
        x = _random_matrix(rng, u, -xmax, xmax)
        y = _random_matrix(rng, u, 0, ymax)
    else:
        top = (1 << p) - 1
        x = _random_matrix(rng, u, 0, top)
        y = _random_matrix(rng, u, 0, top)
    return SimulatorCase(
        mode=mode, u=u, p=p, design=design, expansion=expansion,
        arithmetic=rng.choice(("add-shift", "carry-save")),
        x=x, y=y,
    )


# ---------------------------------------------------------------------------
# Hypothesis strategies (optional)
# ---------------------------------------------------------------------------

def _require_hypothesis() -> None:
    if not HAVE_HYPOTHESIS:  # pragma: no cover
        raise RuntimeError(
            "hypothesis is not installed; use the gen_* pure-random "
            "generators instead"
        )


def word_vector_strategy(dim: int, max_step: int = 2):
    """Lexicographically positive ``dim``-vectors, by construction (no
    filtering): a zero prefix, a positive pivot, free trailing entries."""
    _require_hypothesis()

    def build(pivot: int):
        return st.tuples(
            *(
                [st.just(0)] * pivot
                + [st.integers(1, max_step)]
                + [st.integers(-max_step, max_step)] * (dim - pivot - 1)
            )
        )

    return st.integers(0, dim - 1).flatmap(build)


def theorem31_case_strategy(env: SizeEnvelope = SizeEnvelope()):
    """Whole :class:`Theorem31Case` draws for property-based suites."""
    _require_hypothesis()

    def build(dim: int):
        vec = word_vector_strategy(dim, env.max_step)
        return st.builds(
            Theorem31Case,
            h1=vec,
            h2=vec,
            h3=vec,
            lowers=st.just((1,) * dim),
            uppers=st.tuples(*([st.integers(2, env.max_extent)] * dim)),
            p=st.integers(env.min_p, env.max_p),
            expansion=st.sampled_from(("I", "II")),
            method=st.just("enumerate"),
        )

    return st.sampled_from(env.word_dims).flatmap(build)


def int_vector_strategy(max_len: int = 4, bound: int = 6):
    """Short integer vectors for :mod:`repro.util` property tests."""
    _require_hypothesis()
    return st.lists(
        st.integers(-bound, bound), min_size=1, max_size=max_len
    )


def int_matrix_strategy(max_dim: int = 4, bound: int = 6):
    """Small non-ragged integer matrices for :mod:`repro.util.linalg`
    property tests."""
    _require_hypothesis()

    def build(shape: tuple[int, int]):
        rows, cols = shape
        return st.lists(
            st.lists(st.integers(-bound, bound), min_size=cols, max_size=cols),
            min_size=rows,
            max_size=rows,
        )

    return st.tuples(
        st.integers(1, max_dim), st.integers(1, max_dim)
    ).flatmap(build)
