"""Structured results of a verification run.

The runner produces a :class:`VerifyReport`: one :class:`OracleOutcome`
per oracle plus a list of shrunken :class:`Counterexample` records.  The
report serializes to JSON (``to_json``/``write``) so CI can upload it as
an artifact, and renders a human summary (``summary``) for the CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["Counterexample", "OracleOutcome", "VerifyReport"]


@dataclass(frozen=True)
class Counterexample:
    """One oracle failure, after greedy shrinking."""

    oracle: str
    #: oracle-specific description of the disagreement
    detail: str
    #: the shrunken case, as a JSON-ready dict
    case: Mapping
    #: the originally drawn case that first exposed the failure
    original: Mapping
    shrink_steps: int

    def to_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "detail": self.detail,
            "case": dict(self.case),
            "original": dict(self.original),
            "shrink_steps": self.shrink_steps,
        }


@dataclass
class OracleOutcome:
    """Aggregate statistics for one oracle's budgeted loop."""

    oracle: str
    cases_run: int = 0
    passed: int = 0
    failed: int = 0
    elapsed_s: float = 0.0
    budget_exhausted: bool = False

    def to_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "cases_run": self.cases_run,
            "passed": self.passed,
            "failed": self.failed,
            "elapsed_s": round(self.elapsed_s, 3),
            "budget_exhausted": self.budget_exhausted,
        }


@dataclass
class VerifyReport:
    """Everything one ``repro verify`` invocation learned."""

    seed: int
    outcomes: list[OracleOutcome] = field(default_factory=list)
    counterexamples: list[Counterexample] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "outcomes": [o.to_dict() for o in self.outcomes],
            "counterexamples": [c.to_dict() for c in self.counterexamples],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    def summary(self) -> str:
        lines = []
        for o in self.outcomes:
            status = "ok" if o.failed == 0 else f"FAIL ({o.failed})"
            note = ", budget exhausted" if o.budget_exhausted else ""
            lines.append(
                f"oracle_{o.oracle}: {status} -- {o.cases_run} cases, "
                f"{o.passed} passed in {o.elapsed_s:.2f}s{note}"
            )
        for c in self.counterexamples:
            lines.append(
                f"counterexample [{c.oracle}] after {c.shrink_steps} "
                f"shrink steps: {c.detail}"
            )
            lines.append(f"  case: {json.dumps(dict(c.case), sort_keys=True)}")
        verdict = "all oracles agree" if self.ok else "DISAGREEMENT FOUND"
        lines.append(f"verify: {verdict} (seed {self.seed})")
        return "\n".join(lines)
