"""Oracle: the batched dependence-analysis engine vs. the scalar reference.

For one random expanded bit-level program, run :func:`repro.depanalysis.analyze`
twice -- once with ``backend="scalar"``, once with ``backend="batched"`` --
with the persistent cache disabled on both sides, and demand bit-identical
results: the same ordered list of dependence instances *and* the same
statistics counters (pairs tested, screens pruned, systems solved, points
visited, ...).  This is the contract the vectorized engine advertises; any
divergence is a bug in one of the two implementations.

When numpy is unavailable the batched backend silently resolves to scalar
and the check degenerates to a self-comparison, which is the intended
no-numpy behavior.
"""

from __future__ import annotations

import random

from repro.verify.generator import AnalysisCase, SizeEnvelope, gen_analysis_case

__all__ = ["NAME", "generate", "check"]

NAME = "analysis"


def generate(rng: random.Random, envelope: SizeEnvelope) -> AnalysisCase:
    return gen_analysis_case(rng, envelope)


def check(case: AnalysisCase) -> str | None:
    """Return a divergence description, or ``None`` when backends agree."""
    from repro.depanalysis.analyzer import analyze
    from repro.depanalysis.engine import AnalysisConfig

    program = case.build_program()
    binding = {"p": case.p}
    results = {}
    for backend in ("scalar", "batched"):
        results[backend] = analyze(
            program, binding, method=case.method,
            use_screens=case.use_screens,
            config=AnalysisConfig(backend=backend, cache=False),
        )
    scalar, batched = results["scalar"], results["batched"]
    s_keys = [inst.key() for inst in scalar.instances]
    b_keys = [inst.key() for inst in batched.instances]
    if s_keys != b_keys:
        only_s = sorted(set(s_keys) - set(b_keys))
        only_b = sorted(set(b_keys) - set(s_keys))
        return (
            f"instance divergence ({case.method}): "
            f"{len(s_keys)} scalar vs {len(b_keys)} batched; "
            f"scalar-only (first 3): {only_s[:3]}; "
            f"batched-only (first 3): {only_b[:3]}"
        )
    if scalar.stats != batched.stats:
        diff = {
            k: (scalar.stats.get(k), batched.stats.get(k))
            for k in sorted(set(scalar.stats) | set(batched.stats))
            if scalar.stats.get(k) != batched.stats.get(k)
        }
        return f"stats divergence ({case.method}): scalar vs batched {diff}"
    return None
