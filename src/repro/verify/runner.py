"""The budgeted oracle loop and the self-test mutation check.

:func:`run_verification` drives the three oracles over seeded random
cases, shrinks any failure greedily, and returns a
:class:`~repro.verify.report.VerifyReport`.  When an ambient
:mod:`repro.obs` registry is installed, each oracle runs inside a
``verify.<name>`` span and emits ``verify.<name>.cases`` /
``.failures`` / ``.shrink_steps`` counters.

:func:`run_mutation_check` answers "would this subsystem actually catch a
bug?": it monkeypatches a deliberately wrong validity condition into the
Theorem 3.1 assembly (the carry-completion column ``c'`` declared valid
everywhere) and demands that ``oracle_theorem31`` produce a shrunken
counterexample against the mutant.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro import obs
from repro.verify import (
    oracle_analysis,
    oracle_mapping,
    oracle_search,
    oracle_simulator,
    oracle_symbolic,
    oracle_theorem31,
)
from repro.verify.generator import SizeEnvelope
from repro.verify.report import Counterexample, OracleOutcome, VerifyReport
from repro.verify.shrink import shrink

__all__ = [
    "ORACLES",
    "SEARCH_MUTATIONS",
    "SYMBOLIC_MUTATIONS",
    "VerifyConfig",
    "run_verification",
    "run_mutation_check",
    "run_search_mutation_check",
    "run_symbolic_mutation_check",
]

#: name -> oracle module (each exports NAME, generate, check)
ORACLES = {
    module.NAME: module
    for module in (
        oracle_theorem31, oracle_analysis, oracle_symbolic,
        oracle_mapping, oracle_simulator, oracle_search,
    )
}


@dataclass(frozen=True)
class VerifyConfig:
    """One verification run's knobs."""

    seed: int = 0
    #: cases per oracle
    cases: int = 50
    #: wall-clock budget per oracle in seconds (None = unbounded)
    budget_s: float | None = None
    #: which oracles to run, in order
    oracles: Sequence[str] = (
        "theorem31", "analysis", "symbolic", "mapping", "simulator",
        "search",
    )
    envelope: SizeEnvelope = field(default_factory=SizeEnvelope)
    max_shrink_steps: int = 200
    #: stop an oracle after this many counterexamples (they are near-certainly
    #: the same root cause; keep reports small)
    max_counterexamples: int = 3


def _fails(check: Callable) -> Callable:
    return lambda case: check(case) is not None


def _run_oracle(
    module, config: VerifyConfig, outcome: OracleOutcome
) -> list[Counterexample]:
    # String seeds hash deterministically through random.Random (CPython
    # seeds str via a stable algorithm), so each oracle gets an independent
    # but reproducible stream for any (seed, oracle) pair.
    rng = random.Random(f"{config.seed}:{module.NAME}")
    started = time.monotonic()
    found: list[Counterexample] = []
    progress = obs.progress(f"verify.{module.NAME}", total=config.cases)
    for _ in range(config.cases):
        if (
            config.budget_s is not None
            and time.monotonic() - started > config.budget_s
        ):
            outcome.budget_exhausted = True
            break
        case = module.generate(rng, config.envelope)
        outcome.cases_run += 1
        progress.advance()
        obs.count(f"verify.{module.NAME}.cases")
        detail = module.check(case)
        if detail is None:
            outcome.passed += 1
            continue
        outcome.failed += 1
        obs.count(f"verify.{module.NAME}.failures")
        small, steps = shrink(
            case, _fails(module.check), max_steps=config.max_shrink_steps
        )
        obs.count(f"verify.{module.NAME}.shrink_steps", steps)
        found.append(
            Counterexample(
                oracle=module.NAME,
                detail=module.check(small) or detail,
                case=small.to_dict(),
                original=case.to_dict(),
                shrink_steps=steps,
            )
        )
        if len(found) >= config.max_counterexamples:
            break
    progress.close()
    outcome.elapsed_s = time.monotonic() - started
    return found


def run_verification(config: VerifyConfig = VerifyConfig()) -> VerifyReport:
    """Run the configured oracles; return the full report."""
    report = VerifyReport(seed=config.seed)
    for name in config.oracles:
        try:
            module = ORACLES[name]
        except KeyError:
            raise ValueError(
                f"unknown oracle {name!r}; choose from {sorted(ORACLES)}"
            ) from None
        outcome = OracleOutcome(oracle=name)
        with obs.span(f"verify.{name}"):
            report.counterexamples.extend(
                _run_oracle(module, config, outcome)
            )
        report.outcomes.append(outcome)
    return report


# ---------------------------------------------------------------------------
# Mutation check
# ---------------------------------------------------------------------------

def _mutant_bit_level_structure(real: Callable) -> Callable:
    """Wrap the Theorem 3.1 assembly with a seeded bug: the carry-completion
    column ``c'`` (``d̄₇``, validity ``i1 = p`` under Expansion II) is
    declared valid *everywhere*.

    This is the interesting mutation class: entry-column mutations
    (``d̄₄``/``d̄₅``) are extensionally invisible because the spurious edges
    they add have sources outside the index set, which
    :func:`repro.expansion.verify.effective_edges` filters anyway.  The
    ``c'`` source lands inside the set once ``p >= 3``, so the oracle must
    find -- and the shrinker must retain -- a ``p = 3`` witness.
    """
    from repro.structures.algorithm import Algorithm
    from repro.structures.conditions import TRUE

    def mutant(word, arith, expansion, p):
        alg = real(word, arith, expansion, p)
        vectors = [
            v.with_validity(TRUE) if "c'" in v.causes else v
            for v in alg.dependences
        ]
        return Algorithm(
            alg.index_set, vectors, alg.computations, name=alg.name + "-mutant"
        )

    return mutant


def run_mutation_check(
    seed: int = 0,
    cases: int = 30,
    envelope: SizeEnvelope = SizeEnvelope(),
    max_shrink_steps: int = 200,
) -> Counterexample | None:
    """Self-test: inject a wrong validity condition into the Theorem 3.1
    assembly and confirm ``oracle_theorem31`` catches it.

    Returns the shrunken counterexample the oracle produced against the
    mutant (the *expected* outcome), or ``None`` if the mutant survived --
    which means the verification subsystem has lost its teeth.
    """
    import repro.expansion.verify as verify_mod

    real = verify_mod.bit_level_structure
    verify_mod.bit_level_structure = _mutant_bit_level_structure(real)
    try:
        config = VerifyConfig(
            seed=seed,
            cases=cases,
            oracles=("theorem31",),
            envelope=envelope,
            max_shrink_steps=max_shrink_steps,
            max_counterexamples=1,
        )
        report = run_verification(config)
        obs.count("verify.mutation.caught", int(bool(report.counterexamples)))
        return report.counterexamples[0] if report.counterexamples else None
    finally:
        verify_mod.bit_level_structure = real


def _mutant_congruence_quotient(expr, d):
    """Seeded bug: the divisibility check is dropped entirely -- every
    congruence ``d | c_i`` is declared satisfiable and floor-divided.

    Invisible on the matmul programs (identity subscripts make every
    invariant factor 1, so the quotient is exact), which is precisely why
    the generator's strided cases exist: a stride-``s`` read with an
    offset indivisible by ``s`` has *no* dependence at any size, while
    the mutant manufactures a spurious closed-form family.
    """
    from repro.structures.params import LinExpr

    return "ok", LinExpr(
        expr.const // d, {name: c // d for name, c in expr.coeffs}
    )


def _mutant_shifted_bounds(lo, hi, delta):
    """Seeded bug: the source-in-box window in sink coordinates is one too
    wide at the top, admitting one extra sink per constrained axis."""
    return lo + delta, hi + delta + 1


#: mutation name -> (module path, attribute, mutant callable)
SYMBOLIC_MUTATIONS = {
    "dropped-congruence": (
        "repro.symbolic.solve", "_congruence_quotient",
        _mutant_congruence_quotient,
    ),
    "shifted-bound": (
        "repro.symbolic.families", "shifted_bounds",
        _mutant_shifted_bounds,
    ),
}


def _mutant_hop_budget(deadline: int) -> int:
    """Seeded bug: an *unsound* interconnect cut -- one hop less than the
    arrival deadline (4.1) actually permits.

    Designs whose dependences need exactly ``Π d̄_i`` hops (the paper's
    Fig. 4 family among them) get pruned before the final gate, so the
    solver's feasible set loses designs the catalog still finds: the
    differential oracle must report a missing design.
    """
    return deadline - 1


def _mutant_final_gate(mapping, algorithm, binding, primitives, cache):
    """Seeded bug: the final gate ignores condition 3 (computational
    conflicts), as if the solver's one-sided conflict screen were treated
    as exact.

    Candidates whose only violation is a ``τ`` collision now pass, so the
    solver admits designs the catalog rejects: the differential oracle
    must report an extra design.
    """
    import dataclasses

    from repro.mapping.feasibility import check_feasibility

    report = check_feasibility(
        mapping, algorithm, binding, primitives, cache=cache
    )
    if report.conflict_free is False:
        report = dataclasses.replace(
            report, conflict_free=True, conflicts=[]
        )
    return report


#: mutation name -> (module path, attribute, mutant callable)
SEARCH_MUTATIONS = {
    "tight-deadline": (
        "repro.mapping.solver", "_hop_budget", _mutant_hop_budget,
    ),
    "dropped-conflict-gate": (
        "repro.mapping.solver", "_final_gate", _mutant_final_gate,
    ),
}


def run_search_mutation_check(
    mutation: str = "tight-deadline",
    seed: int = 0,
    cases: int = 30,
    envelope: SizeEnvelope = SizeEnvelope(),
    max_shrink_steps: int = 200,
) -> Counterexample | None:
    """Self-test: seed a deliberate bug into the search solver's cuts and
    confirm the solver-vs-catalog differential oracle catches it.

    ``mutation`` names an entry of :data:`SEARCH_MUTATIONS`.  Returns the
    shrunken counterexample (the *expected* outcome), or ``None`` if the
    mutant survived the run -- the oracle has lost its teeth.
    """
    import importlib

    try:
        module_path, attr, mutant = SEARCH_MUTATIONS[mutation]
    except KeyError:
        raise ValueError(
            f"unknown mutation {mutation!r}; "
            f"choose from {sorted(SEARCH_MUTATIONS)}"
        ) from None
    target = importlib.import_module(module_path)
    real = getattr(target, attr)
    setattr(target, attr, mutant)
    try:
        config = VerifyConfig(
            seed=seed,
            cases=cases,
            oracles=("search",),
            envelope=envelope,
            max_shrink_steps=max_shrink_steps,
            max_counterexamples=1,
        )
        report = run_verification(config)
        obs.count(
            "verify.search_mutation.caught",
            int(bool(report.counterexamples)),
        )
        return report.counterexamples[0] if report.counterexamples else None
    finally:
        setattr(target, attr, real)


def run_symbolic_mutation_check(
    mutation: str = "dropped-congruence",
    seed: int = 0,
    cases: int = 40,
    envelope: SizeEnvelope = SizeEnvelope(),
    max_shrink_steps: int = 200,
) -> Counterexample | None:
    """Self-test: seed a deliberate bug into the symbolic solver and
    confirm the sampling cross-validation oracle catches it.

    ``mutation`` names an entry of :data:`SYMBOLIC_MUTATIONS`.  Returns
    the shrunken counterexample (the *expected* outcome), or ``None`` if
    the mutant survived the run -- the oracle has lost its teeth.  The
    in-process symbolic memo is cleared on entry and exit so neither
    clean results mask the mutant nor mutant results leak out.
    """
    import importlib

    from repro.symbolic.analyze import clear_memo

    try:
        module_path, attr, mutant = SYMBOLIC_MUTATIONS[mutation]
    except KeyError:
        raise ValueError(
            f"unknown mutation {mutation!r}; "
            f"choose from {sorted(SYMBOLIC_MUTATIONS)}"
        ) from None
    target = importlib.import_module(module_path)
    real = getattr(target, attr)
    setattr(target, attr, mutant)
    clear_memo()
    try:
        config = VerifyConfig(
            seed=seed,
            cases=cases,
            oracles=("symbolic",),
            envelope=envelope,
            max_shrink_steps=max_shrink_steps,
            max_counterexamples=1,
        )
        report = run_verification(config)
        obs.count(
            "verify.symbolic_mutation.caught",
            int(bool(report.counterexamples)),
        )
        return report.counterexamples[0] if report.counterexamples else None
    finally:
        setattr(target, attr, real)
        clear_memo()
