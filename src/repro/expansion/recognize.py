"""Recognizing expansion structure in existing bit-level programs.

The paper's motivation runs both ways: designing new arrays *and*
"programming existing bit-level processor arrays".  For the latter, one
receives a bit-level program and must discover its structure before any
mapping machinery applies.  This module does that discovery:

1. run general dependence analysis on the given ``(n+2)``-dimensional
   program;
2. split the observed dependence vectors into the *word part* (zero in the
   two lattice coordinates) and the *lattice part* (zero in the word
   coordinates) -- the block structure Theorem 3.1 predicts;
3. read off the candidate word-level vectors ``h̄₁, h̄₂, h̄₃`` and lattice
   vectors ``δ̄``, and classify the expansion by where the ``h̄₃``-part
   dependences live (everywhere → Expansion I; on the lattice boundary →
   Expansion II);
4. confirm by reconstructing the structure with Theorem 3.1 and comparing
   effective edges.

The result is a :class:`RecognitionReport` that either certifies "this
program is Expansion <X> of word model ``(h̄₁, h̄₂, h̄₃)`` over ``J_w`` with
word length ``p``" -- after which all of Section 4's design machinery
applies -- or explains what failed to match.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.depanalysis.analyzer import analyze
from repro.expansion.theorem31 import bit_level_from_vectors
from repro.expansion.verify import effective_edges
from repro.ir.program import LoopNest
from repro.structures.params import ParamBinding

__all__ = ["RecognitionReport", "recognize_expansion"]


@dataclass
class RecognitionReport:
    """Outcome of expansion recognition on a bit-level program."""

    recognized: bool
    expansion: str | None = None
    h1: tuple[int, ...] | None = None
    h2: tuple[int, ...] | None = None
    h3: tuple[int, ...] | None = None
    word_dim: int = 0
    p: int = 0
    reason: str = ""
    #: edges in the program but not in the reconstruction (and vice versa)
    edge_mismatches: int = 0
    extra: dict = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human-readable outcome."""
        if self.recognized:
            return (
                f"Expansion {self.expansion} of word model "
                f"(h1={list(self.h1)}, h2={list(self.h2)}, h3={list(self.h3)}) "
                f"at p={self.p}"
            )
        return f"not recognized: {self.reason}"


def _split_vector(vec: tuple[int, ...], n: int) -> str:
    word, lattice = vec[:n], vec[n:]
    if any(word) and not any(lattice):
        return "word"
    if any(lattice) and not any(word):
        return "lattice"
    return "mixed"


def recognize_expansion(
    program: LoopNest,
    binding: ParamBinding | None = None,
) -> RecognitionReport:
    """Attempt to recognize a bit-level program as a model-(3.5) expansion.

    The program's last two axes are taken as the lattice coordinates
    ``(i1, i2)`` (square lattice, ``p`` from the bounds); the remaining
    axes are the word index.  Bounds must be concrete under ``binding``.
    """
    binding = dict(binding or {})
    if program.dim < 3:
        return RecognitionReport(False, reason="needs at least 3 dimensions")
    n = program.dim - 2
    bounds = program.index_set.bounds(binding)
    (lo1, hi1), (lo2, hi2) = bounds[n], bounds[n + 1]
    if lo1 != 1 or lo2 != 1 or hi1 != hi2:
        return RecognitionReport(
            False, reason="last two axes are not a square 1..p lattice"
        )
    p = hi1

    result = analyze(program, binding, method="enumerate")
    if not result.instances:
        return RecognitionReport(False, reason="no dependences found")

    word_vectors: dict[tuple[int, ...], set[tuple[int, ...]]] = {}
    lattice_vectors: set[tuple[int, ...]] = set()
    for vec in result.distinct_vectors():
        kind = _split_vector(vec, n)
        if kind == "mixed":
            return RecognitionReport(
                False,
                reason=f"dependence {list(vec)} mixes word and lattice axes",
            )
        if kind == "word":
            word_vectors[vec[:n]] = result.sinks_of(vec)
        else:
            lattice_vectors.add(vec[n:])

    expected_lattice = {(1, 0), (0, 1), (1, -1), (0, 2)}
    if not lattice_vectors <= expected_lattice:
        return RecognitionReport(
            False,
            reason=f"unexpected lattice vectors {sorted(lattice_vectors - expected_lattice)}",
        )

    # Candidate roles: each word vector may serve any of h̄₁/h̄₂/h̄₃
    # (they coincide when the model's h̄'s coincide).  There are at most
    # three distinct word vectors, so exhaustive assignment is cheap; each
    # candidate is *verified* by reconstructing with Theorem 3.1 and
    # comparing effective edges exactly, so no heuristic can mis-certify.
    observed = {(i.sink, i.vector) for i in result.instances}
    lowers = [b[0] for b in bounds[:n]]
    uppers = [b[1] for b in bounds[:n]]
    wvecs = sorted(word_vectors)

    # Order expansion attempts by a quick look at the z-ish sink regions:
    # any word-vector edge strictly interior to the lattice implies
    # Expansion I's position-wise transport.
    interior_seen = any(
        s[n] != p and s[n] != 1 and s[n + 1] != 1
        for sinks in word_vectors.values()
        for s in sinks
    )
    attempts = ("I", "II") if interior_seen else ("II", "I")

    best_mismatch: int | None = None
    for expansion in attempts:
        for h1 in wvecs:
            for h2 in wvecs:
                for h3 in wvecs:
                    reconstructed = bit_level_from_vectors(
                        list(h1), list(h2), list(h3),
                        lowers, uppers, p, expansion,
                    )
                    predicted = effective_edges(reconstructed, {"p": p})
                    mismatches = len(predicted ^ observed)
                    if mismatches == 0:
                        return RecognitionReport(
                            True, expansion=expansion,
                            h1=h1, h2=h2, h3=h3, word_dim=n, p=p,
                            extra={"instances": len(result.instances)},
                        )
                    if best_mismatch is None or mismatches < best_mismatch:
                        best_mismatch = mismatches
    return RecognitionReport(
        False,
        word_dim=n,
        p=p,
        reason="no role assignment reconstructs the program's dependences",
        edge_mismatches=best_mismatch or 0,
    )
