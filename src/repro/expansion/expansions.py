"""Algorithm expansion descriptors (Fig. 2 of the paper).

An *algorithm expansion* decides how the accumulation operand ``z(j̄-h̄₃)``
is added to the product ``x(j̄)·y(j̄)`` when the word-wise multiply-accumulate
is implemented bit-wise:

* **Expansion I** (Fig. 2b / Fig. 3b): the ``p²`` *partial-sum* bits of
  ``z(j̄-h̄₃)``, produced at every lattice point of iteration ``j̄-h̄₃``, are
  forwarded position-wise to iteration ``j̄``.  The in-lattice collapse
  ``δ̄₃`` runs only in the final word iteration ``j_n = u_n``.  Faster and
  more computationally uniform: at most three bits are summed everywhere
  except at ``j_n = u_n``.
* **Expansion II** (Fig. 2a / Fig. 3c): each word iteration runs the full
  add-shift lattice; the ``2p-1`` *final-sum* bits of ``z(j̄-h̄₃)`` are
  injected at the lattice boundary ``i₁ = p`` or ``i₂ = 1`` of iteration
  ``j̄``.  Slower (iteration ``j̄`` waits for the *final* bits of
  ``j̄-h̄₃``) and less uniform: four or five bits are summed on the
  ``i₁ = p`` hyperplane.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Expansion", "EXPANSION_I", "EXPANSION_II", "get_expansion"]


@dataclass(frozen=True)
class Expansion:
    """An algorithm expansion with its qualitative properties."""

    key: str
    title: str
    #: what travels between word iterations along h̄₃
    z_transport: str
    #: where the in-lattice collapse δ̄₃ is active
    collapse_region: str
    #: where second carries c' appear
    carry2_region: str
    #: maximum number of summands at one index point
    max_summands: int


EXPANSION_I = Expansion(
    key="I",
    title="Expansion I: partial-sum forwarding",
    z_transport="p² partial-sum bits, position-wise",
    collapse_region="final word iteration j_n = u_n",
    carry2_region="j_n = u_n and (i1 ≠ 1 or i2 ∉ {1,2})",
    max_summands=5,
)

EXPANSION_II = Expansion(
    key="II",
    title="Expansion II: final-sum boundary injection",
    z_transport="2p-1 final-sum bits, at lattice boundary i1 = p or i2 = 1",
    collapse_region="every word iteration (uniform)",
    carry2_region="hyperplane i1 = p",
    max_summands=5,
)

_BY_KEY = {"I": EXPANSION_I, "II": EXPANSION_II}


def get_expansion(key: str | Expansion) -> Expansion:
    """Coerce ``"I"``/``"II"`` or an :class:`Expansion` to a descriptor."""
    if isinstance(key, Expansion):
        return key
    try:
        return _BY_KEY[key]
    except KeyError:
        raise ValueError(f"unknown expansion {key!r}; use 'I' or 'II'") from None
