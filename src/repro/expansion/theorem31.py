"""Theorem 3.1: compositional derivation of bit-level dependence structures.

Given a word-level algorithm in the model (3.5) with dependence matrix
``D_w = [h̄₁ (x), h̄₂ (y), h̄₃ (z)]`` over ``J_w``, and an arithmetic
structure ``(J_as, D_as)`` with roles ``δ̄₁`` (multiplicand), ``δ̄₂``
(multiplier), ``δ̄₃`` (partial sum), carry direction and second-carry
direction ``δ̄₄``, the bit-level dependence structure is assembled directly:

.. math::

    J = J_w \\times J_{as}, \\qquad
    D = \\begin{bmatrix} D_w & \\mathbf{0} & \\bar 0 \\\\
                         \\mathbf{0} & D_{as} & \\bar δ_4 \\end{bmatrix}

with the validity conditions of eqs. (3.11b)/(3.11c):

=====  ==============  ===================  =====================
col    vector          Expansion I          Expansion II
=====  ==============  ===================  =====================
d̄₁    ``[h̄₁,0,0]``   ``i₁ = 1``           ``i₁ = 1``
d̄₂    ``[h̄₂,0,0]``   ``i₂ = 1``           ``i₂ = 1``
d̄₃    ``[h̄₃,0,0]``   uniform              ``i₁ = p or i₂ = 1``
d̄₄    ``[0̄,δ̄₁]``    ``i₁ ≠ 1``           ``i₁ ≠ 1``
d̄₅    ``[0̄,δ̄₂]``    ``i₂ ≠ 1``           ``i₂ ≠ 1``
d̄₆    ``[0̄,δ̄₃]``    ``j_n = u_n``        uniform
d̄₇    ``[0̄,δ̄₄]``    ``q̄₁``              ``i₁ = p``
=====  ==============  ===================  =====================

where ``q̄₁`` is ``j_n = u_n and (i₁ ≠ 1 or i₂ ∉ {1,2})``.  The whole
construction touches a constant number of symbols -- no Diophantine systems,
no index-set enumeration -- which is the point of the paper.
"""

from __future__ import annotations

from repro.arith.registry import get_structure
from repro.arith.structure import ArithmeticStructure
from repro.expansion.expansions import Expansion, get_expansion
from repro.ir.builders import matmul_word_structure, word_model_structure
from repro.structures.algorithm import Algorithm, ComputationSet
from repro.structures.conditions import And, Condition, Eq, Ne, Or, TRUE
from repro.structures.dependence import DependenceMatrix, DependenceVector
from repro.structures.params import LinExpr, as_linexpr

__all__ = ["bit_level_structure", "matmul_bit_level"]


def _word_vector(word: Algorithm, cause: str) -> DependenceVector:
    found = word.dependences.by_cause(cause)
    if len(found) != 1:
        raise ValueError(
            f"word-level algorithm must have exactly one dependence vector "
            f"caused by {cause!r}; found {len(found)}"
        )
    vec = found[0]
    if not vec.is_uniform:
        raise ValueError(
            f"model (3.5) requires the word-level {cause!r} dependence to be "
            "uniform"
        )
    return vec


def _entry_condition(delta: tuple[int, int], ax_i1: int, ax_i2: int) -> Condition:
    """Validity of a lattice-pipelining vector: invalid on the entry band.

    A bit arriving along ``δ̄`` is absent where its source would fall outside
    the lattice on the *first* band (e.g. ``δ̄ = [0,1]ᵀ`` is invalid at
    ``i₂ = 1``), which is how the paper annotates d̄₄/d̄₅.
    """
    conds: list[Condition] = []
    for axis, step in ((ax_i1, delta[0]), (ax_i2, delta[1])):
        for band in range(1, step + 1):
            conds.append(Ne(axis, band))
    if not conds:
        return TRUE
    return And(*conds) if len(conds) > 1 else conds[0]


def bit_level_structure(
    word: Algorithm,
    arith: ArithmeticStructure | str = "add-shift",
    expansion: str | Expansion = "II",
    p: LinExpr | int | None = None,
    config=None,
) -> Algorithm:
    """Assemble the bit-level dependence structure per Theorem 3.1.

    Parameters
    ----------
    word:
        A word-level algorithm in the model (3.5): exactly one uniform
        dependence vector for each of the causes ``x``, ``y``, ``z``.
    arith:
        An :class:`~repro.arith.structure.ArithmeticStructure` or a registry
        name (``"add-shift"``, ``"carry-save"``).
    expansion:
        ``"I"`` or ``"II"`` (or an :class:`Expansion` descriptor).
    p:
        Word length used when ``arith`` is given by name (symbolic ``p``
        when omitted).
    config:
        Optional :class:`repro.depanalysis.engine.AnalysisConfig`; only its
        cache policy matters here.  When caching is enabled and ``arith``
        is a registry name, the assembled structure is stored in / fetched
        from the persistent artifact cache (:mod:`repro.cache`).  The
        construction is already O(1), so this mainly spares repeated
        pipeline runs the symbolic assembly and keeps cache semantics
        uniform across the analysis entry points.

    Returns
    -------
    Algorithm
        The ``(n+2)``-dimensional bit-level algorithm ``(J, D, E)`` with
        symbolic validity conditions, columns merged exactly as the paper
        merges them (identical vector + validity ⇒ one column, union of
        causes).
    """
    exp = get_expansion(expansion)

    store = None
    cache_key = None
    if isinstance(arith, str):
        # Cache only name-resolved arithmetics: a structure *instance* may
        # carry arbitrary state the serde layer cannot reproduce.
        if config is not None and config.cache is not False:
            from repro.cache import (
                Uncacheable,
                algorithm_from_payload,
                resolve_cache,
                structure_key,
            )

            store = resolve_cache(config.cache, config.cache_dir)
            if store is not None:
                try:
                    cache_key = structure_key(word, arith, exp.key, p)
                except Uncacheable:
                    cache_key = None
                if cache_key is not None:
                    payload = store.get("structure", cache_key)
                    if payload is not None:
                        try:
                            return algorithm_from_payload(payload)
                        except (KeyError, TypeError, ValueError):
                            pass  # malformed entry: rebuild and overwrite
        arith = get_structure(arith, p)

    n = word.dim
    ax_i1, ax_i2 = n, n + 1
    ax_jn = n - 1
    u_n = word.index_set.uppers[-1]
    p_expr = as_linexpr(arith.index_set.uppers[0])

    h1 = _word_vector(word, "x")
    h2 = _word_vector(word, "y")
    h3 = _word_vector(word, "z")

    if exp.key == "I":
        val_d3: Condition = TRUE
        val_d6: Condition = Eq(ax_jn, u_n)
        val_d7: Condition = And(
            Eq(ax_jn, u_n),
            Or(Ne(ax_i1, 1), And(Ne(ax_i2, 1), Ne(ax_i2, 2))),
        )
    else:
        val_d3 = Or(Eq(ax_i1, p_expr), Eq(ax_i2, 1))
        val_d6 = TRUE
        val_d7 = Eq(ax_i1, p_expr)

    columns = [
        # d̄₁, d̄₂, d̄₃: word-level vectors suffixed with [0, 0].
        h1.with_validity(Eq(ax_i1, 1)).suffixed(2),
        h2.with_validity(Eq(ax_i2, 1)).suffixed(2),
        h3.with_validity(val_d3).suffixed(2),
        # d̄₄, d̄₅: arithmetic pipelining vectors prefixed with 0̄.
        DependenceVector(
            arith.delta_a, ("x",), _entry_condition(arith.delta_a, ax_i1, ax_i2)
        ).prefixed(n, axis_offset=0),
        DependenceVector(
            arith.delta_b, ("y",), _entry_condition(arith.delta_b, ax_i1, ax_i2)
        ).prefixed(n, axis_offset=0),
        DependenceVector(
            arith.delta_carry,
            ("c",),
            _entry_condition(arith.delta_carry, ax_i1, ax_i2),
        ).prefixed(n, axis_offset=0),
        # d̄₆: the partial-sum collapse.
        DependenceVector(arith.delta_s, ("z",), val_d6).prefixed(
            n, axis_offset=0
        ),
        # d̄₇: the second carry δ̄₄.
        DependenceVector(arith.delta_carry2, ("c'",), val_d7).prefixed(
            n, axis_offset=0
        ),
    ]
    # Re-attach validity conditions computed in full bit-level axes (the
    # prefixed() call above already shifted none since axis_offset=0 and the
    # conditions were built with absolute axes).
    merged: dict[tuple[tuple[int, ...], Condition], set[str]] = {}
    order: list[tuple[tuple[int, ...], Condition]] = []
    for col in columns:
        key = (col.vector, col.validity)
        if key not in merged:
            merged[key] = set()
            order.append(key)
        merged[key] |= set(col.causes)
    dep = DependenceMatrix(
        DependenceVector(vec, sorted(merged[(vec, cond)]), cond)
        for vec, cond in order
    )

    index_set = word.index_set.product(arith.index_set)
    comp = ComputationSet(
        {
            "S_x": "pipeline x bits (word axis at i1=1, lattice axis elsewhere)",
            "S_y": "pipeline y bits (word axis at i2=1, lattice axis elsewhere)",
            "S_sum": f"bit summation per {exp.title}",
        }
    )
    name = f"{word.name}/bit-level-{arith.name}-exp{exp.key}"
    out = Algorithm(index_set, dep, comp, name)
    if store is not None and cache_key is not None:
        from repro.cache import Unserializable, algorithm_to_payload

        try:
            store.put("structure", cache_key, algorithm_to_payload(out))
        except Unserializable:
            pass
    return out


def matmul_bit_level(
    u: LinExpr | int | None = None,
    p: LinExpr | int | None = None,
    expansion: str | Expansion = "II",
    arith: str = "add-shift",
    config=None,
) -> Algorithm:
    """Example 3.1: the bit-level matrix multiplication structure.

    With the defaults this reproduces eqs. (3.12)/(3.13): the 5-D index set
    ``{1 <= j1,j2,j3 <= u, 1 <= i1,i2 <= p}`` and the seven dependence
    vectors with their validity conditions under Expansion II.
    """
    return bit_level_structure(
        matmul_word_structure(u), arith, expansion, p, config=config
    )


def bit_level_from_vectors(
    h1,
    h2,
    h3,
    lowers,
    uppers,
    p: LinExpr | int | None = None,
    expansion: str | Expansion = "II",
    arith: str = "add-shift",
    config=None,
) -> Algorithm:
    """Convenience: Theorem 3.1 for a model (3.5) given by raw vectors."""
    word = word_model_structure(h1, h2, h3, lowers, uppers)
    return bit_level_structure(word, arith, expansion, p, config=config)
