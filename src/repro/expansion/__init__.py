"""Bit-level algorithm expansion: the paper's core contribution.

* :mod:`repro.expansion.theorem31` -- the compositional construction of
  Theorem 3.1: the bit-level dependence structure ``(J, D_I)`` / ``(J,
  D_II)`` assembled directly from the word-level structure ``(J_w, D_w)``,
  the arithmetic structure ``(J_as, D_as)``, and the chosen expansion --
  in constant time, without general dependence analysis;
* :mod:`repro.expansion.expansions` -- descriptors of Expansion I
  (partial-sum forwarding) and Expansion II (final-sum injection);
* :mod:`repro.expansion.semantics` -- bit-exact functional evaluators of
  the expanded algorithms (used to validate that the expansions really
  compute the word-level result);
* :mod:`repro.expansion.verify` -- machine-checks Theorem 3.1 by comparing
  the compositional structure against general dependence analysis of the
  explicitly expanded program.
"""

from repro.expansion.expansions import EXPANSION_I, EXPANSION_II, Expansion
from repro.expansion.theorem31 import bit_level_structure, matmul_bit_level
from repro.expansion.semantics import BitLevelEvaluator
from repro.expansion.verify import VerificationReport, verify_theorem31
from repro.expansion.recognize import RecognitionReport, recognize_expansion

__all__ = [
    "EXPANSION_I",
    "EXPANSION_II",
    "Expansion",
    "bit_level_structure",
    "matmul_bit_level",
    "BitLevelEvaluator",
    "VerificationReport",
    "verify_theorem31",
    "RecognitionReport",
    "recognize_expansion",
]
