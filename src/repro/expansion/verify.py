"""Machine-checking Theorem 3.1 against general dependence analysis.

The paper omits the proof of Theorem 3.1 (it lives in technical report [7]).
This module substitutes executable verification: for a concrete word-level
algorithm, word length and expansion, it

1. assembles the bit-level structure *compositionally* via
   :func:`repro.expansion.theorem31.bit_level_structure` (constant work), and
2. generates the *explicit* bit-level program via
   :func:`repro.ir.expand.expand_bit_level` and runs the general dependence
   analyzer of :mod:`repro.depanalysis` over it (exponential work),

then compares the two *extensionally*: at every bit-level index point, the
set of dependence vectors whose source also lies inside the index set must
be identical.  Extensional comparison sidesteps representation differences
(symbolic conditions vs. enumerated point sets) and is exactly the
correctness statement that matters for scheduling and mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.depanalysis.analyzer import analyze
from repro.expansion.theorem31 import bit_level_structure
from repro.ir.builders import word_model_structure
from repro.ir.expand import expand_bit_level
from repro.structures.algorithm import Algorithm
from repro.structures.params import ParamBinding

__all__ = ["VerificationReport", "verify_theorem31", "effective_edges"]


@dataclass
class VerificationReport:
    """Outcome of one Theorem 3.1 cross-validation."""

    matches: bool
    #: edges predicted by the compositional structure but absent from analysis
    missing_from_analysis: list = field(default_factory=list)
    #: edges found by analysis but not predicted compositionally
    extra_in_analysis: list = field(default_factory=list)
    #: distinct vectors per side
    compositional_vectors: list = field(default_factory=list)
    analysis_vectors: list = field(default_factory=list)
    #: analyzer statistics (cost accounting)
    analysis_stats: dict = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human-readable result."""
        if self.matches:
            return (
                f"MATCH: {len(self.compositional_vectors)} dependence vectors, "
                "identical effective edges"
            )
        return (
            f"MISMATCH: {len(self.missing_from_analysis)} predicted-only, "
            f"{len(self.extra_in_analysis)} analysis-only edges"
        )


def effective_edges(
    algorithm: Algorithm, binding: ParamBinding
) -> set[tuple[tuple[int, ...], tuple[int, ...]]]:
    """All ``(sink, vector)`` pairs with a valid vector whose source is inside
    the index set -- the extensional content of a dependence structure.

    When numpy is available and the index set is a plain box, each
    dependence vector is resolved over the whole point block at once
    (validity via :func:`repro.depanalysis.engine.condition_mask`, source
    membership via array comparisons), which is what lets Theorem 3.1
    cross-validation scale to ``u = p = 16``.  A subclassed index set (e.g.
    a constrained one) falls back to the per-point loop.
    """
    from repro.depanalysis import engine as _engine
    from repro.structures.indexset import IndexSet

    index_set = algorithm.index_set
    out: set[tuple[tuple[int, ...], tuple[int, ...]]] = set()
    if _engine.HAVE_NUMPY and type(index_set) is IndexSet:
        import numpy as np

        bounds = index_set.bounds(binding)
        if (
            index_set.dim > 0
            and index_set.size(binding) <= 1 << 23
            and (not bounds
                 or max(max(abs(lo), abs(hi)) for lo, hi in bounds) < 1 << 62)
        ):
            pts = _engine.box_lattice(bounds)
            lo = np.asarray([b[0] for b in bounds], dtype=np.int64)
            hi = np.asarray([b[1] for b in bounds], dtype=np.int64)
            for vec in algorithm.dependences:
                d = np.asarray(
                    [int(x) for x in vec.vector], dtype=np.int64
                )
                src = pts - d
                mask = np.all((src >= lo) & (src <= hi), axis=1)
                mask &= _engine.condition_mask(vec.validity, pts, binding)
                vtuple = tuple(int(x) for x in vec.vector)
                for row in pts[mask]:
                    out.add((tuple(int(x) for x in row), vtuple))
            return out
    for point in index_set.points(binding):
        for vec in algorithm.dependences.valid_vectors_at(point, binding):
            src = tuple(x - d for x, d in zip(point, vec.vector))
            if index_set.contains(src, binding):
                out.add((point, vec.vector))
    return out


def verify_theorem31(
    h1: Sequence[int],
    h2: Sequence[int],
    h3: Sequence[int],
    lowers: Sequence[int],
    uppers: Sequence[int],
    p: int,
    expansion: str = "II",
    method: str = "enumerate",
    config=None,
) -> VerificationReport:
    """Cross-validate Theorem 3.1 for one concrete model (3.5) instance.

    Parameters
    ----------
    h1, h2, h3, lowers, uppers:
        The word-level model; bounds must be concrete integers here.
    p:
        Concrete word length.
    expansion:
        ``"I"`` or ``"II"``.
    method:
        Which analyzer backend to run on the explicit program
        (``"enumerate"`` or ``"exact"``).
    config:
        Optional :class:`repro.depanalysis.engine.AnalysisConfig` for the
        analysis leg (engine backend + persistent-cache policy).
    """
    word = word_model_structure(h1, h2, h3, lowers, uppers)
    compositional = bit_level_structure(word, "add-shift", expansion, p)
    binding: dict[str, int] = {"p": p}
    predicted = effective_edges(compositional, binding)

    program = expand_bit_level(h1, h2, h3, lowers, uppers, p, expansion)
    result = analyze(program, binding, method=method, config=config)
    observed = {(inst.sink, inst.vector) for inst in result.instances}

    missing = sorted(predicted - observed)
    extra = sorted(observed - predicted)
    return VerificationReport(
        matches=not missing and not extra,
        missing_from_analysis=missing,
        extra_in_analysis=extra,
        compositional_vectors=sorted(
            {v.vector for v in compositional.dependences}
        ),
        analysis_vectors=result.distinct_vectors(),
        analysis_stats=result.stats,
    )
