"""Bit-exact functional semantics of the expanded bit-level algorithms.

This module executes an expanded word-level algorithm (model (3.5)) entirely
at the bit level, under either expansion, and is the functional ground truth
used to validate both the expansions themselves and the systolic
architectures built on them.

**Value model.**  Each lattice point ``(i1, i2)`` owns the binary weight
``2^{i1+i2-2}``.  A point sums its input bits exactly (a small integer
``v <= 7``) and emits ``v`` in binary: the sum bit at its own weight, a
carry one weight up, and a second carry ``c'`` two weights up.  Every
emitted bit is routed along one of the structure's dependence directions.

**Boundary carry completion.**  As in :mod:`repro.arith.addshift`, carries
emitted at the western column ``i2 = p`` (and second carries at
``i2 ∈ {p-1, p}``) would leave the lattice; value conservation re-routes a
bit of weight position ``pos <= 2p-1`` to the column-``p`` point
``(pos - p + 1, p)`` that owns that weight -- a hop along the existing
``[1, 0]ᵀ`` link direction.  Bits of position ``>= 2p`` are overflow beyond
the ``2p-1``-bit accumulator word and are dropped, so every expansion
computes the word-level recurrence **modulo** ``2^{2p-1}``; results are
exact whenever the true values fit in ``2p-1`` bits.

The sweep over a lattice processes points in ``(i1, i2)`` ascending order,
which topologically orders every dependence used (``δ̄₃`` consumers
``(i1+1, i2-1)``, carry consumers ``(i1, i2+1)``, ``c'`` consumers
``(i1, i2+2)``, and re-routed bits at ``(pos-p+1, p)`` all come later).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.arith.bitops import to_bits
from repro.expansion.expansions import Expansion, get_expansion

__all__ = ["BitLevelEvaluator", "LatticeSweep"]


class LatticeSweep:
    """One ``p x p`` lattice evaluation with exact bit accounting.

    Inputs are seeded per point (partial products, injected ``z`` bits,
    forwarded partial sums); :meth:`run` performs the topological sweep and
    records the per-point sum bits plus statistics (max summands seen, bits
    dropped as overflow).
    """

    def __init__(self, p: int):
        self.p = int(p)
        #: pending input bits per lattice point
        self.pending: dict[tuple[int, int], list[int]] = {}
        #: sum bit produced at each point
        self.sum_bits: dict[tuple[int, int], int] = {}
        self.max_summands = 0
        #: histogram of per-point input counts (load-balance statistic)
        self.summand_counts: dict[int, int] = {}
        self.dropped_positions: list[int] = []
        #: whether the δ̄₃ collapse forwards sum bits within this sweep
        self.collapse = True

    def seed(self, point: tuple[int, int], bit: int) -> None:
        """Add one input bit at a lattice point."""
        if bit:
            self.pending.setdefault(point, []).append(1)

    def _route_up(self, i1: int, i2: int, offset: int, bit: int) -> None:
        """Route a bit ``offset`` weight positions above point ``(i1, i2)``."""
        if not bit:
            return
        p = self.p
        pos = (i1 + i2 - 1) + offset
        target = (i1, i2 + offset)
        if target[1] <= p:
            self.pending.setdefault(target, []).append(1)
        elif pos <= 2 * p - 1:
            # Boundary re-route along [1,0]ᵀ to the column-p owner of pos.
            reroute = (pos - p + 1, p)
            self.pending.setdefault(reroute, []).append(1)
        else:
            self.dropped_positions.append(pos)

    def run(self) -> None:
        """Sweep the lattice in topological order, producing all sum bits."""
        p = self.p
        for i1 in range(1, p + 1):
            for i2 in range(1, p + 1):
                inputs = self.pending.pop((i1, i2), [])
                v = sum(inputs)
                self.summand_counts[len(inputs)] = (
                    self.summand_counts.get(len(inputs), 0) + 1
                )
                if len(inputs) > self.max_summands:
                    self.max_summands = len(inputs)
                if v > 7:
                    raise AssertionError(
                        f"compressor overflow at ({i1},{i2}): {v} ones"
                    )
                self.sum_bits[(i1, i2)] = v & 1
                self._route_up(i1, i2, 1, (v >> 1) & 1)
                self._route_up(i1, i2, 2, (v >> 2) & 1)
                if self.collapse:
                    # δ̄₃: forward the sum bit to (i1+1, i2-1); at the lattice
                    # boundary it becomes (part of) a final output bit.
                    if v & 1 and i2 > 1 and i1 < p:
                        self.pending.setdefault((i1 + 1, i2 - 1), []).append(1)
        leftovers = {pt: bits for pt, bits in self.pending.items() if bits}
        if leftovers:
            raise AssertionError(f"unconsumed lattice inputs: {leftovers}")

    def boundary_word(self) -> int:
        """Collect the final bits: ``s(i,1)`` (positions ``1..p``) and
        ``s(p,k)`` (positions ``p+1..2p-1``), as an integer."""
        p = self.p
        value = 0
        for i in range(1, p + 1):
            value |= self.sum_bits[(i, 1)] << (i - 1)
        for k in range(2, p + 1):
            value |= self.sum_bits[(p, k)] << (p + k - 2)
        return value


class BitLevelEvaluator:
    """Execute an expanded word-level algorithm bit by bit.

    Parameters
    ----------
    p:
        Word length.
    expansion:
        ``"I"`` or ``"II"``.
    """

    def __init__(self, p: int, expansion: str | Expansion = "II"):
        if p < 1:
            raise ValueError("word length p must be positive")
        self.p = int(p)
        self.expansion = get_expansion(expansion)
        self.max_summands = 0
        #: aggregated per-point input-count histogram across all sweeps
        self.summand_histogram: dict[int, int] = {}

    def _absorb(self, sweep: LatticeSweep) -> None:
        self.max_summands = max(self.max_summands, sweep.max_summands)
        for count, occurrences in sweep.summand_counts.items():
            self.summand_histogram[count] = (
                self.summand_histogram.get(count, 0) + occurrences
            )

    # -- single multiply-accumulate chains ----------------------------------
    def accumulate(
        self, xs: Sequence[int], ys: Sequence[int], z_init: int = 0
    ) -> int:
        """Compute ``z_init + sum_k xs[k]*ys[k] (mod 2^{2p-1})`` bit-wise.

        This is the 1-D model (3.7) with ``h₁ = h₂ = h₃ = 1``: one word
        iteration per ``k``, executing the chosen expansion's lattice logic.
        """
        if len(xs) != len(ys):
            raise ValueError("operand streams must have equal length")
        p = self.p
        mask = (1 << (2 * p - 1)) - 1
        if self.expansion.key == "II":
            z = z_init & mask
            for x, y in zip(xs, ys):
                z = self._iteration_expansion2(x, y, z)
            return z
        # Expansion I: position-wise partial-sum state across iterations.
        state = self._decompose_positionwise(z_init & mask)
        for k, (x, y) in enumerate(zip(xs, ys)):
            final = k == len(xs) - 1
            state = self._iteration_expansion1(x, y, state, final=final)
        if not xs:
            # No iterations: collapse the initial state directly.
            state = self._iteration_expansion1(0, 0, state, final=True)
        return state["result"]

    # -- Expansion II: full lattice per iteration, z injected at boundary ----
    def _iteration_expansion2(self, x: int, y: int, z_prev: int) -> int:
        p = self.p
        sweep = LatticeSweep(p)
        x_bits = to_bits(x, p)
        y_bits = to_bits(y, p)
        for i1 in range(1, p + 1):
            for i2 in range(1, p + 1):
                sweep.seed((i1, i2), x_bits[i2 - 1] & y_bits[i1 - 1])
        # Inject the 2p-1 final bits of z_prev at the boundary owner of each
        # weight: position w <= p at (w, 1); w > p at (p, w - p + 1).
        z_bits = to_bits(z_prev, 2 * p - 1)
        for w in range(1, 2 * p):
            target = (w, 1) if w <= p else (p, w - p + 1)
            sweep.seed(target, z_bits[w - 1])
        sweep.run()
        self._absorb(sweep)
        return sweep.boundary_word()

    # -- Expansion I: carry-save across iterations, collapse at the end -------
    def _decompose_positionwise(self, z: int) -> dict:
        """Spread an initial value over the lattice position-wise.

        Position ``w``'s bit is stored at its boundary owner, matching where
        partial sums of that weight live.
        """
        p = self.p
        grid = {
            (i1, i2): 0 for i1 in range(1, p + 1) for i2 in range(1, p + 1)
        }
        bits = to_bits(z & ((1 << (2 * p - 1)) - 1), 2 * p - 1)
        for w in range(1, 2 * p):
            target = (w, 1) if w <= p else (p, w - p + 1)
            grid[target] = bits[w - 1]
        return {"grid": grid, "result": None}

    def _iteration_expansion1(
        self, x: int, y: int, state: dict, final: bool
    ) -> dict:
        p = self.p
        sweep = LatticeSweep(p)
        sweep.collapse = final  # δ̄₃ runs only in the last word iteration
        x_bits = to_bits(x, p)
        y_bits = to_bits(y, p)
        grid: Mapping[tuple[int, int], int] = state["grid"]
        for i1 in range(1, p + 1):
            for i2 in range(1, p + 1):
                sweep.seed((i1, i2), x_bits[i2 - 1] & y_bits[i1 - 1])
                sweep.seed((i1, i2), grid[(i1, i2)])
        sweep.run()
        self._absorb(sweep)
        if final:
            return {"grid": None, "result": sweep.boundary_word()}
        return {"grid": dict(sweep.sum_bits), "result": None}
