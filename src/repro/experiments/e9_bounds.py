"""E9 (extension) -- absolute optimality of the Fig. 4 schedule.

Theorem 4.5 says ``T`` of eq. (4.2) is time-optimal among *linear*
schedules.  This experiment measures something stronger: the free-schedule
lower bound (longest dependence chain + 1), which no schedule of any kind
can beat, equals ``3(u-1)+3(p-1)+1`` on every tested instance and under
both expansions -- so Fig. 4 achieves the absolute minimum execution time
of the bit-level matmul dependence structure.
"""

from __future__ import annotations

from repro.expansion.theorem31 import matmul_bit_level
from repro.experiments.tables import format_table
from repro.mapping import designs
from repro.mapping.bounds import free_schedule_time

__all__ = ["run", "report"]


def run(
    cases: tuple[tuple[int, int], ...] = ((2, 2), (3, 3), (4, 2), (2, 4), (4, 3)),
) -> dict:
    """Compare the free-schedule bound with eq. (4.5) per instance."""
    rows = []
    all_ok = True
    for u, p in cases:
        t4 = designs.t_fig4(u, p)
        per_exp = {}
        for exp in ("I", "II"):
            alg = matmul_bit_level(u, p, exp)
            per_exp[exp] = free_schedule_time(alg, {"u": u, "p": p})
        ok = per_exp["I"] == per_exp["II"] == t4
        all_ok = all_ok and ok
        rows.append((u, p, per_exp["I"], per_exp["II"], t4, ok))
    return {"rows": rows, "ok": all_ok}


def report(data: dict | None = None) -> str:
    """Render the E9 table."""
    data = data or run()
    table = format_table(
        ["u", "p", "free-schedule (exp I)", "free-schedule (exp II)",
         "t (4.5)", "Fig.4 absolutely optimal"],
        data["rows"],
        title="E9 (extension): free-schedule lower bound vs eq. (4.5)",
    )
    verdict = (
        "Fig. 4 attains the absolute minimum (stronger than Theorem 4.5)"
        if data["ok"]
        else "BOUND MISMATCH"
    )
    return f"{table}\n=> {verdict}"
