"""E8 -- Section 2 / eqs. (2.2)-(2.4): the word-level pipeline.

Reproduces the preprocessing chain of Example 2.1:

1. the accumulation form of matmul converts to single-assignment (2.2);
2. Fortes-Moldovan broadcast elimination turns (2.2) into (2.3), choosing
   the propagation directions ``[0,1,0]`` for ``x`` and ``[1,0,0]`` for
   ``y``;
3. general dependence analysis of (2.3) recovers the dependence matrix of
   eq. (2.4) -- the three unit vectors, each caused by one variable -- and
   confirms the algorithm is a *uniform dependence algorithm*;
4. the single-assignment property holds for (2.2)/(2.3) and fails for the
   accumulation form.
"""

from __future__ import annotations

from repro.depanalysis import analyze
from repro.experiments.tables import format_table
from repro.ir.builders import matmul_naive, matmul_pipelined
from repro.ir.transform import broadcast_directions, eliminate_broadcasts

__all__ = ["run", "report"]

PAPER_24 = {
    "x": {(0, 1, 0)},
    "y": {(1, 0, 0)},
    "z": {(0, 0, 1)},
}


def run(u_values: tuple[int, ...] = (2, 3, 4)) -> dict:
    """Validate the (2.2) -> (2.3) -> (2.4) chain for several sizes."""
    rows = []
    all_ok = True
    for u in u_values:
        naive = matmul_naive(u)
        directions = broadcast_directions(naive)
        dir_ok = directions == {"x": [0, 1, 0], "y": [1, 0, 0]}

        pipelined = eliminate_broadcasts(naive)
        sa_ok = pipelined.verify_single_assignment({"u": u})

        derived = analyze(pipelined, {"u": u}, method="exact").vectors_by_variable()
        dep_ok = derived == PAPER_24

        # The hand-written (2.3) builder agrees with the transformed program.
        hand = analyze(matmul_pipelined(u), {"u": u}, method="exact")
        hand_ok = hand.vectors_by_variable() == PAPER_24

        uniform_ok = all(
            len(vecs) == 1 for vecs in derived.values()
        )  # one uniform vector per variable

        ok = dir_ok and sa_ok and dep_ok and hand_ok and uniform_ok
        all_ok = all_ok and ok
        rows.append((u, dir_ok, sa_ok, dep_ok, hand_ok, uniform_ok))
    return {"rows": rows, "ok": all_ok}


def report(data: dict | None = None) -> str:
    """Render the E8 table."""
    data = data or run()
    table = format_table(
        ["u", "directions ok", "single-assign", "D == (2.4)",
         "(2.3) builder ok", "uniform"],
        data["rows"],
        title="E8: word-level matmul pipeline (eqs. (2.2)-(2.4))",
    )
    verdict = "ALL CHECKS PASS" if data["ok"] else "FAILURES PRESENT"
    return f"{table}\n=> {verdict}"
