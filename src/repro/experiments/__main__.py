"""Run all experiment harnesses and print their reports.

Usage::

    python -m repro.experiments            # all experiments
    python -m repro.experiments e4 e5      # a subset by id
"""

from __future__ import annotations

import sys

from repro.experiments import (
    e1_addshift,
    e2_expansions,
    e3_matmul_structure,
    e4_fig4,
    e5_fig5,
    e6_speedup,
    e7_analysis_cost,
    e8_wordlevel,
    e9_bounds,
    e10_search,
)

MODULES = {
    "e1": e1_addshift,
    "e2": e2_expansions,
    "e3": e3_matmul_structure,
    "e4": e4_fig4,
    "e5": e5_fig5,
    "e6": e6_speedup,
    "e7": e7_analysis_cost,
    "e8": e8_wordlevel,
    "e9": e9_bounds,
    "e10": e10_search,
}


def main(argv: list[str]) -> int:
    wanted = [a.lower() for a in argv] or list(MODULES)
    unknown = [w for w in wanted if w not in MODULES]
    if unknown:
        print(f"unknown experiment ids: {unknown}; known: {sorted(MODULES)}")
        return 2
    from repro import obs

    failed = []
    for key in wanted:
        mod = MODULES[key]
        with obs.span(f"experiment.{key}"):
            report = mod.report()
        print(report)
        print()
        if "FAIL" in report or "MISMATCH" in report:
            failed.append(key)
    if failed:
        print(f"FAILED experiments: {failed}")
        return 1
    print("All experiments reproduce the paper's results.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
