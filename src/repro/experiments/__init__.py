"""Experiment harnesses: one module per reproduced figure/result.

Each module exposes ``run(...)`` returning structured data and
``report(...)`` rendering the paper-vs-measured rows recorded in
EXPERIMENTS.md:

=====  ===============================================  =======================
id     paper artifact                                   module
=====  ===============================================  =======================
E1     Fig. 1 / eqs. (3.1)-(3.4): add-shift             ``e1_addshift``
E2     Fig. 3 / eqs. (3.8)-(3.9): expansions I & II     ``e2_expansions``
E3     Example 3.1 / eqs. (3.12)-(3.13): matmul         ``e3_matmul_structure``
E4     Thm. 4.5 / Fig. 4 / eqs. (4.2)-(4.5)             ``e4_fig4``
E5     Fig. 5 / eqs. (4.6)-(4.8)                        ``e5_fig5``
E6     Section 4.2 speedup claims                       ``e6_speedup``
E7     Section 1/3: analysis cost                       ``e7_analysis_cost``
E8     Section 2 / eqs. (2.2)-(2.4)                     ``e8_wordlevel``
=====  ===============================================  =======================
"""

from repro.experiments import (
    e1_addshift,
    e2_expansions,
    e3_matmul_structure,
    e4_fig4,
    e5_fig5,
    e6_speedup,
    e7_analysis_cost,
    e8_wordlevel,
    e9_bounds,
    e10_search,
)
from repro.experiments.tables import format_table

__all__ = [
    "e1_addshift",
    "e2_expansions",
    "e3_matmul_structure",
    "e4_fig4",
    "e5_fig5",
    "e6_speedup",
    "e7_analysis_cost",
    "e8_wordlevel",
    "e9_bounds",
    "e10_search",
    "format_table",
]
