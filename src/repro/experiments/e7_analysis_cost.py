"""E7 -- Sections 1/3: the cost of general analysis vs Theorem 3.1.

The paper's motivation: general dependence analysis "involve[s] finding all
integer solutions of a set of linear Diophantine equations, followed by a
verification to see if the integer solutions are inside the index set", with
exponential worst-case cost in the loop depth -- whereas the compositional
construction touches a constant number of symbols.

This harness measures both on the *same* task (deriving the bit-level
dependence structure of the expanded matmul program):

* wall time and verification-candidate counts of the exact analyzer as
  ``u`` and ``p`` grow (the index set has ``u³p²`` points; the analyzer's
  candidate space grows accordingly);
* wall time of Theorem 3.1's composition (flat, independent of ``u``, ``p``);
* equality of the two results (the speed is not bought with wrong answers).

Timing uses :mod:`repro.obs` spans -- the same substrate every other layer
reports through -- so the cost table and any ``--metrics-out`` run measure
with one mechanism; the registry's metrics dict is returned alongside the
table rows.
"""

from __future__ import annotations

from repro import obs
from repro.depanalysis import AnalysisConfig, analyze, resolve_backend
from repro.expansion.theorem31 import matmul_bit_level
from repro.expansion.verify import effective_edges
from repro.experiments.tables import format_table
from repro.ir.expand import expand_bit_level

__all__ = ["run", "report"]

_MATMUL_H = ([0, 1, 0], [1, 0, 0], [0, 0, 1])


def run(
    cases: tuple[tuple[int, int], ...] = ((2, 2), (2, 3), (3, 2), (3, 3)),
    verify: bool = True,
    backend: str | None = None,
) -> dict:
    """Time both derivations per ``(u, p)`` and check they agree.

    ``backend`` selects the analysis engine (``"scalar"``/``"batched"``;
    default: environment resolution).  The persistent cache is disabled so
    the general-analysis column always measures a real analysis run.
    """
    reg = obs.get_registry() or obs.Registry()
    config = AnalysisConfig(backend=backend, cache=False)
    rows = []
    all_ok = True
    progress = reg.progress("e7.cases", total=len(cases))
    for u, p in cases:
        progress.advance()
        h1, h2, h3 = _MATMUL_H
        program = expand_bit_level(h1, h2, h3, [1, 1, 1], [u, u, u], p, "II")

        with reg.span("e7.general_analysis", u=u, p=p) as sp_general:
            result = analyze(program, {"p": p}, method="exact", config=config)
        t_general = sp_general.duration
        reg.observe("e7.general_seconds", t_general)

        with reg.span("e7.theorem31_composition", u=u, p=p) as sp_comp:
            alg = matmul_bit_level(u, p, "II")
        t_comp = sp_comp.duration
        reg.observe("e7.theorem31_seconds", t_comp)

        agree = True
        if verify:
            predicted = effective_edges(alg, {"u": u, "p": p})
            observed = {(i.sink, i.vector) for i in result.instances}
            agree = predicted == observed
        all_ok = all_ok and agree
        rows.append(
            (
                u,
                p,
                u**3 * p**2,
                result.stats["candidates_verified"],
                f"{t_general * 1e3:.1f}",
                f"{t_comp * 1e6:.0f}",
                f"{t_general / t_comp:.0f}x" if t_comp else "inf",
                agree,
            )
        )
    progress.close()
    return {
        "rows": rows,
        "ok": all_ok,
        "backend": resolve_backend(backend),
        "metrics": reg.metrics(),
    }


def report(data: dict | None = None) -> str:
    """Render the E7 table."""
    data = data or run()
    backend = data.get("backend", "scalar")
    table = format_table(
        ["u", "p", "|J|", "candidates verified", "general (ms)",
         "Theorem 3.1 (µs)", "ratio", "same structure"],
        data["rows"],
        title=("E7: general dependence analysis vs Theorem 3.1 composition "
               f"(engine backend: {backend})"),
    )
    verdict = (
        "compositional derivation is orders of magnitude cheaper, same result"
        if data["ok"]
        else "RESULT MISMATCH"
    )
    return f"{table}\n=> {verdict}"
