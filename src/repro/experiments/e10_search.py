"""E10 (extension) -- design-space search re-derives (and varies) Fig. 4.

Runs the joint ``(S, Π)`` synthesis of the paper's references [5, 6, 10]
on the bit-level matmul structure and reports what it finds relative to the
paper's hand-crafted design: the search reaches Fig. 4's optimal time, and
at small sizes also finds same-time designs using fewer processors (space
maps the paper does not discuss).
"""

from __future__ import annotations

from repro.expansion.theorem31 import matmul_bit_level
from repro.experiments.tables import format_table
from repro.mapping import designs
from repro.mapping.engine import SearchConfig, run_search

__all__ = ["run", "report"]


def run(
    u: int = 2, p: int = 2, max_candidates: int = 5, workers: int = 1
) -> dict:
    """Search and compare against the Fig. 4 reference point."""
    alg = matmul_bit_level(u, p, "II")
    config = SearchConfig(
        target_space_dim=2,
        block_values=[p],
        schedule_bound=2,
        max_candidates=max_candidates,
        workers=workers,
    )
    candidates = run_search(alg, {"u": u, "p": p},
                            designs.fig4_primitives(p), config)
    t_ref = designs.t_fig4(u, p)
    pe_ref = designs.fig4_processor_count(u, p)
    rows = [
        (i + 1, c.time, c.processors,
         "; ".join(str(list(r)) for r in c.mapping.rows))
        for i, c in enumerate(candidates)
    ]
    ok = bool(candidates) and candidates[0].time <= t_ref
    return {
        "rows": rows,
        "u": u,
        "p": p,
        "t_ref": t_ref,
        "pe_ref": pe_ref,
        "found_fewer_pes": any(
            c.time == t_ref and c.processors < pe_ref for c in candidates
        ),
        "ok": ok,
    }


def report(data: dict | None = None) -> str:
    """Render the E10 table."""
    data = data or run()
    table = format_table(
        ["rank", "time", "PEs", "T = [S; Π]"],
        data["rows"],
        title=(
            f"E10 (extension): design-space search, bit-level matmul "
            f"(u={data['u']}, p={data['p']}); Fig. 4 reference: "
            f"t={data['t_ref']}, PEs={data['pe_ref']}"
        ),
    )
    lines = [table]
    if data["found_fewer_pes"]:
        lines.append(
            "=> the search matches Fig. 4's optimal time with fewer "
            "processors at this size"
        )
    verdict = "SEARCH REACHES THE OPTIMUM" if data["ok"] else "SEARCH FELL SHORT"
    lines.append(f"=> {verdict}")
    return "\n".join(lines)
