"""E6 -- Section 4.2: speedup of the bit-level design over word-level.

The paper's headline: the time-optimal bit-level architecture (Fig. 4) is

* ``O(p²)`` times faster than the best word-level array whose PEs multiply
  with the *add-shift* algorithm (``t_b = O(p²)``), and
* ``O(p)`` times faster when the word-level PEs use *carry-save*
  (``t_b = O(p)``),

assuming ``u > p``.  This harness sweeps ``p`` at fixed ``u``, computes

``t_word = (3(u-1)+1)·t_b``  vs  ``t_bit = 3(u-1)+3(p-1)+1``

from both the closed forms and (for small sizes) the simulators, and fits
the growth exponent of each speedup curve on the sweep: the add-shift
speedup must grow ~quadratically in ``p``, the carry-save one ~linearly.
"""

from __future__ import annotations

import math

from repro.experiments.tables import format_table
from repro.machine.wordlevel import WordLevelMatmulMachine
from repro.mapping import designs

__all__ = ["run", "report", "fit_exponent"]


def fit_exponent(ps: list[int], values: list[float]) -> float:
    """Least-squares slope of ``log(value)`` against ``log(p)``."""
    xs = [math.log(p) for p in ps]
    ys = [math.log(v) for v in values]
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    num = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    den = sum((x - mx) ** 2 for x in xs)
    return num / den


def run(
    u: int = 32,
    p_values: tuple[int, ...] = (2, 4, 8, 16, 24),
    simulate_up_to: tuple[int, int] = (4, 4),
    backend: str | None = None,
) -> dict:
    """Sweep ``p``; include simulator confirmation for small sizes.

    ``backend`` selects the simulator engine for the confirmation runs
    (``None``: the process default).
    """
    from repro.machine.simulator import resolve_backend
    rows = []
    s_as, s_cs = [], []
    for p in p_values:
        t_bit = designs.t_fig4(u, p)
        t_as = designs.word_level_time(u, p, "add-shift")
        t_cs = designs.word_level_time(u, p, "carry-save")
        sp_as = t_as / t_bit
        sp_cs = t_cs / t_bit
        s_as.append(sp_as)
        s_cs.append(sp_cs)
        rows.append((u, p, t_bit, t_as, t_cs, round(sp_as, 2), round(sp_cs, 2)))

    exp_as = fit_exponent(list(p_values), s_as)
    exp_cs = fit_exponent(list(p_values), s_cs)

    # Simulator confirmation of the word-level formula at small size.
    su, sp = simulate_up_to
    sim_rows = []
    for arith in ("add-shift", "carry-save"):
        m = WordLevelMatmulMachine(su, sp, arith, backend=backend)
        x = [[(i + j) % (1 << sp) for j in range(su)] for i in range(su)]
        y = [[(i * j + 1) % (1 << sp) for j in range(su)] for i in range(su)]
        out = m.run(x, y)
        ref = [
            [sum(x[i][k] * y[k][j] for k in range(su)) for j in range(su)]
            for i in range(su)
        ]
        sim_rows.append(
            (arith, out.total_cycles, designs.word_level_time(su, sp, arith),
             out.product == ref)
        )

    # The paper claims O(p²)/O(p); accept the fitted exponent within a
    # tolerance reflecting the low-order terms at small p.
    ok = (
        1.6 <= exp_as <= 2.2
        and 0.6 <= exp_cs <= 1.2
        and all(sim == formula and correct for _, sim, formula, correct in sim_rows)
    )
    return {
        "rows": rows,
        "exp_addshift": exp_as,
        "exp_carrysave": exp_cs,
        "sim_rows": sim_rows,
        "ok": ok,
        "u": u,
        "backend": resolve_backend(backend),
    }


def report(data: dict | None = None) -> str:
    """Render the E6 table."""
    data = data or run()
    table = format_table(
        ["u", "p", "t_bit (4.5)", "t_word add-shift", "t_word carry-save",
         "speedup AS", "speedup CS"],
        data["rows"],
        title="E6: bit-level vs word-level speedup (Section 4.2)",
    )
    sim = format_table(
        ["arithmetic", "simulated cycles", "formula", "product exact"],
        data["sim_rows"],
        title="word-level simulator vs formula (small instance)",
    )
    lines = [
        table,
        "",
        sim,
        "",
        f"fitted speedup exponent, add-shift : {data['exp_addshift']:.2f} "
        "(paper: O(p²))",
        f"fitted speedup exponent, carry-save: {data['exp_carrysave']:.2f} "
        "(paper: O(p))",
    ]
    verdict = "SHAPE REPRODUCED" if data["ok"] else "SHAPE MISMATCH"
    lines.append(f"=> {verdict}")
    return "\n".join(lines)
