"""Minimal fixed-width table rendering for experiment reports."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a monospace table with right-aligned cells.

    Floats are shown with 3 decimals; everything else via ``str``.
    """
    def cell(x: object) -> str:
        if isinstance(x, float):
            return f"{x:.3f}"
        return str(x)

    grid = [[cell(h) for h in headers]] + [[cell(c) for c in row] for row in rows]
    widths = [max(len(r[c]) for r in grid) for c in range(len(headers))]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.rjust(w) for h, w in zip(grid[0], widths)))
    lines.append(sep)
    for row in grid[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
