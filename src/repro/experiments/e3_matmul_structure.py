"""E3 -- Example 3.1 / eqs. (3.12)-(3.13): bit-level matmul structure.

Reproduces the paper's worked example: applying Theorem 3.1 to the
word-level matrix multiplication (2.4) with the add-shift structure (3.4)
under Expansion II yields the 5-D structure of eqs. (3.12)/(3.13):

* index set ``{1 <= j1, j2, j3 <= u, 1 <= i1, i2 <= p}`` (eq. (3.13));
* seven dependence vectors, columns of eq. (3.12), with the validity
  conditions printed beneath them;

and cross-validates it against general dependence analysis of the explicit
5-D bit-level program on concrete instances.
"""

from __future__ import annotations

from repro.expansion.theorem31 import matmul_bit_level
from repro.expansion.verify import verify_theorem31
from repro.experiments.tables import format_table
from repro.structures.conditions import TRUE, Eq, Ne, Or
from repro.structures.params import S

__all__ = ["run", "report", "paper_312_columns"]

_P, _U = S("p"), S("u")


def paper_312_columns(expansion: str = "II"):
    """The seven ``(vector, causes, validity)`` columns of eq. (3.12).

    Axis numbering is 0-based over ``(j1, j2, j3, i1, i2)``, so ``i1`` is
    axis 3 and ``i2`` axis 4; with Expansion I the validity conditions are
    those of eq. (3.11b) instead.
    """
    p = _P
    if expansion == "II":
        val_d3 = Or(Eq(3, p), Eq(4, 1))
        val_d6 = TRUE
        val_d7 = Eq(3, p)
    else:
        from repro.structures.conditions import And, Ne as _Ne

        val_d3 = TRUE
        val_d6 = Eq(2, _U)
        val_d7 = And(Eq(2, _U), Or(_Ne(3, 1), And(_Ne(4, 1), _Ne(4, 2))))
    return [
        ((1, 0, 0, 0, 0), frozenset({"y"}), Eq(4, 1)),
        ((0, 1, 0, 0, 0), frozenset({"x"}), Eq(3, 1)),
        ((0, 0, 1, 0, 0), frozenset({"z"}), val_d3),
        ((0, 0, 0, 1, 0), frozenset({"x"}), Ne(3, 1)),
        ((0, 0, 0, 0, 1), frozenset({"c", "y"}), Ne(4, 1)),
        ((0, 0, 0, 1, -1), frozenset({"z"}), val_d6),
        ((0, 0, 0, 0, 2), frozenset({"c'"}), val_d7),
    ]


def run(cases: tuple[tuple[int, int], ...] = ((2, 2), (3, 2), (2, 3))) -> dict:
    """Check the symbolic structure against (3.12) and cross-validate."""
    alg = matmul_bit_level()  # symbolic u, p
    derived = {
        (v.vector, frozenset(v.causes), v.validity) for v in alg.dependences
    }
    paper = {
        (vec, causes, val) for vec, causes, val in paper_312_columns("II")
    }
    symbolic_ok = derived == paper

    index_ok = (
        alg.index_set.dim == 5
        and all(lo == 1 for lo in [b.constant_value() for b in alg.index_set.lowers])
        and [str(b) for b in alg.index_set.uppers] == ["u", "u", "u", "p", "p"]
    )

    rows = []
    all_ok = symbolic_ok and index_ok
    for u, p in cases:
        for exp in ("I", "II"):
            rep = verify_theorem31(
                [0, 1, 0], [1, 0, 0], [0, 0, 1], [1, 1, 1], [u, u, u], p,
                expansion=exp,
            )
            all_ok = all_ok and rep.matches
            rows.append((u, p, exp, rep.matches, len(rep.compositional_vectors)))
    return {
        "symbolic_ok": symbolic_ok,
        "index_ok": index_ok,
        "rows": rows,
        "ok": all_ok,
        "algorithm": alg,
    }


def report(data: dict | None = None) -> str:
    """Render the E3 summary."""
    data = data or run()
    lines = [
        "E3: bit-level matrix multiplication structure (eqs. (3.12)/(3.13))",
        f"symbolic D equals eq. (3.12): {data['symbolic_ok']}",
        f"index set equals eq. (3.13):  {data['index_ok']}",
        "",
        format_table(
            ["u", "p", "expansion", "matches analysis", "#vectors"],
            data["rows"],
        ),
    ]
    for vec in data["algorithm"].dependences:
        lines.append(f"  {vec!r}")
    verdict = "ALL CHECKS PASS" if data["ok"] else "FAILURES PRESENT"
    lines.append(f"=> {verdict}")
    return "\n".join(lines)
