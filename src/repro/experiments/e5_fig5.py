"""E5 -- Fig. 5 / eqs. (4.6)-(4.8): the nearest-neighbour design.

Reproduces, per ``(u, p)``:

1. feasibility of ``T'`` (eq. (4.6)) with the unit-wire primitives ``P'``
   of eq. (4.7);
2. simulated execution time; **reproduction note**: the printed eq. (4.8)
   says ``(2p-1)(u-1)+3(p-1)+1`` but the matrix-vector product the paper
   itself sets up evaluates to ``(2p+1)(u-1)+3(p-1)+1`` -- the simulation
   decides (it confirms ``2p+1``);
3. processor count equals ``(u·p)²``;
4. *no long wires*: every instantiated link has length 1 (the design's
   selling point versus Fig. 4);
5. the simulated array computes ``X·Y`` bit-exactly;
6. the Fig. 4 vs Fig. 5 trade-off rows: time ratio vs wire savings.
"""

from __future__ import annotations

import random

from repro.expansion.theorem31 import matmul_bit_level
from repro.experiments.tables import format_table
from repro.machine.array import SystolicArray
from repro.machine.bitlevel import BitLevelMatmulMachine
from repro.mapping import check_feasibility, designs, execution_time, processor_count

__all__ = ["run", "report"]


def run(
    cases: tuple[tuple[int, int], ...] = ((2, 2), (3, 3), (4, 3)),
    seed: int = 5,
    backend: str | None = None,
) -> dict:
    """Run the full Fig. 5 validation for each ``(u, p)``.

    ``backend`` selects the simulator engine for the bit-exact execution
    check (``None``: the process default).
    """
    from repro.machine.simulator import resolve_backend

    rng = random.Random(seed)
    rows = []
    all_ok = True
    for u, p in cases:
        alg = matmul_bit_level(u, p, "II")
        binding = {"u": u, "p": p}
        t_mat = designs.fig5_mapping(p)
        prims = designs.fig5_primitives()

        rep = check_feasibility(t_mat, alg, binding, primitives=prims)
        t_sim = execution_time(t_mat.schedule, alg, binding)
        t_actual = designs.t_fig5(u, p)
        t_printed = designs.t_fig5_printed(u, p)
        pe_count = processor_count(t_mat, alg.index_set, binding)
        pe_formula = designs.fig5_processor_count(u, p)

        array = SystolicArray(t_mat, alg, binding, rep.interconnect)
        no_long_wires = array.longest_wire <= 1

        machine = BitLevelMatmulMachine(u, p, t_mat, "II", backend=backend)
        mask = (1 << (2 * p - 1)) - 1
        x = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
        y = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
        out = machine.run(x, y)
        ref = [
            [sum(x[i][k] * y[k][j] for k in range(u)) & mask for j in range(u)]
            for i in range(u)
        ]
        func_ok = out.product == ref and out.sim.makespan == t_actual

        ok = (
            rep.feasible
            and t_sim == t_actual
            and pe_count == pe_formula
            and no_long_wires
            and func_ok
        )
        all_ok = all_ok and ok
        rows.append(
            (u, p, rep.feasible, t_sim, t_actual, t_printed, pe_count,
             no_long_wires, func_ok, round(t_sim / designs.t_fig4(u, p), 2))
        )
    return {"rows": rows, "ok": all_ok, "backend": resolve_backend(backend)}


def report(data: dict | None = None) -> str:
    """Render the E5 table."""
    data = data or run()
    table = format_table(
        ["u", "p", "feasible", "t sim", "(2p+1)(u-1)+3(p-1)+1",
         "(4.8) as printed", "PEs", "unit wires only", "X·Y exact",
         "t'/t_fig4"],
        data["rows"],
        title="E5: Fig. 5 nearest-neighbour design (eqs. (4.6)-(4.8))",
    )
    note = (
        "note: the simulation confirms (2p+1)(u-1)+3(p-1)+1; the printed "
        "(4.8) coefficient (2p-1) is an arithmetic slip in the paper "
        "(same Θ(p·u) shape)."
    )
    verdict = "ALL CHECKS PASS" if data["ok"] else "FAILURES PRESENT"
    return f"{table}\n{note}\n=> {verdict}"
