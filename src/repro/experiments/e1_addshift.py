"""E1 -- Fig. 1 / eqs. (3.1)-(3.4): the add-shift arithmetic algorithm.

Reproduces three claims:

1. the add-shift lattice computes ``s = a x b`` (bit-exact, all operands);
2. general dependence analysis of the broadcast-free program (3.3) recovers
   exactly the dependence matrix ``D_as`` of eq. (3.4):
   ``δ̄₁ = [1,0]ᵀ (a)``, ``δ̄₂ = [0,1]ᵀ (b, c)``, ``δ̄₃ = [1,-1]ᵀ (s)``;
3. Fortes-Moldovan broadcast elimination transforms program (3.1) into
   (3.3) (the pipelining directions come out as ``δ̄₁`` and ``δ̄₂``).
"""

from __future__ import annotations

from repro.arith.addshift import AddShiftMultiplier, addshift_structure
from repro.depanalysis import analyze
from repro.experiments.tables import format_table
from repro.ir.builders import addshift_broadcast, addshift_pipelined
from repro.ir.transform import broadcast_directions

__all__ = ["run", "report"]

PAPER_D_AS = {
    "a": {(1, 0)},
    "b": {(0, 1)},
    "c": {(0, 1)},
    "s": {(1, -1)},
}


def run(p_values: tuple[int, ...] = (2, 3, 4), exhaustive_limit: int = 4) -> dict:
    """Run all three checks; exhaustive multiplication up to
    ``p <= exhaustive_limit``, sampled above."""
    rows = []
    all_ok = True
    for p in p_values:
        mult = AddShiftMultiplier(p)
        if p <= exhaustive_limit:
            pairs = [(a, b) for a in range(1 << p) for b in range(1 << p)]
        else:
            step = max(1, (1 << p) // 8)
            pairs = [(a, b) for a in range(0, 1 << p, step) for b in range(0, 1 << p, step)]
        func_ok = all(mult.multiply(a, b) == a * b for a, b in pairs)

        result = analyze(addshift_pipelined(p), {"p": p}, method="exact")
        derived = {
            var: vecs for var, vecs in result.vectors_by_variable().items()
        }
        dep_ok = derived == PAPER_D_AS

        directions = broadcast_directions(addshift_broadcast(p))
        elim_ok = directions == {"a": [1, 0], "b": [0, 1]}

        all_ok = all_ok and func_ok and dep_ok and elim_ok
        rows.append((p, len(pairs), func_ok, dep_ok, elim_ok))
    structure = addshift_structure()
    return {
        "rows": rows,
        "ok": all_ok,
        "structure": structure,
        "paper_matrix": PAPER_D_AS,
    }


def report(data: dict | None = None) -> str:
    """Render the E1 table."""
    data = data or run()
    table = format_table(
        ["p", "products checked", "s=a*b", "D_as == (3.4)", "broadcasts -> δ̄₁, δ̄₂"],
        data["rows"],
        title="E1: add-shift arithmetic algorithm (Fig. 1, eqs. (3.1)-(3.4))",
    )
    verdict = "ALL CHECKS PASS" if data["ok"] else "FAILURES PRESENT"
    return f"{table}\n=> {verdict}"
