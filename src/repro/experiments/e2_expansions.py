"""E2 -- Fig. 3 / eqs. (3.8)-(3.9): bit-level structures of the 1-D model.

For the 1-D model (3.7) (``h₁ = h₂ = h₃ = h``), reproduces:

1. the dependence matrices ``D_I`` and ``D_II`` with the paper's validity
   conditions, derived compositionally by Theorem 3.1;
2. cross-validation against general dependence analysis of the explicitly
   expanded 3-D program (Expansion I: ``d̄₃`` uniform, collapse at
   ``j = u``; Expansion II: ``d̄₃`` at the boundary, collapse uniform);
3. the functional claim behind Fig. 2: both expansions compute
   ``z = Σ x(j)·y(j)`` exactly (mod ``2^{2p-1}``);
4. the computational-uniformity contrast the paper discusses: the maximum
   number of summed bits per index point under each expansion.
"""

from __future__ import annotations

import random

from repro.expansion.semantics import BitLevelEvaluator
from repro.expansion.theorem31 import bit_level_from_vectors
from repro.expansion.verify import verify_theorem31
from repro.experiments.tables import format_table

__all__ = ["run", "report"]


def run(
    cases: tuple[tuple[int, int, int], ...] = ((3, 3, 1), (4, 2, 1), (5, 2, 2)),
    seed: int = 0,
) -> dict:
    """Each case is ``(u, p, h)``; returns per-case verification rows."""
    rng = random.Random(seed)
    rows = []
    all_ok = True
    structures = {}
    for u, p, h in cases:
        for exp in ("I", "II"):
            rep = verify_theorem31([h], [h], [h], [1], [u], p, expansion=exp)
            # Functional check (the expansions implement the recurrence).
            ev = BitLevelEvaluator(p, exp)
            mask = (1 << (2 * p - 1)) - 1
            func_ok = True
            for _ in range(20):
                xs = [rng.randrange(1 << p) for _ in range(u)]
                ys = [rng.randrange(1 << p) for _ in range(u)]
                want = sum(a * b for a, b in zip(xs, ys)) & mask
                if ev.accumulate(xs, ys) != want:
                    func_ok = False
            ok = rep.matches and func_ok
            all_ok = all_ok and ok
            rows.append(
                (u, p, h, exp, rep.matches, func_ok,
                 len(rep.compositional_vectors), ev.max_summands)
            )
            structures[(u, p, h, exp)] = bit_level_from_vectors(
                [h], [h], [h], [1], [u], p, exp
            )
    return {"rows": rows, "ok": all_ok, "structures": structures}


def report(data: dict | None = None) -> str:
    """Render the E2 table plus one sample structure per expansion."""
    data = data or run()
    table = format_table(
        ["u", "p", "h", "expansion", "D == analysis", "functional",
         "#vectors", "max summands"],
        data["rows"],
        title="E2: 1-D model expansions (Fig. 3, eqs. (3.8)-(3.9))",
    )
    lines = [table]
    shown = set()
    for (u, p, h, exp), alg in data["structures"].items():
        if exp in shown:
            continue
        shown.add(exp)
        lines.append(f"\nD_{exp} for (u={u}, p={p}, h={h}):")
        for vec in alg.dependences:
            lines.append(f"  {vec!r}")
    verdict = "ALL CHECKS PASS" if data["ok"] else "FAILURES PRESENT"
    lines.append(f"=> {verdict}")
    return "\n".join(lines)
