"""E4 -- Theorem 4.5 / Fig. 4 / eqs. (4.2)-(4.5): the time-optimal design.

Reproduces, per ``(u, p)``:

1. feasibility of ``T`` (eq. (4.2)) under all five conditions of
   Definition 4.1, with the long-wire primitives ``P`` of eq. (4.3);
2. the paper's literal ``K`` (eq. (4.3)) satisfies ``S·D = P·K`` and the
   arrival constraint (4.1) (with ``D`` in the paper's column order);
3. simulated execution time equals eq. (4.5): ``t = 3(u-1)+3(p-1)+1``;
4. processor count equals ``u²p²``;
5. the ``d̄₄`` slack (``Π d̄₄ = 2`` vs one hop) shows up as a buffered
   ``[1,0]ᵀ`` link, and the long wires have length ``p``;
6. time-optimality (Theorem 4.5): no linear schedule with coefficients up to
   a search bound beats ``Π = [1,1,1,2,1]``;
7. the simulated array computes ``X·Y`` bit-exactly.
"""

from __future__ import annotations

import random

from repro.expansion.theorem31 import matmul_bit_level
from repro.experiments.tables import format_table
from repro.machine.array import SystolicArray
from repro.machine.bitlevel import BitLevelMatmulMachine
from repro.mapping import check_feasibility, designs, execution_time, processor_count
from repro.mapping.schedule import certify_time_optimal
from repro.util.linalg import mat_mul

__all__ = ["run", "report", "paper_order_D"]


def paper_order_D(algorithm) -> list[list[int]]:
    """The dependence matrix ``D`` in the paper's (3.12) column order
    ``[y, x, z, x, y/c, z, c']`` (needed to verify the literal ``K``)."""
    by_vec = {v.vector: v for v in algorithm.dependences}
    order = [
        (1, 0, 0, 0, 0),
        (0, 1, 0, 0, 0),
        (0, 0, 1, 0, 0),
        (0, 0, 0, 1, 0),
        (0, 0, 0, 0, 1),
        (0, 0, 0, 1, -1),
        (0, 0, 0, 0, 2),
    ]
    cols = [by_vec[v].vector for v in order]
    return [[c[r] for c in cols] for r in range(5)]


def run(
    cases: tuple[tuple[int, int], ...] = ((2, 2), (3, 3), (4, 3)),
    optimality_bound: int = 2,
    seed: int = 4,
    backend: str | None = None,
) -> dict:
    """Run the full Fig. 4 validation for each ``(u, p)``.

    ``backend`` selects the simulator engine for the bit-exact execution
    check (``None``: the process default).
    """
    from repro.machine.simulator import resolve_backend

    rng = random.Random(seed)
    rows = []
    all_ok = True
    details = {}
    for u, p in cases:
        alg = matmul_bit_level(u, p, "II")
        binding = {"u": u, "p": p}
        t_mat = designs.fig4_mapping(p)
        prims = designs.fig4_primitives(p)

        rep = check_feasibility(t_mat, alg, binding, primitives=prims)

        # Literal K of eq. (4.3) against the paper-ordered D.
        d_paper = paper_order_D(alg)
        k_paper = designs.fig4_k_paper()
        sd = mat_mul(t_mat.space, d_paper)
        pk = mat_mul(prims, k_paper)
        hops = [sum(k_paper[j][i] for j in range(len(k_paper))) for i in range(7)]
        deadlines = [
            sum(t_mat.schedule[r] * d_paper[r][i] for r in range(5))
            for i in range(7)
        ]
        k_ok = sd == pk and all(h <= d for h, d in zip(hops, deadlines))

        t_sim = execution_time(t_mat.schedule, alg, binding)
        t_formula = designs.t_fig4(u, p)
        pe_count = processor_count(t_mat, alg.index_set, binding)
        pe_formula = designs.fig4_processor_count(u, p)

        array = SystolicArray(t_mat, alg, binding, rep.interconnect)
        long_wire = array.longest_wire
        buffers = array.buffer_count

        optimal, best = certify_time_optimal(
            t_mat, alg, binding, coeff_bound=optimality_bound
        )

        machine = BitLevelMatmulMachine(u, p, t_mat, "II", backend=backend)
        mask = (1 << (2 * p - 1)) - 1
        x = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
        y = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
        run_out = machine.run(x, y)
        ref = [
            [sum(x[i][k] * y[k][j] for k in range(u)) & mask for j in range(u)]
            for i in range(u)
        ]
        func_ok = run_out.product == ref and run_out.sim.makespan == t_formula

        ok = (
            rep.feasible
            and k_ok
            and t_sim == t_formula
            and pe_count == pe_formula
            and optimal
            and func_ok
        )
        all_ok = all_ok and ok
        rows.append(
            (u, p, rep.feasible, k_ok, t_sim, t_formula, pe_count,
             long_wire, buffers, optimal, func_ok)
        )
        details[(u, p)] = {
            "feasibility": rep,
            "array": array,
            "best_schedule": best,
            "run": run_out,
        }
    return {
        "rows": rows,
        "ok": all_ok,
        "details": details,
        "backend": resolve_backend(backend),
    }


def report(data: dict | None = None) -> str:
    """Render the E4 table."""
    data = data or run()
    table = format_table(
        ["u", "p", "feasible", "K(4.3) ok", "t sim", "t (4.5)", "PEs",
         "longest wire", "buffers", "time-optimal", "X·Y exact"],
        data["rows"],
        title="E4: Fig. 4 time-optimal bit-level design (eqs. (4.2)-(4.5))",
    )
    verdict = "ALL CHECKS PASS" if data["ok"] else "FAILURES PRESENT"
    return f"{table}\n=> {verdict}"
