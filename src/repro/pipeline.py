"""The end-to-end design pipeline of the paper, as one object.

The paper's introduction describes a three-step method: *expand* a
word-level algorithm to the bit level, *analyze* its dependences, and *map*
it onto a bit-level processor array.  :class:`BitLevelDesigner` packages
that method -- with the paper's shortcut (Theorem 3.1) in the analysis
step, optional machine-checking against general analysis, design-space
search in the mapping step, and a functional machine for the result:

>>> designer = BitLevelDesigner(h1=[0,1,0], h2=[1,0,0], h3=[0,0,1],
...                             lowers=[1,1,1], uppers=[4,4,4], p=4)
>>> designer.structure()              # Theorem 3.1, symbolic-capable
>>> designer.validate()               # vs general analysis (optional, slow)
>>> best = designer.design()          # search mappings, best first
>>> run = designer.build_machine(best.mapping).run(x_words, y_words)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.depanalysis.engine import AnalysisConfig
from repro.expansion.expansions import Expansion, get_expansion
from repro.expansion.theorem31 import bit_level_from_vectors
from repro.expansion.verify import VerificationReport, verify_theorem31
from repro.machine.model import BitLevelModelMachine
from repro.mapping.engine import DesignCandidate, SearchConfig, run_search
from repro.mapping.feasibility import FeasibilityReport, check_feasibility
from repro.mapping.interconnect import mesh_primitives, with_long_wires
from repro.mapping.transform import MappingMatrix
from repro.structures.algorithm import Algorithm

__all__ = ["BitLevelDesigner"]


@dataclass
class BitLevelDesigner:
    """Configure once; derive, validate, design, and build.

    Parameters mirror the word-level model (3.5): the three dependence
    vectors, the (concrete) index-set bounds, the word length, the
    arithmetic algorithm and the expansion.
    """

    h1: Sequence[int]
    h2: Sequence[int]
    h3: Sequence[int]
    lowers: Sequence[int]
    uppers: Sequence[int]
    p: int
    arithmetic: str = "add-shift"
    expansion: str | Expansion = "II"
    #: engine backend + persistent-cache policy for the analysis steps
    analysis: AnalysisConfig | None = None
    _structure: Algorithm | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.expansion = get_expansion(self.expansion)
        n = len(self.h1)
        if not (len(self.h2) == len(self.h3) == len(self.lowers)
                == len(self.uppers) == n):
            raise ValueError("model vectors and bounds must share a dimension")

    # -- step 1+2: expansion & dependence analysis (the fast way) ---------
    def structure(self) -> Algorithm:
        """The bit-level dependence structure, via Theorem 3.1 (cached)."""
        if self._structure is None:
            self._structure = bit_level_from_vectors(
                self.h1, self.h2, self.h3, self.lowers, self.uppers,
                self.p, self.expansion.key, self.arithmetic,
                config=self.analysis,
            )
        return self._structure

    @property
    def binding(self) -> dict[str, int]:
        """Parameter binding for the (concrete) instance."""
        return {"p": self.p}

    def validate(self, method: str = "enumerate") -> VerificationReport:
        """Machine-check the structure against general dependence analysis.

        Exponential in the instance size -- intended for small sanity sizes,
        exactly like the paper's own motivation says.
        """
        return verify_theorem31(
            list(self.h1), list(self.h2), list(self.h3),
            list(self.lowers), list(self.uppers),
            self.p, self.expansion.key, method=method,
            config=self.analysis,
        )

    # -- step 3: mapping ----------------------------------------------------
    def default_primitives(self) -> list[list[int]]:
        """Mesh + diagonal + length-``p`` wires (a Fig. 4-shaped target)."""
        return with_long_wires([[1, -1], [self.p, 0], [0, self.p]], 2)

    def design(
        self,
        primitives: Sequence[Sequence[int]] | None = None,
        target_space_dim: int = 2,
        schedule_bound: int = 2,
        max_candidates: int = 5,
        workers: int = 1,
    ) -> DesignCandidate:
        """Search the design space; return the best feasible design.

        Raises ``RuntimeError`` when nothing feasible is found within the
        search bounds (widen ``schedule_bound`` or the primitive set).
        """
        if primitives is None:
            primitives = self.default_primitives()
        config = SearchConfig(
            target_space_dim=target_space_dim,
            block_values=[self.p],
            schedule_bound=schedule_bound,
            max_candidates=max_candidates,
            workers=workers,
        )
        candidates = run_search(
            self.structure(), self.binding, primitives, config
        )
        if not candidates:
            raise RuntimeError(
                "no feasible design within the search bounds; widen "
                "schedule_bound or enrich the primitive set"
            )
        return candidates[0]

    def check(
        self,
        mapping: MappingMatrix,
        primitives: Sequence[Sequence[int]] | None = None,
    ) -> FeasibilityReport:
        """Check a user-supplied mapping against Definition 4.1."""
        if primitives is None:
            primitives = self.default_primitives()
        return check_feasibility(
            mapping, self.structure(), self.binding, primitives
        )

    # -- step 4: build ----------------------------------------------------------
    def build_machine(self, mapping: MappingMatrix) -> BitLevelModelMachine:
        """A functional bit-level machine for this model on ``mapping``."""
        return BitLevelModelMachine(
            self.h1, self.h2, self.h3, self.lowers, self.uppers,
            self.p, mapping, self.expansion.key,
        )
