"""Systolic-machine models: the simulation substrate.

The paper's architectures (Figs. 4 and 5) are VLSI arrays; we substitute a
functional, timing-faithful simulator implementing the paper's own machine
model -- the computation indexed by ``q̄`` fires at time ``Π q̄`` on
processor ``S q̄``, data moves one interconnection primitive per time unit,
early arrivals sit in link buffers:

* :mod:`repro.machine.pe` / :mod:`repro.machine.links` /
  :mod:`repro.machine.array` -- the structural model: processor elements,
  typed links with buffer stages, wire-length accounting, built from a
  mapping plus its interconnect solution;
* :mod:`repro.machine.simulator` -- the space-time executor: runs an
  algorithm's computations in schedule order with exact arrival checking
  and conflict detection;
* :mod:`repro.machine.bitlevel` -- the bit-level matrix-multiplication
  machine: executes the Expansion I/II matmul on a mapped array and checks
  the product bit-exactly;
* :mod:`repro.machine.wordlevel` -- the word-level baseline array [4] with
  pluggable sequential arithmetic (``t_b``).
"""

from repro.machine.array import SystolicArray
from repro.machine.bitlevel import BitLevelMatmulMachine
from repro.machine.io_schedule import input_schedule, output_schedule
from repro.machine.model import BitLevelModelMachine
from repro.machine.partition import PartitionedModelMachine
from repro.machine.simulator import (
    BACKENDS,
    SimulationResult,
    SpaceTimeSimulator,
    default_backend,
    resolve_backend,
)
from repro.machine.wordlevel import WordLevelMatmulMachine
from repro.machine.wordmodel import WordLevelModelMachine

__all__ = [
    "BACKENDS",
    "default_backend",
    "resolve_backend",
    "SystolicArray",
    "BitLevelMatmulMachine",
    "BitLevelModelMachine",
    "PartitionedModelMachine",
    "input_schedule",
    "output_schedule",
    "SimulationResult",
    "SpaceTimeSimulator",
    "WordLevelMatmulMachine",
    "WordLevelModelMachine",
]
