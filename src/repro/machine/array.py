"""Structural systolic-array model built from a mapping.

:class:`SystolicArray` materializes the geometry a mapping implies: the PE
set ``S(J)``, and one link per (PE, used primitive) pair, with buffer depths
taken from the interconnect solution.  From it, the wiring statistics the
paper discusses qualitatively become measurable: total wire length, longest
wire, buffer count (Fig. 4 needs length-``p`` wires and a buffered ``[1,0]ᵀ``
link; Fig. 5 is pure nearest-neighbour).
"""

from __future__ import annotations

from repro.machine.links import Link, wire_length
from repro.machine.pe import ProcessorElement
from repro.mapping.interconnect import InterconnectSolution
from repro.mapping.transform import MappingMatrix
from repro.structures.algorithm import Algorithm
from repro.structures.params import ParamBinding

__all__ = ["SystolicArray"]


class SystolicArray:
    """The PE grid and link fabric induced by a mapping on an algorithm."""

    def __init__(
        self,
        mapping: MappingMatrix,
        algorithm: Algorithm,
        binding: ParamBinding,
        interconnect: InterconnectSolution | None = None,
    ):
        self.mapping = mapping
        self.algorithm = algorithm
        self.binding = dict(binding)
        self.interconnect = interconnect

        #: position -> ProcessorElement
        self.pes: dict[tuple[int, ...], ProcessorElement] = {}
        for point in algorithm.index_set.points(binding):
            pos = mapping.processor_of(point)
            if pos not in self.pes:
                self.pes[pos] = ProcessorElement(pos)

        #: (src, primitive) -> Link, for primitives actually used
        self.links: dict[tuple[tuple[int, ...], tuple[int, ...]], Link] = {}
        if interconnect is not None:
            self._build_links()

    def _build_links(self) -> None:
        assert self.interconnect is not None
        p_matrix = self.interconnect.p_matrix
        k_matrix = self.interconnect.k_matrix
        r = len(k_matrix)
        m = len(k_matrix[0]) if r else 0
        dims = len(p_matrix)
        used = [
            j
            for j in range(r)
            if any(k_matrix[j][i] for i in range(m))
            and any(p_matrix[d][j] for d in range(dims))
        ]
        # Buffer depth per primitive: the largest slack of any dependence
        # routed (solely) over it.  This matches the paper's reading: the
        # [1,0]ᵀ primitive of Fig. 4 gets one buffer because d̄₄ arrives one
        # time unit early.
        buffer_for: dict[int, int] = {j: 0 for j in used}
        for i in range(m):
            hops_i = [(j, k_matrix[j][i]) for j in used if k_matrix[j][i]]
            if len(hops_i) == 1 and hops_i[0][1] == 1:
                j = hops_i[0][0]
                buffer_for[j] = max(buffer_for[j], self.interconnect.buffers[i])
        for pos in self.pes:
            for j in used:
                prim = tuple(p_matrix[d][j] for d in range(dims))
                dst = tuple(a + b for a, b in zip(pos, prim))
                if dst in self.pes:
                    self.links[(pos, prim)] = Link(
                        pos, dst, prim, buffers=buffer_for[j]
                    )

    # -- statistics ---------------------------------------------------------
    @property
    def processor_count(self) -> int:
        """``|S(J)|``."""
        return len(self.pes)

    @property
    def link_count(self) -> int:
        """Number of instantiated directed links."""
        return len(self.links)

    @property
    def longest_wire(self) -> int:
        """Chebyshev length of the longest instantiated wire."""
        return max((link.length for link in self.links.values()), default=0)

    @property
    def total_wire_length(self) -> int:
        """Sum of all link lengths (a proxy for wiring area)."""
        return sum(link.length for link in self.links.values())

    @property
    def buffer_count(self) -> int:
        """Total buffer stages across all links."""
        return sum(link.buffers for link in self.links.values())

    def extents(self) -> list[tuple[int, int]]:
        """Per-dimension (min, max) PE coordinates."""
        dims = len(next(iter(self.pes))) if self.pes else 0
        return [
            (min(p[d] for p in self.pes), max(p[d] for p in self.pes))
            for d in range(dims)
        ]

    def __repr__(self) -> str:
        return (
            f"SystolicArray({self.processor_count} PEs, {self.link_count} links, "
            f"longest wire {self.longest_wire})"
        )
