"""The vectorized wavefront execution backend.

The paper's machine model (Definition 4.1, condition 5) is a *wavefront*
machine: every index point with schedule time ``Π j̄ = t`` fires in the same
beat.  The pointwise backend of :mod:`repro.machine.simulator` interprets
that model one point at a time through a Python dict; this module executes
it the way the hardware would -- whole time slots at once:

* the full lattice is built as one integer block and pushed through the
  batch space-time transforms (:meth:`MappingMatrix.times_of` /
  :meth:`MappingMatrix.processors_of` -- two matmuls, not ``2N`` dot
  products);
* points are bucketed by schedule time once, and each slot fires as an
  array operation against dense, lattice-indexed value storage
  (:class:`DenseValueStore`);
* the machine-model checks are preserved as vectorized assertions:
  *conflicts* (condition 3) by uniqueness of ``(S j̄, Π j̄)`` over the whole
  run, *causality* (condition 1) by ``Π d̄ >= 1`` per realized read
  displacement plus a per-slot check on re-routed carries, *write-once* by
  a fired mask per slot;
* per-PE busy beats, busy-per-step, makespan and link traffic are derived
  from the same arrays, and :func:`repro.machine.simulator.
  emit_machine_metrics` emits them under exactly the names and values the
  pointwise backend produces.

Two execution surfaces exist:

* :func:`run_wavefront` with a *slot kernel* (:class:`MatmulSlotKernel`,
  :class:`WordMatmulSlotKernel`) -- fully vectorized; the shipped
  arithmetic machines provide kernels and this is where the order-of-
  magnitude speedups come from;
* :func:`run_wavefront` with only a generic per-point ``compute`` callable
  -- the compatibility shim: points still go through the batched
  transforms and fire in slot order, but the callable runs per point
  against the ordinary dict-backed :class:`ValueStore`.

NumPy is optional.  Without it the kernel path is skipped and the shim
(pure-Python batch transforms) keeps every caller working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro import obs
from repro.machine.pe import ProcessorElement
from repro.machine.simulator import (
    SimulationResult,
    ValueStore,
    emit_machine_metrics,
)
from repro.mapping.transform import MappingMatrix

try:  # pragma: no cover - both paths exercised by the test suite
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "HAVE_NUMPY",
    "DenseValueStore",
    "SlotCounters",
    "MatmulSlotKernel",
    "WordMatmulSlotKernel",
    "matmul_read_sites",
    "run_wavefront",
]

#: Whether the vectorized kernel path is available in this process.
HAVE_NUMPY = _np is not None


# ---------------------------------------------------------------------------
# Dense storage
# ---------------------------------------------------------------------------

class DenseValueStore:
    """Write-once space-time memory over dense lattice-indexed arrays.

    Drop-in for :class:`~repro.machine.simulator.ValueStore`: same
    ``get``/``put``/``add_pending``/``pop_pending``/``snapshot`` surface and
    the same ``reads``/``writes``/``causality_checks`` counters, but each
    variable is an ndarray indexed by (offset) lattice coordinates instead
    of a ``(var, point)`` dict.  Kernels attach their arrays with
    :meth:`attach`; scalar accesses outside the box (or to variables the
    kernel never materialized) fall through to a small dict overlay so the
    store stays value-complete.
    """

    def __init__(
        self,
        mapping: MappingMatrix,
        lowers: Sequence[int],
        uppers: Sequence[int],
    ):
        self._mapping = mapping
        self.lowers = tuple(int(x) for x in lowers)
        self.uppers = tuple(int(x) for x in uppers)
        self.shape = tuple(
            max(0, hi - lo + 1) for lo, hi in zip(self.lowers, self.uppers)
        )
        self._arrays: dict[str, object] = {}
        self._masks: dict[str, object] = {}
        self._extra: dict[tuple[str, tuple[int, ...]], int] = {}
        self._current_time: int | None = None
        self._reader_point: tuple[int, ...] | None = None
        self._registry = None
        self.reads = 0
        self.writes = 0
        self.causality_checks = 0

    # -- kernel surface ------------------------------------------------------
    def attach(self, var: str, array, mask) -> None:
        """Register ``var``'s dense value array and boolean presence mask
        (broadcastable to the box shape)."""
        self._arrays[var] = array
        self._masks[var] = mask

    def _index(self, point: Sequence[int]) -> tuple[int, ...] | None:
        """Zero-based array index of ``point``, or ``None`` outside the box."""
        pt = tuple(int(x) for x in point)
        if len(pt) != len(self.lowers):
            return None
        idx = []
        for x, lo, hi in zip(pt, self.lowers, self.uppers):
            if not lo <= x <= hi:
                return None
            idx.append(x - lo)
        return tuple(idx)

    # -- ValueStore surface --------------------------------------------------
    def time_of(self, point: tuple[int, ...]) -> int:
        """``Π j̄`` (delegated; kernels use the batched transform instead)."""
        return self._mapping.time_of(point)

    def processor_of(self, point: tuple[int, ...]) -> tuple[int, ...]:
        """``S j̄`` (delegated)."""
        return self._mapping.processor_of(point)

    def _set_context(self, time, point) -> None:
        self._current_time = time
        self._reader_point = tuple(point) if point is not None else None

    def _lookup(self, var: str, point: Sequence[int]):
        key = (var, tuple(int(x) for x in point))
        if key in self._extra:
            return self._extra[key]
        array = self._arrays.get(var)
        if array is None:
            return None
        idx = self._index(point)
        if idx is None or not bool(self._masks[var][idx]):
            return None
        return int(array[idx])

    def get(
        self, var: str, point: Sequence[int], default: int | None = None
    ) -> int:
        """Read ``var`` produced at ``point`` (same contract as
        :meth:`ValueStore.get`, including counter and causality/link
        bookkeeping for clocked reads)."""
        self.reads += 1
        value = self._lookup(var, point)
        if value is None:
            if default is None:
                raise KeyError(
                    f"no value for {(var, tuple(point))} and no boundary default"
                )
            return default
        if self._current_time is not None:
            self.causality_checks += 1
            produced_at = self.time_of(tuple(point))
            if produced_at >= self._current_time:
                raise AssertionError(
                    f"causality violation: {(var, tuple(point))} produced at "
                    f"t={produced_at}, read at t={self._current_time}"
                )
        reg = self._registry
        if reg is not None and self._reader_point is not None:
            src = self.processor_of(tuple(point))
            dst = self.processor_of(self._reader_point)
            if src == dst:
                reg.count("machine.link.local")
            else:
                delta = ",".join(str(b - a) for a, b in zip(src, dst))
                reg.count(f"machine.link.{delta}")
        return value

    def put(self, var: str, point: Sequence[int], value: int) -> None:
        """Scalar write (single assignment enforced against both the dense
        arrays and the overlay)."""
        key = (var, tuple(int(x) for x in point))
        if self._lookup(var, point) is not None:
            raise AssertionError(f"double write to {key}")
        self._extra[key] = int(value)
        self.writes += 1

    def add_pending(self, var: str, point: Sequence[int], value: int) -> None:
        """Accumulate into a pending overlay slot."""
        key = (var, tuple(int(x) for x in point))
        self._extra[key] = self._extra.get(key, 0) + int(value)
        self.writes += 1

    def pop_pending(self, var: str, point: Sequence[int]) -> int:
        """Consume a pending overlay slot (0 if nothing was routed there)."""
        return self._extra.pop((var, tuple(int(x) for x in point)), 0)

    def snapshot(self) -> dict[tuple[str, tuple[int, ...]], int]:
        """The full ``(var, point) -> value`` contents, as the pointwise
        store would hold them.  O(#values): intended for verification on
        moderate instances, not for the hot path."""
        out: dict[tuple[str, tuple[int, ...]], int] = {}
        for var, array in self._arrays.items():
            mask = self._masks[var]
            if _np is None:  # pragma: no cover - arrays imply numpy
                continue
            for idx in _np.argwhere(_np.broadcast_to(mask, self.shape)):
                pt = tuple(int(x + lo) for x, lo in zip(idx, self.lowers))
                out[(var, pt)] = int(array[tuple(idx)])
        out.update(self._extra)
        return out


# ---------------------------------------------------------------------------
# Counter accounting shared by the slot kernels
# ---------------------------------------------------------------------------

@dataclass
class SlotCounters:
    """Aggregate store/link bookkeeping a kernel hands back to the runner."""

    reads: int = 0
    writes: int = 0
    causality_checks: int = 0
    #: obs counter label -> increment (``machine.link.*``)
    links: dict[str, int] = field(default_factory=dict)

    def account_site(
        self,
        mapping: MappingMatrix,
        displacement: Sequence[int],
        reads_n: int,
        hits_n: int | None = None,
    ) -> None:
        """Fold one uniform read site into the totals.

        A *site* is a ``store.get`` call site whose producer is at a fixed
        displacement ``d̄`` from the reader; ``reads_n`` of them execute and
        ``hits_n`` find a produced value (the rest return the boundary
        default).  Performs the vectorized causality check -- every realized
        read at the site is legal iff ``Π d̄ >= 1`` -- and attributes link
        traffic ``S d̄`` exactly as the pointwise store does per access.
        """
        hits = reads_n if hits_n is None else hits_n
        self.reads += int(reads_n)
        if hits <= 0:
            return
        self.causality_checks += int(hits)
        step = mapping.time_of(displacement)
        if step < 1:
            raise AssertionError(
                f"causality violation: reads along displacement "
                f"{tuple(displacement)} have schedule step Π·d = {step} < 1 "
                f"under {mapping.name}"
            )
        delta = mapping.processor_of(displacement)
        if any(delta):
            label = "machine.link." + ",".join(str(x) for x in delta)
        else:
            label = "machine.link.local"
        self.links[label] = self.links.get(label, 0) + int(hits)


# ---------------------------------------------------------------------------
# The wavefront runner
# ---------------------------------------------------------------------------

def _box_lattice(lowers, uppers):
    """All lattice points of the box as one ``(N, n)`` int64 block, in
    lexicographic order (the order ``IndexSet.points`` enumerates)."""
    axes = [_np.arange(lo, hi + 1, dtype=_np.int64) for lo, hi in zip(lowers, uppers)]
    if any(len(ax) == 0 for ax in axes):
        return _np.zeros((0, len(axes)), dtype=_np.int64)
    grids = _np.meshgrid(*axes, indexing="ij")
    return _np.stack([g.reshape(-1) for g in grids], axis=1)


def _slot_slices(sorted_times):
    """``(start, end)`` index pairs of the equal-time runs."""
    cuts = _np.flatnonzero(_np.diff(sorted_times)) + 1
    starts = _np.concatenate([[0], cuts])
    ends = _np.concatenate([cuts, [len(sorted_times)]])
    return list(zip(starts.tolist(), ends.tolist()))


def _encode_columns(columns):
    """Mixed-radix encoding of integer columns into one int64 key array."""
    key = None
    for col in columns:
        lo = int(col.min())
        span = int(col.max()) - lo + 1
        shifted = col - lo
        key = shifted if key is None else key * span + shifted
    return key


def _check_conflicts(lattice, times, procs):
    """Condition 3, vectorized: ``(S j̄, Π j̄)`` must be unique across the
    run.  Raises the same ``ValueError`` the pointwise PE would."""
    columns = [procs[:, k] for k in range(procs.shape[1])] + [times]
    key = _encode_columns(columns)
    order = _np.argsort(key, kind="stable")
    sorted_key = key[order]
    dup = _np.flatnonzero(sorted_key[1:] == sorted_key[:-1])
    if len(dup) == 0:
        return
    # Report the earliest-scheduled collision, pointwise-style.
    pairs = order[dup], order[dup + 1]
    worst = int(_np.argmin(times[pairs[0]]))
    i, j = int(pairs[0][worst]), int(pairs[1][worst])
    pos = tuple(int(x) for x in procs[i])
    raise ValueError(
        f"conflict on PE {pos} at t={int(times[i])}: "
        f"{tuple(int(x) for x in lattice[i])} vs "
        f"{tuple(int(x) for x in lattice[j])}"
    )


def _group_counts(encoded, rows):
    """``{tuple(row): multiplicity}`` for the distinct rows of an encoded
    column set (used for per-PE busy counts)."""
    uniq, first, counts = _np.unique(
        encoded, return_index=True, return_counts=True
    )
    out = {}
    for idx, n in zip(first.tolist(), counts.tolist()):
        out[tuple(int(x) for x in rows[idx])] = int(n)
    return out


def _pes_materializer(lattice, times, procs):
    """Deferred construction of the ``{coords: ProcessorElement}`` map (the
    conflict check already ran, so firings can be bulk-inserted)."""

    def build() -> dict[tuple[int, ...], ProcessorElement]:
        pes: dict[tuple[int, ...], ProcessorElement] = {}
        for pos_row, t, pt in zip(
            procs.tolist(), times.tolist(), lattice.tolist()
        ):
            pos = tuple(pos_row)
            pe = pes.get(pos)
            if pe is None:
                pe = pes[pos] = ProcessorElement(pos)
            pe.firings[int(t)] = tuple(pt)
        return pes

    return build


def run_wavefront(sim, compute: Callable, kernel=None) -> SimulationResult:
    """Execute ``sim`` under the wavefront backend.

    With a ``kernel`` (and NumPy), runs the fully vectorized slot path;
    otherwise falls back to the compatibility shim, which batches the
    space-time transforms and fires ``compute`` per point in slot order.
    Either way the :class:`SimulationResult`, final store contents, and
    emitted ``machine.*`` metrics are identical to the pointwise backend's.
    """
    if kernel is not None and _np is not None:
        return _run_kernel(sim, kernel)
    return _run_generic(sim, compute)


def _run_kernel(sim, kernel) -> SimulationResult:
    reg = obs.get_registry()
    mapping = sim.mapping
    # Lazy: plan.py imports this module's helpers inside its builder, so
    # neither module needs the other at import time.
    from repro.compile.plan import plan_for

    with obs.span(
        "machine.simulate", mapping=mapping.name, backend="wavefront"
    ):
        plan = plan_for(mapping, kernel.lowers, kernel.uppers)
        lattice = plan.lattice
        n_points = plan.n_points
        times = plan.times

        store = DenseValueStore(mapping, kernel.lowers, kernel.uppers)
        store._registry = reg
        sim.store = store

        busy_per_step: dict[int, int] = {}
        pe_busy: dict[tuple[int, ...], int] = {}
        first, last = 0, -1
        if n_points:
            first = plan.first
            last = plan.last
            counters = kernel.execute(lattice, times, store, plan=plan)
            store.reads += counters.reads
            store.writes += counters.writes
            store.causality_checks += counters.causality_checks
            if reg is not None:
                for label in sorted(counters.links):
                    reg.count(label, counters.links[label])
            busy_per_step = plan.busy_per_step()
            pe_busy = plan.pe_busy()
            sim._pes_builder = _pes_materializer(lattice, times, plan.procs)
        result = SimulationResult(
            makespan=last - first + 1,
            first_time=first,
            last_time=last,
            computations=n_points,
            processor_count=len(pe_busy),
            busy_per_step=busy_per_step,
            store_reads=store.reads,
            store_writes=store.writes,
            pe_busy=pe_busy,
        )
    emit_machine_metrics(reg, result, store)
    return result


def _run_generic(
    sim, compute: Callable, label: str = "wavefront"
) -> SimulationResult:
    """The compatibility shim: batched transforms + slot-ordered per-point
    interpretation against the dict-backed :class:`ValueStore`.

    The batched times/processors and the slot bucketing are constants of
    (mapping, index-set bounds); they come from the memoized
    :func:`repro.compile.plan.generic_plan_for` so repeat runs of the same
    design skip straight to firing.  ``label`` names the backend in the
    obs span (the compiled backend reuses this shim when NumPy is absent).
    """
    reg = obs.get_registry()
    store: ValueStore = sim.store
    store._registry = reg
    from repro.compile.plan import generic_plan_for

    with obs.span(
        "machine.simulate", mapping=sim.mapping.name, backend=label
    ):
        plan = generic_plan_for(
            sim.mapping, sim.algorithm.index_set, sim.binding
        )
        points = plan.points
        tlist = plan.times
        store._time_cache.update(zip(points, tlist))
        store._proc_cache.update(zip(points, plan.procs))

        pes = sim.pes
        busy: dict[int, int] = {}
        for t, slot_points in plan.slots:
            for point in slot_points:
                pos = store.processor_of(point)
                pe = pes.get(pos)
                if pe is None:
                    pe = pes[pos] = ProcessorElement(pos)
                pe.fire(t, point)
                busy[t] = busy.get(t, 0) + 1
                store._set_context(t, point)
                compute(point, store)
        store._set_context(None, None)  # post-run reads: off the clock
        result = SimulationResult(
            makespan=(max(tlist) - min(tlist) + 1) if tlist else 0,
            first_time=min(tlist) if tlist else 0,
            last_time=max(tlist) if tlist else -1,
            computations=len(points),
            processor_count=len(pes),
            busy_per_step=busy,
            store_reads=store.reads,
            store_writes=store.writes,
            pe_busy={pos: pe.busy_cycles for pos, pe in pes.items()},
        )
    emit_machine_metrics(reg, result, store)
    return result


# ---------------------------------------------------------------------------
# The bit-level matmul slot kernel (add-shift compressor lattice)
# ---------------------------------------------------------------------------

def matmul_read_sites(u: int, p: int, exp1: bool, lattice):
    """The uniform read sites of the bit-level matmul lattice.

    Returns ``[(displacement, mask), ...]`` where ``mask`` selects the
    lattice points whose compute performs a ``store.get`` along that fixed
    displacement (every such read hits a produced value).  Shared by the
    wavefront slot kernel's counter accounting and by the design compiler,
    which bakes the same site census into its generated kernels.
    """
    j1, j2, j3 = lattice[:, 0], lattice[:, 1], lattice[:, 2]
    i1, i2 = lattice[:, 3], lattice[:, 4]
    sites = [
        ((0, 1, 0, 0, 0), (i1 == 1) & (j2 > 1)),  # x entry row, d̄ along j2
        ((0, 0, 0, 1, 0), i1 > 1),  # x pipelining d̄₄
        ((1, 0, 0, 0, 0), (i2 == 1) & (j1 > 1)),  # y entry column
        ((0, 0, 0, 0, 1), i2 > 1),  # y pipelining d̄₅
        ((0, 0, 0, 0, 1), i2 > 1),  # in-row carry
    ]
    if exp1:
        sites += [
            ((0, 0, 1, 0, 0), j3 > 1),  # position-wise z forwarding
            ((0, 0, 0, 1, -1), (j3 == u) & (i1 > 1) & (i2 < p)),
            ((0, 0, 0, 0, 2), (j3 == u) & (i2 > 2)),
        ]
    else:
        sites += [
            ((0, 0, 0, 1, -1), (i1 > 1) & (i2 < p)),  # δ̄₃ collapse
            ((0, 0, 1, 0, 0), ((i1 == p) | (i2 == 1)) & (j3 > 1)),
            ((0, 0, 0, 0, 2), (i1 == p) & (i2 > 2)),
        ]
    return sites


class MatmulSlotKernel:
    """Vectorized slot kernel for the bit-level matmul lattice.

    Implements exactly the per-point semantics of
    :meth:`repro.machine.bitlevel.BitLevelMatmulMachine.run`'s ``compute``
    -- the add-shift compressor lattice of Example 3.1 under Expansion I or
    II, including the boundary carry re-routing -- but consumes a whole
    time slot's point block per step.  The signed coefficient-splitting
    driver (:func:`repro.machine.signed.signed_matmul`) runs through this
    kernel unchanged, since splitting happens at the word level.

    ``state`` is the machine's ``{"dropped": .., "max_summands": ..}`` dict,
    updated in place as the pointwise compute would.
    """

    def __init__(
        self,
        u: int,
        p: int,
        expansion_key: str,
        x: Sequence[Sequence[int]],
        y: Sequence[Sequence[int]],
        state: dict,
    ):
        if _np is None:  # pragma: no cover - callers gate on HAVE_NUMPY
            raise RuntimeError("MatmulSlotKernel requires numpy")
        self.u = int(u)
        self.p = int(p)
        self.exp1 = expansion_key == "I"
        self.state = state
        self.lowers = (1, 1, 1, 1, 1)
        self.uppers = (u, u, u, p, p)
        shifts = _np.arange(p, dtype=_np.int64)
        # x bit i2 of X[j1, j3]; y bit i1 of Y[j3, j2].
        self._xbits = (
            (_np.asarray(x, dtype=_np.int64)[:, :, None] >> shifts) & 1
        ).astype(_np.int8)
        self._ybits = (
            (_np.asarray(y, dtype=_np.int64)[:, :, None] >> shifts) & 1
        ).astype(_np.int8)

    # -- counter model -------------------------------------------------------
    def _account(self, counters: SlotCounters, mapping, lattice) -> None:
        """Fold every read site into the counters (each site is a fixed
        displacement; all matmul-lattice reads hit a produced value)."""
        for displacement, mask in matmul_read_sites(
            self.u, self.p, self.exp1, lattice
        ):
            counters.account_site(mapping, displacement, int(mask.sum()))

    # -- execution -----------------------------------------------------------
    def execute(
        self, lattice, times, store: DenseValueStore, plan=None
    ) -> SlotCounters:
        np = _np
        u, p = self.u, self.p
        exp1 = self.exp1
        shape = (u, u, u, p, p)
        int8 = np.int8
        X = np.zeros(shape, int8)
        Y = np.zeros(shape, int8)
        S = np.zeros(shape, int8)
        C = np.zeros(shape, int8)
        C2 = np.zeros(shape, int8)
        NR = np.zeros(shape, int8)
        fired = np.zeros(shape, bool)

        always = np.broadcast_to(np.bool_(True), shape)
        i2_axis = np.arange(1, p + 1)
        store.attach("x", X, always)
        store.attach("y", Y, always)
        store.attach("s", S, always)
        store.attach("c", C, np.broadcast_to(i2_axis <= p - 1, shape))
        store.attach("c2", C2, np.broadcast_to(i2_axis <= p - 2, shape))

        counters = SlotCounters()
        self._account(counters, store._mapping, lattice)
        pi = [int(c) for c in store._mapping.schedule]
        max_summands = int(self.state.get("max_summands", 0))
        dropped = 0
        writes = 0

        if plan is not None:
            order, sorted_times, slices = plan.order, plan.sorted_times, plan.slices
        else:
            order = np.argsort(times, kind="stable")
            sorted_times = times[order]
            slices = _slot_slices(sorted_times)
        for start, end in slices:
            block = lattice[order[start:end]]
            t = int(sorted_times[start])
            j1, j2, j3 = block[:, 0], block[:, 1], block[:, 2]
            i1, i2 = block[:, 3], block[:, 4]
            a, b, c, d, e = j1 - 1, j2 - 1, j3 - 1, i1 - 1, i2 - 1

            if fired[a, b, c, d, e].any():
                raise AssertionError(
                    f"double write in slot t={t}: a lattice point fired twice"
                )
            fired[a, b, c, d, e] = True

            xb = self._xbits[a, c, e]
            yb = self._ybits[c, b, d]
            inputs = (xb & yb).astype(np.int64)
            m = i2 > 1  # in-row carry
            inputs[m] += C[a[m], b[m], c[m], d[m], e[m] - 1]
            inputs += NR[a, b, c, d, e]  # pending boundary re-routes
            NR[a, b, c, d, e] = 0
            if exp1:
                m = j3 > 1
                inputs[m] += S[a[m], b[m], c[m] - 1, d[m], e[m]]
                m = (j3 == u) & (i1 > 1) & (i2 < p)
                inputs[m] += S[a[m], b[m], c[m], d[m] - 1, e[m] + 1]
                m = (j3 == u) & (i2 > 2)
                inputs[m] += C2[a[m], b[m], c[m], d[m], e[m] - 2]
            else:
                m = (i1 > 1) & (i2 < p)
                inputs[m] += S[a[m], b[m], c[m], d[m] - 1, e[m] + 1]
                m = ((i1 == p) | (i2 == 1)) & (j3 > 1)
                inputs[m] += S[a[m], b[m], c[m] - 1, d[m], e[m]]
                m = (i1 == p) & (i2 > 2)
                inputs[m] += C2[a[m], b[m], c[m], d[m], e[m] - 2]

            overflow = inputs > 7
            if overflow.any():
                k = int(np.argmax(overflow))
                raise AssertionError(
                    f"compressor overflow at {tuple(int(v) for v in block[k])}:"
                    f" {int(inputs[k])}"
                )
            if len(inputs):
                max_summands = max(max_summands, int(inputs.max()))

            X[a, b, c, d, e] = xb
            Y[a, b, c, d, e] = yb
            S[a, b, c, d, e] = (inputs & 1).astype(int8)
            writes += 3 * len(block)
            for offset, target, bits in (
                (1, C, (inputs >> 1) & 1),
                (2, C2, (inputs >> 2) & 1),
            ):
                keep = i2 + offset <= p
                target[a[keep], b[keep], c[keep], d[keep], e[keep]] = (
                    bits[keep].astype(int8)
                )
                writes += int(keep.sum())
                rr = (~keep) & (bits == 1)
                if not rr.any():
                    continue
                pos = i1[rr] + i2[rr] - 1 + offset
                ok = pos <= 2 * p - 1
                dropped += int((~ok).sum())
                if not ok.any():
                    continue
                ra, rb, rc = a[rr][ok], b[rr][ok], c[rr][ok]
                rd = pos[ok] - p  # target row i1' = pos - p + 1, zero-based
                target_time = (
                    pi[0] * (ra + 1) + pi[1] * (rb + 1) + pi[2] * (rc + 1)
                    + pi[3] * (rd + 1) + pi[4] * p
                )
                if not (target_time > t).all():
                    raise AssertionError(
                        f"causality violation: boundary carry re-routed from "
                        f"slot t={t} into a slot <= t under "
                        f"{store._mapping.name}"
                    )
                np.add.at(
                    NR, (ra, rb, rc, rd, np.full(len(ra), p - 1)), int8(1)
                )
                writes += int(ok.sum())

        if NR.any():  # every pending slot must have been consumed
            raise AssertionError("unconsumed re-routed carries at end of run")
        counters.writes += writes
        self.state["dropped"] = self.state.get("dropped", 0) + dropped
        self.state["max_summands"] = max_summands
        return counters


# ---------------------------------------------------------------------------
# The word-level matmul slot kernel (sequential arithmetic, batched)
# ---------------------------------------------------------------------------

class WordMatmulSlotKernel:
    """Vectorized slot kernel for the word-level baseline array.

    Mirrors :meth:`repro.machine.wordlevel.WordLevelMatmulMachine.run`'s
    per-point compute; products come from the sequential multiplier's
    batched ``multiply_block`` (add-shift or carry-save), so the arithmetic
    algorithm under test still computes every product bit.
    """

    def __init__(self, u: int, multiplier, x, y):
        if _np is None:  # pragma: no cover - callers gate on HAVE_NUMPY
            raise RuntimeError("WordMatmulSlotKernel requires numpy")
        self.u = int(u)
        self.multiplier = multiplier
        self.lowers = (1, 1, 1)
        self.uppers = (u, u, u)
        self._x = _np.asarray(x, dtype=_np.int64)
        self._y = _np.asarray(y, dtype=_np.int64)

    def execute(
        self, lattice, times, store: DenseValueStore, plan=None
    ) -> SlotCounters:
        np = _np
        u = self.u
        shape = (u, u, u)
        X = np.zeros(shape, np.int64)
        Y = np.zeros(shape, np.int64)
        Z = np.zeros(shape, np.int64)
        fired = np.zeros(shape, bool)
        always = np.broadcast_to(np.bool_(True), shape)
        for var, array in (("x", X), ("y", Y), ("z", Z)):
            store.attach(var, array, always)

        counters = SlotCounters()
        mapping = store._mapping
        j1, j2, j3 = lattice[:, 0], lattice[:, 1], lattice[:, 2]
        counters.account_site(mapping, (0, 1, 0), int((j2 > 1).sum()))
        counters.account_site(mapping, (1, 0, 0), int((j1 > 1).sum()))
        counters.account_site(
            mapping, (0, 0, 1), len(lattice), int((j3 > 1).sum())
        )
        writes = 0

        if plan is not None:
            order, sorted_times, slices = plan.order, plan.sorted_times, plan.slices
        else:
            order = np.argsort(times, kind="stable")
            sorted_times = times[order]
            slices = _slot_slices(sorted_times)
        for start, end in slices:
            block = lattice[order[start:end]]
            t = int(sorted_times[start])
            a, b, c = block[:, 0] - 1, block[:, 1] - 1, block[:, 2] - 1
            if fired[a, b, c].any():
                raise AssertionError(
                    f"double write in slot t={t}: a lattice point fired twice"
                )
            fired[a, b, c] = True
            xv = np.empty(len(block), np.int64)
            entry = b == 0
            xv[entry] = self._x[a[entry], c[entry]]
            xv[~entry] = X[a[~entry], b[~entry] - 1, c[~entry]]
            yv = np.empty(len(block), np.int64)
            entry = a == 0
            yv[entry] = self._y[c[entry], b[entry]]
            yv[~entry] = Y[a[~entry] - 1, b[~entry], c[~entry]]
            zv = np.zeros(len(block), np.int64)
            m = c > 0
            zv[m] = Z[a[m], b[m], c[m] - 1]
            X[a, b, c] = xv
            Y[a, b, c] = yv
            Z[a, b, c] = zv + self.multiplier.multiply_block(xv, yv)
            writes += 3 * len(block)

        counters.writes += writes
        return counters
