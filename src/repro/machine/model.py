"""Bit-level execution of arbitrary model-(3.5) algorithms on mapped arrays.

:class:`BitLevelModelMachine` generalizes the matrix-multiplication machine
to any word-level algorithm of the form (3.5)::

    x(j̄) = x(j̄ - h̄₁);  y(j̄) = y(j̄ - h̄₂);
    z(j̄) = z(j̄ - h̄₃) + x(j̄) · y(j̄)

over an arbitrary ``n``-dimensional box, under either expansion, on any
feasible mapping of the ``(n+2)``-dimensional bit-level structure.  This is
what lets the convolution / matrix-vector designs produced by the search in
:mod:`repro.mapping.lowerdim` be *executed*, not just scheduled.

Word operand values are supplied as dictionaries over the word index set;
the machine checks they respect the pipelining recurrences (``x(j̄)`` must
equal ``x(j̄-h̄₁)`` whenever both are inside ``J_w``), then runs every bit
through the space-time executor with full conflict/causality checking, and
returns the accumulated ``z`` words at the ends of the ``h̄₃`` chains --
verified reproducible against the word-level recurrence mod ``2^{2p-1}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.arith.bitops import to_bits
from repro.expansion.expansions import Expansion, get_expansion
from repro.expansion.theorem31 import bit_level_from_vectors
from repro.machine.simulator import SimulationResult, SpaceTimeSimulator, ValueStore
from repro.mapping.transform import MappingMatrix
from repro.structures.indexset import IndexSet

__all__ = ["BitLevelModelMachine", "ModelRun"]

Point = tuple[int, ...]


@dataclass
class ModelRun:
    """Result of one generic bit-level model execution."""

    #: z word at every word index point (mod 2^{2p-1})
    z_words: dict[Point, int]
    #: z words at the ends of the accumulation chains (j̄ + h̄₃ outside J_w)
    outputs: dict[Point, int]
    sim: SimulationResult
    dropped_bits: int
    max_summands: int


class BitLevelModelMachine:
    """Execute a model-(3.5) instance bit by bit on a mapped array."""

    def __init__(
        self,
        h1: Sequence[int],
        h2: Sequence[int],
        h3: Sequence[int],
        lowers: Sequence[int],
        uppers: Sequence[int],
        p: int,
        mapping: MappingMatrix,
        expansion: str | Expansion = "II",
        backend: str | None = None,
    ):
        self.n = len(h1)
        if not (len(h2) == len(h3) == len(lowers) == len(uppers) == self.n):
            raise ValueError("h̄ vectors and bounds must share one dimension")
        if not any(h3):
            raise ValueError("h̄₃ must be nonzero (z must accumulate)")
        self.backend = backend
        self.h1 = tuple(int(x) for x in h1)
        self.h2 = tuple(int(x) for x in h2)
        self.h3 = tuple(int(x) for x in h3)
        self.p = int(p)
        self.mapping = mapping
        self.expansion = get_expansion(expansion)
        self.algorithm = bit_level_from_vectors(
            h1, h2, h3, lowers, uppers, p, self.expansion.key
        )
        self.word_set = IndexSet(list(lowers), list(uppers))
        self.binding: dict[str, int] = {}

    # -- operand validation ----------------------------------------------------
    def _check_pipelining(
        self, words: Mapping[Point, int], h: tuple[int, ...], name: str
    ) -> None:
        for j in self.word_set.points({}):
            if j not in words:
                raise ValueError(f"{name} word missing at {j}")
            if not (0 <= words[j] < (1 << self.p)):
                raise ValueError(f"{name}[{j}] exceeds the word length")
            src = tuple(a - b for a, b in zip(j, h))
            if self.word_set.contains(src, {}) and words[src] != words[j]:
                raise ValueError(
                    f"{name} violates its pipelining recurrence at {j}: "
                    f"{name}(j̄) = {words[j]} but {name}(j̄-h̄) = {words[src]}"
                )

    def _is_chain_final(self, j: Point) -> bool:
        nxt = tuple(a + b for a, b in zip(j, self.h3))
        return not self.word_set.contains(nxt, {})

    # -- execution ----------------------------------------------------------------
    def run(
        self,
        x_words: Mapping[Point, int],
        y_words: Mapping[Point, int],
        z_init: Mapping[Point, int] | None = None,
    ) -> ModelRun:
        """Run the machine.

        Parameters
        ----------
        x_words, y_words:
            Word values per word index point (validated against the
            pipelining recurrences).
        z_init:
            Initial accumulator words, keyed by the *first* point of each
            ``h̄₃`` chain (those with ``j̄ - h̄₃`` outside ``J_w``); absent
            entries default to 0.
        """
        self._check_pipelining(x_words, self.h1, "x")
        self._check_pipelining(y_words, self.h2, "y")
        z_init = dict(z_init or {})
        p, n = self.p, self.n
        mask = (1 << (2 * p - 1)) - 1
        exp1 = self.expansion.key == "I"
        state = {"dropped": 0, "max_summands": 0}

        x_bits = {j: to_bits(x_words[j], p) for j in self.word_set.points({})}
        y_bits = {j: to_bits(y_words[j], p) for j in self.word_set.points({})}
        z_init_bits = {
            j: to_bits(v & mask, 2 * p - 1) for j, v in z_init.items()
        }

        def split(q: Point) -> tuple[Point, int, int]:
            return q[:n], q[n], q[n + 1]

        def word_shift(j: Point, h: tuple[int, ...]) -> Point:
            return tuple(a - b for a, b in zip(j, h))

        def z_boundary_bit(j: Point, w: int) -> int:
            """Initial z bit of weight position w for a chain starting at j."""
            bits = z_init_bits.get(j)
            return bits[w - 1] if bits else 0

        def compute(q: Point, store: ValueStore) -> None:
            j, i1, i2 = split(q)

            # x bit (index i2 of the multiplicand word).
            if i1 == 1:
                src_j = word_shift(j, self.h1)
                if self.word_set.contains(src_j, {}):
                    xb = store.get("x", (*src_j, 1, i2))
                else:
                    xb = x_bits[j][i2 - 1]
            else:
                xb = store.get("x", (*j, i1 - 1, i2))
            store.put("x", q, xb)

            # y bit (index i1 of the multiplier word).
            if i2 == 1:
                src_j = word_shift(j, self.h2)
                if self.word_set.contains(src_j, {}):
                    yb = store.get("y", (*src_j, i1, 1))
                else:
                    yb = y_bits[j][i1 - 1]
            else:
                yb = store.get("y", (*j, i1, i2 - 1))
            store.put("y", q, yb)

            inputs = xb & yb
            if i2 > 1:
                inputs += store.get("c", (*j, i1, i2 - 1), 0)
            inputs += store.pop_pending("nr", q)

            prev_j = word_shift(j, self.h3)
            prev_inside = self.word_set.contains(prev_j, {})
            on_boundary = i1 == p or i2 == 1
            w = i1 + i2 - 1

            if exp1:
                # Position-wise z forwarding at every point.  A chain-start
                # iteration instead decomposes the initial word over the
                # lattice: bit of weight position w enters at its boundary
                # owner point only ((w, 1), or (p, w-p+1) for the high half).
                if prev_inside:
                    inputs += store.get("s", (*prev_j, i1, i2))
                else:
                    owner = (w, 1) if w <= p else (p, w - p + 1)
                    if (i1, i2) == owner:
                        inputs += z_boundary_bit(j, w)
                if self._is_chain_final(j):
                    if i1 > 1 and i2 < p:
                        inputs += store.get("s", (*j, i1 - 1, i2 + 1), 0)
                    if i2 > 2:
                        inputs += store.get("c2", (*j, i1, i2 - 2), 0)
            else:
                if i1 > 1 and i2 < p:
                    inputs += store.get("s", (*j, i1 - 1, i2 + 1), 0)
                if on_boundary:
                    if prev_inside:
                        inputs += store.get("s", (*prev_j, i1, i2))
                    else:
                        inputs += z_boundary_bit(j, w)
                if i1 == p and i2 > 2:
                    inputs += store.get("c2", (*j, i1, i2 - 2), 0)

            if inputs > 7:
                raise AssertionError(f"compressor overflow at {q}: {inputs}")
            state["max_summands"] = max(state["max_summands"], inputs)
            store.put("s", q, inputs & 1)
            self._route(store, q, 1, (inputs >> 1) & 1, state, "c")
            self._route(store, q, 2, (inputs >> 2) & 1, state, "c2")

        # Generic model lattices run the wavefront backend through its
        # compatibility shim (batched transforms, slot-ordered firing).
        sim = SpaceTimeSimulator(
            self.mapping, self.algorithm, self.binding, backend=self.backend
        )
        result = sim.run(compute)

        # Extract z words.  Under Expansion I, non-final iterations hold a
        # position-wise redundant state; words are extracted at chain-final
        # iterations only.  Under Expansion II, every iteration has a
        # complete word at its boundary.
        z_words: dict[Point, int] = {}
        outputs: dict[Point, int] = {}
        for j in self.word_set.points({}):
            final = self._is_chain_final(j)
            if exp1 and not final:
                continue
            value = 0
            for wpos in range(1, p + 1):
                value |= sim.store.get("s", (*j, wpos, 1)) << (wpos - 1)
            for k in range(2, p + 1):
                value |= sim.store.get("s", (*j, p, k)) << (p + k - 2)
            z_words[j] = value
            if final:
                outputs[j] = value
        return ModelRun(
            z_words=z_words,
            outputs=outputs,
            sim=result,
            dropped_bits=state["dropped"],
            max_summands=state["max_summands"],
        )

    # -- carry routing (same weight discipline as the matmul machine) -----
    def _route(
        self,
        store: ValueStore,
        q: Point,
        offset: int,
        bit: int,
        state: dict,
        var: str,
    ) -> None:
        j, i1, i2 = q[: self.n], q[self.n], q[self.n + 1]
        p = self.p
        if not bit:
            if i2 + offset <= p:
                store.put(var, q, 0)
            return
        if i2 + offset <= p:
            store.put(var, q, 1)
            return
        pos = (i1 + i2 - 1) + offset
        if pos <= 2 * p - 1:
            store.add_pending("nr", (*j, pos - p + 1, p), 1)
        else:
            state["dropped"] += 1

    # -- reference semantics (for verification) ---------------------------
    def reference(
        self,
        x_words: Mapping[Point, int],
        y_words: Mapping[Point, int],
        z_init: Mapping[Point, int] | None = None,
    ) -> dict[Point, int]:
        """The word-level recurrence evaluated directly, mod ``2^{2p-1}``."""
        z_init = dict(z_init or {})
        mask = (1 << (2 * self.p - 1)) - 1
        z: dict[Point, int] = {}
        for j in self.word_set.points({}):  # lexicographic: sources first
            prev = tuple(a - b for a, b in zip(j, self.h3))
            acc = z[prev] if self.word_set.contains(prev, {}) else z_init.get(j, 0)
            z[j] = (acc + x_words[j] * y_words[j]) & mask
        return {j: v for j, v in z.items() if self._is_chain_final(j)}
