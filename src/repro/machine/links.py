"""Interconnection links.

A :class:`Link` instantiates one interconnection primitive between two PE
positions, with an optional chain of buffer stages (the slack
``Π d̄ - Σ k`` of condition (4.1)).  Wire length is the Chebyshev length of
the primitive vector -- the paper's "long wires" ``[p, 0]ᵀ`` have length
``p`` while mesh links have length 1, which is the cost the Fig. 4 / Fig. 5
trade-off is about.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["Link", "wire_length"]


def wire_length(primitive: Sequence[int]) -> int:
    """Chebyshev (max-coordinate) length of a primitive displacement."""
    return max((abs(int(x)) for x in primitive), default=0)


class Link:
    """A directed link realizing one primitive between two PEs."""

    __slots__ = ("src", "dst", "primitive", "buffers", "transfers")

    def __init__(
        self,
        src: Sequence[int],
        dst: Sequence[int],
        primitive: Sequence[int],
        buffers: int = 0,
    ):
        self.src = tuple(int(x) for x in src)
        self.dst = tuple(int(x) for x in dst)
        self.primitive = tuple(int(x) for x in primitive)
        if tuple(d - s for s, d in zip(self.src, self.dst)) != self.primitive:
            raise ValueError(
                f"link endpoints {self.src}->{self.dst} do not match "
                f"primitive {self.primitive}"
            )
        self.buffers = int(buffers)
        #: number of data transfers carried (set by simulation)
        self.transfers = 0

    @property
    def length(self) -> int:
        """Physical wire length (Chebyshev norm of the primitive)."""
        return wire_length(self.primitive)

    @property
    def latency(self) -> int:
        """Time units from source to destination: one hop plus buffers."""
        return 1 + self.buffers

    def __repr__(self) -> str:
        buf = f" +{self.buffers}buf" if self.buffers else ""
        return f"Link{self.src}->{self.dst} via {self.primitive}{buf}"
