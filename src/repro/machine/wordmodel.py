"""Word-level execution of arbitrary model-(3.5) algorithms.

The word-level counterpart of :class:`repro.machine.model.
BitLevelModelMachine`: runs the recurrence

    ``z(j̄) = z(j̄ - h̄₃) + x(j̄) · y(j̄)``

on a word-level systolic array (one multiply-accumulate per beat, performed
by a *sequential* arithmetic unit costing ``t_b`` cycles), under any
feasible word-level mapping.  Together the two machines measure the paper's
speedup claim for any workload the model covers, not just matmul.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.arith.sequential import SequentialAddShift, SequentialCarrySave
from repro.ir.builders import word_model_structure
from repro.machine.simulator import SimulationResult, SpaceTimeSimulator, ValueStore
from repro.mapping.transform import MappingMatrix
from repro.structures.indexset import IndexSet

__all__ = ["WordLevelModelMachine", "WordModelRun"]

Point = tuple[int, ...]


@dataclass
class WordModelRun:
    """Result of one word-level model execution."""

    z_words: dict[Point, int]
    outputs: dict[Point, int]
    sim: SimulationResult
    word_beats: int
    cycles_per_beat: int
    total_cycles: int


class WordLevelModelMachine:
    """Run a model-(3.5) instance word by word on a mapped array."""

    def __init__(
        self,
        h1: Sequence[int],
        h2: Sequence[int],
        h3: Sequence[int],
        lowers: Sequence[int],
        uppers: Sequence[int],
        p: int,
        mapping: MappingMatrix,
        arithmetic: str = "add-shift",
        backend: str | None = None,
    ):
        self.backend = backend
        self.n = len(h1)
        if not (len(h2) == len(h3) == len(lowers) == len(uppers) == self.n):
            raise ValueError("h̄ vectors and bounds must share one dimension")
        self.h1 = tuple(int(x) for x in h1)
        self.h2 = tuple(int(x) for x in h2)
        self.h3 = tuple(int(x) for x in h3)
        self.p = int(p)
        self.mapping = mapping
        if arithmetic == "add-shift":
            self.multiplier = SequentialAddShift(p)
        elif arithmetic == "carry-save":
            self.multiplier = SequentialCarrySave(p)
        else:
            raise ValueError(f"unknown arithmetic {arithmetic!r}")
        self.algorithm = word_model_structure(h1, h2, h3, lowers, uppers)
        self.word_set = IndexSet(list(lowers), list(uppers))

    def _is_chain_final(self, j: Point) -> bool:
        nxt = tuple(a + b for a, b in zip(j, self.h3))
        return not self.word_set.contains(nxt, {})

    def run(
        self,
        x_words: Mapping[Point, int],
        y_words: Mapping[Point, int],
        z_init: Mapping[Point, int] | None = None,
    ) -> WordModelRun:
        """Execute; words pipeline along ``h̄₁``/``h̄₂`` through the store."""
        z_init = dict(z_init or {})

        def compute(q: Point, store: ValueStore) -> None:
            src_x = tuple(a - b for a, b in zip(q, self.h1))
            if self.word_set.contains(src_x, {}):
                xv = store.get("x", src_x)
            else:
                xv = x_words[q]
            store.put("x", q, xv)

            src_y = tuple(a - b for a, b in zip(q, self.h2))
            if self.word_set.contains(src_y, {}):
                yv = store.get("y", src_y)
            else:
                yv = y_words[q]
            store.put("y", q, yv)

            src_z = tuple(a - b for a, b in zip(q, self.h3))
            if self.word_set.contains(src_z, {}):
                acc = store.get("z", src_z)
            else:
                acc = z_init.get(q, 0)
            store.put("z", q, acc + self.multiplier.multiply(xv, yv))

        sim = SpaceTimeSimulator(
            self.mapping, self.algorithm, {}, backend=self.backend
        )
        result = sim.run(compute)
        z_words = {
            j: sim.store.get("z", j) for j in self.word_set.points({})
        }
        outputs = {
            j: v for j, v in z_words.items() if self._is_chain_final(j)
        }
        t_b = self.multiplier.cycles
        return WordModelRun(
            z_words=z_words,
            outputs=outputs,
            sim=result,
            word_beats=result.makespan,
            cycles_per_beat=t_b,
            total_cycles=result.makespan * t_b,
        )
