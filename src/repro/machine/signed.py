"""Signed workloads on the unsigned bit-level machines.

The bit-level machines operate on nonnegative ``p``-bit words (like the
paper's add-shift lattice).  Signal-processing workloads -- the paper names
convolution, DCT and DFT -- have *signed* coefficient matrices.  The
classical system-level answer, implemented here, is coefficient splitting:

.. math::  C = C^+ - C^-,\\qquad  C^\\pm \\ge 0, \\qquad
           C \\cdot S = C^+ \\cdot S - C^- \\cdot S

Each half runs on the unmodified unsigned array; the subtraction happens at
the word level on the outputs.  Splitting preserves every pipelining
recurrence (it is pointwise on equal values), so nothing in the dependence
structure or the mapping changes.  For bit-level *signed* arithmetic inside
a single lattice see :mod:`repro.arith.baughwooley`.
"""

from __future__ import annotations

from typing import Callable, Sequence

__all__ = ["split_signed", "signed_matmul"]

Matrix = Sequence[Sequence[int]]


def split_signed(values: Matrix) -> tuple[list[list[int]], list[list[int]]]:
    """Split a signed integer matrix into nonnegative ``(plus, minus)``
    parts with ``values = plus - minus``."""
    plus = [[max(v, 0) for v in row] for row in values]
    minus = [[max(-v, 0) for v in row] for row in values]
    return plus, minus


def signed_matmul(
    run_unsigned: Callable[[Matrix, Matrix], list[list[int]]],
    x_signed: Matrix,
    y: Matrix,
    modulus: int | None = None,
) -> list[list[int]]:
    """Compute ``X·Y`` for signed ``X`` using an unsigned matmul runner.

    Parameters
    ----------
    run_unsigned:
        ``(X, Y) -> Z`` on nonnegative operands (e.g. a bound
        ``BitLevelMatmulMachine(...).run(...).product`` accessor).
    x_signed:
        Signed multiplicand matrix.
    y:
        Nonnegative multiplier matrix.
    modulus:
        When the runner computes mod ``m`` (the bit-level machines use
        ``m = 2^{2p-1}``), pass it so the signed difference can be
        recentred into ``[-m/2, m/2)``; results are then exact whenever
        the true values fit that range.
    """
    plus, minus = split_signed(x_signed)
    z_plus = run_unsigned(plus, y)
    z_minus = run_unsigned(minus, y)
    rows = len(z_plus)
    cols = len(z_plus[0]) if rows else 0
    out = [[z_plus[i][j] - z_minus[i][j] for j in range(cols)] for i in range(rows)]
    if modulus is not None:
        half = modulus // 2
        out = [
            [((v + half) % modulus) - half for v in row]
            for row in out
        ]
    return out
