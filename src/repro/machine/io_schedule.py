"""Array I/O schedules: when and where boundary data enters and leaves.

Figs. 4 and 5 of the paper draw the input streams ``x_{ij}^k`` / ``y_{ij}^k``
staggered in space and time -- the *data skew* a host must apply when
feeding the array.  That schedule is fully determined by the mapping: a
computation at ``q̄`` whose dependence source ``q̄ - d̄`` falls outside the
index set reads a boundary input, which must be presented to processor
``S q̄`` at time ``Π q̄`` on the link realizing ``d̄``; symmetrically, a
value never consumed inside ``J`` is an output.

:func:`input_schedule` and :func:`output_schedule` compute those event
tables exactly, and :func:`render_io` prints them in stream order -- the
textual equivalent of the figures' staggered arrows.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.mapping.transform import MappingMatrix
from repro.structures.algorithm import Algorithm
from repro.structures.params import ParamBinding

__all__ = ["IOEvent", "input_schedule", "output_schedule", "render_io"]


@dataclass(frozen=True)
class IOEvent:
    """One boundary transfer: a datum crossing the array edge."""

    time: int
    processor: tuple[int, ...]
    variable: str
    #: the index point whose computation consumes (input) / produces (output)
    point: tuple[int, ...]
    #: the dependence vector involved
    vector: tuple[int, ...]


def input_schedule(
    algorithm: Algorithm,
    mapping: MappingMatrix,
    binding: ParamBinding,
) -> list[IOEvent]:
    """All boundary *inputs*: valid dependences whose source is outside ``J``.

    Sorted by time, then processor -- the order a host feeder would follow.
    """
    events = []
    index_set = algorithm.index_set
    for point in index_set.points(binding):
        for vec in algorithm.dependences.valid_vectors_at(point, binding):
            src = tuple(a - b for a, b in zip(point, vec.vector))
            if index_set.contains(src, binding):
                continue
            events.append(
                IOEvent(
                    time=mapping.time_of(point),
                    processor=mapping.processor_of(point),
                    variable=",".join(vec.causes) or "?",
                    point=point,
                    vector=vec.vector,
                )
            )
    events.sort(key=lambda e: (e.time, e.processor, e.variable))
    return events


def output_schedule(
    algorithm: Algorithm,
    mapping: MappingMatrix,
    binding: ParamBinding,
) -> list[IOEvent]:
    """All boundary *outputs*: points none of whose valid dependence
    consumers lie inside ``J`` for a given variable.

    For each dependence vector ``d̄`` caused by variable ``v``, the value
    ``v`` produced at ``q̄`` is consumed at ``q̄ + d̄``; when every such
    consumer is outside ``J``, the value leaves the array (e.g. the final
    ``z`` bits at the accumulation-chain ends).
    """
    index_set = algorithm.index_set
    # For each cause, the vectors transporting it.
    by_cause: dict[str, list] = defaultdict(list)
    for vec in algorithm.dependences:
        for cause in vec.causes:
            by_cause[cause].append(vec)
    events = []
    for point in index_set.points(binding):
        for cause, vectors in by_cause.items():
            consumed_inside = False
            any_consumer = False
            for vec in vectors:
                dst = tuple(a + b for a, b in zip(point, vec.vector))
                if not index_set.contains(dst, binding):
                    continue
                if vec.valid_at(dst, binding):
                    consumed_inside = True
                    break
                any_consumer = True
            if not consumed_inside:
                events.append(
                    IOEvent(
                        time=mapping.time_of(point),
                        processor=mapping.processor_of(point),
                        variable=cause,
                        point=point,
                        vector=(),
                    )
                )
    events.sort(key=lambda e: (e.time, e.processor, e.variable))
    return events


def render_io(events: list[IOEvent], max_rows: int = 30) -> str:
    """Tabulate I/O events (the text form of the figures' staggered arrows)."""
    if not events:
        return "(no boundary events)"
    lines = [f"{'t':>5}  {'PE':<12} {'var':<6} point"]
    for e in events[:max_rows]:
        lines.append(
            f"{e.time:>5}  {str(list(e.processor)):<12} {e.variable:<6} "
            f"{list(e.point)}"
        )
    if len(events) > max_rows:
        lines.append(f"... ({len(events) - max_rows} more events)")
    return "\n".join(lines)
