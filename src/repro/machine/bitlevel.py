"""The bit-level matrix-multiplication machine.

Executes the bit-level matmul algorithm (Example 3.1) on a mapped systolic
array via the space-time executor, bit-exactly.  Per index point
``q̄ = (j1, j2, j3, i1, i2)``:

* ``x`` bits enter the lattice on the ``i1 = 1`` row (bit ``i2`` of
  ``X[j1, j3]``, pipelined along ``j2``) and move along ``i1`` elsewhere
  (``d̄₄``);
* ``y`` bits enter on the ``i2 = 1`` column (bit ``i1`` of ``Y[j3, j2]``,
  pipelined along ``j1``) and move along ``i2`` (``d̄₅``);
* the summation follows the chosen expansion, with the boundary carry
  completion of :mod:`repro.expansion.semantics`: carries escaping the
  western column re-enter one row south (an existing link direction), and
  bits of weight position ``>= 2p`` drop as accumulator overflow, so the
  computed product matrix is exact modulo ``2^{2p-1}``.

The machine checks, dynamically and per datum: schedule causality, PE
conflicts, single assignment -- everything Definition 4.1 promises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.arith.bitops import to_bits
from repro.expansion.expansions import Expansion, get_expansion
from repro.expansion.theorem31 import matmul_bit_level
from repro.machine.simulator import SimulationResult, SpaceTimeSimulator, ValueStore
from repro.mapping.transform import MappingMatrix

__all__ = ["BitLevelMatmulMachine", "MatmulRun"]


@dataclass
class MatmulRun:
    """Result of one bit-level matmul execution."""

    product: list[list[int]]  # Z = X·Y mod 2^{2p-1}
    sim: SimulationResult
    dropped_bits: int  # overflow bits beyond position 2p-1
    max_summands: int


class BitLevelMatmulMachine:
    """Run ``Z = X · Y`` bit-level on a mapped array.

    Parameters
    ----------
    u:
        Matrix dimension.
    p:
        Word length; operands must satisfy ``0 <= X[i][j] < 2^p``.
    mapping:
        The space-time mapping ``T`` (e.g. :func:`repro.mapping.designs.
        fig4_mapping`).
    expansion:
        ``"I"`` or ``"II"`` (the paper's designs use Expansion II).
    backend:
        Simulator backend (``"pointwise"`` | ``"wavefront"``); ``None``
        defers to :func:`repro.machine.simulator.default_backend`.  Under
        the wavefront backend the run executes through the vectorized
        :class:`~repro.machine.wavefront.MatmulSlotKernel`.
    """

    def __init__(
        self,
        u: int,
        p: int,
        mapping: MappingMatrix,
        expansion: str | Expansion = "II",
        backend: str | None = None,
    ):
        self.u = int(u)
        self.p = int(p)
        self.mapping = mapping
        self.expansion = get_expansion(expansion)
        self.algorithm = matmul_bit_level(u, p, self.expansion.key)
        self.binding = {"u": self.u, "p": self.p}
        self.backend = backend

    # -- main entry ---------------------------------------------------------
    def run(self, x: Sequence[Sequence[int]], y: Sequence[Sequence[int]]) -> MatmulRun:
        """Execute and return the product matrix (mod ``2^{2p-1}``)."""
        u, p = self.u, self.p
        x_bits = [[to_bits(x[i][j], p) for j in range(u)] for i in range(u)]
        y_bits = [[to_bits(y[i][j], p) for j in range(u)] for i in range(u)]
        state = {"dropped": 0, "max_summands": 0}
        exp1 = self.expansion.key == "I"

        def compute(q: tuple[int, ...], store: ValueStore) -> None:
            j1, j2, j3, i1, i2 = q

            # x bit: enters at i1 = 1, moves along i1 elsewhere (d̄₄).
            if i1 == 1:
                if j2 == 1:
                    xb = x_bits[j1 - 1][j3 - 1][i2 - 1]
                else:
                    xb = store.get("x", (j1, j2 - 1, j3, 1, i2))
            else:
                xb = store.get("x", (j1, j2, j3, i1 - 1, i2))
            store.put("x", q, xb)

            # y bit: enters at i2 = 1, moves along i2 elsewhere (d̄₅).
            if i2 == 1:
                if j1 == 1:
                    yb = y_bits[j3 - 1][j2 - 1][i1 - 1]
                else:
                    yb = store.get("y", (j1 - 1, j2, j3, i1, 1))
            else:
                yb = store.get("y", (j1, j2, j3, i1, i2 - 1))
            store.put("y", q, yb)

            inputs = xb & yb  # the partial product
            # Carry along the row (d̄₅ direction for c).
            if i2 > 1:
                inputs += store.get("c", (j1, j2, j3, i1, i2 - 1), 0)
            # Re-routed boundary carries.
            inputs += store.pop_pending("nr", q)

            on_boundary = i1 == p or i2 == 1
            if exp1:
                # Expansion I: position-wise z from the previous word
                # iteration at every point; the δ̄₃ collapse and c' only at
                # the final word iteration j3 = u.
                if j3 > 1:
                    inputs += store.get("s", (j1, j2, j3 - 1, i1, i2))
                if j3 == u:
                    if i1 > 1 and i2 < p:
                        inputs += store.get("s", (j1, j2, j3, i1 - 1, i2 + 1), 0)
                    if i2 > 2:
                        inputs += store.get("c2", (j1, j2, j3, i1, i2 - 2), 0)
            else:
                # Expansion II: the δ̄₃ collapse everywhere; final z bits of
                # the previous word iteration injected at the boundary; c'
                # on the i1 = p hyperplane.
                if i1 > 1 and i2 < p:
                    inputs += store.get("s", (j1, j2, j3, i1 - 1, i2 + 1), 0)
                if on_boundary and j3 > 1:
                    inputs += store.get("s", (j1, j2, j3 - 1, i1, i2))
                if i1 == p and i2 > 2:
                    inputs += store.get("c2", (j1, j2, j3, i1, i2 - 2), 0)

            if inputs > 7:
                raise AssertionError(f"compressor overflow at {q}: {inputs}")
            state["max_summands"] = max(state["max_summands"], inputs)

            store.put("s", q, inputs & 1)
            self._route(store, q, 1, (inputs >> 1) & 1, state, var="c")
            self._route(store, q, 2, (inputs >> 2) & 1, state, var="c2")

        sim = SpaceTimeSimulator(
            self.mapping, self.algorithm, self.binding, backend=self.backend
        )
        kernel = None
        if sim.backend in ("wavefront", "compiled"):
            from repro.machine import wavefront

            if wavefront.HAVE_NUMPY and p <= 62:
                kernel = wavefront.MatmulSlotKernel(
                    u, p, self.expansion.key, x, y, state
                )
        result = sim.run(compute, kernel=kernel)
        product = self._extract(sim.store)
        return MatmulRun(
            product=product,
            sim=result,
            dropped_bits=state["dropped"],
            max_summands=state["max_summands"],
        )

    # -- helpers --------------------------------------------------------------
    def _route(
        self,
        store: ValueStore,
        q: tuple[int, ...],
        offset: int,
        bit: int,
        state: dict,
        var: str,
    ) -> None:
        """Route a carry (`offset`=1) or second carry (`offset`=2)."""
        j1, j2, j3, i1, i2 = q
        p = self.p
        if not bit:
            if offset == 1 and i2 + 1 <= p:
                store.put(var, q, 0)
            elif offset == 2 and i2 + 2 <= p:
                store.put(var, q, 0)
            return
        if i2 + offset <= p:
            store.put(var, q, 1)
            return
        pos = (i1 + i2 - 1) + offset
        if pos <= 2 * p - 1:
            # Boundary re-route along the [1,0]ᵀ (i1) direction to the
            # column-p owner of this weight.
            store.add_pending("nr", (j1, j2, j3, pos - p + 1, p), 1)
        else:
            state["dropped"] += 1

    def _extract(self, store: ValueStore) -> list[list[int]]:
        """Assemble Z[j1][j2] from the boundary sum bits at j3 = u."""
        u, p = self.u, self.p
        dense = self._extract_dense(store)
        if dense is not None:
            return dense
        out = [[0] * u for _ in range(u)]
        for j1 in range(1, u + 1):
            for j2 in range(1, u + 1):
                value = 0
                for w in range(1, p + 1):
                    value |= store.get("s", (j1, j2, u, w, 1)) << (w - 1)
                for k in range(2, p + 1):
                    value |= store.get("s", (j1, j2, u, p, k)) << (p + k - 2)
                out[j1 - 1][j2 - 1] = value
        return out

    def _extract_dense(self, store) -> list[list[int]] | None:
        """Batched extraction against a dense array store: gather the same
        ``2p - 1`` boundary bits per product word in two slices instead of
        ``u²(2p - 1)`` scalar reads.  Read accounting matches the scalar
        path; values are identical bit for bit."""
        u, p = self.u, self.p
        arrays = getattr(store, "_arrays", None)
        if arrays is None:
            return None
        s = arrays.get("s")
        if s is None or getattr(s, "shape", None) != (u, u, u, p, p):
            return None
        if any(key[0] == "s" for key in store._extra):
            return None  # scalar overrides present: take the exact path
        import numpy as np

        low = s[:, :, u - 1, :, 0].astype(np.int64)  # weights 0 .. p-1
        high = s[:, :, u - 1, p - 1, 1:].astype(np.int64)  # p .. 2p-2
        weights = np.int64(1) << np.arange(2 * p - 1, dtype=np.int64)
        values = low @ weights[:p] + high @ weights[p:]
        store.reads += u * u * (2 * p - 1)
        return [[int(v) for v in row] for row in values.tolist()]
