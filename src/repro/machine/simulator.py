"""The space-time executor.

Runs an algorithm's computations in linear-schedule order on the PE grid a
mapping induces, enforcing the machine model of Definition 4.1 at run time:

* *conflicts*: two distinct index points landing on one PE in one time slot
  abort the simulation (condition 3, checked dynamically);
* *causality*: every value read must have been produced at a strictly
  earlier time (condition 1, checked per access);
* *utilization*: per-PE busy counts and the makespan are recorded, so
  condition 5's "some processor busy at every beat" is measurable.

The executor is value-generic: callers supply a ``compute(point, store)``
function; :class:`ValueStore` is the communication fabric (a write-once
space-time memory with causality checking).

Two execution backends share this machine model (see ``docs/SIMULATION.md``):

* ``"pointwise"`` -- the reference interpreter: one index point at a time
  through a dict-backed store, with per-point memoized ``Π j̄`` / ``S j̄``;
* ``"wavefront"`` -- the vectorized engine of
  :mod:`repro.machine.wavefront`: all points are bucketed by schedule time
  up front (one batched ``times_of`` matmul), whole time slots fire at
  once against dense array-indexed storage, and the machine-model checks
  run as per-slot assertions.  Generic ``compute`` callables are supported
  through a compatibility shim; the shipped arithmetic machines provide
  fully vectorized slot kernels;
* ``"compiled"`` -- the design compiler of :mod:`repro.compile`: the
  run-invariant structure (schedule tables, slot grouping, gather/scatter
  index plans) is compiled once per design into generated, loop-free NumPy
  source (memoized in-process and persisted in the artifact cache under a
  ``kernel`` key), so repeat simulations of a known design skip straight
  to value execution.  See ``docs/COMPILE.md``.

All backends produce identical :class:`SimulationResult` values, store
contents, and observability metrics; the default is selected by
:func:`default_backend` (the ``REPRO_SIM_BACKEND`` environment variable,
``"pointwise"`` otherwise).

When an ambient :mod:`repro.obs` registry is installed, each run emits a
``machine.simulate`` span plus counters/gauges: store read/write and
causality-check totals, per-PE busy beats (``machine.pe_busy.<coords>``),
makespan, processor count, and link traffic per space displacement
(``machine.link.<dx,dy>``, with ``machine.link.local`` for in-PE reuse) --
the displacement a datum travels between producing and consuming PE, which
condition 2 bounds by the interconnection primitives.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro import obs
from repro.machine.pe import ProcessorElement
from repro.mapping.transform import MappingMatrix
from repro.structures.algorithm import Algorithm
from repro.structures.params import ParamBinding

__all__ = [
    "BACKENDS",
    "default_backend",
    "ValueStore",
    "SimulationResult",
    "SpaceTimeSimulator",
]

#: The recognized execution backends.
BACKENDS = ("pointwise", "wavefront", "compiled")


def default_backend() -> str:
    """The process-wide default backend.

    Honors ``REPRO_SIM_BACKEND`` (``pointwise`` | ``wavefront`` |
    ``compiled``) so fuzz and CI jobs can flip every simulator in one
    place; falls back to ``"pointwise"``.
    """
    backend = os.environ.get("REPRO_SIM_BACKEND", "pointwise")
    if backend not in BACKENDS:
        raise ValueError(
            f"REPRO_SIM_BACKEND={backend!r} is not one of {BACKENDS}"
        )
    return backend


def resolve_backend(backend: str | None) -> str:
    """Validate an explicit backend choice (``None`` -> the default)."""
    if backend is None:
        return default_backend()
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    return backend


class ValueStore:
    """Write-once space-time memory with causality checking.

    Schedule times and processor coordinates of producer/consumer points
    are memoized per point: every causality check and both endpoints of
    every link-traffic attribution hit the cache instead of re-running the
    ``Π j̄`` / ``S j̄`` dot products.
    """

    def __init__(self, mapping: MappingMatrix):
        self._mapping = mapping
        self._values: dict[tuple[str, tuple[int, ...]], int] = {}
        self._current_time: int | None = None
        self._reader_point: tuple[int, ...] | None = None
        self._registry = None  # ambient obs registry, set by the simulator
        self._time_cache: dict[tuple[int, ...], int] = {}
        self._proc_cache: dict[tuple[int, ...], tuple[int, ...]] = {}
        self.reads = 0
        self.writes = 0
        self.causality_checks = 0

    # -- memoized space-time transforms ------------------------------------
    def time_of(self, point: tuple[int, ...]) -> int:
        """Memoized ``Π j̄``."""
        t = self._time_cache.get(point)
        if t is None:
            t = self._time_cache[point] = self._mapping.time_of(point)
        return t

    def processor_of(self, point: tuple[int, ...]) -> tuple[int, ...]:
        """Memoized ``S j̄``."""
        pos = self._proc_cache.get(point)
        if pos is None:
            pos = self._proc_cache[point] = self._mapping.processor_of(point)
        return pos

    def _set_time(self, time: int | None) -> None:
        self._current_time = time

    def _set_context(self, time: int | None, point: Sequence[int] | None) -> None:
        """Clock + reading index point (for link-traffic attribution)."""
        self._current_time = time
        self._reader_point = tuple(point) if point is not None else None

    def get(
        self,
        var: str,
        point: Sequence[int],
        default: int | None = None,
    ) -> int:
        """Read ``var`` produced at ``point``; ``default`` covers boundary
        inputs.  Raises on a causality violation (producer not earlier)."""
        key = (var, tuple(point))
        self.reads += 1
        if key not in self._values:
            if default is None:
                raise KeyError(f"no value for {key} and no boundary default")
            return default
        if self._current_time is not None:
            self.causality_checks += 1
            produced_at = self.time_of(key[1])
            if produced_at >= self._current_time:
                raise AssertionError(
                    f"causality violation: {key} produced at t={produced_at}, "
                    f"read at t={self._current_time}"
                )
        reg = self._registry
        if reg is not None and self._reader_point is not None:
            src = self.processor_of(key[1])
            dst = self.processor_of(self._reader_point)
            if src == dst:
                reg.count("machine.link.local")
            else:
                delta = ",".join(str(b - a) for a, b in zip(src, dst))
                reg.count(f"machine.link.{delta}")
        return self._values[key]

    def put(self, var: str, point: Sequence[int], value: int) -> None:
        """Write ``var`` at ``point`` (single assignment enforced)."""
        key = (var, tuple(point))
        if key in self._values:
            raise AssertionError(f"double write to {key}")
        self._values[key] = value
        self.writes += 1

    def add_pending(self, var: str, point: Sequence[int], value: int) -> None:
        """Accumulate into a pending slot (used for re-routed carries, which
        may gather several bits before their consumer fires)."""
        key = (var, tuple(point))
        self._values[key] = self._values.get(key, 0) + value
        self.writes += 1

    def pop_pending(self, var: str, point: Sequence[int]) -> int:
        """Consume a pending slot (0 if nothing was routed there)."""
        return self._values.pop((var, tuple(point)), 0)

    def snapshot(self) -> dict[tuple[str, tuple[int, ...]], int]:
        """The full ``(var, point) -> value`` store contents (copied)."""
        return dict(self._values)


@dataclass
class SimulationResult:
    """Timing/utilization outcome of one space-time execution."""

    makespan: int
    first_time: int
    last_time: int
    computations: int
    processor_count: int
    #: per-time-step count of busy PEs
    busy_per_step: dict[int, int] = field(default_factory=dict)
    store_reads: int = 0
    store_writes: int = 0
    #: per-PE busy-beat counts, keyed by processor coordinates
    pe_busy: dict[tuple[int, ...], int] = field(default_factory=dict)

    @property
    def always_busy(self) -> bool:
        """Condition 5's intent: at least one PE busy at every beat."""
        return all(
            self.busy_per_step.get(t, 0) > 0
            for t in range(self.first_time, self.last_time + 1)
        )

    @property
    def mean_utilization(self) -> float:
        """Average busy-PE fraction over the makespan."""
        if not self.makespan or not self.processor_count:
            return 0.0
        total_busy = sum(self.busy_per_step.values())
        return total_busy / (self.makespan * self.processor_count)

    def pe_utilization(self) -> dict[tuple[int, ...], float]:
        """Per-PE busy fraction of the makespan."""
        if not self.makespan:
            return {pos: 0.0 for pos in self.pe_busy}
        return {pos: n / self.makespan for pos, n in self.pe_busy.items()}


def emit_machine_metrics(reg, result: SimulationResult, store) -> None:
    """Emit the run's ``machine.*`` counters/gauges to ``reg``.

    Shared by both backends so the metric names, order, and values are
    identical whichever engine produced ``result``.  Emitted for *every*
    run -- including empty index sets -- so downstream consumers always
    see one consistent metrics shape.
    """
    if reg is None:
        return
    reg.count("machine.computations", result.computations)
    reg.count("machine.store_reads", store.reads)
    reg.count("machine.store_writes", store.writes)
    reg.count("machine.causality_checks", store.causality_checks)
    reg.gauge("machine.makespan", result.makespan)
    reg.gauge("machine.processor_count", result.processor_count)
    reg.gauge("machine.mean_utilization", result.mean_utilization)
    reg.gauge("machine.always_busy", int(result.always_busy))
    for pos, n in result.pe_busy.items():
        label = ",".join(str(x) for x in pos)
        reg.gauge(f"machine.pe_busy.{label}", n)
    if reg.sinks and result.busy_per_step:
        # Busy-PE count per beat as a bus series: the Chrome exporter
        # turns it into a utilization counter track (beat timebase).
        reg.emit_series(
            "machine.busy_pes",
            sorted(result.busy_per_step.items()),
        )


class SpaceTimeSimulator:
    """Execute an algorithm instance under a mapping.

    ``backend`` selects the execution engine (``"pointwise"`` |
    ``"wavefront"`` | ``"compiled"``); ``None`` defers to
    :func:`default_backend`.
    """

    def __init__(
        self,
        mapping: MappingMatrix,
        algorithm: Algorithm,
        binding: ParamBinding,
        backend: str | None = None,
    ):
        self.mapping = mapping
        self.algorithm = algorithm
        self.binding = dict(binding)
        self.backend = resolve_backend(backend)
        self.store = ValueStore(mapping)
        self._pes: dict[tuple[int, ...], ProcessorElement] = {}
        self._pes_builder: Callable[[], dict] | None = None

    @property
    def pes(self) -> dict[tuple[int, ...], ProcessorElement]:
        """The PE map, keyed by processor coordinates.

        The wavefront backend derives utilization statistics from arrays
        and only materializes the per-PE firing records on first access
        (they are O(points) Python objects the fast path never needs).
        """
        if self._pes_builder is not None:
            builder, self._pes_builder = self._pes_builder, None
            self._pes = builder()
        return self._pes

    def run(
        self,
        compute: Callable[[tuple[int, ...], ValueStore], None],
        kernel=None,
    ) -> SimulationResult:
        """Fire every index point in schedule order.

        ``compute`` receives the index point and the shared store (a
        :class:`ValueStore`; under the wavefront backend the store the
        simulator ends up holding may be the dense
        :class:`~repro.machine.wavefront.DenseValueStore` -- same
        interface); it should read its inputs (with boundary defaults),
        compute, and write its outputs.

        ``kernel``, when given, is a vectorized slot kernel (see
        :mod:`repro.machine.wavefront`) semantically equivalent to
        ``compute``; the wavefront backend fires it one whole time slot at
        a time instead of calling ``compute`` per point.  The pointwise
        backend ignores it.
        """
        if self.backend == "wavefront":
            from repro.machine.wavefront import run_wavefront

            return run_wavefront(self, compute, kernel)
        if self.backend == "compiled":
            from repro.compile.runner import run_compiled

            return run_compiled(self, compute, kernel)
        return self._run_pointwise(compute)

    def _run_pointwise(
        self, compute: Callable[[tuple[int, ...], ValueStore], None]
    ) -> SimulationResult:
        reg = obs.get_registry()
        store = self.store
        store._registry = reg
        with obs.span(
            "machine.simulate", mapping=self.mapping.name, backend="pointwise"
        ):
            points = sorted(
                self.algorithm.index_set.points(self.binding),
                key=store.time_of,
            )
            busy: dict[int, int] = {}
            for point in points:
                t = store.time_of(point)
                pos = store.processor_of(point)
                pe = self.pes.get(pos)
                if pe is None:
                    pe = self.pes[pos] = ProcessorElement(pos)
                pe.fire(t, point)
                busy[t] = busy.get(t, 0) + 1
                store._set_context(t, point)
                compute(point, store)
            store._set_context(None, None)  # post-run reads: off the clock
            if points:
                first = store.time_of(points[0])
                last = store.time_of(points[-1])
            else:
                first, last = 0, -1
            result = SimulationResult(
                makespan=last - first + 1,
                first_time=first,
                last_time=last,
                computations=len(points),
                processor_count=len(self.pes),
                busy_per_step=busy,
                store_reads=store.reads,
                store_writes=store.writes,
                pe_busy={pos: pe.busy_cycles for pos, pe in self.pes.items()},
            )
        emit_machine_metrics(reg, result, store)
        return result
