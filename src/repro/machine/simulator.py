"""The space-time executor.

Runs an algorithm's computations in linear-schedule order on the PE grid a
mapping induces, enforcing the machine model of Definition 4.1 at run time:

* *conflicts*: two distinct index points landing on one PE in one time slot
  abort the simulation (condition 3, checked dynamically);
* *causality*: every value read must have been produced at a strictly
  earlier time (condition 1, checked per access);
* *utilization*: per-PE busy counts and the makespan are recorded, so
  condition 5's "some processor busy at every beat" is measurable.

The executor is value-generic: callers supply a ``compute(point, store)``
function; :class:`ValueStore` is the communication fabric (a write-once
space-time memory with causality checking).

When an ambient :mod:`repro.obs` registry is installed, each run emits a
``machine.simulate`` span plus counters/gauges: store read/write and
causality-check totals, per-PE busy beats (``machine.pe_busy.<coords>``),
makespan, processor count, and link traffic per space displacement
(``machine.link.<dx,dy>``, with ``machine.link.local`` for in-PE reuse) --
the displacement a datum travels between producing and consuming PE, which
condition 2 bounds by the interconnection primitives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro import obs
from repro.machine.pe import ProcessorElement
from repro.mapping.transform import MappingMatrix
from repro.structures.algorithm import Algorithm
from repro.structures.params import ParamBinding

__all__ = ["ValueStore", "SimulationResult", "SpaceTimeSimulator"]


class ValueStore:
    """Write-once space-time memory with causality checking."""

    def __init__(self, mapping: MappingMatrix):
        self._mapping = mapping
        self._values: dict[tuple[str, tuple[int, ...]], int] = {}
        self._current_time: int | None = None
        self._reader_point: tuple[int, ...] | None = None
        self._registry = None  # ambient obs registry, set by the simulator
        self.reads = 0
        self.writes = 0
        self.causality_checks = 0

    def _set_time(self, time: int | None) -> None:
        self._current_time = time

    def _set_context(self, time: int | None, point: Sequence[int] | None) -> None:
        """Clock + reading index point (for link-traffic attribution)."""
        self._current_time = time
        self._reader_point = tuple(point) if point is not None else None

    def get(
        self,
        var: str,
        point: Sequence[int],
        default: int | None = None,
    ) -> int:
        """Read ``var`` produced at ``point``; ``default`` covers boundary
        inputs.  Raises on a causality violation (producer not earlier)."""
        key = (var, tuple(point))
        self.reads += 1
        if key not in self._values:
            if default is None:
                raise KeyError(f"no value for {key} and no boundary default")
            return default
        if self._current_time is not None:
            self.causality_checks += 1
            produced_at = self._mapping.time_of(key[1])
            if produced_at >= self._current_time:
                raise AssertionError(
                    f"causality violation: {key} produced at t={produced_at}, "
                    f"read at t={self._current_time}"
                )
        reg = self._registry
        if reg is not None and self._reader_point is not None:
            src = self._mapping.processor_of(key[1])
            dst = self._mapping.processor_of(self._reader_point)
            if src == dst:
                reg.count("machine.link.local")
            else:
                delta = ",".join(str(b - a) for a, b in zip(src, dst))
                reg.count(f"machine.link.{delta}")
        return self._values[key]

    def put(self, var: str, point: Sequence[int], value: int) -> None:
        """Write ``var`` at ``point`` (single assignment enforced)."""
        key = (var, tuple(point))
        if key in self._values:
            raise AssertionError(f"double write to {key}")
        self._values[key] = value
        self.writes += 1

    def add_pending(self, var: str, point: Sequence[int], value: int) -> None:
        """Accumulate into a pending slot (used for re-routed carries, which
        may gather several bits before their consumer fires)."""
        key = (var, tuple(point))
        self._values[key] = self._values.get(key, 0) + value
        self.writes += 1

    def pop_pending(self, var: str, point: Sequence[int]) -> int:
        """Consume a pending slot (0 if nothing was routed there)."""
        return self._values.pop((var, tuple(point)), 0)


@dataclass
class SimulationResult:
    """Timing/utilization outcome of one space-time execution."""

    makespan: int
    first_time: int
    last_time: int
    computations: int
    processor_count: int
    #: per-time-step count of busy PEs
    busy_per_step: dict[int, int] = field(default_factory=dict)
    store_reads: int = 0
    store_writes: int = 0
    #: per-PE busy-beat counts, keyed by processor coordinates
    pe_busy: dict[tuple[int, ...], int] = field(default_factory=dict)

    @property
    def always_busy(self) -> bool:
        """Condition 5's intent: at least one PE busy at every beat."""
        return all(
            self.busy_per_step.get(t, 0) > 0
            for t in range(self.first_time, self.last_time + 1)
        )

    @property
    def mean_utilization(self) -> float:
        """Average busy-PE fraction over the makespan."""
        if not self.makespan or not self.processor_count:
            return 0.0
        total_busy = sum(self.busy_per_step.values())
        return total_busy / (self.makespan * self.processor_count)

    def pe_utilization(self) -> dict[tuple[int, ...], float]:
        """Per-PE busy fraction of the makespan."""
        if not self.makespan:
            return {pos: 0.0 for pos in self.pe_busy}
        return {pos: n / self.makespan for pos, n in self.pe_busy.items()}


class SpaceTimeSimulator:
    """Execute an algorithm instance under a mapping."""

    def __init__(
        self,
        mapping: MappingMatrix,
        algorithm: Algorithm,
        binding: ParamBinding,
    ):
        self.mapping = mapping
        self.algorithm = algorithm
        self.binding = dict(binding)
        self.store = ValueStore(mapping)
        self.pes: dict[tuple[int, ...], ProcessorElement] = {}

    def run(
        self, compute: Callable[[tuple[int, ...], ValueStore], None]
    ) -> SimulationResult:
        """Fire every index point in schedule order.

        ``compute`` receives the index point and the shared
        :class:`ValueStore`; it should read its inputs (with boundary
        defaults), compute, and write its outputs.
        """
        reg = obs.get_registry()
        self.store._registry = reg
        with obs.span("machine.simulate", mapping=self.mapping.name):
            points = sorted(
                self.algorithm.index_set.points(self.binding),
                key=self.mapping.time_of,
            )
            if not points:
                return SimulationResult(0, 0, -1, 0, 0)
            busy: dict[int, int] = {}
            for point in points:
                t = self.mapping.time_of(point)
                pos = self.mapping.processor_of(point)
                pe = self.pes.get(pos)
                if pe is None:
                    pe = self.pes[pos] = ProcessorElement(pos)
                pe.fire(t, point)
                busy[t] = busy.get(t, 0) + 1
                self.store._set_context(t, point)
                compute(point, self.store)
            self.store._set_context(None, None)  # post-run reads: off the clock
            first = self.mapping.time_of(points[0])
            last = self.mapping.time_of(points[-1])
            result = SimulationResult(
                makespan=last - first + 1,
                first_time=first,
                last_time=last,
                computations=len(points),
                processor_count=len(self.pes),
                busy_per_step=busy,
                store_reads=self.store.reads,
                store_writes=self.store.writes,
                pe_busy={pos: pe.busy_cycles for pos, pe in self.pes.items()},
            )
        if reg is not None:
            reg.count("machine.computations", result.computations)
            reg.count("machine.store_reads", self.store.reads)
            reg.count("machine.store_writes", self.store.writes)
            reg.count("machine.causality_checks", self.store.causality_checks)
            reg.gauge("machine.makespan", result.makespan)
            reg.gauge("machine.processor_count", result.processor_count)
            reg.gauge("machine.mean_utilization", result.mean_utilization)
            reg.gauge("machine.always_busy", int(result.always_busy))
            for pos, n in result.pe_busy.items():
                label = ",".join(str(x) for x in pos)
                reg.gauge(f"machine.pe_busy.{label}", n)
        return result
