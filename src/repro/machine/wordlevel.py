"""The word-level baseline: the best word-level systolic matmul array [4].

A ``u x u`` mesh under ``T_w = [[1,0,0],[0,1,0],[1,1,1]]``: ``x`` words
pipeline along ``j2``, ``y`` words along ``j1``, ``z`` stays resident and
accumulates along ``j3``.  The schedule has ``3(u-1)+1`` word *beats*; each
beat performs one multiply-accumulate inside a PE using a *sequential*
arithmetic algorithm, so one beat costs ``t_b`` cycles and the total is

.. math:: t_{word} = (3(u-1)+1) \\cdot t_b

(Section 4.2).  ``t_b`` is ``O(p²)`` for add-shift and ``O(p)`` for
carry-save -- the choice that decides whether the bit-level design of Fig. 4
wins by ``O(p²)`` or by ``O(p)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.arith.sequential import SequentialAddShift, SequentialCarrySave
from repro.ir.builders import matmul_word_structure
from repro.machine.simulator import SimulationResult, SpaceTimeSimulator, ValueStore
from repro.mapping.designs import word_level_mapping

__all__ = ["WordLevelMatmulMachine", "WordMatmulRun"]


@dataclass
class WordMatmulRun:
    """Result of one word-level matmul execution."""

    product: list[list[int]]
    sim: SimulationResult
    word_beats: int  # schedule length in word beats: 3(u-1)+1
    cycles_per_beat: int  # t_b of the chosen arithmetic
    total_cycles: int  # word_beats * t_b


class WordLevelMatmulMachine:
    """Run ``Z = X · Y`` on the word-level array with sequential arithmetic."""

    def __init__(
        self,
        u: int,
        p: int,
        arithmetic: str = "add-shift",
        backend: str | None = None,
    ):
        self.u = int(u)
        self.p = int(p)
        self.arithmetic = arithmetic
        self.backend = backend
        if arithmetic == "add-shift":
            self.multiplier = SequentialAddShift(p)
        elif arithmetic == "carry-save":
            self.multiplier = SequentialCarrySave(p)
        else:
            raise ValueError(f"unknown arithmetic {arithmetic!r}")
        self.mapping = word_level_mapping()
        self.algorithm = matmul_word_structure(u)

    def run(
        self, x: Sequence[Sequence[int]], y: Sequence[Sequence[int]]
    ) -> WordMatmulRun:
        """Execute; products are computed by the sequential multiplier (so a
        multiplier bug would corrupt the result, not just the timing)."""
        u = self.u
        binding = {"u": u}

        def compute(q: tuple[int, ...], store: ValueStore) -> None:
            j1, j2, j3 = q
            if j2 == 1:
                xv = x[j1 - 1][j3 - 1]
            else:
                xv = store.get("x", (j1, j2 - 1, j3))
            store.put("x", q, xv)
            if j1 == 1:
                yv = y[j3 - 1][j2 - 1]
            else:
                yv = store.get("y", (j1 - 1, j2, j3))
            store.put("y", q, yv)
            acc = store.get("z", (j1, j2, j3 - 1), 0)
            store.put("z", q, acc + self.multiplier.multiply(xv, yv))

        sim = SpaceTimeSimulator(
            self.mapping, self.algorithm, binding, backend=self.backend
        )
        kernel = None
        if sim.backend in ("wavefront", "compiled"):
            from repro.machine import wavefront

            # Accumulated z words (< u * 2^{2p}) must fit int64 lanes.
            if wavefront.HAVE_NUMPY and 2 * self.p + u.bit_length() <= 62:
                kernel = wavefront.WordMatmulSlotKernel(
                    u, self.multiplier, x, y
                )
        result = sim.run(compute, kernel=kernel)
        product = [
            [sim.store.get("z", (j1, j2, u)) for j2 in range(1, u + 1)]
            for j1 in range(1, u + 1)
        ]
        word_beats = result.makespan
        t_b = self.multiplier.cycles
        return WordMatmulRun(
            product=product,
            sim=result,
            word_beats=word_beats,
            cycles_per_beat=t_b,
            total_cycles=word_beats * t_b,
        )
