"""Processor elements of a systolic array.

A :class:`ProcessorElement` is a bookkeeping cell: it records which index
points execute on it and when, from which per-PE utilization and conflict
statistics are derived.  The functional behaviour lives in the executors
(:mod:`repro.machine.simulator` and :mod:`repro.machine.bitlevel`); keeping
the structural model value-free lets one array host any computation.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["ProcessorElement"]


class ProcessorElement:
    """One PE at fixed array coordinates."""

    __slots__ = ("position", "firings")

    def __init__(self, position: Sequence[int]):
        self.position: tuple[int, ...] = tuple(int(x) for x in position)
        #: time -> index point executed at that time
        self.firings: dict[int, tuple[int, ...]] = {}

    def fire(self, time: int, point: Sequence[int]) -> None:
        """Record the execution of ``point`` at ``time``.

        Raises ``ValueError`` on a computational conflict (two distinct
        points in the same time slot) -- condition 3 of Definition 4.1
        enforced at run time.
        """
        point = tuple(point)
        existing = self.firings.get(time)
        if existing is not None and existing != point:
            raise ValueError(
                f"conflict on PE {self.position} at t={time}: "
                f"{existing} vs {point}"
            )
        self.firings[time] = point

    @property
    def busy_cycles(self) -> int:
        """Number of time slots in which this PE computes."""
        return len(self.firings)

    def utilization(self, total_time: int) -> float:
        """Fraction of the makespan during which the PE is busy."""
        return self.busy_cycles / total_time if total_time else 0.0

    def __repr__(self) -> str:
        return f"PE{self.position}({self.busy_cycles} firings)"
