"""Pass partitioning: long accumulations on a fixed-depth array.

A systolic design is built for a concrete problem size, but real workloads
overflow it -- a Fig. 4 array instantiated for ``u`` word iterations must
still handle accumulations of length ``L > u``.  The classical answer is
*locally parallel, globally sequential* execution along the accumulation
direction: slice the ``h̄₃`` chains into slabs of at most ``width`` word
iterations, run each slab as one pass of the array, and carry the partial
``z`` words between passes (they stay resident at their PEs; the model
machine's ``z_init`` mechanism is exactly that hand-off).

Soundness conditions, checked up front:

* ``h̄₃`` must be a unit vector (the accumulation advances one iteration at
  a time along a single axis -- true for every model in the paper);
* every dependence vector must be nonnegative along that axis, so no
  dependence points from a later pass into an earlier one (word pipelining
  vectors with nonzero components on the slab axis are re-fed at each
  pass's boundary, which the machine's boundary-input mechanism handles).

The result is bit-exact: the partitioned product equals the monolithic one
(mod ``2^{2p-1}``), with total time ``Σ`` pass makespans and the array
footprint of a *single* slab.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.expansion.expansions import Expansion, get_expansion
from repro.machine.model import BitLevelModelMachine, ModelRun
from repro.mapping.transform import MappingMatrix

__all__ = ["PartitionedModelMachine", "PartitionedRun"]

Point = tuple[int, ...]


@dataclass
class PartitionedRun:
    """Result of a multi-pass execution."""

    outputs: dict[Point, int]
    passes: list[ModelRun]
    total_makespan: int
    processor_count: int

    @property
    def pass_count(self) -> int:
        return len(self.passes)


class PartitionedModelMachine:
    """Run a model-(3.5) instance in accumulation slabs on one array.

    Parameters mirror :class:`~repro.machine.model.BitLevelModelMachine`;
    ``width`` is the slab depth (word iterations per pass along the
    accumulation axis).  The mapping must be feasible for a single slab --
    it is reused, unchanged, for every pass.
    """

    def __init__(
        self,
        h1: Sequence[int],
        h2: Sequence[int],
        h3: Sequence[int],
        lowers: Sequence[int],
        uppers: Sequence[int],
        p: int,
        mapping: MappingMatrix,
        width: int,
        expansion: str | Expansion = "II",
    ):
        self.n = len(h1)
        self.h1 = tuple(int(x) for x in h1)
        self.h2 = tuple(int(x) for x in h2)
        self.h3 = tuple(int(x) for x in h3)
        nonzero = [k for k, x in enumerate(self.h3) if x]
        if len(nonzero) != 1 or self.h3[nonzero[0]] != 1:
            raise ValueError(
                "pass partitioning requires h̄₃ to be a unit vector; "
                f"got {list(self.h3)}"
            )
        self.axis = nonzero[0]
        for vec, name in ((self.h1, "h̄₁"), (self.h2, "h̄₂")):
            if vec[self.axis] < 0:
                raise ValueError(
                    f"{name} has a negative component along the accumulation "
                    "axis; a later pass would feed an earlier one"
                )
        if width < 1:
            raise ValueError("slab width must be positive")
        self.width = int(width)
        self.lowers = tuple(int(x) for x in lowers)
        self.uppers = tuple(int(x) for x in uppers)
        self.p = int(p)
        self.mapping = mapping
        self.expansion = get_expansion(expansion)

    def slab_bounds(self) -> list[tuple[int, int]]:
        """The per-pass ranges of the accumulation axis."""
        lo, hi = self.lowers[self.axis], self.uppers[self.axis]
        out = []
        start = lo
        while start <= hi:
            out.append((start, min(start + self.width - 1, hi)))
            start += self.width
        return out

    def _slab_machine(self, lo: int, hi: int) -> BitLevelModelMachine:
        lowers = list(self.lowers)
        uppers = list(self.uppers)
        lowers[self.axis] = lo
        uppers[self.axis] = hi
        return BitLevelModelMachine(
            self.h1, self.h2, self.h3, lowers, uppers, self.p,
            self.mapping, self.expansion.key,
        )

    def run(
        self,
        x_words: Mapping[Point, int],
        y_words: Mapping[Point, int],
        z_init: Mapping[Point, int] | None = None,
    ) -> PartitionedRun:
        """Execute all passes, chaining partial ``z`` words between them."""
        z_carry: dict[Point, int] = dict(z_init or {})
        passes: list[ModelRun] = []
        total = 0
        pes = 0
        for lo, hi in self.slab_bounds():
            machine = self._slab_machine(lo, hi)
            slab_points = set(machine.word_set.points({}))
            xw = {j: x_words[j] for j in slab_points}
            yw = {j: y_words[j] for j in slab_points}
            run = machine.run(xw, yw, z_init=z_carry)
            passes.append(run)
            total += run.sim.makespan
            pes = max(pes, run.sim.processor_count)
            # Chain: this pass's chain-end words seed the next pass's
            # chain-start points (one h̄₃ step further).
            z_carry = {
                tuple(a + b for a, b in zip(j, self.h3)): v
                for j, v in run.outputs.items()
            }
        final = passes[-1].outputs if passes else {}
        return PartitionedRun(
            outputs=dict(final),
            passes=passes,
            total_makespan=total,
            processor_count=pes,
        )

    def reference(
        self,
        x_words: Mapping[Point, int],
        y_words: Mapping[Point, int],
        z_init: Mapping[Point, int] | None = None,
    ) -> dict[Point, int]:
        """The monolithic recurrence, for verification."""
        machine = BitLevelModelMachine(
            self.h1, self.h2, self.h3, self.lowers, self.uppers, self.p,
            self.mapping, self.expansion.key,
        )
        return machine.reference(x_words, y_words, z_init)
