"""Benchmark: scalar vs batched dependence-analysis engine + artifact cache.

Times :func:`repro.depanalysis.analyze` with both engine backends on the
same expanded bit-level matmul programs and checks bit-identical results
(same ordered instance list, same statistics counters), then measures the
persistent artifact cache cold (miss + write) and warm (hit).

Besides the pytest-benchmark kernels, this module doubles as a script:

* ``python benchmarks/bench_analysis.py --smoke`` runs one small instance
  through both backends plus a cache round-trip, asserting equivalence and
  a >= 2x batched speedup -- the CI guard.
* ``python benchmarks/bench_analysis.py --record`` runs the E7-shaped
  sweep on both backends (expecting >= 5x batched cold and >= 20x
  warm-cache vs the scalar baseline), re-times E7 before/after, runs the
  ``u = p = 16`` Theorem 3.1 cross-validation at scale, and updates
  ``BENCH_analysis.json`` at the repo root (an existing baseline entry is
  preserved).
"""

import argparse
import json
import pathlib
import tempfile
import time

import pytest

from repro import obs
from repro.depanalysis import AnalysisConfig, analyze
from repro.experiments.tables import format_table
from repro.ir.expand import expand_bit_level

BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_analysis.json"

_MATMUL_H = ([0, 1, 0], [1, 0, 0], [0, 0, 1])

#: The E7-shaped sweep: |J| = u^3 p^2 grows ~50x across it.
SWEEP = ((2, 2), (3, 2), (3, 3), (4, 3))


def _program(u, p, expansion="II"):
    h1, h2, h3 = _MATMUL_H
    return expand_bit_level(h1, h2, h3, [1, 1, 1], [u, u, u], p, expansion)


def _timed(program, p, method="exact", backend=None, cache=False,
           cache_dir=None, repeats=1):
    """Best-of-N wall clock plus the (identical) result."""
    config = AnalysisConfig(backend=backend, cache=cache, cache_dir=cache_dir)
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = analyze(program, {"p": p}, method=method, config=config)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _assert_identical(a, b, label):
    assert [i.key() for i in a.instances] == [i.key() for i in b.instances], (
        f"{label}: instance lists diverged"
    )
    assert a.stats == b.stats, f"{label}: stats diverged"


# -- pytest-benchmark kernels -----------------------------------------------

U, P = 3, 2
PROGRAM = _program(U, P)


@pytest.fixture(scope="module", autouse=True)
def report(report_writer):
    yield
    rows = []
    data_rows = []
    for u, p in ((2, 2), (3, 2), (3, 3)):
        program = _program(u, p)
        t_s, r_s = _timed(program, p, backend="scalar")
        t_b, r_b = _timed(program, p, backend="batched")
        _assert_identical(r_s, r_b, f"u={u} p={p}")
        rows.append(
            (u, p, u**3 * p**2, r_s.stats["instances"],
             f"{t_s * 1e3:.1f}", f"{t_b * 1e3:.1f}", f"{t_s / t_b:.1f}x")
        )
        data_rows.append({
            "u": u, "p": p, "instances": r_s.stats["instances"],
            "scalar_s": round(t_s, 4), "batched_s": round(t_b, 4),
            "speedup": round(t_s / t_b, 2), "identical": True,
        })
    text = format_table(
        ["u", "p", "|J|", "instances", "scalar ms", "batched ms", "speedup"],
        rows,
        title="Analysis engine: exact method, scalar vs batched backend",
    )
    report_writer(
        "analysis-engine", text,
        data={"backend": "batched-vs-scalar", "rows": data_rows},
    )


def test_bench_exact_scalar(benchmark):
    _, result = benchmark(
        _timed, PROGRAM, P, method="exact", backend="scalar"
    )
    assert result.stats["instances"] > 0


def test_bench_exact_batched(benchmark):
    _, result = benchmark(
        _timed, PROGRAM, P, method="exact", backend="batched"
    )
    assert result.stats["instances"] > 0


def test_bench_enumerate_batched(benchmark):
    _, result = benchmark(
        _timed, PROGRAM, P, method="enumerate", backend="batched"
    )
    assert result.stats["instances"] > 0


def test_bench_warm_cache(benchmark, tmp_path):
    cache_dir = str(tmp_path / "cache")
    _timed(PROGRAM, P, backend="batched", cache=True, cache_dir=cache_dir)
    _, result = benchmark(
        _timed, PROGRAM, P, backend="batched", cache=True, cache_dir=cache_dir
    )
    assert result.stats["instances"] > 0


# -- script modes -----------------------------------------------------------

def _smoke() -> int:
    u, p = 3, 2
    program = _program(u, p)
    t_s, r_s = _timed(program, p, backend="scalar")
    t_b, r_b = _timed(program, p, backend="batched")
    _assert_identical(r_s, r_b, f"u={u} p={p} exact")
    _, r_es = _timed(program, p, method="enumerate", backend="scalar")
    _, r_eb = _timed(program, p, method="enumerate", backend="batched")
    _assert_identical(r_es, r_eb, f"u={u} p={p} enumerate")
    with tempfile.TemporaryDirectory() as d:
        t_cold, r_cold = _timed(program, p, backend="batched", cache=True,
                                cache_dir=d)
        t_warm, r_warm = _timed(program, p, backend="batched", cache=True,
                                cache_dir=d)
    _assert_identical(r_s, r_cold, f"u={u} p={p} cache cold")
    _assert_identical(r_s, r_warm, f"u={u} p={p} cache warm")
    speedup = t_s / t_b
    print(f"smoke: u={u} p={p}  scalar {t_s * 1e3:.1f} ms  "
          f"batched {t_b * 1e3:.1f} ms  speedup {speedup:.1f}x  "
          f"cache cold {t_cold * 1e3:.1f} ms warm {t_warm * 1e3:.1f} ms  "
          f"identical=True")
    assert speedup >= 2.0, (
        f"batched speedup {speedup:.2f}x below the 2x smoke floor"
    )
    return 0


def _record(repeats: int, scale: int) -> int:
    print(f"recording E7 sweep {list(SWEEP)} on both backends "
          f"(best of {repeats})...")
    sweep_rows = []
    total_scalar = 0.0
    total_batched = 0.0
    total_cold = 0.0
    total_warm = 0.0
    with tempfile.TemporaryDirectory() as cache_dir:
        for u, p in SWEEP:
            program = _program(u, p)
            t_s, r_s = _timed(program, p, backend="scalar", repeats=repeats)
            t_b, r_b = _timed(program, p, backend="batched", repeats=repeats)
            _assert_identical(r_s, r_b, f"u={u} p={p}")
            t_cold, r_cold = _timed(program, p, backend="batched", cache=True,
                                    cache_dir=cache_dir)
            t_warm, r_warm = _timed(program, p, backend="batched", cache=True,
                                    cache_dir=cache_dir, repeats=repeats)
            _assert_identical(r_s, r_cold, f"u={u} p={p} cache cold")
            _assert_identical(r_s, r_warm, f"u={u} p={p} cache warm")
            total_scalar += t_s
            total_batched += t_b
            total_cold += t_cold
            total_warm += t_warm
            sweep_rows.append({
                "u": u, "p": p, "points": u**3 * p**2,
                "instances": r_s.stats["instances"],
                "scalar_s": round(t_s, 4),
                "batched_s": round(t_b, 4),
                "cache_cold_s": round(t_cold, 4),
                "cache_warm_s": round(t_warm, 4),
                "speedup_batched": round(t_s / t_b, 2),
            })
            print(f"  u={u} p={p}: scalar {t_s * 1e3:.1f} ms  "
                  f"batched {t_b * 1e3:.1f} ms ({t_s / t_b:.1f}x)  "
                  f"cold {t_cold * 1e3:.1f} ms  warm {t_warm * 1e3:.1f} ms")
    speedup_cold = total_scalar / total_batched
    speedup_warm = total_scalar / total_warm
    print(f"sweep totals: scalar {total_scalar:.3f}s  "
          f"batched {total_batched:.3f}s ({speedup_cold:.1f}x)  "
          f"warm cache {total_warm:.3f}s ({speedup_warm:.1f}x)")

    print("re-timing E7 with each backend...")
    from repro.experiments import e7_analysis_cost

    e7 = {}
    for backend in ("scalar", "batched"):
        data = e7_analysis_cost.run(backend=backend)
        e7[backend] = {
            "general_ms": {
                f"u{u}p{p}": general_ms
                for u, p, _pts, _cand, general_ms, _comp, _ratio, _ok
                in data["rows"]
            },
            "ok": data["ok"],
        }
        assert data["ok"], f"E7 disagreement under backend={backend}"

    print(f"running the u=p={scale} Theorem 3.1 cross-validation...")
    from repro.expansion.verify import verify_theorem31

    t0 = time.perf_counter()
    rep = verify_theorem31(
        [0, 1, 0], [1, 0, 0], [0, 0, 1], [1, 1, 1],
        [scale, scale, scale], scale, method="enumerate",
    )
    t_scale = time.perf_counter() - t0
    assert rep.matches, f"u=p={scale} cross-validation MISMATCH"
    print(f"  u=p={scale}: {rep.analysis_stats['points_visited']} points, "
          f"{rep.analysis_stats['instances']} instances, "
          f"matches=True in {t_scale:.1f}s")

    data = {}
    if BENCH_FILE.exists():
        data = json.loads(BENCH_FILE.read_text())
    data.setdefault("baseline", {
        "backend": "scalar",
        "seconds": round(total_scalar, 3),
        "note": "point-by-point exact analyzer over the E7 sweep",
    })
    data.update({
        "instance": {
            "algorithm": "bit-level matmul (add-shift, expansion II)",
            "sweep": [[u, p] for u, p in SWEEP],
            "method": "exact",
        },
        "environment": obs.environment_info(),
        "engine": {
            "scalar": {"seconds": round(total_scalar, 3)},
            "batched": {"seconds": round(total_batched, 3)},
            "cache_cold": {"seconds": round(total_cold, 3)},
            "cache_warm": {"seconds": round(total_warm, 3)},
            "results_identical_across_backends": True,
            "speedup_batched_vs_scalar": round(speedup_cold, 2),
            "speedup_warm_cache_vs_scalar": round(speedup_warm, 2),
            "speedup_warm_vs_cold_batched": round(total_cold / total_warm, 2),
        },
        "e7": e7,
        "scale_run": {
            "u": scale, "p": scale, "method": "enumerate",
            "points": rep.analysis_stats["points_visited"],
            "instances": rep.analysis_stats["instances"],
            "seconds": round(t_scale, 3),
            "theorem31_matches": True,
        },
        "sweep": sweep_rows,
    })
    baseline = data["baseline"]["seconds"]
    data["speedup_vs_baseline"] = round(baseline / total_batched, 2)
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {BENCH_FILE}")
    assert speedup_cold >= 5.0, (
        f"batched speedup {speedup_cold:.2f}x below the 5x record floor"
    )
    assert speedup_warm >= 20.0, (
        f"warm-cache speedup {speedup_warm:.2f}x below the 20x record floor"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--smoke", action="store_true",
                      help="small instance on both backends plus a cache "
                      "round-trip; assert equivalence and >= 2x")
    mode.add_argument("--record", action="store_true",
                      help="measure the E7 sweep, cache, E7 before/after and "
                      "the scale run; update BENCH_analysis.json")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats for --record")
    parser.add_argument("--scale", type=int, default=16,
                        help="u = p for the --record cross-validation scale "
                        "run (default 16; lower for quick refreshes)")
    args = parser.parse_args(argv)
    if args.smoke:
        return _smoke()
    return _record(args.repeats, args.scale)


if __name__ == "__main__":
    raise SystemExit(main())
