"""Scaling benchmarks: how the simulators and derivations grow with size.

Not a paper figure; evidence that the substrate itself behaves: machine
time grows with the index-set volume ``u³p²``, the Theorem 3.1 derivation
stays flat, and the free-schedule DP is near-linear in points.
"""

import pytest

from repro.expansion.theorem31 import matmul_bit_level
from repro.machine.bitlevel import BitLevelMatmulMachine
from repro.mapping import designs
from repro.mapping.bounds import free_schedule_time
from repro.mapping.engine import SearchConfig, run_search


def _operands(u, p):
    x = [[(3 * i + j) % (1 << p) for j in range(u)] for i in range(u)]
    y = [[(i + 5 * j + 1) % (1 << p) for j in range(u)] for i in range(u)]
    return x, y


@pytest.mark.parametrize("u,p", [(2, 2), (3, 3), (4, 4)])
def test_bench_machine_scaling(benchmark, u, p):
    machine = BitLevelMatmulMachine(u, p, designs.fig4_mapping(p), "II")
    x, y = _operands(u, p)
    out = benchmark(machine.run, x, y)
    assert out.sim.makespan == designs.t_fig4(u, p)
    assert out.sim.computations == u**3 * p**2


@pytest.mark.parametrize("u,p", [(4, 4), (16, 16), (64, 64)])
def test_bench_derivation_flat(benchmark, u, p):
    alg = benchmark(matmul_bit_level, u, p, "II")
    assert len(alg.dependences) == 7


@pytest.mark.parametrize("u,p", [(2, 2), (3, 3), (4, 3)])
def test_bench_free_schedule_scaling(benchmark, u, p):
    alg = matmul_bit_level(u, p, "II")
    t = benchmark(free_schedule_time, alg, {"u": u, "p": p})
    assert t == designs.t_fig4(u, p)


@pytest.mark.parametrize("workers", [1, 2])
def test_bench_search_engine_scaling(benchmark, workers):
    """Engine wall clock per worker count (single run; pools are costly)."""
    alg = matmul_bit_level(2, 2, "II")
    config = SearchConfig(target_space_dim=2, block_values=[2],
                          schedule_bound=2, max_candidates=5,
                          workers=workers)
    cands = benchmark.pedantic(
        run_search,
        args=(alg, {"u": 2, "p": 2}, designs.fig4_primitives(2), config),
        rounds=1, iterations=1,
    )
    assert cands and cands[0].time <= designs.t_fig4(2, 2)
