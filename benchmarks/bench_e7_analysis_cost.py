"""E7 benchmarks -- the paper's motivation, measured.

Benchmarks the exact general dependence analysis of the expanded bit-level
matmul program against Theorem 3.1's composition, across sizes; this is the
headline "without using time consuming general dependence analysis" claim.
"""

import pytest

from repro.depanalysis import analyze
from repro.expansion.theorem31 import matmul_bit_level
from repro.experiments import e7_analysis_cost
from repro.ir.expand import expand_bit_level

MATMUL_H = ([0, 1, 0], [1, 0, 0], [0, 0, 1])


@pytest.fixture(scope="module", autouse=True)
def report(report_writer):
    yield
    data = e7_analysis_cost.run()
    report_writer("E7-analysis-cost", e7_analysis_cost.report(data), data=data)


@pytest.mark.parametrize("u,p", [(2, 2), (3, 2), (3, 3)])
def test_bench_general_analysis(benchmark, u, p):
    h1, h2, h3 = MATMUL_H
    prog = expand_bit_level(h1, h2, h3, [1, 1, 1], [u, u, u], p, "II")
    result = benchmark(analyze, prog, {"p": p}, "exact")
    assert result.instances


@pytest.mark.parametrize("u,p", [(2, 2), (3, 3), (64, 32)])
def test_bench_theorem31_composition(benchmark, u, p):
    alg = benchmark(matmul_bit_level, u, p, "II")
    assert len(alg.dependences) == 7


def test_bench_enumerate_analysis(benchmark):
    h1, h2, h3 = MATMUL_H
    prog = expand_bit_level(h1, h2, h3, [1, 1, 1], [3, 3, 3], 3, "II")
    result = benchmark(analyze, prog, {"p": 3}, "enumerate")
    assert result.instances
