"""Benchmark: the design-space search of [5, 6, 10].

Times the joint (S, Π) search that produced designs like the paper's
Fig. 4, and reports the best designs found for the bit-level matmul
structure -- including ones the paper does not list (same optimal time,
fewer processors at small sizes).
"""

import pytest

from repro import obs
from repro.expansion.theorem31 import matmul_bit_level
from repro.experiments.tables import format_table
from repro.ir.builders import matmul_word_structure
from repro.mapping import designs
from repro.mapping.lowerdim import search_designs


@pytest.fixture(scope="module", autouse=True)
def report(report_writer):
    yield
    u, p = 2, 2
    alg = matmul_bit_level(u, p, "II")
    with obs.collecting() as reg:
        cands = search_designs(
            alg, {"u": u, "p": p}, designs.fig4_primitives(p),
            target_space_dim=2, block_values=[p], schedule_bound=2,
            max_candidates=5,
        )
    rows = [
        (i + 1, c.time, c.processors,
         "; ".join(str(list(r)) for r in c.mapping.rows))
        for i, c in enumerate(cands)
    ]
    rows.append(
        ("Fig4", designs.t_fig4(u, p), designs.fig4_processor_count(u, p),
         "; ".join(str(list(r)) for r in designs.fig4_mapping(p).rows))
    )
    text = format_table(
        ["rank", "time", "PEs", "T = [S; Π]"],
        rows,
        title=f"Design-space search, bit-level matmul (u={u}, p={p})",
    )
    report_writer(
        "design-search", text,
        data={"u": u, "p": p, "rows": rows, "metrics": obs.metrics_dict(reg)},
    )


def test_bench_search_word_level(benchmark):
    alg = matmul_word_structure()
    cands = benchmark(
        search_designs, alg, {"u": 3}, None, 2, (), 1, 3
    )
    assert cands and cands[0].time == 7


def test_bench_search_bit_level(benchmark):
    alg = matmul_bit_level(2, 2, "II")
    cands = benchmark(
        search_designs, alg, {"u": 2, "p": 2},
        designs.fig4_primitives(2), 2, [2], 2, 2,
    )
    assert cands
    assert cands[0].time <= designs.t_fig4(2, 2)
